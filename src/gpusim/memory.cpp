#include "gpusim/memory.h"

#include <cstring>

namespace plr::gpusim {

MemoryPool::MemoryPool(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes)
{
}

std::size_t
MemoryPool::alloc_raw(std::size_t bytes, const std::string& label)
{
    PLR_REQUIRE(live_bytes_ + bytes <= capacity_bytes_,
                "device out of memory allocating " << bytes << " bytes for '"
                << label << "' (" << live_bytes_ << " of " << capacity_bytes_
                << " in use)");
    const std::size_t id = records_.size();

    AllocationRecord rec;
    rec.label = label;
    rec.bytes = bytes;
    rec.base_addr = next_base_addr_;
    records_.push_back(rec);

    // Keep allocations 256-byte aligned in the virtual address space so
    // distinct buffers never share a cache line.
    const std::size_t aligned = (bytes + 255) / 256 * 256;
    next_base_addr_ += aligned + 256;

    auto block = std::make_unique<std::byte[]>(bytes == 0 ? 1 : bytes);
    std::memset(block.get(), 0, bytes);
    storage_.push_back(std::move(block));

    live_bytes_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
    return id;
}

void
MemoryPool::free_raw(std::size_t alloc_id)
{
    PLR_ASSERT(alloc_id < records_.size(), "bad allocation id " << alloc_id);
    PLR_ASSERT(!records_[alloc_id].freed, "double free of allocation "
                                              << alloc_id);
    records_[alloc_id].freed = true;
    live_bytes_ -= records_[alloc_id].bytes;
    // The backing storage is deliberately kept: on a real GPU a freed
    // range stays addressable (a dangling pointer dereferences whatever
    // the allocator left there) — a use-after-free is not a segfault but
    // a silent data hazard. The analysis layer flags such accesses via
    // the ledger's freed bit (shadow_memory.h); the pool itself must not
    // turn them into host crashes or asserts.
}

std::byte*
MemoryPool::raw_data(std::size_t alloc_id)
{
    PLR_ASSERT(alloc_id < records_.size(), "bad allocation id " << alloc_id);
    return storage_[alloc_id].get();
}

const std::byte*
MemoryPool::raw_data(std::size_t alloc_id) const
{
    PLR_ASSERT(alloc_id < records_.size(), "bad allocation id " << alloc_id);
    return storage_[alloc_id].get();
}

const AllocationRecord&
MemoryPool::record(std::size_t alloc_id) const
{
    PLR_ASSERT(alloc_id < records_.size(), "bad allocation id " << alloc_id);
    return records_[alloc_id];
}

}  // namespace plr::gpusim
