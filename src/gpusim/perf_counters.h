#ifndef PLR_GPUSIM_PERF_COUNTERS_H_
#define PLR_GPUSIM_PERF_COUNTERS_H_

/**
 * @file
 * Performance counters collected while simulating kernels.
 *
 * Counter values are interleaving-independent (they are pure sums of
 * per-block contributions), except for busy_wait_spins which depends on
 * scheduling and is excluded from determinism-sensitive checks.
 */

#include <atomic>
#include <cstdint>
#include <span>

namespace plr::gpusim {

/** Plain snapshot of the counter values. */
struct CounterSnapshot {
    std::uint64_t global_load_bytes = 0;
    std::uint64_t global_store_bytes = 0;
    std::uint64_t global_load_transactions = 0;
    std::uint64_t global_store_transactions = 0;
    std::uint64_t atomic_ops = 0;
    std::uint64_t fences = 0;
    std::uint64_t shared_accesses = 0;
    std::uint64_t shuffles = 0;
    std::uint64_t flops = 0;
    std::uint64_t busy_wait_spins = 0;
    std::uint64_t l2_read_hits = 0;
    std::uint64_t l2_read_misses = 0;
    std::uint64_t l2_write_accesses = 0;
    std::uint64_t blocks_executed = 0;

    /** Total DRAM-visible traffic (loads + stores). */
    std::uint64_t total_global_bytes() const
    {
        return global_load_bytes + global_store_bytes;
    }

    /** L2 read misses converted into bytes (the paper's Table 3 metric). */
    std::uint64_t l2_read_miss_bytes(std::size_t line_bytes) const
    {
        return l2_read_misses * line_bytes;
    }
};

/** Elementwise difference of two snapshots (after - before). */
CounterSnapshot operator-(const CounterSnapshot& after,
                          const CounterSnapshot& before);

/** One named counter field of a snapshot. */
struct CounterField {
    const char* name;
    std::uint64_t CounterSnapshot::* member;
    /**
     * True when the value is a pure sum of per-block contributions and
     * therefore independent of block interleaving. busy_wait_spins is the
     * only scheduling-dependent field; on a serialized launch (one
     * resident block, see gpusim::serialized) every field is exact.
     */
    bool interleaving_independent;
};

/**
 * The snapshot fields in declaration order — the single source of truth
 * for JSON emission, baseline comparison, and the counter-budget tests,
 * so a new counter cannot silently escape the regression gates.
 */
std::span<const CounterField> counter_fields();

/** Elementwise equality over counter_fields(). */
bool operator==(const CounterSnapshot& a, const CounterSnapshot& b);

/** Thread-safe accumulation of CounterSnapshot deltas. */
class PerfCounters {
  public:
    /** Add a per-block contribution. */
    void accumulate(const CounterSnapshot& delta);

    /** Read the current totals. */
    CounterSnapshot snapshot() const;

    /** Zero all counters. */
    void reset();

  private:
    std::atomic<std::uint64_t> global_load_bytes_{0};
    std::atomic<std::uint64_t> global_store_bytes_{0};
    std::atomic<std::uint64_t> global_load_transactions_{0};
    std::atomic<std::uint64_t> global_store_transactions_{0};
    std::atomic<std::uint64_t> atomic_ops_{0};
    std::atomic<std::uint64_t> fences_{0};
    std::atomic<std::uint64_t> shared_accesses_{0};
    std::atomic<std::uint64_t> shuffles_{0};
    std::atomic<std::uint64_t> flops_{0};
    std::atomic<std::uint64_t> busy_wait_spins_{0};
    std::atomic<std::uint64_t> l2_read_hits_{0};
    std::atomic<std::uint64_t> l2_read_misses_{0};
    std::atomic<std::uint64_t> l2_write_accesses_{0};
    std::atomic<std::uint64_t> blocks_executed_{0};
};

}  // namespace plr::gpusim

#endif  // PLR_GPUSIM_PERF_COUNTERS_H_
