#ifndef PLR_GPUSIM_DEVICE_SPEC_H_
#define PLR_GPUSIM_DEVICE_SPEC_H_

/**
 * @file
 * Hardware description of the simulated GPU.
 *
 * The defaults describe the paper's evaluation machine: a GeForce GTX
 * Titan X (Maxwell) — 3072 processing elements in 24 SMs, contexts for up
 * to 49,152 threads, 96 kB shared memory per SM (48 kB per block), a 2 MB
 * L2 cache, and 12 GB of GDDR5 at a peak of 336 GB/s (Section 5).
 */

#include <cstddef>
#include <string>

namespace plr::gpusim {

/** Static hardware parameters of the simulated device. */
struct DeviceSpec {
    std::string name = "simulated-gpu";

    std::size_t num_sms = 24;
    std::size_t cores_per_sm = 128;
    double core_clock_ghz = 1.1;

    std::size_t warp_size = 32;
    std::size_t max_block_threads = 1024;
    /** Maximum thread contexts across the device. */
    std::size_t max_threads = 49152;

    std::size_t shared_mem_per_sm = 96 * 1024;
    std::size_t shared_mem_per_block = 48 * 1024;
    std::size_t registers_per_sm = 65536;

    std::size_t l2_bytes = 2 * 1024 * 1024;
    std::size_t l2_line_bytes = 32;
    std::size_t l2_ways = 16;

    double dram_bandwidth_gbps = 336.0;
    double dram_clock_ghz = 3.5;
    std::size_t dram_bytes = std::size_t{12} * 1024 * 1024 * 1024;

    /**
     * Thread blocks the device processes simultaneously at 1024 threads
     * per block (the planner's T).
     */
    std::size_t max_resident_blocks() const
    {
        return max_threads / max_block_threads;
    }

    /** Total processing elements. */
    std::size_t total_cores() const { return num_sms * cores_per_sm; }
};

/** The paper's GeForce GTX Titan X (Maxwell) configuration. */
DeviceSpec titan_x();

/**
 * @p base with thread contexts for a single resident block: launches run
 * blocks one at a time in index order, so every perf counter — including
 * look-back traffic and busy-wait spins — is exactly reproducible. Used
 * by the counter-budget regression tests and the bench baseline capture
 * (docs/BENCH.md); functional behavior is unchanged.
 */
DeviceSpec serialized(DeviceSpec base = titan_x());

}  // namespace plr::gpusim

#endif  // PLR_GPUSIM_DEVICE_SPEC_H_
