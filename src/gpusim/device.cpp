#include "gpusim/device.h"

#include <algorithm>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "util/env.h"

namespace plr::gpusim {

namespace {

/** Spins per wait episode before the deadlock watchdog declares a wedge. */
constexpr std::uint64_t kSpinWatchdogDefault = 200'000'000;

/** Watchdog default: $PLR_SPIN_WATCHDOG when set (validated count). */
std::uint64_t
default_watchdog_limit()
{
    return env::count_or("PLR_SPIN_WATCHDOG", kSpinWatchdogDefault);
}

}  // namespace

// ---------------------------------------------------------------- Block

BlockContext::BlockContext(Device& device, std::size_t block_index)
    : device_(device), block_index_(block_index)
{
    if (device_.fault_plan_)
        fault_ = BlockFaultStream(device_.fault_plan_.get(), block_index);
    analysis_ = device_.launch_analysis_.get();
}

analysis::AccessContext
BlockContext::analysis_ctx() const
{
    analysis::AccessContext ctx;
    ctx.block = block_index_;
    ctx.chunk = progress_chunk_;
    ctx.site = analysis_site_ != nullptr ? analysis_site_ : wait_site_;
    return ctx;
}

void
BlockContext::analysis_read(std::size_t alloc_id, std::uint64_t offset,
                            std::size_t bytes)
{
    analysis_->on_read(analysis_ctx(), alloc_id, offset, bytes);
}

void
BlockContext::analysis_write(std::size_t alloc_id, std::uint64_t offset,
                             std::size_t bytes)
{
    analysis_->on_write(analysis_ctx(), alloc_id, offset, bytes);
}

BlockContext::~BlockContext()
{
    flush_pending_releases();
    if (device_.failed_.load(std::memory_order_relaxed)) {
        BlockForensics forensics;
        forensics.block_index = block_index_;
        forensics.chunk = progress_chunk_;
        forensics.waiting_on = waiting_on_;
        forensics.wait_site = wait_site_ ? wait_site_ : "";
        forensics.spins = spin_count_;
        std::lock_guard<std::mutex> lock(device_.forensic_mutex_);
        device_.failed_block_states_.push_back(std::move(forensics));
    }
    local_.blocks_executed = 1;
    device_.counters_.accumulate(local_);
}

void
BlockContext::note_global_access(std::uint64_t addr, std::size_t bytes,
                                 bool is_read, bool scalar)
{
    const std::uint64_t line = 32;
    std::uint64_t transactions;
    std::uint64_t counted_bytes;
    if (scalar) {
        transactions = 1;
        counted_bytes = line;  // a lone access still moves a 32-byte sector
    } else {
        const std::uint64_t first = addr / line;
        const std::uint64_t last = (addr + bytes - 1) / line;
        transactions = last - first + 1;
        counted_bytes = transactions * line;
    }
    if (is_read) {
        local_.global_load_bytes += counted_bytes;
        local_.global_load_transactions += transactions;
    } else {
        local_.global_store_bytes += counted_bytes;
        local_.global_store_transactions += transactions;
    }
    if (L2Cache* l2 = device_.l2()) {
        const auto result = l2->access(addr, scalar ? line : bytes, is_read);
        if (is_read) {
            local_.l2_read_hits += result.hits;
            local_.l2_read_misses += result.misses;
        } else {
            local_.l2_write_accesses += result.hits + result.misses;
        }
    }
}

std::uint32_t
BlockContext::atomic_add(const Buffer<std::uint32_t>& buf, std::size_t i,
                         std::uint32_t value)
{
    bounds_check(buf, i, 1);
    fault_before_global_op();
    ++local_.atomic_ops;
    if (analysis_ != nullptr)
        analysis_->on_atomic_rmw(analysis_ctx(), buf.alloc_id, i);
    std::atomic_ref<std::uint32_t> ref(pool().data(buf)[i]);
    return ref.fetch_add(value, std::memory_order_acq_rel);
}

std::uint32_t
BlockContext::ld_acquire(const Buffer<std::uint32_t>& buf, std::size_t i)
{
    bounds_check(buf, i, 1);
    fault_before_global_op();
    ++local_.atomic_ops;
    std::atomic_ref<std::uint32_t> ref(pool().data(buf)[i]);
    const std::uint32_t value = ref.load(std::memory_order_acquire);
    // Stale re-read fault: report a published flag as still clear. Safe
    // because protocol flags are 0 -> nonzero monotonic, so the reader just
    // polls again (bounded by FaultConfig::max_consecutive_stale).
    if (value != 0 && fault_.active() && fault_.next_stale_flag_read()) {
        if (analysis_ != nullptr)
            analysis_->on_acquire(analysis_ctx(), buf.alloc_id, i, 0);
        return 0;
    }
    // The acquire edge follows what the kernel *observes*: a masked-stale
    // read above creates none, so the reader must poll again to get one.
    if (analysis_ != nullptr)
        analysis_->on_acquire(analysis_ctx(), buf.alloc_id, i, value);
    return value;
}

void
BlockContext::st_release(const Buffer<std::uint32_t>& buf, std::size_t i,
                         std::uint32_t value)
{
    bounds_check(buf, i, 1);
    fault_before_global_op();
    ++local_.atomic_ops;
    // Record the release edge at program order, even when the fault layer
    // defers the physical store: the recorded clock is what the flag value
    // carries, and a reader can only join it after the store really lands.
    if (analysis_ != nullptr)
        analysis_->on_release(analysis_ctx(), buf.alloc_id, i, value);
    std::uint32_t* addr = &pool().data(buf)[i];
    if (fault_.active()) {
        std::uint32_t delay = 0;
        switch (fault_.next_publish_fate(&delay)) {
        case BlockFaultStream::PublishFate::kDropped:
            return;  // lost publication (lethal configs only)
        case BlockFaultStream::PublishFate::kDeferred:
            pending_releases_.push_back(PendingRelease{addr, value, delay});
            return;
        case BlockFaultStream::PublishFate::kImmediate:
            break;
        }
    }
    std::atomic_ref<std::uint32_t> ref(*addr);
    ref.store(value, std::memory_order_release);
}

void
BlockContext::tick_pending_releases()
{
    for (PendingRelease& pending : pending_releases_) {
        if (pending.remaining > 0)
            --pending.remaining;
    }
    // Flush expired publications from the front only: program order among a
    // block's releases is preserved even under deferral.
    std::size_t flushed = 0;
    while (flushed < pending_releases_.size() &&
           pending_releases_[flushed].remaining == 0) {
        std::atomic_ref<std::uint32_t> ref(*pending_releases_[flushed].addr);
        ref.store(pending_releases_[flushed].value,
                  std::memory_order_release);
        ++flushed;
    }
    if (flushed > 0)
        pending_releases_.erase(pending_releases_.begin(),
                                pending_releases_.begin() + flushed);
}

void
BlockContext::flush_pending_releases()
{
    for (const PendingRelease& pending : pending_releases_) {
        std::atomic_ref<std::uint32_t> ref(*pending.addr);
        ref.store(pending.value, std::memory_order_release);
    }
    pending_releases_.clear();
}

void
BlockContext::alloc_shared(std::size_t bytes)
{
    shared_bytes_used_ += bytes;
    const std::size_t limit = device_.spec().shared_mem_per_block;
    PLR_ASSERT(shared_bytes_used_ <= limit,
               "block " << block_index_ << " exceeds the "
                        << limit << "-byte shared-memory budget ("
                        << shared_bytes_used_ << " bytes requested)");
}

void
BlockContext::threadfence()
{
    ++local_.fences;
    if (analysis_ != nullptr)
        analysis_->on_fence(block_index_);
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void
BlockContext::spin_wait()
{
    ++local_.busy_wait_spins;
    if (!pending_releases_.empty())
        tick_pending_releases();
    if (device_.failed_.load(std::memory_order_relaxed))
        throw KernelAborted{};
    if (++spin_count_ > device_.spin_watchdog_limit_) {
        // First failure wins: only the CAS winner records the trip, so the
        // error surfaced by launch() is deterministic even when several
        // blocks wedge at once.
        bool expected = false;
        if (device_.failed_.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
            device_.watchdog_trip_ = Device::WatchdogTrip{
                block_index_, spin_count_, progress_chunk_, waiting_on_,
                wait_site_ ? wait_site_ : "spin_wait"};
        }
        throw KernelAborted{};
    }
    std::this_thread::yield();
}

// --------------------------------------------------------------- Device

Device::Device(DeviceSpec spec, bool model_l2)
    : spec_(std::move(spec)),
      pool_(spec_.dram_bytes),
      l2_(spec_.l2_bytes, spec_.l2_line_bytes, spec_.l2_ways),
      l2_enabled_(model_l2),
      spin_watchdog_limit_(default_watchdog_limit())
{
    if (env::flag_or("PLR_RACE_DETECT", false))
        analysis_config_ = analysis::AnalysisConfig{};
}

void
Device::enable_analysis(analysis::AnalysisConfig config)
{
    analysis_config_ = config;
}

void
Device::disable_analysis()
{
    analysis_config_.reset();
    launch_analysis_.reset();
}

const analysis::RaceReport*
Device::last_analysis_report() const
{
    return launch_analysis_ ? &launch_analysis_->report() : nullptr;
}

std::size_t
Device::register_protocol(analysis::ProtocolSpec spec)
{
    const std::size_t id = next_protocol_id_++;
    protocols_.emplace_back(id, std::move(spec));
    return id;
}

void
Device::unregister_protocol(std::size_t id)
{
    std::erase_if(protocols_,
                  [id](const auto& entry) { return entry.first == id; });
}

ProtocolGuard::ProtocolGuard(Device& device, analysis::ProtocolSpec spec)
    : device_(device), id_(device.register_protocol(std::move(spec)))
{
}

ProtocolGuard::~ProtocolGuard()
{
    device_.unregister_protocol(id_);
}

void
Device::set_fault_plan(std::shared_ptr<FaultPlan> plan)
{
    fault_plan_ = std::move(plan);
}

void
Device::set_spin_watchdog_limit(std::uint64_t limit)
{
    spin_watchdog_limit_ = limit > 0 ? limit : default_watchdog_limit();
}

std::size_t
Device::register_forensic_source(std::function<ProtocolForensics()> source)
{
    std::lock_guard<std::mutex> lock(forensic_mutex_);
    const std::size_t id = next_forensic_id_++;
    forensic_sources_.emplace_back(id, std::move(source));
    return id;
}

void
Device::unregister_forensic_source(std::size_t id)
{
    std::lock_guard<std::mutex> lock(forensic_mutex_);
    std::erase_if(forensic_sources_,
                  [id](const auto& entry) { return entry.first == id; });
}

ForensicDump
Device::build_forensic_dump(const std::string& reason)
{
    ForensicDump dump;
    dump.reason = reason;
    dump.spin_limit = spin_watchdog_limit_;
    if (fault_plan_) {
        dump.faults_active = true;
        dump.fault_seed = fault_plan_->seed();
        dump.fault_stats = fault_plan_->stats();
    }
    std::lock_guard<std::mutex> lock(forensic_mutex_);
    dump.blocks = failed_block_states_;
    std::sort(dump.blocks.begin(), dump.blocks.end(),
              [](const BlockForensics& a, const BlockForensics& b) {
                  return a.block_index < b.block_index;
              });
    for (const auto& [id, source] : forensic_sources_)
        dump.protocols.push_back(source());
    return dump;
}

void
Device::launch(std::size_t num_blocks,
               const std::function<void(BlockContext&)>& body,
               std::size_t max_resident)
{
    if (num_blocks == 0)
        return;

    std::size_t resident = spec_.max_resident_blocks();
    if (max_resident != 0 && max_resident < resident)
        resident = max_resident;
    resident = std::min(resident, num_blocks);

    failed_.store(false, std::memory_order_relaxed);
    watchdog_trip_.reset();
    {
        std::lock_guard<std::mutex> lock(forensic_mutex_);
        failed_block_states_.clear();
    }

    // Fresh analysis state per launch: launch/join are barriers, so only
    // intra-launch accesses can race, and the shadow must not carry over.
    launch_analysis_.reset();
    if (analysis_config_) {
        std::vector<analysis::ProtocolSpec> specs;
        specs.reserve(protocols_.size());
        for (const auto& [id, spec] : protocols_)
            specs.push_back(spec);
        launch_analysis_ = std::make_unique<analysis::LaunchAnalysis>(
            *analysis_config_, &pool_.ledger(), num_blocks,
            std::move(specs));
    }

    std::vector<std::size_t> order;
    if (fault_plan_ && fault_plan_->config().shuffle_launch_order)
        order = fault_plan_->launch_order(num_blocks);

    std::atomic<std::size_t> next_block{0};
    std::exception_ptr first_error;  // written only by the failed_ CAS winner

    auto worker = [&]() {
        for (;;) {
            if (failed_.load(std::memory_order_relaxed))
                return;
            const std::size_t index =
                next_block.fetch_add(1, std::memory_order_relaxed);
            if (index >= num_blocks)
                return;
            const std::size_t block = order.empty() ? index : order[index];
            try {
                BlockContext ctx(*this, block);
                body(ctx);
            } catch (const KernelAborted&) {
                // Teardown of a launch that already failed; the original
                // error (or watchdog trip) is already recorded.
                return;
            } catch (...) {
                bool expected = false;
                if (failed_.compare_exchange_strong(
                        expected, true, std::memory_order_acq_rel)) {
                    first_error = std::current_exception();
                }
                return;
            }
        }
    };

    if (resident == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(resident);
        for (std::size_t t = 0; t < resident; ++t)
            threads.emplace_back(worker);
        for (auto& thread : threads)
            thread.join();
    }

    // Render violations to $PLR_RACE_LOG before any throw below, so the
    // report survives even when the launch also wedged or a kernel threw.
    const analysis::RaceReport* race_report = nullptr;
    if (launch_analysis_ && !launch_analysis_->clean()) {
        race_report = &launch_analysis_->report();
        const std::string race_log = env::string_or("PLR_RACE_LOG");
        if (!race_log.empty()) {
            std::ofstream out(race_log, std::ios::app);
            if (out)
                out << race_report->format() << "\n";
        }
    }

    if (watchdog_trip_) {
        const WatchdogTrip& trip = *watchdog_trip_;
        std::ostringstream reason;
        reason << "deadlock watchdog: block " << trip.block_index
               << " spun " << trip.spins << " times without progress";
        if (trip.chunk != BlockForensics::kNone)
            reason << "; chunk " << trip.chunk;
        if (trip.waiting_on != BlockForensics::kNone)
            reason << "; waiting on chunk " << trip.waiting_on << " at "
                   << trip.wait_site;
        ForensicDump dump = build_forensic_dump(reason.str());
        std::string message = reason.str();
        const std::size_t suspect = dump.suspect_chunk();
        if (suspect != BlockForensics::kNone)
            message += "; suspect chunk " + std::to_string(suspect);
        const std::string forensic_log = env::string_or("PLR_FORENSIC_LOG");
        if (!forensic_log.empty()) {
            std::ofstream out(forensic_log, std::ios::app);
            if (out)
                out << dump.format() << "\n";
        }
        throw LaunchError(message, std::move(dump));
    }

    if (first_error)
        std::rethrow_exception(first_error);

    if (race_report != nullptr && analysis_config_->fail_on_violation) {
        std::ostringstream message;
        message << "race detector: " << race_report->races.size()
                << " race(s), " << race_report->invariants.size()
                << " invariant violation(s)";
        if (!race_report->races.empty())
            message << "; first: " << race_report->races.front().what;
        else if (!race_report->invariants.empty())
            message << "; first: " << race_report->invariants.front().rule;
        throw analysis::RaceError(message.str(), *race_report);
    }
}

void
Device::reset_counters()
{
    counters_.reset();
    l2_.clear();
}

}  // namespace plr::gpusim
