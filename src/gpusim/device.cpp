#include "gpusim/device.h"

#include <exception>
#include <mutex>
#include <thread>

namespace plr::gpusim {

namespace {

/** Spins before the deadlock watchdog declares the launch wedged. */
constexpr std::uint64_t kSpinWatchdogLimit = 200'000'000;

}  // namespace

// ---------------------------------------------------------------- Block

BlockContext::BlockContext(Device& device, std::size_t block_index)
    : device_(device), block_index_(block_index)
{
}

BlockContext::~BlockContext()
{
    local_.blocks_executed = 1;
    device_.counters_.accumulate(local_);
}

void
BlockContext::note_global_access(std::uint64_t addr, std::size_t bytes,
                                 bool is_read, bool scalar)
{
    const std::uint64_t line = 32;
    std::uint64_t transactions;
    std::uint64_t counted_bytes;
    if (scalar) {
        transactions = 1;
        counted_bytes = line;  // a lone access still moves a 32-byte sector
    } else {
        const std::uint64_t first = addr / line;
        const std::uint64_t last = (addr + bytes - 1) / line;
        transactions = last - first + 1;
        counted_bytes = transactions * line;
    }
    if (is_read) {
        local_.global_load_bytes += counted_bytes;
        local_.global_load_transactions += transactions;
    } else {
        local_.global_store_bytes += counted_bytes;
        local_.global_store_transactions += transactions;
    }
    if (L2Cache* l2 = device_.l2()) {
        const auto result = l2->access(addr, scalar ? line : bytes, is_read);
        if (is_read) {
            local_.l2_read_hits += result.hits;
            local_.l2_read_misses += result.misses;
        } else {
            local_.l2_write_accesses += result.hits + result.misses;
        }
    }
}

std::uint32_t
BlockContext::atomic_add(const Buffer<std::uint32_t>& buf, std::size_t i,
                         std::uint32_t value)
{
    bounds_check(buf, i, 1);
    ++local_.atomic_ops;
    std::atomic_ref<std::uint32_t> ref(pool().data(buf)[i]);
    return ref.fetch_add(value, std::memory_order_acq_rel);
}

std::uint32_t
BlockContext::ld_acquire(const Buffer<std::uint32_t>& buf, std::size_t i)
{
    bounds_check(buf, i, 1);
    ++local_.atomic_ops;
    std::atomic_ref<std::uint32_t> ref(pool().data(buf)[i]);
    return ref.load(std::memory_order_acquire);
}

void
BlockContext::st_release(const Buffer<std::uint32_t>& buf, std::size_t i,
                         std::uint32_t value)
{
    bounds_check(buf, i, 1);
    ++local_.atomic_ops;
    std::atomic_ref<std::uint32_t> ref(pool().data(buf)[i]);
    ref.store(value, std::memory_order_release);
}

void
BlockContext::alloc_shared(std::size_t bytes)
{
    shared_bytes_used_ += bytes;
    const std::size_t limit = device_.spec().shared_mem_per_block;
    PLR_ASSERT(shared_bytes_used_ <= limit,
               "block " << block_index_ << " exceeds the "
                        << limit << "-byte shared-memory budget ("
                        << shared_bytes_used_ << " bytes requested)");
}

void
BlockContext::threadfence()
{
    ++local_.fences;
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void
BlockContext::spin_wait()
{
    ++local_.busy_wait_spins;
    if (device_.failed_.load(std::memory_order_relaxed))
        throw PanicError("kernel aborted: another block failed");
    if (++spin_count_ > kSpinWatchdogLimit)
        PLR_PANIC("deadlock watchdog: block " << block_index_
                  << " spun " << spin_count_ << " times without progress");
    std::this_thread::yield();
}

// --------------------------------------------------------------- Device

Device::Device(DeviceSpec spec, bool model_l2)
    : spec_(std::move(spec)),
      pool_(spec_.dram_bytes),
      l2_(spec_.l2_bytes, spec_.l2_line_bytes, spec_.l2_ways),
      l2_enabled_(model_l2)
{
}

void
Device::launch(std::size_t num_blocks,
               const std::function<void(BlockContext&)>& body,
               std::size_t max_resident)
{
    if (num_blocks == 0)
        return;

    std::size_t resident = spec_.max_resident_blocks();
    if (max_resident != 0 && max_resident < resident)
        resident = max_resident;
    resident = std::min(resident, num_blocks);

    failed_.store(false, std::memory_order_relaxed);
    std::atomic<std::size_t> next_block{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            if (failed_.load(std::memory_order_relaxed))
                return;
            const std::size_t index =
                next_block.fetch_add(1, std::memory_order_relaxed);
            if (index >= num_blocks)
                return;
            try {
                BlockContext ctx(*this, index);
                body(ctx);
            } catch (...) {
                failed_.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
        }
    };

    if (resident == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(resident);
        for (std::size_t t = 0; t < resident; ++t)
            threads.emplace_back(worker);
        for (auto& thread : threads)
            thread.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

void
Device::reset_counters()
{
    counters_.reset();
    l2_.clear();
}

}  // namespace plr::gpusim
