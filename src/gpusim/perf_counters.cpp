#include "gpusim/perf_counters.h"

namespace plr::gpusim {

std::span<const CounterField>
counter_fields()
{
    static const CounterField kFields[] = {
        {"global_load_bytes", &CounterSnapshot::global_load_bytes, true},
        {"global_store_bytes", &CounterSnapshot::global_store_bytes, true},
        {"global_load_transactions",
         &CounterSnapshot::global_load_transactions, true},
        {"global_store_transactions",
         &CounterSnapshot::global_store_transactions, true},
        {"atomic_ops", &CounterSnapshot::atomic_ops, true},
        {"fences", &CounterSnapshot::fences, true},
        {"shared_accesses", &CounterSnapshot::shared_accesses, true},
        {"shuffles", &CounterSnapshot::shuffles, true},
        {"flops", &CounterSnapshot::flops, true},
        {"busy_wait_spins", &CounterSnapshot::busy_wait_spins, false},
        {"l2_read_hits", &CounterSnapshot::l2_read_hits, true},
        {"l2_read_misses", &CounterSnapshot::l2_read_misses, true},
        {"l2_write_accesses", &CounterSnapshot::l2_write_accesses, true},
        {"blocks_executed", &CounterSnapshot::blocks_executed, true},
    };
    return kFields;
}

bool
operator==(const CounterSnapshot& a, const CounterSnapshot& b)
{
    for (const CounterField& field : counter_fields())
        if (a.*(field.member) != b.*(field.member))
            return false;
    return true;
}

CounterSnapshot
operator-(const CounterSnapshot& after, const CounterSnapshot& before)
{
    CounterSnapshot d;
    d.global_load_bytes = after.global_load_bytes - before.global_load_bytes;
    d.global_store_bytes =
        after.global_store_bytes - before.global_store_bytes;
    d.global_load_transactions =
        after.global_load_transactions - before.global_load_transactions;
    d.global_store_transactions =
        after.global_store_transactions - before.global_store_transactions;
    d.atomic_ops = after.atomic_ops - before.atomic_ops;
    d.fences = after.fences - before.fences;
    d.shared_accesses = after.shared_accesses - before.shared_accesses;
    d.shuffles = after.shuffles - before.shuffles;
    d.flops = after.flops - before.flops;
    d.busy_wait_spins = after.busy_wait_spins - before.busy_wait_spins;
    d.l2_read_hits = after.l2_read_hits - before.l2_read_hits;
    d.l2_read_misses = after.l2_read_misses - before.l2_read_misses;
    d.l2_write_accesses =
        after.l2_write_accesses - before.l2_write_accesses;
    d.blocks_executed = after.blocks_executed - before.blocks_executed;
    return d;
}

void
PerfCounters::accumulate(const CounterSnapshot& delta)
{
    const auto relaxed = std::memory_order_relaxed;
    global_load_bytes_.fetch_add(delta.global_load_bytes, relaxed);
    global_store_bytes_.fetch_add(delta.global_store_bytes, relaxed);
    global_load_transactions_.fetch_add(delta.global_load_transactions, relaxed);
    global_store_transactions_.fetch_add(delta.global_store_transactions,
                                         relaxed);
    atomic_ops_.fetch_add(delta.atomic_ops, relaxed);
    fences_.fetch_add(delta.fences, relaxed);
    shared_accesses_.fetch_add(delta.shared_accesses, relaxed);
    shuffles_.fetch_add(delta.shuffles, relaxed);
    flops_.fetch_add(delta.flops, relaxed);
    busy_wait_spins_.fetch_add(delta.busy_wait_spins, relaxed);
    l2_read_hits_.fetch_add(delta.l2_read_hits, relaxed);
    l2_read_misses_.fetch_add(delta.l2_read_misses, relaxed);
    l2_write_accesses_.fetch_add(delta.l2_write_accesses, relaxed);
    blocks_executed_.fetch_add(delta.blocks_executed, relaxed);
}

CounterSnapshot
PerfCounters::snapshot() const
{
    const auto relaxed = std::memory_order_relaxed;
    CounterSnapshot s;
    s.global_load_bytes = global_load_bytes_.load(relaxed);
    s.global_store_bytes = global_store_bytes_.load(relaxed);
    s.global_load_transactions = global_load_transactions_.load(relaxed);
    s.global_store_transactions = global_store_transactions_.load(relaxed);
    s.atomic_ops = atomic_ops_.load(relaxed);
    s.fences = fences_.load(relaxed);
    s.shared_accesses = shared_accesses_.load(relaxed);
    s.shuffles = shuffles_.load(relaxed);
    s.flops = flops_.load(relaxed);
    s.busy_wait_spins = busy_wait_spins_.load(relaxed);
    s.l2_read_hits = l2_read_hits_.load(relaxed);
    s.l2_read_misses = l2_read_misses_.load(relaxed);
    s.l2_write_accesses = l2_write_accesses_.load(relaxed);
    s.blocks_executed = blocks_executed_.load(relaxed);
    return s;
}

void
PerfCounters::reset()
{
    const auto relaxed = std::memory_order_relaxed;
    global_load_bytes_.store(0, relaxed);
    global_store_bytes_.store(0, relaxed);
    global_load_transactions_.store(0, relaxed);
    global_store_transactions_.store(0, relaxed);
    atomic_ops_.store(0, relaxed);
    fences_.store(0, relaxed);
    shared_accesses_.store(0, relaxed);
    shuffles_.store(0, relaxed);
    flops_.store(0, relaxed);
    busy_wait_spins_.store(0, relaxed);
    l2_read_hits_.store(0, relaxed);
    l2_read_misses_.store(0, relaxed);
    l2_write_accesses_.store(0, relaxed);
    blocks_executed_.store(0, relaxed);
}

}  // namespace plr::gpusim
