#ifndef PLR_GPUSIM_DEVICE_H_
#define PLR_GPUSIM_DEVICE_H_

/**
 * @file
 * The simulated GPU device and the block-level execution context.
 *
 * Kernels are written as C++ callables invoked once per thread block, in a
 * warp-synchronous style: block-local state lives in plain containers
 * (registers/shared memory), global memory is accessed through the counted
 * BlockContext accessors, and inter-block communication uses device-memory
 * atomics with acquire/release semantics — exactly the toolbox CUDA
 * exposes. Resident blocks execute on real OS threads, so the decoupled
 * look-back protocol (busy-waiting on carry flags) runs under genuine
 * concurrency.
 *
 * A Device may carry a FaultPlan (see fault.h): the accessors then inject
 * deterministic stalls, deferred flag publications, stale flag re-reads and
 * masked torn reads, and launch() shuffles the block order. The spin-wait
 * watchdog is configurable (set_spin_watchdog_limit / $PLR_SPIN_WATCHDOG)
 * and on trip raises a LaunchError carrying a ForensicDump of the protocol
 * state.
 */

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "analysis/launch_analysis.h"
#include "gpusim/device_spec.h"
#include "gpusim/fault.h"
#include "gpusim/l2_cache.h"
#include "gpusim/memory.h"
#include "gpusim/perf_counters.h"

namespace plr::gpusim {

class Device;

/**
 * Internal control-flow exception: the launch is being torn down (a peer
 * failed or the watchdog tripped) and this block must unwind. Thrown only
 * by BlockContext::spin_wait and swallowed by Device::launch — it never
 * reaches kernel callers. Kernel bodies must not catch it.
 */
class KernelAborted {};

/**
 * Per-block execution context handed to kernel bodies.
 *
 * Global-memory accessors count bytes and 32-byte transactions (bulk
 * accessors model perfectly coalesced warps; scalar accessors model a
 * single transaction). On-chip events (shared-memory accesses, shuffles,
 * arithmetic) are counted via the count_* methods since block-local state
 * is held in host containers.
 */
class BlockContext {
  public:
    BlockContext(Device& device, std::size_t block_index);
    ~BlockContext();

    BlockContext(const BlockContext&) = delete;
    BlockContext& operator=(const BlockContext&) = delete;

    /** Index of this block in the launch (scheduling order). */
    std::size_t block_index() const { return block_index_; }

    /** Scalar global load (one 32-byte transaction). */
    template <typename T>
    T
    ld(const Buffer<T>& buf, std::size_t i)
    {
        bounds_check(buf, i, 1);
        fault_before_global_op();
        note_global_access(addr_of(buf, i), sizeof(T), /*is_read=*/true,
                           /*scalar=*/true);
        if (analysis_ != nullptr)
            analysis_read(buf.alloc_id, i * sizeof(T), sizeof(T));
        T value = pool().data(buf)[i];
        if (fault_torn_read()) {
            // The torn value is detected by the memory interface's verify
            // re-read and discarded; the kernel sees the intact word.
            value = pool().data(buf)[i];
        }
        return value;
    }

    /** Scalar global store (one 32-byte transaction). */
    template <typename T>
    void
    st(const Buffer<T>& buf, std::size_t i, T value)
    {
        bounds_check(buf, i, 1);
        fault_before_global_op();
        note_global_access(addr_of(buf, i), sizeof(T), /*is_read=*/false,
                           /*scalar=*/true);
        if (analysis_ != nullptr)
            analysis_write(buf.alloc_id, i * sizeof(T), sizeof(T));
        fault_sdc_store(addr_of(buf, i), &value);
        pool().data(buf)[i] = value;
    }

    /**
     * Single-element load that is part of a warp-coalesced pattern
     * (neighboring lanes read neighboring elements, e.g. correction-
     * factor fetches indexed by the element offset): counts only the
     * element's bytes rather than a full 32-byte sector per lane.
     */
    template <typename T>
    T
    ld_coalesced(const Buffer<T>& buf, std::size_t i)
    {
        bounds_check(buf, i, 1);
        fault_before_global_op();
        local_.global_load_bytes += sizeof(T);
        if (++coalesced_residual_ * sizeof(T) >= 32) {
            coalesced_residual_ = 0;
            ++local_.global_load_transactions;
        }
        if (L2Cache* l2 = device_l2()) {
            const auto result =
                l2->access(addr_of(buf, i), sizeof(T), /*is_read=*/true);
            local_.l2_read_hits += result.hits;
            local_.l2_read_misses += result.misses;
        }
        if (analysis_ != nullptr)
            analysis_read(buf.alloc_id, i * sizeof(T), sizeof(T));
        return pool().data(buf)[i];
    }

    /** Store counterpart of ld_coalesced. */
    template <typename T>
    void
    st_coalesced(const Buffer<T>& buf, std::size_t i, T value)
    {
        bounds_check(buf, i, 1);
        fault_before_global_op();
        local_.global_store_bytes += sizeof(T);
        if (++coalesced_residual_ * sizeof(T) >= 32) {
            coalesced_residual_ = 0;
            ++local_.global_store_transactions;
        }
        if (L2Cache* l2 = device_l2()) {
            const auto result =
                l2->access(addr_of(buf, i), sizeof(T), /*is_read=*/false);
            local_.l2_write_accesses += result.hits + result.misses;
        }
        if (analysis_ != nullptr)
            analysis_write(buf.alloc_id, i * sizeof(T), sizeof(T));
        fault_sdc_store(addr_of(buf, i), &value);
        pool().data(buf)[i] = value;
    }

    /** Coalesced global load of a contiguous range. */
    template <typename T>
    void
    ld_bulk(const Buffer<T>& buf, std::size_t first, std::span<T> out)
    {
        if (out.empty())
            return;
        bounds_check(buf, first, out.size());
        fault_before_global_op();
        note_global_access(addr_of(buf, first), out.size() * sizeof(T),
                           /*is_read=*/true, /*scalar=*/false);
        if (analysis_ != nullptr)
            analysis_read(buf.alloc_id, first * sizeof(T),
                          out.size() * sizeof(T));
        const T* src = pool().data(buf) + first;
        std::copy(src, src + out.size(), out.begin());
    }

    /** Coalesced global store of a contiguous range. */
    template <typename T>
    void
    st_bulk(const Buffer<T>& buf, std::size_t first, std::span<const T> in)
    {
        if (in.empty())
            return;
        bounds_check(buf, first, in.size());
        fault_before_global_op();
        note_global_access(addr_of(buf, first), in.size() * sizeof(T),
                           /*is_read=*/false, /*scalar=*/false);
        if (analysis_ != nullptr)
            analysis_write(buf.alloc_id, first * sizeof(T),
                           in.size() * sizeof(T));
        T* dst = pool().data(buf) + first;
        std::copy(in.begin(), in.end(), dst);
        if (fault_.active()) {
            for (std::size_t j = 0; j < in.size(); ++j)
                fault_sdc_store(addr_of(buf, first + j), dst + j);
        }
    }

    /** Atomic fetch-add on a device word (returns the old value). */
    std::uint32_t atomic_add(const Buffer<std::uint32_t>& buf, std::size_t i,
                             std::uint32_t value);

    /** Atomic load with acquire ordering (flag polling). */
    std::uint32_t ld_acquire(const Buffer<std::uint32_t>& buf, std::size_t i);

    /** Atomic store with release ordering (flag publication). */
    void st_release(const Buffer<std::uint32_t>& buf, std::size_t i,
                    std::uint32_t value);

    /** __threadfence() equivalent. */
    void threadfence();

    /**
     * One busy-wait iteration: yields the CPU, counts the spin, aborts the
     * kernel if another block failed or the deadlock watchdog trips (the
     * latter records a forensic trip that Device::launch turns into a
     * LaunchError with a full ForensicDump).
     */
    void spin_wait();

    /**
     * Reserve @p bytes of the block's shared memory. Panics when the
     * block exceeds the per-block capacity (48 kB on the Titan X) — the
     * budget a real kernel launch would fail against. Released when the
     * block finishes.
     */
    void alloc_shared(std::size_t bytes);

    /** Shared-memory bytes reserved by this block so far. */
    std::size_t shared_bytes_used() const { return shared_bytes_used_; }

    /** Account shared-memory accesses. */
    void count_shared(std::uint64_t n = 1) { local_.shared_accesses += n; }

    /** Account warp shuffle operations. */
    void count_shuffle(std::uint64_t n = 1) { local_.shuffles += n; }

    /** Account arithmetic operations (multiply-add counts as one). */
    void count_flop(std::uint64_t n = 1) { local_.flops += n; }

    /** Raw counter access for kernel-specific bookkeeping. */
    CounterSnapshot& local_counters() { return local_; }

    // ---- protocol progress notes (watchdog forensics) -------------------

    /** Record the chunk this block is currently processing. */
    void note_chunk(std::size_t chunk) { progress_chunk_ = chunk; }

    /** Record that the block is waiting on @p chunk at @p site (static). */
    void
    note_wait(std::size_t chunk, const char* site)
    {
        waiting_on_ = chunk;
        wait_site_ = site;
    }

    /**
     * Record that the current wait resolved: clears the wait note and
     * resets the watchdog's spin counter (the watchdog bounds spins per
     * wait episode, not per block lifetime).
     */
    void
    note_progress()
    {
        waiting_on_ = BlockForensics::kNone;
        wait_site_ = nullptr;
        spin_count_ = 0;
    }

    /**
     * Record the protocol site of subsequent accesses ("publish-local",
     * "look-back", ...) for race-report provenance. @p site must be a
     * static string; nullptr clears the note (the analysis then falls back
     * to the current wait site).
     */
    void
    note_site(const char* site)
    {
        analysis_site_ = site;
        sdc_site_ = classify_sdc_site(site);
    }

  private:
    template <typename T>
    std::uint64_t
    addr_of(const Buffer<T>& buf, std::size_t i) const
    {
        return pool_base(buf) + i * sizeof(T);
    }

    /** SDC-targeting class of the current note_site provenance. */
    static SdcSite
    classify_sdc_site(const char* site)
    {
        if (site == nullptr)
            return SdcSite::kInterior;
        if (std::strcmp(site, "publish-local") == 0)
            return SdcSite::kLocalCarry;
        if (std::strcmp(site, "publish-global") == 0)
            return SdcSite::kGlobalCarry;
        return SdcSite::kInterior;
    }

    /**
     * SDC hook for payload stores: flips seed-selected bits of the word
     * being written at @p addr (docs/FAULTS.md). Flag publications
     * (st_release), the chunk counter (atomic_add) and host uploads never
     * route through here, so the protocol's control words stay intact by
     * construction — only data can be corrupted.
     */
    template <typename T>
    void
    fault_sdc_store(std::uint64_t addr, T* word)
    {
        static_assert(sizeof(T) <= sizeof(std::uint64_t));
        if (!fault_.active())
            return;
        const std::uint64_t mask =
            fault_.next_store_flip(addr, sizeof(T) * 8, sdc_site_);
        if (mask == 0)
            return;
        std::uint64_t bits = 0;
        std::memcpy(&bits, word, sizeof(T));
        bits ^= mask;
        std::memcpy(word, &bits, sizeof(T));
    }

    template <typename T>
    void
    bounds_check(const Buffer<T>& buf, std::size_t first,
                 std::size_t count) const
    {
        PLR_ASSERT(buf.valid(), "access through an invalid buffer handle");
        PLR_ASSERT(first + count <= buf.count,
                   "device access out of bounds: [" << first << ", "
                       << first + count << ") of " << buf.count);
    }

    template <typename T>
    std::uint64_t pool_base(const Buffer<T>& buf) const;

    MemoryPool& pool();
    const MemoryPool& pool() const;

    void note_global_access(std::uint64_t addr, std::size_t bytes,
                            bool is_read, bool scalar);

    L2Cache* device_l2();

    /** Fault hook run before every global-memory op: ticks deferred flag
        publications and possibly injects a stall. No-op without faults. */
    void fault_before_global_op();

    /** True when the current scalar load should be modeled as torn. */
    bool fault_torn_read();

    /** Advance deferred st_release publications; flush those that expired
        (in program order). */
    void tick_pending_releases();

    /** Publish every still-deferred st_release immediately. */
    void flush_pending_releases();

    // Race-detector hooks (no-ops unless the launch is analyzed; the
    // templates guard on analysis_ so the common path stays branch-cheap).
    analysis::AccessContext analysis_ctx() const;
    void analysis_read(std::size_t alloc_id, std::uint64_t offset,
                       std::size_t bytes);
    void analysis_write(std::size_t alloc_id, std::uint64_t offset,
                        std::size_t bytes);

    struct PendingRelease {
        std::uint32_t* addr;
        std::uint32_t value;
        std::uint32_t remaining;
    };

    Device& device_;
    std::size_t block_index_;
    CounterSnapshot local_;
    std::uint64_t spin_count_ = 0;
    std::uint64_t coalesced_residual_ = 0;
    std::size_t shared_bytes_used_ = 0;
    BlockFaultStream fault_;
    std::vector<PendingRelease> pending_releases_;
    std::size_t progress_chunk_ = BlockForensics::kNone;
    std::size_t waiting_on_ = BlockForensics::kNone;
    const char* wait_site_ = nullptr;
    analysis::LaunchAnalysis* analysis_ = nullptr;
    const char* analysis_site_ = nullptr;
    SdcSite sdc_site_ = SdcSite::kInterior;
};

/** The simulated GPU. */
class Device {
  public:
    /**
     * @param spec hardware description (defaults to the paper's Titan X)
     * @param model_l2 enable the per-access L2 cache model (slower; used
     *        by cache-accuracy tests and Table-3 validation)
     */
    explicit Device(DeviceSpec spec = titan_x(), bool model_l2 = false);

    const DeviceSpec& spec() const { return spec_; }
    MemoryPool& memory() { return pool_; }
    const MemoryPool& memory() const { return pool_; }
    PerfCounters& counters() { return counters_; }
    L2Cache* l2() { return l2_enabled_ ? &l2_ : nullptr; }

    /**
     * Attach (or with nullptr, detach) a fault plan. Takes effect for
     * subsequent launches; shared so callers can inspect stats afterwards.
     */
    void set_fault_plan(std::shared_ptr<FaultPlan> plan);

    /** The active fault plan, or nullptr. */
    const FaultPlan* fault_plan() const { return fault_plan_.get(); }

    /**
     * Set the deadlock-watchdog spin limit (spins per wait episode before
     * the launch is declared wedged). 0 restores the default, which is
     * $PLR_SPIN_WATCHDOG when set and 200'000'000 otherwise.
     */
    void set_spin_watchdog_limit(std::uint64_t limit);

    /** The active watchdog limit. */
    std::uint64_t spin_watchdog_limit() const { return spin_watchdog_limit_; }

    /**
     * Arm the kernels' ABFT integrity instrumentation for subsequent
     * launches: carry checksums are published alongside look-back state
     * and validated before merging, and per-chunk output checksums are
     * recorded for the host verify pass (src/kernels/verify.h,
     * docs/FAULTS.md). Off by default so counter budgets and bench
     * baselines see the unchanged memory traffic.
     */
    void set_integrity(bool armed) { integrity_ = armed; }

    /** Whether the ABFT integrity instrumentation is armed. */
    bool integrity() const { return integrity_; }

    /**
     * Register a forensic source: a callback snapshotting one look-back
     * protocol instance, invoked by the watchdog after launch threads are
     * joined. Returns an id for unregister_forensic_source. Prefer the
     * ForensicSourceGuard RAII wrapper.
     */
    std::size_t
    register_forensic_source(std::function<ProtocolForensics()> source);

    /** Remove a previously registered forensic source (idempotent). */
    void unregister_forensic_source(std::size_t id);

    // ---- happens-before analysis (docs/ANALYSIS.md) ---------------------

    /**
     * Enable the race detector / invariant checker for subsequent
     * launches. Also enabled at construction when $PLR_RACE_DETECT is set
     * to anything but "0".
     */
    void enable_analysis(analysis::AnalysisConfig config = {});

    /** Disable the analysis and drop the last report. */
    void disable_analysis();

    bool analysis_enabled() const { return analysis_config_.has_value(); }

    /**
     * Report of the most recent analyzed launch (violations and all), or
     * nullptr when no analyzed launch has run. Useful with
     * AnalysisConfig::fail_on_violation = false.
     */
    const analysis::RaceReport* last_analysis_report() const;

    /**
     * Describe a look-back protocol instance to the invariant checker.
     * Returns an id for unregister_protocol; prefer the ProtocolGuard
     * RAII wrapper. Registration is only consulted at launch time.
     */
    std::size_t register_protocol(analysis::ProtocolSpec spec);

    /** Remove a registered protocol description (idempotent). */
    void unregister_protocol(std::size_t id);

    /** Allocate a zero-initialized device buffer. */
    template <typename T>
    Buffer<T>
    alloc(std::size_t count, const std::string& label)
    {
        return pool_.alloc<T>(count, label);
    }

    /** Host-to-device copy (not counted; the paper excludes transfers). */
    template <typename T>
    void
    upload(const Buffer<T>& buf, std::span<const T> host)
    {
        PLR_REQUIRE(host.size() <= buf.count, "upload overflows buffer");
        std::copy(host.begin(), host.end(), pool_.data(buf));
    }

    /** Device-to-host copy (not counted). */
    template <typename T>
    std::vector<T>
    download(const Buffer<T>& buf)
    {
        const T* src = pool_.data(buf);
        return std::vector<T>(src, src + buf.count);
    }

    /**
     * Launch @p num_blocks blocks running @p body. At most
     * min(spec().max_resident_blocks(), @p max_resident) blocks are
     * resident at once (0 = hardware limit), matching the wave scheduling
     * of a real GPU: blocks are assigned to free slots in index order
     * (or in the fault plan's shuffled order when one is attached).
     *
     * On a watchdog trip, throws LaunchError carrying a ForensicDump; a
     * kernel exception from one block aborts the peers and is rethrown
     * (first failure wins, deterministically).
     */
    void launch(std::size_t num_blocks,
                const std::function<void(BlockContext&)>& body,
                std::size_t max_resident = 0);

    /** Zero the performance counters and clear the L2 model. */
    void reset_counters();

    /** Snapshot of the performance counters. */
    CounterSnapshot snapshot() const { return counters_.snapshot(); }

  private:
    friend class BlockContext;

    struct WatchdogTrip {
        std::size_t block_index;
        std::uint64_t spins;
        std::size_t chunk;
        std::size_t waiting_on;
        const char* wait_site;
    };

    /** Build the forensic snapshot; callers must have joined all workers. */
    ForensicDump build_forensic_dump(const std::string& reason);

    DeviceSpec spec_;
    MemoryPool pool_;
    PerfCounters counters_;
    L2Cache l2_;
    bool l2_enabled_;
    std::atomic<bool> failed_{false};
    std::shared_ptr<FaultPlan> fault_plan_;
    std::uint64_t spin_watchdog_limit_;
    bool integrity_ = false;

    std::optional<WatchdogTrip> watchdog_trip_;  // written by the CAS winner

    std::mutex forensic_mutex_;
    std::vector<std::pair<std::size_t, std::function<ProtocolForensics()>>>
        forensic_sources_;
    std::size_t next_forensic_id_ = 0;
    std::vector<BlockForensics> failed_block_states_;

    std::optional<analysis::AnalysisConfig> analysis_config_;
    std::unique_ptr<analysis::LaunchAnalysis> launch_analysis_;
    std::vector<std::pair<std::size_t, analysis::ProtocolSpec>> protocols_;
    std::size_t next_protocol_id_ = 0;
};

/**
 * RAII registration of a look-back protocol description with a Device,
 * mirroring ForensicSourceGuard: construct after allocating the protocol's
 * flag/state buffers, destroy before freeing them.
 */
class ProtocolGuard {
  public:
    ProtocolGuard(Device& device, analysis::ProtocolSpec spec);
    ~ProtocolGuard();

    ProtocolGuard(const ProtocolGuard&) = delete;
    ProtocolGuard& operator=(const ProtocolGuard&) = delete;

  private:
    Device& device_;
    std::size_t id_;
};

template <typename T>
std::uint64_t
BlockContext::pool_base(const Buffer<T>& buf) const
{
    return device_.pool_.base_addr(buf);
}

inline MemoryPool&
BlockContext::pool()
{
    return device_.pool_;
}

inline L2Cache*
BlockContext::device_l2()
{
    return device_.l2();
}

inline const MemoryPool&
BlockContext::pool() const
{
    return device_.pool_;
}

inline void
BlockContext::fault_before_global_op()
{
    if (!fault_.active())
        return;
    if (!pending_releases_.empty())
        tick_pending_releases();
    if (const std::uint32_t yields = fault_.next_stall_yields()) {
        for (std::uint32_t y = 0; y < yields; ++y)
            std::this_thread::yield();
    }
}

inline bool
BlockContext::fault_torn_read()
{
    return fault_.active() && fault_.next_torn_read();
}

}  // namespace plr::gpusim

#endif  // PLR_GPUSIM_DEVICE_H_
