#ifndef PLR_GPUSIM_L2_CACHE_H_
#define PLR_GPUSIM_L2_CACHE_H_

/**
 * @file
 * Set-associative L2 cache model.
 *
 * The paper measures L2 read misses with nvprof at 32-byte block
 * granularity (Table 3). This model reproduces those counts for simulated
 * runs: a physically-indexed, LRU, write-allocate cache tracking only tags.
 * It is enabled on demand (it costs time per access), used by the cache
 * tests and by the Table-3 validation at small input sizes; the table
 * itself is produced from closed-form traffic audits validated against
 * this model.
 */

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace plr::gpusim {

/** Result of a cache access batch. */
struct CacheAccessResult {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/** Tag-only set-associative LRU cache. */
class L2Cache {
  public:
    /**
     * @param capacity_bytes total cache capacity
     * @param line_bytes cache line (sector) size; the paper's metric uses 32
     * @param ways associativity
     */
    L2Cache(std::size_t capacity_bytes, std::size_t line_bytes,
            std::size_t ways);

    /** Touch the lines covering [addr, addr+bytes); returns hit/miss split. */
    CacheAccessResult access(std::uint64_t addr, std::size_t bytes,
                             bool is_read);

    /** Invalidate all lines. */
    void clear();

    std::size_t capacity_bytes() const { return num_sets_ * ways_ * line_bytes_; }
    std::size_t line_bytes() const { return line_bytes_; }

    /** Cumulative statistics since construction / clear(). */
    std::uint64_t total_read_hits() const { return read_hits_; }
    std::uint64_t total_read_misses() const { return read_misses_; }
    std::uint64_t total_write_accesses() const { return write_accesses_; }

  private:
    struct Line {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint64_t lru_stamp = 0;
        bool valid = false;
    };

    bool touch_line(std::uint64_t line_addr, bool is_read);

    std::size_t line_bytes_;
    std::size_t ways_;
    std::size_t num_sets_;
    std::vector<Line> lines_;  // num_sets_ * ways_, set-major
    std::uint64_t stamp_ = 0;
    std::uint64_t read_hits_ = 0;
    std::uint64_t read_misses_ = 0;
    std::uint64_t write_accesses_ = 0;
    std::mutex mutex_;
};

}  // namespace plr::gpusim

#endif  // PLR_GPUSIM_L2_CACHE_H_
