#include "gpusim/fault.h"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <sstream>

#include "gpusim/device.h"

namespace plr::gpusim {

namespace {

/** splitmix64 step — the same mixer rng.h uses for seeding. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Map a u64 to [0, 1). */
double
to_unit(std::uint64_t x)
{
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

FaultConfig
with_default_sdc(FaultConfig base)
{
    base.sdc_carry_flip_probability = 0.02;
    base.sdc_interior_flip_probability = 0.0005;
    base.sdc_max_flip_bits = 2;
    return base;
}

// ------------------------------------------------------------- FaultPlan

FaultPlan::FaultPlan(std::uint64_t seed, FaultConfig config)
    : seed_(seed), config_(config)
{
}

std::vector<std::size_t>
FaultPlan::launch_order(std::size_t num_blocks) const
{
    std::vector<std::size_t> order(num_blocks);
    for (std::size_t i = 0; i < num_blocks; ++i)
        order[i] = i;
    if (!config_.shuffle_launch_order)
        return order;
    Rng rng(mix64(seed_ ^ 0x6c61756e6368ull));  // "launch"
    for (std::size_t i = num_blocks; i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(order[i - 1], order[j]);
    }
    return order;
}

bool
FaultPlan::coin(std::uint64_t salt, std::uint64_t index,
                double probability) const
{
    const std::uint64_t h = mix64(mix64(seed_ ^ salt) ^ index);
    return to_unit(h) < probability;
}

FaultStats
FaultPlan::stats() const
{
    FaultStats s;
    s.stalls = stalls_.load(std::memory_order_relaxed);
    s.stall_yields = stall_yields_.load(std::memory_order_relaxed);
    s.stale_flag_reads = stale_flag_reads_.load(std::memory_order_relaxed);
    s.torn_reads = torn_reads_.load(std::memory_order_relaxed);
    s.deferred_publishes = deferred_publishes_.load(std::memory_order_relaxed);
    s.dropped_publishes = dropped_publishes_.load(std::memory_order_relaxed);
    s.sdc_local_carry_flips =
        sdc_local_carry_flips_.load(std::memory_order_relaxed);
    s.sdc_global_carry_flips =
        sdc_global_carry_flips_.load(std::memory_order_relaxed);
    s.sdc_interior_flips = sdc_interior_flips_.load(std::memory_order_relaxed);
    s.sdc_bits_flipped = sdc_bits_flipped_.load(std::memory_order_relaxed);
    return s;
}

std::uint64_t
FaultPlan::sdc_store_mask(std::uint64_t word_addr, std::size_t word_bits,
                          SdcSite site)
{
    const double p = site == SdcSite::kInterior
                         ? config_.sdc_interior_flip_probability
                         : config_.sdc_carry_flip_probability;
    if (p <= 0.0 || word_bits == 0)
        return 0;
    // Keyed on (seed, round, address): the same word flips under the same
    // seed no matter which block stores it or when, so a one-line
    // reproducer replays the exact corruption; a bumped sdc_round re-rolls
    // every decision for relaunch-retry semantics.
    const std::uint64_t h = mix64(
        mix64(seed_ ^ (0x5dc0000000000000ull + config_.sdc_round)) ^
        word_addr);
    if (to_unit(h) >= p)
        return 0;
    std::uint64_t g = h;
    const std::uint32_t max_bits = std::max(config_.sdc_max_flip_bits, 1u);
    const std::uint32_t flips =
        1 + static_cast<std::uint32_t>(mix64(g) % max_bits);
    std::uint64_t mask = 0;
    for (std::uint32_t f = 0; f < flips; ++f) {
        g = mix64(g + f);
        mask |= 1ull << (g % word_bits);
    }
    switch (site) {
        case SdcSite::kLocalCarry:
            sdc_local_carry_flips_.fetch_add(1, std::memory_order_relaxed);
            break;
        case SdcSite::kGlobalCarry:
            sdc_global_carry_flips_.fetch_add(1, std::memory_order_relaxed);
            break;
        case SdcSite::kInterior:
            sdc_interior_flips_.fetch_add(1, std::memory_order_relaxed);
            break;
    }
    sdc_bits_flipped_.fetch_add(std::popcount(mask),
                                std::memory_order_relaxed);
    return mask;
}

// ------------------------------------------------------ BlockFaultStream

BlockFaultStream::BlockFaultStream(FaultPlan* plan, std::size_t block_index)
    : plan_(plan), rng_(mix64(plan->seed_ ^ (0xb10c000000000000ull + block_index)))
{
}

std::uint32_t
BlockFaultStream::next_stall_yields()
{
    const FaultConfig& cfg = plan_->config_;
    if (cfg.stall_probability <= 0.0 || cfg.max_stall_yields == 0)
        return 0;
    if (rng_.uniform_double() >= cfg.stall_probability)
        return 0;
    const std::uint32_t yields = static_cast<std::uint32_t>(
        rng_.uniform_int(1, cfg.max_stall_yields));
    plan_->stalls_.fetch_add(1, std::memory_order_relaxed);
    plan_->stall_yields_.fetch_add(yields, std::memory_order_relaxed);
    return yields;
}

bool
BlockFaultStream::next_stale_flag_read()
{
    const FaultConfig& cfg = plan_->config_;
    if (cfg.stale_flag_probability <= 0.0)
        return false;
    if (consecutive_stale_ >= cfg.max_consecutive_stale ||
        rng_.uniform_double() >= cfg.stale_flag_probability) {
        consecutive_stale_ = 0;
        return false;
    }
    ++consecutive_stale_;
    plan_->stale_flag_reads_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
BlockFaultStream::next_torn_read()
{
    const FaultConfig& cfg = plan_->config_;
    if (cfg.torn_read_probability <= 0.0 ||
        rng_.uniform_double() >= cfg.torn_read_probability)
        return false;
    plan_->torn_reads_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
BlockFaultStream::next_store_flip(std::uint64_t word_addr,
                                  std::size_t word_bits, SdcSite site)
{
    if (!plan_->config_.sdc_enabled())
        return 0;
    return plan_->sdc_store_mask(word_addr, word_bits, site);
}

BlockFaultStream::PublishFate
BlockFaultStream::next_publish_fate(std::uint32_t* delay)
{
    const FaultConfig& cfg = plan_->config_;
    if (cfg.drop_publish_probability > 0.0 &&
        rng_.uniform_double() < cfg.drop_publish_probability) {
        plan_->dropped_publishes_.fetch_add(1, std::memory_order_relaxed);
        return PublishFate::kDropped;
    }
    if (cfg.max_publish_delay == 0)
        return PublishFate::kImmediate;
    const std::uint32_t d = static_cast<std::uint32_t>(
        rng_.uniform_int(0, cfg.max_publish_delay));
    if (d == 0)
        return PublishFate::kImmediate;
    *delay = d;
    plan_->deferred_publishes_.fetch_add(1, std::memory_order_relaxed);
    return PublishFate::kDeferred;
}

// ----------------------------------------------------------- Forensics

std::size_t
ProtocolForensics::first_stalled_chunk() const
{
    for (std::size_t q = 0; q < num_chunks; ++q) {
        if (global_flags[q] == 0)
            return q;
    }
    return BlockForensics::kNone;
}

std::size_t
ForensicDump::suspect_chunk() const
{
    // The culprit is the lowest chunk whose global (inclusive) state never
    // appeared and that no live block is still working on: a live owner
    // would make the chunk a victim (it is waiting on someone else), but a
    // chunk with no owner and no publication died without publishing —
    // exactly the protocol break that wedges every successor.
    std::vector<std::size_t> live;
    for (const BlockForensics& b : blocks) {
        if (b.chunk != BlockForensics::kNone)
            live.push_back(b.chunk);
    }
    std::size_t best = BlockForensics::kNone;
    for (const ProtocolForensics& p : protocols) {
        for (std::size_t q = 0; q < p.num_chunks; ++q) {
            if (p.global_flags[q] != 0)
                continue;
            if (std::find(live.begin(), live.end(), q) != live.end())
                continue;
            if (best == BlockForensics::kNone || q < best)
                best = q;
            break;  // only the first unresolved chunk of each protocol
        }
    }
    return best;
}

namespace {

void
format_flag_map(std::ostringstream& out, const char* name,
                const std::vector<std::uint32_t>& flags)
{
    constexpr std::size_t kMaxShown = 128;
    out << "    " << name << ": ";
    const std::size_t shown = std::min(flags.size(), kMaxShown);
    for (std::size_t q = 0; q < shown; ++q)
        out << (flags[q] != 0 ? '1' : '0');
    if (flags.size() > shown)
        out << "... (" << flags.size() - shown << " more)";
    out << "\n";
}

std::string
chunk_name(std::size_t chunk)
{
    if (chunk == BlockForensics::kNone)
        return "-";
    return std::to_string(chunk);
}

}  // namespace

std::string
ForensicDump::format() const
{
    std::ostringstream out;
    out << "=== plr forensic dump ===\n";
    out << "reason: " << reason << "\n";
    out << "spin watchdog limit: " << spin_limit << "\n";
    if (faults_active) {
        out << "fault seed: " << fault_seed
            << " (stalls=" << fault_stats.stalls
            << " stale_flag_reads=" << fault_stats.stale_flag_reads
            << " torn_reads=" << fault_stats.torn_reads
            << " deferred_publishes=" << fault_stats.deferred_publishes
            << " dropped_publishes=" << fault_stats.dropped_publishes
            << " sdc_flips=" << fault_stats.sdc_flips()
            << " sdc_bits_flipped=" << fault_stats.sdc_bits_flipped
            << ")\n";
    } else {
        out << "fault injection: off\n";
    }
    out << "blocks in flight: " << blocks.size() << "\n";
    for (const BlockForensics& b : blocks) {
        out << "  block " << b.block_index << ": chunk "
            << chunk_name(b.chunk) << ", waiting on chunk "
            << chunk_name(b.waiting_on);
        if (!b.wait_site.empty())
            out << " at " << b.wait_site;
        out << ", " << b.spins << " spins\n";
    }
    for (const ProtocolForensics& p : protocols) {
        out << "  protocol '" << p.label << "': " << p.num_chunks
            << " chunks, width " << p.width << "\n";
        format_flag_map(out, "local  flags", p.local_flags);
        format_flag_map(out, "global flags", p.global_flags);
        const std::size_t stalled = p.first_stalled_chunk();
        if (stalled != BlockForensics::kNone) {
            out << "    first unresolved chunk: " << stalled;
            if (stalled < p.local_flags.size() &&
                p.local_flags[stalled] != 0) {
                out << " (local published, global missing); local carry =";
                out << std::setprecision(17);
                for (std::size_t w = 0; w < p.width; ++w)
                    out << " " << p.local_state[stalled * p.width + w];
            } else {
                out << " (neither local nor global carry ever published)";
            }
            out << "\n";
        }
    }
    const std::size_t suspect = suspect_chunk();
    if (suspect != BlockForensics::kNone) {
        out << "suspect chunk: " << suspect
            << " (its global carry never appeared and no live block owns "
               "it)\n";
    }
    out << "=========================";
    return out.str();
}

// ---------------------------------------------------------- LaunchError

LaunchError::LaunchError(const std::string& what, ForensicDump dump)
    : PanicError(what), dump_(std::move(dump))
{
}

// -------------------------------------------------- ForensicSourceGuard

ForensicSourceGuard::ForensicSourceGuard(
    Device& device, std::function<ProtocolForensics()> source)
    : device_(device),
      id_(device.register_forensic_source(std::move(source)))
{
}

ForensicSourceGuard::~ForensicSourceGuard()
{
    device_.unregister_forensic_source(id_);
}

}  // namespace plr::gpusim
