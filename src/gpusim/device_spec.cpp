#include "gpusim/device_spec.h"

namespace plr::gpusim {

DeviceSpec
titan_x()
{
    DeviceSpec spec;
    spec.name = "GeForce GTX Titan X (Maxwell)";
    // All values from Section 5 of the paper.
    spec.num_sms = 24;
    spec.cores_per_sm = 128;
    spec.core_clock_ghz = 1.1;
    spec.warp_size = 32;
    spec.max_block_threads = 1024;
    spec.max_threads = 49152;
    spec.shared_mem_per_sm = 96 * 1024;
    spec.shared_mem_per_block = 48 * 1024;
    spec.registers_per_sm = 65536;
    spec.l2_bytes = 2 * 1024 * 1024;
    spec.l2_line_bytes = 32;
    spec.l2_ways = 16;
    spec.dram_bandwidth_gbps = 336.0;
    spec.dram_clock_ghz = 3.5;
    spec.dram_bytes = std::size_t{12} * 1024 * 1024 * 1024;
    return spec;
}

DeviceSpec
serialized(DeviceSpec base)
{
    base.name += " [serialized]";
    // max_resident_blocks() = max_threads / max_block_threads == 1.
    base.max_threads = base.max_block_threads;
    return base;
}

}  // namespace plr::gpusim
