#ifndef PLR_GPUSIM_MEMORY_H_
#define PLR_GPUSIM_MEMORY_H_

/**
 * @file
 * Simulated device (global) memory.
 *
 * Allocations receive stable virtual base addresses so the L2 model can
 * index them, and every allocation is recorded in a ledger that backs the
 * Table-2 memory-usage accounting.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/diag.h"

namespace plr::gpusim {

/** Typed handle to a device allocation. */
template <typename T>
struct Buffer {
    std::size_t alloc_id = static_cast<std::size_t>(-1);
    std::size_t count = 0;

    bool valid() const { return alloc_id != static_cast<std::size_t>(-1); }
    std::size_t bytes() const { return count * sizeof(T); }
};

/** One entry of the allocation ledger. */
struct AllocationRecord {
    std::string label;
    std::size_t bytes = 0;
    std::uint64_t base_addr = 0;
    bool freed = false;
};

/** Simulated global-memory pool with an allocation ledger. */
class MemoryPool {
  public:
    /** @param capacity_bytes device memory size (allocation-failure model) */
    explicit MemoryPool(std::size_t capacity_bytes);

    /** Allocate @p count elements of T, zero-initialized. */
    template <typename T>
    Buffer<T>
    alloc(std::size_t count, const std::string& label)
    {
        Buffer<T> buffer;
        buffer.alloc_id = alloc_raw(count * sizeof(T), label);
        buffer.count = count;
        return buffer;
    }

    /** Release an allocation (ledger keeps the record, marked freed). */
    template <typename T>
    void
    free(const Buffer<T>& buffer)
    {
        free_raw(buffer.alloc_id);
    }

    /** Ledger record behind a buffer (label, size; forensic dumps). */
    template <typename T>
    const AllocationRecord&
    record_for(const Buffer<T>& buffer) const
    {
        return record(buffer.alloc_id);
    }

    /** Host pointer to the backing storage. */
    template <typename T>
    T*
    data(const Buffer<T>& buffer)
    {
        return reinterpret_cast<T*>(raw_data(buffer.alloc_id));
    }

    template <typename T>
    const T*
    data(const Buffer<T>& buffer) const
    {
        return reinterpret_cast<const T*>(raw_data(buffer.alloc_id));
    }

    /** Virtual device address of element 0 of the allocation. */
    template <typename T>
    std::uint64_t
    base_addr(const Buffer<T>& buffer) const
    {
        return record(buffer.alloc_id).base_addr;
    }

    /** Bytes currently allocated (not freed). */
    std::size_t live_bytes() const { return live_bytes_; }

    /** High-water mark of live_bytes(). */
    std::size_t peak_bytes() const { return peak_bytes_; }

    /** Full allocation history. */
    const std::vector<AllocationRecord>& ledger() const { return records_; }

  private:
    std::size_t alloc_raw(std::size_t bytes, const std::string& label);
    void free_raw(std::size_t alloc_id);
    std::byte* raw_data(std::size_t alloc_id);
    const std::byte* raw_data(std::size_t alloc_id) const;
    const AllocationRecord& record(std::size_t alloc_id) const;

    std::size_t capacity_bytes_;
    std::size_t live_bytes_ = 0;
    std::size_t peak_bytes_ = 0;
    std::uint64_t next_base_addr_ = 0x1000;  // leave page 0 unmapped
    std::vector<AllocationRecord> records_;
    std::vector<std::unique_ptr<std::byte[]>> storage_;
};

}  // namespace plr::gpusim

#endif  // PLR_GPUSIM_MEMORY_H_
