#include "gpusim/l2_cache.h"

#include "util/diag.h"

namespace plr::gpusim {

L2Cache::L2Cache(std::size_t capacity_bytes, std::size_t line_bytes,
                 std::size_t ways)
    : line_bytes_(line_bytes), ways_(ways)
{
    PLR_REQUIRE(line_bytes >= 1 && (line_bytes & (line_bytes - 1)) == 0,
                "cache line size must be a power of two");
    PLR_REQUIRE(ways >= 1, "cache must have at least one way");
    PLR_REQUIRE(capacity_bytes >= line_bytes * ways,
                "cache capacity below one set");
    num_sets_ = capacity_bytes / (line_bytes * ways);
    PLR_REQUIRE(num_sets_ >= 1, "cache must have at least one set");
    lines_.assign(num_sets_ * ways_, Line{});
}

bool
L2Cache::touch_line(std::uint64_t line_addr, bool is_read)
{
    const std::uint64_t set = line_addr % num_sets_;
    const std::uint64_t tag = line_addr / num_sets_;
    Line* set_lines = &lines_[set * ways_];
    ++stamp_;

    // Hit path.
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set_lines[w].valid && set_lines[w].tag == tag) {
            set_lines[w].lru_stamp = stamp_;
            return true;
        }
    }

    // Miss: fill the LRU way (write-allocate).
    std::size_t victim = 0;
    for (std::size_t w = 1; w < ways_; ++w) {
        if (!set_lines[w].valid) {
            victim = w;
            break;
        }
        if (set_lines[w].lru_stamp < set_lines[victim].lru_stamp &&
            set_lines[victim].valid)
            victim = w;
    }
    set_lines[victim] = Line{tag, stamp_, true};
    (void)is_read;
    return false;
}

CacheAccessResult
L2Cache::access(std::uint64_t addr, std::size_t bytes, bool is_read)
{
    CacheAccessResult result;
    if (bytes == 0)
        return result;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t first = addr / line_bytes_;
    const std::uint64_t last = (addr + bytes - 1) / line_bytes_;
    for (std::uint64_t line = first; line <= last; ++line) {
        const bool hit = touch_line(line, is_read);
        if (is_read) {
            if (hit) {
                ++result.hits;
                ++read_hits_;
            } else {
                ++result.misses;
                ++read_misses_;
            }
        } else {
            ++write_accesses_;
            if (hit)
                ++result.hits;
            else
                ++result.misses;
        }
    }
    return result;
}

void
L2Cache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.assign(lines_.size(), Line{});
    stamp_ = 0;
    read_hits_ = 0;
    read_misses_ = 0;
    write_accesses_ = 0;
}

}  // namespace plr::gpusim
