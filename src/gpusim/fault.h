#ifndef PLR_GPUSIM_FAULT_H_
#define PLR_GPUSIM_FAULT_H_

/**
 * @file
 * Deterministic fault injection for the simulated GPU, plus the forensic
 * structures the protocol watchdog dumps when a launch wedges.
 *
 * The decoupled look-back protocol (Section 2.2 of the paper) is a lock-free
 * protocol whose bugs hide until a scheduler gets adversarial. A FaultPlan
 * makes the simulator adversarial *on purpose* — and reproducibly: every
 * decision derives from a 64-bit seed, so a failing schedule can be replayed
 * from a one-line reproducer (see docs/FAULTS.md).
 *
 * The benign fault classes (stalls, deferred flag publication, stale flag
 * re-reads, masked torn reads) are correctness-preserving by construction: a
 * protocol that honors the fence/flag discipline must produce bit-identical
 * results under them. The lethal class (dropped publication) wedges even a
 * correct kernel and exists to exercise the watchdog and the runner's
 * graceful-degradation path.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/diag.h"
#include "util/rng.h"

namespace plr::gpusim {

class Device;

/**
 * Protocol-site class of a payload store, used to target SDC bit flips:
 * carry publications are the high-value words (one flip poisons every
 * downstream chunk), interiors are everything else (output and scratch
 * arrays). Flag words never pass through the SDC hook at all.
 */
enum class SdcSite { kLocalCarry, kGlobalCarry, kInterior };

/** Knobs for a FaultPlan. Defaults give an aggressive-but-benign mix. */
struct FaultConfig {
    /** Launch blocks in a seed-shuffled order instead of index order. */
    bool shuffle_launch_order = true;

    /** Probability of an injected stall at each global-memory or flag op. */
    double stall_probability = 0.02;

    /** Maximum scheduler yields per injected stall. */
    std::uint32_t max_stall_yields = 32;

    /**
     * Maximum number of device operations a st_release publication may be
     * deferred by (0 disables deferral). Deferred publications are flushed
     * in program order while the block keeps operating or spin-waits, and
     * unconditionally when the block retires, so liveness is preserved.
     */
    std::uint32_t max_publish_delay = 48;

    /**
     * Probability that an already-published flag is re-read as stale
     * (i.e. ld_acquire returns 0 although the true value is set). Safe for
     * the look-back protocol because flags are 0 -> nonzero monotonic: a
     * stale read only sends the reader around its wait loop again.
     */
    double stale_flag_probability = 0.15;

    /**
     * Liveness bound: after this many consecutive stale re-reads by one
     * block, the next ld_acquire returns the true value.
     */
    std::uint32_t max_consecutive_stale = 8;

    /**
     * Probability that a scalar global load observes a torn value which the
     * memory interface detects and masks with a verifying re-read. Counted
     * in FaultStats; never visible to the kernel.
     */
    double torn_read_probability = 0.05;

    /**
     * Probability that a st_release publication is dropped outright. This
     * is NOT masked — a dropped flag wedges any correct look-back kernel.
     * Off by default; enabled only by degradation tests.
     */
    double drop_publish_probability = 0.0;

    /**
     * Silent-data-corruption injection: probability that a payload word
     * stored at a carry-publication site ("publish-local" /
     * "publish-global") has bits flipped in flight. Flag words, the chunk
     * counter and host uploads never pass through the SDC hook, so the
     * protocol's control plane stays intact — only data is corrupted.
     * Flips are NOT correctness-preserving; pair them with the ABFT
     * verify layer (src/kernels/verify.h). Off by default so the benign
     * mix above keeps its bit-identical guarantee.
     */
    double sdc_carry_flip_probability = 0.0;

    /** Ditto for every other payload store (chunk interiors, scratch). */
    double sdc_interior_flip_probability = 0.0;

    /** Maximum bits flipped per corrupted word (1 = single-bit upsets). */
    std::uint32_t sdc_max_flip_bits = 1;

    /**
     * Relaunch salt: SDC decisions are keyed on (seed, round, address),
     * so a retry with a bumped round models an independent transient
     * upset instead of deterministically re-corrupting the same words.
     */
    std::uint32_t sdc_round = 0;

    /** True when either SDC flip probability is positive. */
    bool
    sdc_enabled() const
    {
        return sdc_carry_flip_probability > 0.0 ||
               sdc_interior_flip_probability > 0.0;
    }
};

/**
 * @p base with the default SDC mix used by the sdc test matrix and the
 * conformance tool's --sdc-seed: rare carry flips (high blast radius),
 * rarer interior flips, up to two bits per corrupted word.
 */
FaultConfig with_default_sdc(FaultConfig base = FaultConfig{});

/** Counters for injected fault events (aggregated across blocks). */
struct FaultStats {
    std::uint64_t stalls = 0;
    std::uint64_t stall_yields = 0;
    std::uint64_t stale_flag_reads = 0;
    std::uint64_t torn_reads = 0;
    std::uint64_t deferred_publishes = 0;
    std::uint64_t dropped_publishes = 0;
    std::uint64_t sdc_local_carry_flips = 0;
    std::uint64_t sdc_global_carry_flips = 0;
    std::uint64_t sdc_interior_flips = 0;
    std::uint64_t sdc_bits_flipped = 0;

    /** Total corrupted stores across all SDC sites. */
    std::uint64_t
    sdc_flips() const
    {
        return sdc_local_carry_flips + sdc_global_carry_flips +
               sdc_interior_flips;
    }
};

/**
 * A deterministic fault schedule: seed + config. Shared by every block of a
 * launch; per-block decisions come from independent streams derived from
 * (seed, block index), so they do not depend on thread interleaving.
 */
class FaultPlan {
  public:
    explicit FaultPlan(std::uint64_t seed, FaultConfig config = FaultConfig{});

    std::uint64_t seed() const { return seed_; }
    const FaultConfig& config() const { return config_; }

    /** Seed-shuffled block launch order (identity when shuffling is off). */
    std::vector<std::size_t> launch_order(std::size_t num_blocks) const;

    /**
     * Deterministic coin keyed on (seed, salt, index), independent of
     * execution order. Canary kernels use this to decide *which* chunk
     * misbehaves under a given seed, so tests can predict the victim.
     */
    bool coin(std::uint64_t salt, std::uint64_t index,
              double probability) const;

    /** Snapshot of the fault-event counters. */
    FaultStats stats() const;

    /**
     * XOR mask for the payload word stored at @p word_addr (0 = store
     * intact). The decision is keyed on (seed, sdc_round, word_addr)
     * only — independent of scheduling and of which block performs the
     * store — so a flip pattern replays exactly from the seed. Bumps the
     * per-site counters on a flip.
     */
    std::uint64_t sdc_store_mask(std::uint64_t word_addr,
                                 std::size_t word_bits, SdcSite site);

  private:
    friend class BlockFaultStream;

    std::uint64_t seed_;
    FaultConfig config_;

    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<std::uint64_t> stall_yields_{0};
    std::atomic<std::uint64_t> stale_flag_reads_{0};
    std::atomic<std::uint64_t> torn_reads_{0};
    std::atomic<std::uint64_t> deferred_publishes_{0};
    std::atomic<std::uint64_t> dropped_publishes_{0};
    std::atomic<std::uint64_t> sdc_local_carry_flips_{0};
    std::atomic<std::uint64_t> sdc_global_carry_flips_{0};
    std::atomic<std::uint64_t> sdc_interior_flips_{0};
    std::atomic<std::uint64_t> sdc_bits_flipped_{0};
};

/** Per-block deterministic stream of fault decisions. */
class BlockFaultStream {
  public:
    /** Inactive stream: every query answers "no fault". */
    BlockFaultStream() = default;

    BlockFaultStream(FaultPlan* plan, std::size_t block_index);

    bool active() const { return plan_ != nullptr; }

    /** Yields to stall for at this op (0 = no stall). */
    std::uint32_t next_stall_yields();

    /** True when the next set-flag read should be reported stale. */
    bool next_stale_flag_read();

    /** True when the next scalar load is torn (and masked by a re-read). */
    bool next_torn_read();

    enum class PublishFate { kImmediate, kDeferred, kDropped };

    /** Fate of the next st_release; sets @p delay when deferred. */
    PublishFate next_publish_fate(std::uint32_t* delay);

    /**
     * XOR mask for a payload word this block is storing at @p word_addr
     * (0 = intact). Address-keyed via the shared plan, NOT the per-block
     * stream, so the flip pattern is independent of which block ends up
     * owning the store.
     */
    std::uint64_t next_store_flip(std::uint64_t word_addr,
                                  std::size_t word_bits, SdcSite site);

  private:
    FaultPlan* plan_ = nullptr;
    Rng rng_;
    std::uint32_t consecutive_stale_ = 0;
};

/** Final protocol progress of one block, captured when a launch fails. */
struct BlockForensics {
    std::size_t block_index = 0;
    /** Chunk the block was processing (kNone when it never reported one). */
    std::size_t chunk = kNone;
    /** Chunk whose publication the block was waiting on (kNone if none). */
    std::size_t waiting_on = kNone;
    /** Static description of the wait site ("look-back", ...; "" if none). */
    std::string wait_site;
    /** Spins in the block's current wait episode. */
    std::uint64_t spins = 0;

    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

/** Snapshot of one look-back protocol instance's device state. */
struct ProtocolForensics {
    std::string label;
    std::size_t num_chunks = 0;
    std::size_t width = 0;
    std::vector<std::uint32_t> local_flags;   ///< per chunk
    std::vector<std::uint32_t> global_flags;  ///< per chunk
    std::vector<double> local_state;          ///< num_chunks * width
    std::vector<double> global_state;         ///< num_chunks * width

    /** Lowest chunk with its local carry published but its global missing. */
    std::size_t first_stalled_chunk() const;
};

/** Structured snapshot attached to a LaunchError by the watchdog. */
struct ForensicDump {
    std::string reason;
    std::uint64_t spin_limit = 0;
    bool faults_active = false;
    std::uint64_t fault_seed = 0;
    FaultStats fault_stats;
    /** Blocks still in flight when the launch was torn down. */
    std::vector<BlockForensics> blocks;
    /** One snapshot per registered look-back protocol instance. */
    std::vector<ProtocolForensics> protocols;

    /**
     * The chunk most likely responsible for the wedge: per protocol, the
     * lowest chunk whose global flag never appeared and which no live
     * block is still working on (a live block with an unpublished chunk is
     * a victim mid-work or mid-wait, not the culprit; a dead chunk's owner
     * is gone and its flag can never arrive). BlockForensics::kNone if
     * every unresolved chunk is still owned by a live block.
     */
    std::size_t suspect_chunk() const;

    /** Multi-line human-readable rendering (flag maps are capped). */
    std::string format() const;
};

/** Watchdog/wedge failure carrying the forensic snapshot. */
class LaunchError : public PanicError {
  public:
    LaunchError(const std::string& what, ForensicDump dump);

    const ForensicDump& dump() const { return dump_; }

  private:
    ForensicDump dump_;
};

/**
 * RAII registration of a forensic source with a Device. A forensic source
 * is a callback that snapshots one protocol instance's flag/carry state;
 * the watchdog invokes all registered sources after the launch threads have
 * been joined (so plain reads of device memory are race-free).
 */
class ForensicSourceGuard {
  public:
    ForensicSourceGuard(Device& device,
                        std::function<ProtocolForensics()> source);
    ~ForensicSourceGuard();

    ForensicSourceGuard(const ForensicSourceGuard&) = delete;
    ForensicSourceGuard& operator=(const ForensicSourceGuard&) = delete;

  private:
    Device& device_;
    std::size_t id_;
};

}  // namespace plr::gpusim

#endif  // PLR_GPUSIM_FAULT_H_
