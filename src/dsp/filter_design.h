#ifndef PLR_DSP_FILTER_DESIGN_H_
#define PLR_DSP_FILTER_DESIGN_H_

/**
 * @file
 * Recursive-filter design and signature composition.
 *
 * The filters of Table 1 follow Smith's "The Scientist and Engineer's Guide
 * to Digital Signal Processing" single-pole recipes:
 *
 *   low-pass stage:  y[i] = (1-x)*t[i] + x*y[i-1]           -> (1-x : x)
 *   high-pass stage: y[i] = (1+x)/2*(t[i]-t[i-1]) + x*y[i-1]
 *                                                  -> ((1+x)/2, -(1+x)/2 : x)
 *
 * with x = exp(-2*pi*fc) for cutoff frequency fc (fraction of the sample
 * rate). Multi-stage filters cascade identical stages; the combined
 * signature is obtained with the z-transform (polynomial multiplication of
 * numerators and denominators), which is how the 2- and 3-stage rows of
 * Table 1 arise. Higher-order and tuple-based prefix sums are also
 * expressible as signatures (Section 1).
 */

#include <complex>
#include <cstddef>

#include "core/signature.h"

namespace plr::dsp {

/** Cascade two recurrences: the signature computing g applied after f. */
Signature cascade(const Signature& f, const Signature& g);

/**
 * Parallel (sum) composition: the signature whose output equals the sum
 * of f's and g's outputs on the same input — numerators cross-multiplied
 * onto the common denominator. Useful for shelving/band filters built
 * from low- and high-pass prototypes.
 */
Signature parallel_sum(const Signature& f, const Signature& g);

/**
 * Complex frequency response H(e^{j 2 pi f}) of the recurrence, with f
 * the frequency as a fraction of the sample rate in [0, 0.5].
 */
std::complex<double> frequency_response(const Signature& sig, double f);

/** |H| at frequency f. */
double magnitude_response(const Signature& sig, double f);

/** Cascade @p stages copies of @p stage. */
Signature cascade_stages(const Signature& stage, std::size_t stages);

/**
 * Single-pole low-pass filter chain from the pole location x in (0, 1).
 * stages = 1 yields (1-x : x); higher stage counts are cascades.
 * The Table-1 filters use x = 0.8.
 */
Signature lowpass(double x, std::size_t stages = 1);

/** Single-pole high-pass filter chain from the pole location x in (0, 1). */
Signature highpass(double x, std::size_t stages = 1);

/** Pole location for a cutoff frequency fc in (0, 0.5): x = exp(-2 pi fc). */
double pole_from_cutoff(double fc);

/**
 * Spectral radius of the recurrence's companion matrix — the magnitude
 * of the dominant pole. The recurrence is BIBO-stable (and its
 * correction factors decay, enabling the zero-tail optimization) exactly
 * when this is < 1. Computed by power iteration.
 */
double spectral_radius(const Signature& sig);

/** True when all poles lie strictly inside the unit circle. */
bool is_stable(const Signature& sig, double margin = 1e-9);

/** Standard prefix sum (1: 1). */
Signature prefix_sum();

/** Prefix sum over s-tuples, (1: 0,..,0,1) with s-1 zeros. */
Signature tuple_prefix_sum(std::size_t s);

/**
 * k-th order prefix sum (prefix sum of prefix sums, k deep): the cascade of
 * k standard prefix sums, whose feedback coefficients are the alternating
 * binomial coefficients (Section 1).
 */
Signature higher_order_prefix_sum(std::size_t k);

}  // namespace plr::dsp

#endif  // PLR_DSP_FILTER_DESIGN_H_
