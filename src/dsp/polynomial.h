#ifndef PLR_DSP_POLYNOMIAL_H_
#define PLR_DSP_POLYNOMIAL_H_

/**
 * @file
 * Dense univariate polynomials over double.
 *
 * Used for z-transform manipulation of recurrences: a signature
 * (a0..a-p : b-1..b-k) corresponds to the transfer function
 * H(z) = A(z) / B(z) with A(z) = sum a-j z^-j and
 * B(z) = 1 - sum b-j z^-j. Cascading filters multiplies transfer
 * functions, which is polynomial multiplication on A and B — this is how
 * the k-stage filters of Table 1 are derived from single-pole stages.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace plr::dsp {

/** Polynomial c0 + c1*u + c2*u^2 + ... (u plays the role of z^-1). */
class Polynomial {
  public:
    /** The zero polynomial. */
    Polynomial() = default;

    /** From low-order-first coefficients; trailing zeros are trimmed. */
    explicit Polynomial(std::vector<double> coefficients);

    /** The constant polynomial c. */
    static Polynomial constant(double c);

    /** The monomial c * u^power. */
    static Polynomial monomial(double c, std::size_t power);

    /** Low-order-first coefficients (empty for the zero polynomial). */
    const std::vector<double>& coefficients() const { return coeffs_; }

    /** Degree; the zero polynomial reports degree 0. */
    std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

    /** True for the zero polynomial. */
    bool is_zero() const { return coeffs_.empty(); }

    /** Coefficient of u^i (0 beyond the stored degree). */
    double operator[](std::size_t i) const
    {
        return i < coeffs_.size() ? coeffs_[i] : 0.0;
    }

    /** Evaluate at u (Horner). */
    double evaluate(double u) const;

    Polynomial operator+(const Polynomial& other) const;
    Polynomial operator-(const Polynomial& other) const;
    Polynomial operator*(const Polynomial& other) const;
    Polynomial operator*(double scalar) const;

    /** Integer power (repeated squaring). */
    Polynomial pow(std::size_t exponent) const;

    /** Coefficient-wise comparison within @p tolerance. */
    bool almost_equal(const Polynomial& other, double tolerance = 1e-12) const;

    /** Render like "1 - 1.6u + 0.64u^2". */
    std::string to_string() const;

  private:
    void trim();

    std::vector<double> coeffs_;
};

}  // namespace plr::dsp

#endif  // PLR_DSP_POLYNOMIAL_H_
