#ifndef PLR_DSP_SIGNAL_H_
#define PLR_DSP_SIGNAL_H_

/**
 * @file
 * Synthetic signal/workload generators for tests, examples, and benches.
 *
 * The paper notes that the evaluated codes' control flow and memory
 * behavior are input-independent, so any sequence of a given length works
 * for performance; for correctness we still want varied, reproducible
 * inputs.
 */

#include <cstdint>
#include <vector>

namespace plr::dsp {

/** Uniform random int32 values in [lo, hi]. */
std::vector<std::int32_t> random_ints(std::size_t n, std::uint64_t seed,
                                      std::int32_t lo = -100,
                                      std::int32_t hi = 100);

/** Uniform random floats in [lo, hi). */
std::vector<float> random_floats(std::size_t n, std::uint64_t seed,
                                 float lo = -1.0f, float hi = 1.0f);

/** The paper's worked-example input: 3, -4, 5, -6, 7, -8, ... */
std::vector<std::int32_t> alternating_ramp(std::size_t n);

/** Unit impulse: 1, 0, 0, ... (exposes the filter's impulse response). */
std::vector<float> impulse(std::size_t n);

/** Unit step: 1, 1, 1, ... */
std::vector<float> step(std::size_t n);

/** Sine wave with the given frequency (cycles per sample) and amplitude. */
std::vector<float> sine(std::size_t n, double frequency,
                        double amplitude = 1.0, double phase = 0.0);

/** Sum of a sine and white Gaussian noise — a denoising test signal. */
std::vector<float> noisy_sine(std::size_t n, double frequency,
                              double noise_stddev, std::uint64_t seed);

/** Linear chirp sweeping from f0 to f1 over the signal length. */
std::vector<float> chirp(std::size_t n, double f0, double f1);

}  // namespace plr::dsp

#endif  // PLR_DSP_SIGNAL_H_
