#include "dsp/polynomial.h"

#include <cmath>
#include <sstream>

#include "util/diag.h"

namespace plr::dsp {

Polynomial::Polynomial(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients))
{
    trim();
}

Polynomial
Polynomial::constant(double c)
{
    return Polynomial({c});
}

Polynomial
Polynomial::monomial(double c, std::size_t power)
{
    std::vector<double> coeffs(power + 1, 0.0);
    coeffs[power] = c;
    return Polynomial(std::move(coeffs));
}

double
Polynomial::evaluate(double u) const
{
    double acc = 0.0;
    for (std::size_t i = coeffs_.size(); i-- > 0;)
        acc = acc * u + coeffs_[i];
    return acc;
}

Polynomial
Polynomial::operator+(const Polynomial& other) const
{
    std::vector<double> result(std::max(coeffs_.size(), other.coeffs_.size()),
                               0.0);
    for (std::size_t i = 0; i < result.size(); ++i)
        result[i] = (*this)[i] + other[i];
    return Polynomial(std::move(result));
}

Polynomial
Polynomial::operator-(const Polynomial& other) const
{
    std::vector<double> result(std::max(coeffs_.size(), other.coeffs_.size()),
                               0.0);
    for (std::size_t i = 0; i < result.size(); ++i)
        result[i] = (*this)[i] - other[i];
    return Polynomial(std::move(result));
}

Polynomial
Polynomial::operator*(const Polynomial& other) const
{
    if (is_zero() || other.is_zero())
        return Polynomial();
    std::vector<double> result(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
    for (std::size_t i = 0; i < coeffs_.size(); ++i)
        for (std::size_t j = 0; j < other.coeffs_.size(); ++j)
            result[i + j] += coeffs_[i] * other.coeffs_[j];
    return Polynomial(std::move(result));
}

Polynomial
Polynomial::operator*(double scalar) const
{
    std::vector<double> result = coeffs_;
    for (double& c : result)
        c *= scalar;
    return Polynomial(std::move(result));
}

Polynomial
Polynomial::pow(std::size_t exponent) const
{
    Polynomial result = constant(1.0);
    Polynomial base = *this;
    while (exponent > 0) {
        if (exponent & 1)
            result = result * base;
        base = base * base;
        exponent >>= 1;
    }
    return result;
}

bool
Polynomial::almost_equal(const Polynomial& other, double tolerance) const
{
    const std::size_t size = std::max(coeffs_.size(), other.coeffs_.size());
    for (std::size_t i = 0; i < size; ++i)
        if (std::fabs((*this)[i] - other[i]) > tolerance)
            return false;
    return true;
}

std::string
Polynomial::to_string() const
{
    if (is_zero())
        return "0";
    std::ostringstream os;
    bool first = true;
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
        const double c = coeffs_[i];
        if (c == 0.0)
            continue;
        if (first) {
            if (c < 0)
                os << "-";
            first = false;
        } else {
            os << (c < 0 ? " - " : " + ");
        }
        const double mag = std::fabs(c);
        if (i == 0 || mag != 1.0)
            os << mag;
        if (i >= 1)
            os << "u";
        if (i >= 2)
            os << "^" << i;
    }
    return os.str();
}

void
Polynomial::trim()
{
    while (!coeffs_.empty() && coeffs_.back() == 0.0)
        coeffs_.pop_back();
    for (double c : coeffs_)
        PLR_REQUIRE(std::isfinite(c), "non-finite polynomial coefficient");
}

}  // namespace plr::dsp
