#include "dsp/signal.h"

#include <cmath>

#include "util/rng.h"

namespace plr::dsp {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

std::vector<std::int32_t>
random_ints(std::size_t n, std::uint64_t seed, std::int32_t lo,
            std::int32_t hi)
{
    Rng rng(seed);
    std::vector<std::int32_t> values(n);
    for (auto& v : values)
        v = static_cast<std::int32_t>(rng.uniform_int(lo, hi));
    return values;
}

std::vector<float>
random_floats(std::size_t n, std::uint64_t seed, float lo, float hi)
{
    Rng rng(seed);
    std::vector<float> values(n);
    for (auto& v : values)
        v = static_cast<float>(rng.uniform_double(lo, hi));
    return values;
}

std::vector<std::int32_t>
alternating_ramp(std::size_t n)
{
    std::vector<std::int32_t> values(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t magnitude = static_cast<std::int32_t>(i) + 3;
        values[i] = (i % 2 == 0) ? magnitude : -magnitude;
    }
    return values;
}

std::vector<float>
impulse(std::size_t n)
{
    std::vector<float> values(n, 0.0f);
    if (n > 0)
        values[0] = 1.0f;
    return values;
}

std::vector<float>
step(std::size_t n)
{
    return std::vector<float>(n, 1.0f);
}

std::vector<float>
sine(std::size_t n, double frequency, double amplitude, double phase)
{
    std::vector<float> values(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = static_cast<float>(
            amplitude * std::sin(2.0 * kPi * frequency * static_cast<double>(i) + phase));
    return values;
}

std::vector<float>
noisy_sine(std::size_t n, double frequency, double noise_stddev,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> values = sine(n, frequency);
    for (auto& v : values)
        v += static_cast<float>(noise_stddev * rng.normal());
    return values;
}

std::vector<float>
chirp(std::size_t n, double f0, double f1)
{
    std::vector<float> values(n);
    const double span = n > 1 ? static_cast<double>(n - 1) : 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i);
        const double f = f0 + (f1 - f0) * t / (2.0 * span);
        values[i] = static_cast<float>(std::sin(2.0 * kPi * f * t));
    }
    return values;
}

}  // namespace plr::dsp
