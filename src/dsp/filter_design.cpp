#include "dsp/filter_design.h"

#include <cmath>

#include "dsp/polynomial.h"
#include "util/diag.h"

namespace plr::dsp {

namespace {

/** Numerator polynomial A(u) = a0 + a-1 u + ... with u = z^-1. */
Polynomial
numerator(const Signature& sig)
{
    return Polynomial(sig.a());
}

/** Denominator polynomial B(u) = 1 - b-1 u - b-2 u^2 - ... */
Polynomial
denominator(const Signature& sig)
{
    std::vector<double> coeffs(sig.order() + 1, 0.0);
    coeffs[0] = 1.0;
    for (std::size_t j = 1; j <= sig.order(); ++j)
        coeffs[j] = -sig.b()[j - 1];
    return Polynomial(std::move(coeffs));
}

/** Convert transfer function A/B back into a signature. */
Signature
from_transfer(const Polynomial& a, const Polynomial& b)
{
    PLR_ASSERT(!b.is_zero() && b[0] == 1.0,
               "denominator must be monic in u^0, got " << b.to_string());
    std::vector<double> bs(b.degree());
    for (std::size_t j = 1; j <= b.degree(); ++j)
        bs[j - 1] = -b[j];
    return Signature(a.coefficients(), std::move(bs), /*allow_fir=*/true);
}

}  // namespace

Signature
cascade(const Signature& f, const Signature& g)
{
    return from_transfer(numerator(f) * numerator(g),
                         denominator(f) * denominator(g));
}

Signature
parallel_sum(const Signature& f, const Signature& g)
{
    // H = A1/B1 + A2/B2 = (A1*B2 + A2*B1) / (B1*B2).
    return from_transfer(numerator(f) * denominator(g) +
                             numerator(g) * denominator(f),
                         denominator(f) * denominator(g));
}

std::complex<double>
frequency_response(const Signature& sig, double f)
{
    PLR_REQUIRE(f >= 0.0 && f <= 0.5,
                "frequency must lie in [0, 0.5] of the sample rate, got "
                    << f);
    // u = z^-1 = e^{-j 2 pi f}; evaluate A(u) / B(u) by Horner.
    const std::complex<double> u =
        std::polar(1.0, -2.0 * 3.14159265358979323846 * f);
    auto eval = [&u](const Polynomial& p) {
        std::complex<double> acc = 0.0;
        const auto& c = p.coefficients();
        for (std::size_t i = c.size(); i-- > 0;)
            acc = acc * u + c[i];
        return acc;
    };
    return eval(numerator(sig)) / eval(denominator(sig));
}

double
magnitude_response(const Signature& sig, double f)
{
    return std::abs(frequency_response(sig, f));
}

Signature
cascade_stages(const Signature& stage, std::size_t stages)
{
    PLR_REQUIRE(stages >= 1, "need at least one stage");
    Signature result = stage;
    for (std::size_t s = 1; s < stages; ++s)
        result = cascade(result, stage);
    return result;
}

Signature
lowpass(double x, std::size_t stages)
{
    PLR_REQUIRE(x > 0.0 && x < 1.0,
                "low-pass pole must lie in (0, 1) for stability, got " << x);
    return cascade_stages(Signature({1.0 - x}, {x}), stages);
}

Signature
highpass(double x, std::size_t stages)
{
    PLR_REQUIRE(x > 0.0 && x < 1.0,
                "high-pass pole must lie in (0, 1) for stability, got " << x);
    const double g = (1.0 + x) / 2.0;
    return cascade_stages(Signature({g, -g}, {x}), stages);
}

double
pole_from_cutoff(double fc)
{
    PLR_REQUIRE(fc > 0.0 && fc < 0.5,
                "cutoff must lie in (0, 0.5) of the sample rate, got " << fc);
    return std::exp(-2.0 * 3.14159265358979323846 * fc);
}

double
spectral_radius(const Signature& sig)
{
    const std::size_t k = sig.order();
    PLR_REQUIRE(k >= 1, "spectral radius needs a recurrence of order >= 1");
    // Power iteration on the companion matrix, with periodic
    // normalization; the growth rate of the norm estimates |lambda_max|.
    // Complex-conjugate pole pairs make single-vector iteration
    // oscillate, so we average the growth over a window.
    std::vector<double> state(k, 0.0);
    state[0] = 1.0;
    const auto& b = sig.b();
    double log_growth = 0.0;
    const int warmup = 2000, measure = 12000;
    for (int it = 0; it < warmup + measure; ++it) {
        std::vector<double> next(k, 0.0);
        for (std::size_t j = 0; j < k; ++j)
            next[0] += b[j] * state[j];
        for (std::size_t r = 1; r < k; ++r)
            next[r] = state[r - 1];
        double norm = 0.0;
        for (double v : next)
            norm = std::max(norm, std::fabs(v));
        if (norm == 0.0)
            return 0.0;  // nilpotent (e.g. pure delays)
        for (double& v : next)
            v /= norm;
        if (it >= warmup)
            log_growth += std::log(norm);
        state = std::move(next);
    }
    return std::exp(log_growth / measure);
}

bool
is_stable(const Signature& sig, double margin)
{
    return spectral_radius(sig) < 1.0 - margin;
}

Signature
prefix_sum()
{
    return Signature({1.0}, {1.0});
}

Signature
tuple_prefix_sum(std::size_t s)
{
    PLR_REQUIRE(s >= 1, "tuple size must be >= 1");
    std::vector<double> b(s, 0.0);
    b.back() = 1.0;
    return Signature({1.0}, std::move(b));
}

Signature
higher_order_prefix_sum(std::size_t k)
{
    PLR_REQUIRE(k >= 1, "order must be >= 1");
    return cascade_stages(prefix_sum(), k);
}

}  // namespace plr::dsp
