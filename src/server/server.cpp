#include "server/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <variant>

#include "kernels/batched.h"
#include "kernels/serial.h"
#include "kernels/stream.h"
#include "kernels/stream_state.h"
#include "server/error.h"
#include "server/session_store.h"
#include "util/env.h"
#include "util/ring.h"

namespace plr::server {

namespace {

ResponseFrame
error_response(const RequestFrame& frame, ServerErrorKind kind)
{
    ResponseFrame r;
    r.wire_version = frame.wire_version;
    r.request_id = frame.request_id;
    r.tenant = frame.tenant;
    r.status = status_of(kind);
    return r;
}

}  // namespace

const char*
to_string(ServerErrorKind kind)
{
    switch (kind) {
      case ServerErrorKind::kBadFrame: return "bad-frame";
      case ServerErrorKind::kPlanRejected: return "plan-rejected";
      case ServerErrorKind::kOverloaded: return "overloaded";
      case ServerErrorKind::kSessionMismatch: return "session-mismatch";
      case ServerErrorKind::kLaunchFailed: return "launch-failed";
      case ServerErrorKind::kShutdown: return "shutdown";
      case ServerErrorKind::kDeadlineExceeded: return "deadline-exceeded";
      case ServerErrorKind::kRetryAfter: return "retry-after";
      case ServerErrorKind::kSessionCorrupt: return "session-corrupt";
    }
    return "unknown";
}

ServerConfig
server_config_from_env(ServerConfig base)
{
    const std::uint64_t deadline = env::count_or("PLR_SERVER_DEADLINE_MS",
                                                 base.default_deadline_ms);
    PLR_REQUIRE(deadline <= UINT32_MAX,
                "$PLR_SERVER_DEADLINE_MS=" << deadline
                                           << " does not fit 32 bits");
    base.default_deadline_ms = static_cast<std::uint32_t>(deadline);
    base.replay_cache_capacity = static_cast<std::size_t>(env::count_or(
        "PLR_SERVER_REPLAY_CAPACITY", base.replay_cache_capacity));
    base.session_store_dir =
        env::string_or("PLR_SERVER_SESSION_STORE", base.session_store_dir);
    return base;
}

/** One admitted request waiting for (or receiving) its response. */
struct Server::Pending {
    RequestFrame frame;
    std::shared_ptr<const Plan> plan;
    bool cache_hit = false;
    bool idempotent = false;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline_at;
    /** Only the batcher touches these after admission. */
    bool done = false;
    std::promise<ResponseFrame> promise;
    /** Shared so a duplicate idempotent submit can join the wait. */
    std::shared_future<ResponseFrame> result;
};

/** One (tenant, session) resumable stream. */
struct Server::Session {
    std::uint64_t plan_key = 0;
    std::variant<std::unique_ptr<kernels::StreamSession<IntRing>>,
                 std::unique_ptr<kernels::StreamSession<FloatRing>>,
                 std::unique_ptr<kernels::StreamSession<TropicalRing>>>
        stream;
    /** Last request committed to this stream, for retry replay: a
        repeat of this id must return this sealed response, never
        advance the carry twice. */
    bool has_last = false;
    std::uint64_t last_request_id = 0;
    ResponseFrame last_response;
};

struct Server::Impl {
    explicit Impl(const ServerConfig& c)
        : config(c), cache(c.plan_cache_capacity)
    {
        if (!config.session_store_dir.empty())
            store.emplace(config.session_store_dir);
    }

    using IdemKey = std::pair<std::uint64_t, std::uint64_t>;

    ServerConfig config;
    PlanCache cache;
    /** Durable (tenant, session) records; nullopt = memory only. */
    std::optional<SessionStore> store;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Pending>> queue;
    /** Payload elements sitting in the queue (deadline admission). */
    std::size_t queued_elements = 0;
    /** Queued + in-service requests per tenant. */
    std::map<std::uint64_t, std::size_t> inflight;
    std::map<std::pair<std::uint64_t, std::uint64_t>, Session> sessions;
    bool stopping = false;
    bool paused = false;
    std::thread batcher;

    /** Replay cache + in-flight dedup, keyed (tenant, request id).
        idem_mu nests INSIDE mu (mu -> idem_mu) or stands alone. */
    std::mutex idem_mu;
    std::list<std::pair<IdemKey, ResponseFrame>> replay_lru;
    std::map<IdemKey, std::list<std::pair<IdemKey, ResponseFrame>>::iterator>
        replay_map;
    std::map<IdemKey, std::weak_ptr<Pending>> inflight_idem;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> rejected_overloaded{0};
    std::atomic<std::uint64_t> rejected_bad_frame{0};
    std::atomic<std::uint64_t> rejected_plan{0};
    std::atomic<std::uint64_t> rejected_session{0};
    std::atomic<std::uint64_t> failed_launches{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> fused_requests{0};
    std::atomic<std::uint64_t> max_batch_fused{0};
    std::atomic<std::uint64_t> recovered{0};
    std::atomic<std::uint64_t> shutdown_drained{0};
    std::atomic<std::uint64_t> rejected_deadline{0};
    std::atomic<std::uint64_t> retry_after_hints{0};
    std::atomic<std::uint64_t> replayed{0};
    std::atomic<std::uint64_t> joined_inflight{0};
    std::atomic<std::uint64_t> sessions_resumed{0};
    std::atomic<std::uint64_t> rejected_corrupt{0};

    ResponseFrame submit(const RequestFrame& frame);
    void batcher_loop();
    void serve_group(std::vector<std::shared_ptr<Pending>>& group);
    template <typename Ring>
    void run_group(std::vector<std::shared_ptr<Pending>>& group);

    /** Projected queue-drain time, the kRetryAfter hint (mu held). */
    std::uint32_t
    drain_hint_ms() const
    {
        const std::uint64_t ns =
            config.admission_ns_per_request * queue.size() +
            config.admission_ns_per_element * queued_elements;
        const std::uint64_t ms = ns / 1'000'000ull + 1;
        return static_cast<std::uint32_t>(std::min<std::uint64_t>(ms, 60'000));
    }

    void
    finish(Pending& p, ResponseFrame r)
    {
        if (p.done)
            return;
        p.done = true;
        if (p.idempotent) {
            std::lock_guard<std::mutex> lock(idem_mu);
            const IdemKey key{p.frame.tenant, p.frame.request_id};
            inflight_idem.erase(key);
            // Only sealed successes replay: a rejected request was
            // never computed, so its retry must be computed (once).
            if (r.status == kStatusOk && config.replay_cache_capacity > 0) {
                auto it = replay_map.find(key);
                if (it != replay_map.end()) {
                    it->second->second = r;
                    replay_lru.splice(replay_lru.begin(), replay_lru,
                                      it->second);
                } else {
                    replay_lru.emplace_front(key, r);
                    replay_map[key] = replay_lru.begin();
                    while (replay_lru.size() > config.replay_cache_capacity) {
                        replay_map.erase(replay_lru.back().first);
                        replay_lru.pop_back();
                    }
                }
            }
        }
        p.promise.set_value(std::move(r));
    }
};

ResponseFrame
Server::Impl::submit(const RequestFrame& frame)
{
    const bool idempotent = (frame.flags & kRequestFlagIdempotent) != 0;
    const IdemKey key{frame.tenant, frame.request_id};

    // Idempotent retry? Answer from the sealed original BEFORE
    // planning — replay must work even after the plan cache evicted
    // the plan (and must never recompute-diverge).
    if (idempotent) {
        std::shared_ptr<Pending> original;
        {
            std::lock_guard<std::mutex> lock(idem_mu);
            auto it = replay_map.find(key);
            if (it != replay_map.end()) {
                replay_lru.splice(replay_lru.begin(), replay_lru,
                                  it->second);
                ResponseFrame r = it->second->second;
                r.wire_version = frame.wire_version;
                r.flags |= kResponseFlagReplayed;
                ++replayed;
                return r;
            }
            auto in = inflight_idem.find(key);
            if (in != inflight_idem.end())
                original = in->second.lock();
        }
        if (original != nullptr) {
            // The original is still being served: join its wait so a
            // racing retry cannot enqueue (and compute) it twice.
            ++joined_inflight;
            ResponseFrame r = original->result.get();
            r.wire_version = frame.wire_version;
            r.flags |= kResponseFlagReplayed;
            return r;
        }
    }

    // Plan before admission: a request that cannot be planned must not
    // occupy a queue slot, and the cache probe is a parse + hash.
    std::shared_ptr<const Plan> plan;
    bool cache_hit = false;
    try {
        plan = cache.lookup(frame.signature_text, frame.domain, &cache_hit);
    } catch (const ServerError& error) {
        ++rejected_plan;
        return error_response(frame, error.kind());
    }

    auto pending = std::make_shared<Pending>();
    pending->frame = frame;
    pending->plan = std::move(plan);
    pending->cache_hit = cache_hit;
    pending->idempotent = idempotent;
    pending->result = pending->promise.get_future().share();
    // Deadlines are a wire-v2 contract; a v1 frame cannot carry one.
    const std::uint32_t deadline_ms =
        frame.wire_version >= 2
            ? (frame.deadline_ms != 0 ? frame.deadline_ms
                                      : config.default_deadline_ms)
            : 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping) {
            ++shutdown_drained;
            return error_response(frame, ServerErrorKind::kShutdown);
        }
        auto it = inflight.find(frame.tenant);
        const std::size_t current = it == inflight.end() ? 0 : it->second;
        if (queue.size() >= config.queue_depth ||
            current >= config.tenant_inflight_cap) {
            // Backpressure: v2 clients get a typed retry-after hint,
            // v1 clients the classic kOverloaded (no hint field).
            ++rejected_overloaded;
            if (frame.wire_version >= 2) {
                ++retry_after_hints;
                ResponseFrame r =
                    error_response(frame, ServerErrorKind::kRetryAfter);
                r.retry_after_ms = drain_hint_ms();
                return r;
            }
            return error_response(frame, ServerErrorKind::kOverloaded);
        }
        if (deadline_ms != 0) {
            // Reject-on-admission: if the projected queue wait already
            // blows the deadline, say so now instead of timing out in
            // the queue after the client gave up.
            const std::uint64_t projected_ns =
                config.admission_ns_per_request * (queue.size() + 1) +
                config.admission_ns_per_element *
                    (queued_elements + frame.payload.size());
            if (projected_ns > std::uint64_t{deadline_ms} * 1'000'000ull) {
                ++rejected_deadline;
                return error_response(frame,
                                      ServerErrorKind::kDeadlineExceeded);
            }
            pending->has_deadline = true;
            pending->deadline_at = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(deadline_ms);
        }
        inflight[frame.tenant] = current + 1;
        ++accepted;
        queued_elements += frame.payload.size();
        queue.push_back(pending);
        if (idempotent) {
            std::lock_guard<std::mutex> ilock(idem_mu);
            inflight_idem[key] = pending;
        }
    }
    cv.notify_all();
    return pending->result.get();
}

void
Server::Impl::batcher_loop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cv.wait(lock,
                [&] { return stopping || (!paused && !queue.empty()); });
        if (stopping)
            break;

        // Expired-in-queue requests are answered kDeadlineExceeded and
        // never reach a launch: no work is committed on their behalf,
        // so a client retry of the same id computes exactly once.
        const auto now = std::chrono::steady_clock::now();
        for (auto it = queue.begin(); it != queue.end();) {
            auto& p = *it;
            if (p->has_deadline && now >= p->deadline_at) {
                ++rejected_deadline;
                queued_elements -= p->frame.payload.size();
                auto inf = inflight.find(p->frame.tenant);
                if (inf != inflight.end() && --inf->second == 0)
                    inflight.erase(inf);
                finish(*p, error_response(p->frame,
                                          ServerErrorKind::kDeadlineExceeded));
                it = queue.erase(it);
            } else {
                ++it;
            }
        }
        if (queue.empty())
            continue;

        // One coalescing round: take up to max_batch queued requests
        // sharing the front request's plan, at most one per live
        // session (a session's later requests need the carry this
        // round advances). Requests of other plans keep their order
        // and go in a later round.
        const std::size_t limit =
            config.batching ? std::max<std::size_t>(1, config.max_batch) : 1;

        std::vector<std::shared_ptr<Pending>> group;
        std::set<std::pair<std::uint64_t, std::uint64_t>> group_sessions;
        std::uint64_t key = 0;
        for (auto it = queue.begin();
             it != queue.end() && group.size() < limit;) {
            const auto& p = *it;
            if (!group.empty() && p->plan->key != key) {
                ++it;
                continue;
            }
            if (p->frame.session != 0 &&
                !group_sessions.insert({p->frame.tenant, p->frame.session})
                     .second) {
                ++it;
                continue;
            }
            key = p->plan->key;
            queued_elements -= p->frame.payload.size();
            group.push_back(p);
            it = queue.erase(it);
        }

        lock.unlock();
        serve_group(group);
        lock.lock();

        ++batches;
        fused_requests += group.size();
        if (group.size() > max_batch_fused.load())
            max_batch_fused = group.size();
        for (const auto& p : group) {
            auto it = inflight.find(p->frame.tenant);
            if (it != inflight.end() && --it->second == 0)
                inflight.erase(it);
        }
    }

    // Drain: every queued request is answered, never dropped.
    while (!queue.empty()) {
        auto p = queue.front();
        queue.pop_front();
        queued_elements -= p->frame.payload.size();
        ++shutdown_drained;
        auto it = inflight.find(p->frame.tenant);
        if (it != inflight.end() && --it->second == 0)
            inflight.erase(it);
        finish(*p, error_response(p->frame, ServerErrorKind::kShutdown));
    }
}

void
Server::Impl::serve_group(std::vector<std::shared_ptr<Pending>>& group)
{
    if (group.empty())
        return;
    try {
        switch (group.front()->frame.domain) {
          case kernels::Domain::kInt:
            run_group<IntRing>(group);
            break;
          case kernels::Domain::kFloat:
            run_group<FloatRing>(group);
            break;
          case kernels::Domain::kTropical:
            run_group<TropicalRing>(group);
            break;
        }
    } catch (...) {
        // Fall through to the per-request accounting below.
    }
    for (const auto& p : group) {
        if (!p->done) {
            ++failed_launches;
            finish(*p,
                   error_response(p->frame, ServerErrorKind::kLaunchFailed));
        }
    }
}

template <typename Ring>
void
Server::Impl::run_group(std::vector<std::shared_ptr<Pending>>& group)
{
    using V = typename Ring::value_type;
    using Stream = kernels::StreamSession<Ring>;
    const Plan& plan = *group.front()->plan;

    // Resolve sessions first: a mismatched session is rejected before
    // any carry state is touched. A miss with a durable store probes
    // disk — lazy crash recovery: the first post-restart request for a
    // session resumes it from its sealed record, and damage of any
    // kind is a typed kSessionCorrupt, never a wrong resume.
    std::vector<Stream*> streams(group.size(), nullptr);
    {
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < group.size(); ++i) {
            Pending& p = *group[i];
            if (p.frame.session == 0)
                continue;
            const auto skey = std::make_pair(p.frame.tenant, p.frame.session);
            auto it = sessions.find(skey);
            if (it == sessions.end() && store.has_value()) {
                try {
                    auto rec = store->load(p.frame.tenant, p.frame.session);
                    if (rec.has_value()) {
                        const kernels::Checkpoint ckpt =
                            kernels::parse_checkpoint(rec->checkpoint);
                        Session s;
                        s.plan_key = plan.key;
                        s.stream = std::make_unique<Stream>(
                            Stream::resume_from(ckpt, plan.sig, nullptr,
                                                kernels::RunOptions{}));
                        s.has_last = true;
                        s.last_request_id = rec->last_request_id;
                        s.last_response = parse_response(rec->response);
                        it = sessions.emplace(skey, std::move(s)).first;
                        ++sessions_resumed;
                    }
                } catch (const kernels::CheckpointError& error) {
                    if (error.kind() ==
                        kernels::CheckpointErrorKind::kSignatureMismatch) {
                        // The record is intact but belongs to another
                        // recurrence: the client switched signatures.
                        ++rejected_session;
                        finish(p, error_response(
                                      p.frame,
                                      ServerErrorKind::kSessionMismatch));
                        continue;
                    }
                    ++rejected_corrupt;
                    finish(p, error_response(
                                  p.frame, ServerErrorKind::kSessionCorrupt));
                    continue;
                } catch (const FatalError&) {
                    // SessionStoreError / FrameError: damaged record.
                    ++rejected_corrupt;
                    finish(p, error_response(
                                  p.frame, ServerErrorKind::kSessionCorrupt));
                    continue;
                }
            }
            if (it == sessions.end()) {
                Session s;
                s.plan_key = plan.key;
                s.stream = std::make_unique<Stream>(plan.sig, nullptr,
                                                    kernels::RunOptions{});
                it = sessions.emplace(skey, std::move(s)).first;
            } else if (it->second.plan_key != plan.key ||
                       !std::holds_alternative<std::unique_ptr<Stream>>(
                           it->second.stream)) {
                ++rejected_session;
                finish(p, error_response(
                              p.frame, ServerErrorKind::kSessionMismatch));
                continue;
            }
            // Exactly-once: an idempotent repeat of the last committed
            // request id replays its sealed response — the carry is
            // NOT advanced a second time. This is what makes a retry
            // across a crash (or a lost response) safe.
            if (p.idempotent && it->second.has_last &&
                p.frame.request_id == it->second.last_request_id) {
                ResponseFrame r = it->second.last_response;
                r.wire_version = p.frame.wire_version;
                r.flags |= kResponseFlagReplayed;
                ++replayed;
                finish(p, std::move(r));
                continue;
            }
            streams[i] =
                std::get<std::unique_ptr<Stream>>(it->second.stream).get();
        }
    }

    // The simulated-GPU backend: with fault injection off, the whole
    // stateless side of the group goes up in ONE fused device launch
    // (batched_segments_recurrence) — the per-launch overhead
    // amortization the coalescer exists for. With faults armed (or if
    // the fused launch itself dies) every stateless request goes
    // through the per-request recovery ladder instead, so each one
    // gets its own verify/repair/relaunch/degrade decision. Session
    // requests stay on the fused host path either way (their carry
    // lives in host StreamSessions).
    if (config.backend == ServerBackend::kGpusim) {
        bool device_done = config.fault_seed == 0;
        if (device_done) {
            std::vector<V> device_in;
            std::vector<kernels::CrossSegment> device_segs;
            std::vector<std::size_t> stateless;  // indices into group
            for (std::size_t i = 0; i < group.size(); ++i) {
                Pending& p = *group[i];
                if (p.done || streams[i] != nullptr)
                    continue;
                device_segs.push_back(
                    {device_in.size(), p.frame.payload.size()});
                for (std::uint32_t word : p.frame.payload)
                    device_in.push_back(kernels::bits_value<V>(word));
                stateless.push_back(i);
            }
            if (!stateless.empty()) {
                try {
                    gpusim::Device device;
                    const std::vector<V> y =
                        kernels::batched_segments_recurrence<Ring>(
                            device, plan.sig, device_in, device_segs, {});
                    for (std::size_t j = 0; j < stateless.size(); ++j) {
                        Pending& p = *group[stateless[j]];
                        ResponseFrame r;
                        r.wire_version = p.frame.wire_version;
                        r.request_id = p.frame.request_id;
                        r.tenant = p.frame.tenant;
                        r.batch =
                            static_cast<std::uint32_t>(stateless.size());
                        if (p.cache_hit)
                            r.flags |= kResponseFlagPlanCacheHit;
                        if (stateless.size() > 1)
                            r.flags |= kResponseFlagFusedBatch;
                        const auto slice =
                            std::span<const V>(y).subspan(
                                device_segs[j].offset, device_segs[j].length);
                        r.payload.reserve(slice.size());
                        for (V v : slice)
                            r.payload.push_back(kernels::value_bits(v));
                        ++served;
                        finish(p, std::move(r));
                    }
                } catch (const std::exception&) {
                    device_done = false;  // bottom rung: one at a time
                }
            }
        }
        if (!device_done) {
            for (std::size_t i = 0; i < group.size(); ++i) {
                Pending& p = *group[i];
                if (p.done || streams[i] != nullptr)
                    continue;
                std::vector<V> input(p.frame.payload.size());
                for (std::size_t j = 0; j < input.size(); ++j)
                    input[j] = kernels::bits_value<V>(p.frame.payload[j]);
                kernels::RunnerOptions ro;
                ro.backend = kernels::Backend::kSimulatedGpu;
                ro.on_failure = config.on_failure;
                ro.fault_seed = config.fault_seed;
                ro.verify = config.fault_seed != 0;
                // Per-launch budget: a hung device burns at most this
                // many watchdog polls before the typed LaunchError
                // hands it to the recovery ladder.
                ro.spin_watchdog = config.spin_watchdog;
                kernels::RecoveryReport recovery;
                ro.recovery_out = &recovery;
                try {
                    const std::vector<V> y =
                        kernels::run_recurrence(plan.sig, input, ro);
                    ResponseFrame r;
                    r.wire_version = p.frame.wire_version;
                    r.request_id = p.frame.request_id;
                    r.tenant = p.frame.tenant;
                    r.batch = 1;
                    if (p.cache_hit)
                        r.flags |= kResponseFlagPlanCacheHit;
                    if (recovery.stage != kernels::RecoveryStage::kClean) {
                        r.flags |= kResponseFlagRecovered;
                        ++recovered;
                    }
                    r.payload.reserve(y.size());
                    for (V v : y)
                        r.payload.push_back(kernels::value_bits(v));
                    ++served;
                    finish(p, std::move(r));
                } catch (const std::exception&) {
                    ++failed_launches;
                    finish(p, error_response(p.frame,
                                             ServerErrorKind::kLaunchFailed));
                }
            }
        }
    }

    // Fuse everything still pending into one cross-request launch.
    std::vector<V> fused;
    std::vector<kernels::CrossSegment> segments;
    std::vector<kernels::SegmentSeed<Ring>> seeds;
    std::vector<std::size_t> members;  // indices into group
    for (std::size_t i = 0; i < group.size(); ++i) {
        Pending& p = *group[i];
        if (p.done)
            continue;
        kernels::CrossSegment seg{fused.size(), p.frame.payload.size()};
        for (std::uint32_t word : p.frame.payload)
            fused.push_back(kernels::bits_value<V>(word));
        segments.push_back(seg);
        if (streams[i] != nullptr)
            seeds.push_back({streams[i]->state().y_tail,
                             streams[i]->state().x_tail});
        else
            seeds.push_back({});
        members.push_back(i);
    }
    if (members.empty())
        return;

    std::vector<V> out(fused.size());
    bool launched = false;
    try {
        kernels::batched_segments_cpu<Ring>(plan.sig, fused, segments, seeds,
                                            out, config.threads);
        launched = true;
    } catch (const std::exception&) {
        // Fused launch faulted: degrade to request-at-a-time serial —
        // the bottom rung of the recovery ladder.
    }
    const auto out_span = std::span<V>(out);
    for (std::size_t j = 0; j < members.size(); ++j) {
        Pending& p = *group[members[j]];
        const auto in_slice = std::span<const V>(fused).subspan(
            segments[j].offset, segments[j].length);
        auto slice = out_span.subspan(segments[j].offset, segments[j].length);
        if (!launched) {
            try {
                kernels::serial_recurrence_seeded_into<Ring>(
                    plan.sig, seeds[j].y_tail, seeds[j].x_tail, in_slice,
                    slice);
            } catch (const std::exception&) {
                ++failed_launches;
                finish(p, error_response(p.frame,
                                         ServerErrorKind::kLaunchFailed));
                continue;
            }
        }
        if (streams[members[j]] != nullptr)
            streams[members[j]]->advance(in_slice, slice);
        ResponseFrame r;
        r.wire_version = p.frame.wire_version;
        r.request_id = p.frame.request_id;
        r.tenant = p.frame.tenant;
        r.batch = static_cast<std::uint32_t>(members.size());
        if (p.cache_hit)
            r.flags |= kResponseFlagPlanCacheHit;
        if (members.size() > 1)
            r.flags |= kResponseFlagFusedBatch;
        if (!launched)
            r.flags |= kResponseFlagRecovered;
        r.payload.reserve(slice.size());
        for (V v : slice)
            r.payload.push_back(kernels::value_bits(v));
        if (streams[members[j]] != nullptr) {
            // Commit the session: persist carry + response as ONE
            // sealed record BEFORE answering. A crash on either side
            // of the save keeps exactly-once: before it, the client
            // never saw an answer and the old record replays or
            // recomputes the chunk from the old carry; after it, a
            // retried id replays the embedded response.
            if (store.has_value()) {
                try {
                    SessionRecord rec;
                    rec.tenant = p.frame.tenant;
                    rec.session = p.frame.session;
                    rec.last_request_id = p.frame.request_id;
                    rec.checkpoint = kernels::serialize_checkpoint(
                        streams[members[j]]->checkpoint());
                    rec.response = encode_response(r);
                    store->save(rec);
                } catch (const FatalError&) {
                    // The carry advanced in memory but is not durable;
                    // answering success would promise durability we do
                    // not have. Poison the session (memory and disk)
                    // and reject typed — the client restarts the
                    // stream, never resumes silently wrong.
                    {
                        std::lock_guard<std::mutex> lock(mu);
                        sessions.erase(
                            {p.frame.tenant, p.frame.session});
                    }
                    store->erase(p.frame.tenant, p.frame.session);
                    ++rejected_corrupt;
                    finish(p, error_response(
                                  p.frame, ServerErrorKind::kSessionCorrupt));
                    continue;
                }
            }
            std::lock_guard<std::mutex> lock(mu);
            auto sit = sessions.find({p.frame.tenant, p.frame.session});
            if (sit != sessions.end()) {
                sit->second.has_last = true;
                sit->second.last_request_id = p.frame.request_id;
                sit->second.last_response = r;
            }
        }
        ++served;
        finish(p, std::move(r));
    }
}

Server::Server(const ServerConfig& config) : impl_(new Impl(config))
{
    impl_->batcher = std::thread([this] { impl_->batcher_loop(); });
}

Server::~Server()
{
    shutdown();
}

ResponseFrame
Server::submit(const RequestFrame& frame)
{
    return impl_->submit(frame);
}

std::vector<std::uint8_t>
Server::handle(std::span<const std::uint8_t> bytes)
{
    RequestFrame frame;
    try {
        frame = parse_request(bytes);
    } catch (const FrameError&) {
        ++impl_->rejected_bad_frame;
        ResponseFrame r;
        // Echo the claimed version when it is one we speak, so an old
        // client can still parse its own rejection.
        if (bytes.size() >= 8) {
            const std::uint32_t claimed =
                static_cast<std::uint32_t>(bytes[4]) |
                (static_cast<std::uint32_t>(bytes[5]) << 8) |
                (static_cast<std::uint32_t>(bytes[6]) << 16) |
                (static_cast<std::uint32_t>(bytes[7]) << 24);
            if (claimed >= kWireMinFormatVersion &&
                claimed <= kWireFormatVersion)
                r.wire_version = claimed;
        }
        r.status = status_of(ServerErrorKind::kBadFrame);
        return encode_response(r);
    }
    return encode_response(submit(frame));
}

void
Server::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->stopping = true;
    }
    impl_->cv.notify_all();
    if (impl_->batcher.joinable())
        impl_->batcher.join();
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.accepted = impl_->accepted.load();
    s.served = impl_->served.load();
    s.rejected_overloaded = impl_->rejected_overloaded.load();
    s.rejected_bad_frame = impl_->rejected_bad_frame.load();
    s.rejected_plan = impl_->rejected_plan.load();
    s.rejected_session = impl_->rejected_session.load();
    s.failed_launches = impl_->failed_launches.load();
    s.batches = impl_->batches.load();
    s.fused_requests = impl_->fused_requests.load();
    s.max_batch_fused = impl_->max_batch_fused.load();
    s.recovered = impl_->recovered.load();
    s.shutdown_drained = impl_->shutdown_drained.load();
    s.rejected_deadline = impl_->rejected_deadline.load();
    s.retry_after_hints = impl_->retry_after_hints.load();
    s.replayed = impl_->replayed.load();
    s.joined_inflight = impl_->joined_inflight.load();
    s.sessions_resumed = impl_->sessions_resumed.load();
    s.rejected_corrupt = impl_->rejected_corrupt.load();
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        s.sessions = impl_->sessions.size();
    }
    s.plan_cache = impl_->cache.stats();
    return s;
}

void
Server::pause()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->paused = true;
}

void
Server::resume()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->paused = false;
    }
    impl_->cv.notify_all();
}

}  // namespace plr::server
