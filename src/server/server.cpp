#include "server/server.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <variant>

#include "kernels/batched.h"
#include "kernels/serial.h"
#include "kernels/stream.h"
#include "kernels/stream_state.h"
#include "server/error.h"
#include "util/ring.h"

namespace plr::server {

namespace {

ResponseFrame
error_response(const RequestFrame& frame, ServerErrorKind kind)
{
    ResponseFrame r;
    r.request_id = frame.request_id;
    r.tenant = frame.tenant;
    r.status = status_of(kind);
    return r;
}

}  // namespace

const char*
to_string(ServerErrorKind kind)
{
    switch (kind) {
      case ServerErrorKind::kBadFrame: return "bad-frame";
      case ServerErrorKind::kPlanRejected: return "plan-rejected";
      case ServerErrorKind::kOverloaded: return "overloaded";
      case ServerErrorKind::kSessionMismatch: return "session-mismatch";
      case ServerErrorKind::kLaunchFailed: return "launch-failed";
      case ServerErrorKind::kShutdown: return "shutdown";
    }
    return "unknown";
}

/** One admitted request waiting for (or receiving) its response. */
struct Server::Pending {
    RequestFrame frame;
    std::shared_ptr<const Plan> plan;
    bool cache_hit = false;
    /** Only the batcher touches these after admission. */
    bool done = false;
    std::promise<ResponseFrame> promise;
};

/** One (tenant, session) resumable stream. */
struct Server::Session {
    std::uint64_t plan_key = 0;
    std::variant<std::unique_ptr<kernels::StreamSession<IntRing>>,
                 std::unique_ptr<kernels::StreamSession<FloatRing>>,
                 std::unique_ptr<kernels::StreamSession<TropicalRing>>>
        stream;
};

struct Server::Impl {
    explicit Impl(const ServerConfig& c)
        : config(c), cache(c.plan_cache_capacity)
    {
    }

    ServerConfig config;
    PlanCache cache;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Pending>> queue;
    /** Queued + in-service requests per tenant. */
    std::map<std::uint64_t, std::size_t> inflight;
    std::map<std::pair<std::uint64_t, std::uint64_t>, Session> sessions;
    bool stopping = false;
    bool paused = false;
    std::thread batcher;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> rejected_overloaded{0};
    std::atomic<std::uint64_t> rejected_bad_frame{0};
    std::atomic<std::uint64_t> rejected_plan{0};
    std::atomic<std::uint64_t> rejected_session{0};
    std::atomic<std::uint64_t> failed_launches{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> fused_requests{0};
    std::atomic<std::uint64_t> max_batch_fused{0};
    std::atomic<std::uint64_t> recovered{0};
    std::atomic<std::uint64_t> shutdown_drained{0};

    ResponseFrame submit(const RequestFrame& frame);
    void batcher_loop();
    void serve_group(std::vector<std::shared_ptr<Pending>>& group);
    template <typename Ring>
    void run_group(std::vector<std::shared_ptr<Pending>>& group);

    static void
    finish(Pending& p, ResponseFrame r)
    {
        if (p.done)
            return;
        p.done = true;
        p.promise.set_value(std::move(r));
    }
};

ResponseFrame
Server::Impl::submit(const RequestFrame& frame)
{
    // Plan before admission: a request that cannot be planned must not
    // occupy a queue slot, and the cache probe is a parse + hash.
    std::shared_ptr<const Plan> plan;
    bool cache_hit = false;
    try {
        plan = cache.lookup(frame.signature_text, frame.domain, &cache_hit);
    } catch (const ServerError& error) {
        ++rejected_plan;
        return error_response(frame, error.kind());
    }

    auto pending = std::make_shared<Pending>();
    pending->frame = frame;
    pending->plan = std::move(plan);
    pending->cache_hit = cache_hit;
    auto future = pending->promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping) {
            ++shutdown_drained;
            return error_response(frame, ServerErrorKind::kShutdown);
        }
        if (queue.size() >= config.queue_depth) {
            ++rejected_overloaded;
            return error_response(frame, ServerErrorKind::kOverloaded);
        }
        auto it = inflight.find(frame.tenant);
        const std::size_t current = it == inflight.end() ? 0 : it->second;
        if (current >= config.tenant_inflight_cap) {
            ++rejected_overloaded;
            return error_response(frame, ServerErrorKind::kOverloaded);
        }
        inflight[frame.tenant] = current + 1;
        ++accepted;
        queue.push_back(pending);
    }
    cv.notify_all();
    return future.get();
}

void
Server::Impl::batcher_loop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cv.wait(lock,
                [&] { return stopping || (!paused && !queue.empty()); });
        if (stopping)
            break;

        // One coalescing round: take up to max_batch queued requests
        // sharing the front request's plan, at most one per live
        // session (a session's later requests need the carry this
        // round advances). Requests of other plans keep their order
        // and go in a later round.
        const std::size_t limit =
            config.batching ? std::max<std::size_t>(1, config.max_batch) : 1;

        std::vector<std::shared_ptr<Pending>> group;
        std::set<std::pair<std::uint64_t, std::uint64_t>> group_sessions;
        std::uint64_t key = 0;
        for (auto it = queue.begin();
             it != queue.end() && group.size() < limit;) {
            const auto& p = *it;
            if (!group.empty() && p->plan->key != key) {
                ++it;
                continue;
            }
            if (p->frame.session != 0 &&
                !group_sessions.insert({p->frame.tenant, p->frame.session})
                     .second) {
                ++it;
                continue;
            }
            key = p->plan->key;
            group.push_back(p);
            it = queue.erase(it);
        }

        lock.unlock();
        serve_group(group);
        lock.lock();

        ++batches;
        fused_requests += group.size();
        if (group.size() > max_batch_fused.load())
            max_batch_fused = group.size();
        for (const auto& p : group) {
            auto it = inflight.find(p->frame.tenant);
            if (it != inflight.end() && --it->second == 0)
                inflight.erase(it);
        }
    }

    // Drain: every queued request is answered, never dropped.
    while (!queue.empty()) {
        auto p = queue.front();
        queue.pop_front();
        ++shutdown_drained;
        auto it = inflight.find(p->frame.tenant);
        if (it != inflight.end() && --it->second == 0)
            inflight.erase(it);
        finish(*p, error_response(p->frame, ServerErrorKind::kShutdown));
    }
}

void
Server::Impl::serve_group(std::vector<std::shared_ptr<Pending>>& group)
{
    if (group.empty())
        return;
    try {
        switch (group.front()->frame.domain) {
          case kernels::Domain::kInt:
            run_group<IntRing>(group);
            break;
          case kernels::Domain::kFloat:
            run_group<FloatRing>(group);
            break;
          case kernels::Domain::kTropical:
            run_group<TropicalRing>(group);
            break;
        }
    } catch (...) {
        // Fall through to the per-request accounting below.
    }
    for (const auto& p : group) {
        if (!p->done) {
            ++failed_launches;
            finish(*p,
                   error_response(p->frame, ServerErrorKind::kLaunchFailed));
        }
    }
}

template <typename Ring>
void
Server::Impl::run_group(std::vector<std::shared_ptr<Pending>>& group)
{
    using V = typename Ring::value_type;
    using Stream = kernels::StreamSession<Ring>;
    const Plan& plan = *group.front()->plan;

    // Resolve sessions first: a mismatched session is rejected before
    // any carry state is touched.
    std::vector<Stream*> streams(group.size(), nullptr);
    {
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < group.size(); ++i) {
            Pending& p = *group[i];
            if (p.frame.session == 0)
                continue;
            const auto skey = std::make_pair(p.frame.tenant, p.frame.session);
            auto it = sessions.find(skey);
            if (it == sessions.end()) {
                Session s;
                s.plan_key = plan.key;
                s.stream = std::make_unique<Stream>(plan.sig, nullptr,
                                                    kernels::RunOptions{});
                it = sessions.emplace(skey, std::move(s)).first;
            } else if (it->second.plan_key != plan.key ||
                       !std::holds_alternative<std::unique_ptr<Stream>>(
                           it->second.stream)) {
                ++rejected_session;
                finish(p, error_response(
                              p.frame, ServerErrorKind::kSessionMismatch));
                continue;
            }
            streams[i] =
                std::get<std::unique_ptr<Stream>>(it->second.stream).get();
        }
    }

    // The simulated-GPU backend: with fault injection off, the whole
    // stateless side of the group goes up in ONE fused device launch
    // (batched_segments_recurrence) — the per-launch overhead
    // amortization the coalescer exists for. With faults armed (or if
    // the fused launch itself dies) every stateless request goes
    // through the per-request recovery ladder instead, so each one
    // gets its own verify/repair/relaunch/degrade decision. Session
    // requests stay on the fused host path either way (their carry
    // lives in host StreamSessions).
    if (config.backend == ServerBackend::kGpusim) {
        bool device_done = config.fault_seed == 0;
        if (device_done) {
            std::vector<V> device_in;
            std::vector<kernels::CrossSegment> device_segs;
            std::vector<std::size_t> stateless;  // indices into group
            for (std::size_t i = 0; i < group.size(); ++i) {
                Pending& p = *group[i];
                if (p.done || streams[i] != nullptr)
                    continue;
                device_segs.push_back(
                    {device_in.size(), p.frame.payload.size()});
                for (std::uint32_t word : p.frame.payload)
                    device_in.push_back(kernels::bits_value<V>(word));
                stateless.push_back(i);
            }
            if (!stateless.empty()) {
                try {
                    gpusim::Device device;
                    const std::vector<V> y =
                        kernels::batched_segments_recurrence<Ring>(
                            device, plan.sig, device_in, device_segs, {});
                    for (std::size_t j = 0; j < stateless.size(); ++j) {
                        Pending& p = *group[stateless[j]];
                        ResponseFrame r;
                        r.request_id = p.frame.request_id;
                        r.tenant = p.frame.tenant;
                        r.batch =
                            static_cast<std::uint32_t>(stateless.size());
                        if (p.cache_hit)
                            r.flags |= kResponseFlagPlanCacheHit;
                        if (stateless.size() > 1)
                            r.flags |= kResponseFlagFusedBatch;
                        const auto slice =
                            std::span<const V>(y).subspan(
                                device_segs[j].offset, device_segs[j].length);
                        r.payload.reserve(slice.size());
                        for (V v : slice)
                            r.payload.push_back(kernels::value_bits(v));
                        ++served;
                        finish(p, std::move(r));
                    }
                } catch (const std::exception&) {
                    device_done = false;  // bottom rung: one at a time
                }
            }
        }
        if (!device_done) {
            for (std::size_t i = 0; i < group.size(); ++i) {
                Pending& p = *group[i];
                if (p.done || streams[i] != nullptr)
                    continue;
                std::vector<V> input(p.frame.payload.size());
                for (std::size_t j = 0; j < input.size(); ++j)
                    input[j] = kernels::bits_value<V>(p.frame.payload[j]);
                kernels::RunnerOptions ro;
                ro.backend = kernels::Backend::kSimulatedGpu;
                ro.on_failure = config.on_failure;
                ro.fault_seed = config.fault_seed;
                ro.verify = config.fault_seed != 0;
                kernels::RecoveryReport recovery;
                ro.recovery_out = &recovery;
                try {
                    const std::vector<V> y =
                        kernels::run_recurrence(plan.sig, input, ro);
                    ResponseFrame r;
                    r.request_id = p.frame.request_id;
                    r.tenant = p.frame.tenant;
                    r.batch = 1;
                    if (p.cache_hit)
                        r.flags |= kResponseFlagPlanCacheHit;
                    if (recovery.stage != kernels::RecoveryStage::kClean) {
                        r.flags |= kResponseFlagRecovered;
                        ++recovered;
                    }
                    r.payload.reserve(y.size());
                    for (V v : y)
                        r.payload.push_back(kernels::value_bits(v));
                    ++served;
                    finish(p, std::move(r));
                } catch (const std::exception&) {
                    ++failed_launches;
                    finish(p, error_response(p.frame,
                                             ServerErrorKind::kLaunchFailed));
                }
            }
        }
    }

    // Fuse everything still pending into one cross-request launch.
    std::vector<V> fused;
    std::vector<kernels::CrossSegment> segments;
    std::vector<kernels::SegmentSeed<Ring>> seeds;
    std::vector<std::size_t> members;  // indices into group
    for (std::size_t i = 0; i < group.size(); ++i) {
        Pending& p = *group[i];
        if (p.done)
            continue;
        kernels::CrossSegment seg{fused.size(), p.frame.payload.size()};
        for (std::uint32_t word : p.frame.payload)
            fused.push_back(kernels::bits_value<V>(word));
        segments.push_back(seg);
        if (streams[i] != nullptr)
            seeds.push_back({streams[i]->state().y_tail,
                             streams[i]->state().x_tail});
        else
            seeds.push_back({});
        members.push_back(i);
    }
    if (members.empty())
        return;

    std::vector<V> out(fused.size());
    bool launched = false;
    try {
        kernels::batched_segments_cpu<Ring>(plan.sig, fused, segments, seeds,
                                            out, config.threads);
        launched = true;
    } catch (const std::exception&) {
        // Fused launch faulted: degrade to request-at-a-time serial —
        // the bottom rung of the recovery ladder.
    }
    const auto out_span = std::span<V>(out);
    for (std::size_t j = 0; j < members.size(); ++j) {
        Pending& p = *group[members[j]];
        const auto in_slice = std::span<const V>(fused).subspan(
            segments[j].offset, segments[j].length);
        auto slice = out_span.subspan(segments[j].offset, segments[j].length);
        if (!launched) {
            try {
                kernels::serial_recurrence_seeded_into<Ring>(
                    plan.sig, seeds[j].y_tail, seeds[j].x_tail, in_slice,
                    slice);
            } catch (const std::exception&) {
                ++failed_launches;
                finish(p, error_response(p.frame,
                                         ServerErrorKind::kLaunchFailed));
                continue;
            }
        }
        if (streams[members[j]] != nullptr)
            streams[members[j]]->advance(in_slice, slice);
        ResponseFrame r;
        r.request_id = p.frame.request_id;
        r.tenant = p.frame.tenant;
        r.batch = static_cast<std::uint32_t>(members.size());
        if (p.cache_hit)
            r.flags |= kResponseFlagPlanCacheHit;
        if (members.size() > 1)
            r.flags |= kResponseFlagFusedBatch;
        if (!launched)
            r.flags |= kResponseFlagRecovered;
        r.payload.reserve(slice.size());
        for (V v : slice)
            r.payload.push_back(kernels::value_bits(v));
        ++served;
        finish(p, std::move(r));
    }
}

Server::Server(const ServerConfig& config) : impl_(new Impl(config))
{
    impl_->batcher = std::thread([this] { impl_->batcher_loop(); });
}

Server::~Server()
{
    shutdown();
}

ResponseFrame
Server::submit(const RequestFrame& frame)
{
    return impl_->submit(frame);
}

std::vector<std::uint8_t>
Server::handle(std::span<const std::uint8_t> bytes)
{
    RequestFrame frame;
    try {
        frame = parse_request(bytes);
    } catch (const FrameError&) {
        ++impl_->rejected_bad_frame;
        ResponseFrame r;
        r.status = status_of(ServerErrorKind::kBadFrame);
        return encode_response(r);
    }
    return encode_response(submit(frame));
}

void
Server::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->stopping = true;
    }
    impl_->cv.notify_all();
    if (impl_->batcher.joinable())
        impl_->batcher.join();
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.accepted = impl_->accepted.load();
    s.served = impl_->served.load();
    s.rejected_overloaded = impl_->rejected_overloaded.load();
    s.rejected_bad_frame = impl_->rejected_bad_frame.load();
    s.rejected_plan = impl_->rejected_plan.load();
    s.rejected_session = impl_->rejected_session.load();
    s.failed_launches = impl_->failed_launches.load();
    s.batches = impl_->batches.load();
    s.fused_requests = impl_->fused_requests.load();
    s.max_batch_fused = impl_->max_batch_fused.load();
    s.recovered = impl_->recovered.load();
    s.shutdown_drained = impl_->shutdown_drained.load();
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        s.sessions = impl_->sessions.size();
    }
    s.plan_cache = impl_->cache.stats();
    return s;
}

void
Server::pause()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->paused = true;
}

void
Server::resume()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->paused = false;
    }
    impl_->cv.notify_all();
}

}  // namespace plr::server
