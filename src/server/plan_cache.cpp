#include "server/plan_cache.h"

#include "kernels/checkpoint.h"
#include "server/error.h"

namespace plr::server {

namespace {

static_analysis::ValueDomain
value_domain_of(kernels::Domain domain)
{
    switch (domain) {
      case kernels::Domain::kInt: return static_analysis::ValueDomain::kInt32;
      case kernels::Domain::kFloat:
        return static_analysis::ValueDomain::kFloat32;
      case kernels::Domain::kTropical:
        return static_analysis::ValueDomain::kMaxPlus;
    }
    return static_analysis::ValueDomain::kInt32;
}

[[noreturn]] void
reject_plan(const std::string& detail)
{
    throw ServerError(ServerErrorKind::kPlanRejected,
                      "plan rejected: " + detail);
}

/** The miss path: parse, validate, analyze, decide — once. */
std::shared_ptr<const Plan>
compile_plan(const std::string& text, kernels::Domain domain)
{
    auto plan = std::make_shared<Plan>();
    plan->domain = domain;
    try {
        plan->sig = Signature::parse(text);
    } catch (const FatalError& error) {
        reject_plan(error.what());
    }
    // The DSL cannot spell max-plus; the domain field selects the
    // semiring, so rebuild the parsed coefficients under it.
    if (domain == kernels::Domain::kTropical)
        plan->sig = Signature::max_plus(plan->sig.a(), plan->sig.b());
    if (domain == kernels::Domain::kInt && !plan->sig.is_integral())
        reject_plan("int-domain request with non-integral coefficients in " +
                    plan->sig.to_string());
    // The carry state must fit the checkpoint wire bounds, or sessions
    // over this plan could never seal a resumable state.
    if (plan->sig.order() > kernels::kCheckpointMaxOrder)
        reject_plan("order " + std::to_string(plan->sig.order()) +
                    " above the carry bound " +
                    std::to_string(kernels::kCheckpointMaxOrder));
    if (plan->sig.fir_taps() > kernels::kCheckpointMaxTaps)
        reject_plan("fir taps " + std::to_string(plan->sig.fir_taps()) +
                    " above the carry bound " +
                    std::to_string(kernels::kCheckpointMaxTaps));

    plan->key = kernels::signature_hash(plan->sig, domain);
    const auto vd = value_domain_of(domain);
    plan->report = static_analysis::analyze(plan->sig, vd);
    plan->simd = static_analysis::choose_simd_path(
        plan->sig, vd, static_analysis::FirstOrderMode::kAuto);
    return plan;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
}

std::shared_ptr<const Plan>
PlanCache::lookup(const std::string& text, kernels::Domain domain, bool* hit)
{
    // Parsing is needed to derive the key at all, so a probe costs one
    // parse + hash; the analyze()/choose_simd_path() plan body is what
    // the cache amortizes.
    Signature sig({1.0}, {1.0});
    try {
        sig = Signature::parse(text);
    } catch (const FatalError& error) {
        reject_plan(error.what());
    }
    if (domain == kernels::Domain::kTropical)
        sig = Signature::max_plus(sig.a(), sig.b());
    const std::uint64_t key = kernels::signature_hash(sig, domain);

    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = by_key_.find(key);
        if (it != by_key_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            if (hit)
                *hit = true;
            return lru_.front();
        }
    }

    // Compile outside the lock: a slow analyze() of one novel signature
    // must not stall every concurrent hit.
    std::shared_ptr<const Plan> plan = compile_plan(text, domain);

    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        // A concurrent miss compiled it first; use the incumbent.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        if (hit)
            *hit = true;
        return lru_.front();
    }
    ++misses_;
    if (hit)
        *hit = false;
    lru_.push_front(plan);
    by_key_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        by_key_.erase(lru_.back()->key);
        lru_.pop_back();
        ++evictions_;
    }
    return plan;
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {hits_, misses_, evictions_, lru_.size()};
}

}  // namespace plr::server
