#include "server/transport.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace plr::server {

namespace {

[[noreturn]] void
reject(FrameErrorKind kind, const std::string& detail)
{
    throw FrameError(kind,
                     std::string("frame ") + to_string(kind) + ": " + detail);
}

/**
 * Read exactly @p len bytes unless EOF intervenes. Returns the bytes
 * actually read (< len only at EOF); EINTR is retried, other errno
 * failures throw FrameError(kIo).
 */
std::size_t
read_fully(int fd, std::uint8_t* buf, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t got = ::read(fd, buf + off, len - off);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            reject(FrameErrorKind::kIo,
                   std::string("read() failed: ") + std::strerror(errno));
        }
        if (got == 0)
            break;  // EOF
        off += static_cast<std::size_t>(got);
    }
    return off;
}

void
write_fully(int fd, const std::uint8_t* buf, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t put = ::write(fd, buf + off, len - off);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            reject(FrameErrorKind::kIo,
                   std::string("write() failed: ") + std::strerror(errno));
        }
        if (put == 0)
            reject(FrameErrorKind::kIo, "write() moved zero bytes");
        off += static_cast<std::size_t>(put);
    }
}

}  // namespace

std::optional<std::vector<std::uint8_t>>
read_frame(int fd, std::uint32_t max_bytes)
{
    std::uint8_t len_bytes[4];
    const std::size_t got = read_fully(fd, len_bytes, 4);
    if (got == 0)
        return std::nullopt;  // clean EOF at a frame boundary
    if (got < 4)
        reject(FrameErrorKind::kTruncated,
               "EOF after " + std::to_string(got) +
                   " of 4 length-prefix bytes");
    const std::uint32_t len = static_cast<std::uint32_t>(len_bytes[0]) |
                              (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
                              (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
                              (static_cast<std::uint32_t>(len_bytes[3]) << 24);
    if (len == 0)
        reject(FrameErrorKind::kMalformed, "zero-length frame");
    if (len > max_bytes)
        reject(FrameErrorKind::kMalformed,
               "frame length " + std::to_string(len) + " above the " +
                   std::to_string(max_bytes) + "-byte transport bound");
    std::vector<std::uint8_t> frame(len);
    const std::size_t body = read_fully(fd, frame.data(), len);
    if (body < len)
        reject(FrameErrorKind::kTruncated,
               "EOF after " + std::to_string(body) + " of " +
                   std::to_string(len) + " frame bytes");
    return frame;
}

void
write_frame(int fd, std::span<const std::uint8_t> frame)
{
    const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
    const std::uint8_t len_bytes[4] = {
        static_cast<std::uint8_t>(len & 0xff),
        static_cast<std::uint8_t>((len >> 8) & 0xff),
        static_cast<std::uint8_t>((len >> 16) & 0xff),
        static_cast<std::uint8_t>((len >> 24) & 0xff),
    };
    write_fully(fd, len_bytes, 4);
    write_fully(fd, frame.data(), frame.size());
}

ConnectionSummary
serve_connection(Server& server, int fd)
{
    ConnectionSummary summary;
    try {
        for (;;) {
            const auto frame = read_frame(fd);
            if (!frame.has_value()) {
                summary.clean_eof = true;
                break;
            }
            const auto response = server.handle(*frame);
            write_frame(fd, response);
            ++summary.frames_served;
        }
    } catch (const FrameError& error) {
        summary.error = error.what();
    }
    return summary;
}

}  // namespace plr::server
