#ifndef PLR_SERVER_TRANSPORT_H_
#define PLR_SERVER_TRANSPORT_H_

/**
 * @file
 * Fault-hardened length-prefixed framing over a byte-stream fd
 * (docs/SERVER.md).
 *
 * Each frame on the wire is a little-endian u32 byte length followed
 * by that many frame bytes, both directions. POSIX read()/write() may
 * return short or be interrupted at ANY byte of that — a partial read
 * of the 4-byte length prefix must not desync the stream, and EINTR
 * is not end-of-stream. These helpers loop until the full count moves
 * (retrying EINTR) and turn every failure into a typed FrameError:
 *
 *   - clean EOF at a frame boundary     -> read_frame returns nullopt
 *   - EOF inside a prefix or body       -> FrameError(kTruncated)
 *   - length 0 or above the bound       -> FrameError(kMalformed)
 *   - read()/write() errno failures     -> FrameError(kIo)
 *
 * A frame with a *valid* length whose bytes then fail wire validation
 * is NOT a transport error: it is handed to Server::handle, answered
 * with a typed kBadFrame response, and the connection lives on (a
 * garbage flood costs the flooder, not the neighbors). A broken
 * length prefix, by contrast, makes the byte stream unrecoverable —
 * serve_connection drops that connection, alone.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "server/server.h"

namespace plr::server {

/** Transport sanity bound: a frame longer than this is a bad client. */
inline constexpr std::uint32_t kMaxTransportFrameBytes = 1u << 27;

/**
 * Read one length-prefixed frame. Returns nullopt on clean EOF (the
 * peer closed between frames); throws FrameError on everything else
 * (see the taxonomy above). Retries EINTR; loops on short reads.
 */
std::optional<std::vector<std::uint8_t>> read_frame(
    int fd, std::uint32_t max_bytes = kMaxTransportFrameBytes);

/**
 * Write one frame as length prefix + body, looping on short writes
 * and retrying EINTR. Throws FrameError(kIo) when the fd fails.
 */
void write_frame(int fd, std::span<const std::uint8_t> frame);

/** What one connection did before it ended (for logs and tests). */
struct ConnectionSummary {
    /** Frames answered (including typed kBadFrame rejections). */
    std::uint64_t frames_served = 0;
    /** true = the peer closed cleanly at a frame boundary. */
    bool clean_eof = false;
    /** FrameError text when the transport died mid-frame; empty on a
        clean EOF. */
    std::string error;
};

/**
 * Serve length-prefixed frames from @p fd through @p server until the
 * peer closes or the transport fails. Never throws and never closes
 * @p fd — the caller owns its lifetime.
 */
ConnectionSummary serve_connection(Server& server, int fd);

}  // namespace plr::server

#endif  // PLR_SERVER_TRANSPORT_H_
