#ifndef PLR_SERVER_ERROR_H_
#define PLR_SERVER_ERROR_H_

/**
 * @file
 * The server's failure taxonomy (docs/SERVER.md). Every request either
 * succeeds or is answered with exactly one of these kinds — the server
 * never drops a request on the floor and never wedges a client.
 */

#include <cstdint>
#include <string>

#include "util/diag.h"

namespace plr::server {

/** Why a request was not served. */
enum class ServerErrorKind {
    /** The frame failed wire validation (FrameError). */
    kBadFrame,
    /** The frame parsed but its signature cannot be planned: DSL parse
        failure, order 0, an int-domain request with non-integral
        coefficients, or carry shape outside the wire bounds. */
    kPlanRejected,
    /** Admission control: the bounded queue is full or the tenant is
        over its in-flight cap. Retry later — backpressure, not error. */
    kOverloaded,
    /** A session id was reused with a different signature or domain. */
    kSessionMismatch,
    /** The launch (and every recovery rung) failed. */
    kLaunchFailed,
    /** The server is draining; no new work is accepted. */
    kShutdown,
    /** The request's deadline passed before (or while) it could be
        served; no work was committed on its behalf. */
    kDeadlineExceeded,
    /** Backpressure with a hint: retry after the response's
        retry_after_ms. Only sent to wire-v2 clients (v1 clients get
        kOverloaded, which carries no hint field). */
    kRetryAfter,
    /** A durable session record exists but failed its seal or shape
        validation; the stream cannot be resumed safely. */
    kSessionCorrupt,
};

/** Stable lowercase name ("overloaded", "bad-frame", ...). */
const char* to_string(ServerErrorKind kind);

/** Wire status code of an error kind (0 is reserved for success). */
constexpr std::uint32_t
status_of(ServerErrorKind kind)
{
    return static_cast<std::uint32_t>(kind) + 1;
}

/**
 * Typed server-side rejection. Derives FatalError: a rejected request
 * is caller-visible state, not a library bug.
 */
class ServerError : public FatalError {
  public:
    ServerError(ServerErrorKind kind, const std::string& what)
        : FatalError(what), kind_(kind)
    {
    }

    ServerErrorKind kind() const { return kind_; }

  private:
    ServerErrorKind kind_;
};

}  // namespace plr::server

#endif  // PLR_SERVER_ERROR_H_
