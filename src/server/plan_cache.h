#ifndef PLR_SERVER_PLAN_CACHE_H_
#define PLR_SERVER_PLAN_CACHE_H_

/**
 * @file
 * The compiled-plan cache (docs/SERVER.md): parse + static-analyze +
 * choose the SIMD path once per distinct (signature, domain), serve
 * every later request from the cached Plan. Keyed by the FNV-1a
 * signature hash from kernels/checkpoint.h — two requests share an
 * entry iff they evaluate the same recurrence in the same ring, however
 * their DSL text was spelled. LRU eviction bounds the footprint against
 * a million-tenant signature churn; hit/miss/eviction counters feed the
 * server stats and the load bench.
 */

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analysis/static/analyzer.h"
#include "core/signature.h"
#include "kernels/registry.h"

namespace plr::server {

/** Everything planned once per (signature, domain). */
struct Plan {
    /** Parsed signature; rebuilt max-plus for the tropical domain. */
    Signature sig;
    kernels::Domain domain = kernels::Domain::kInt;
    /** signature_hash(sig, domain) — the cache key. */
    std::uint64_t key = 0;
    /** Plan-time verdicts (docs/STATIC_ANALYSIS.md). */
    static_analysis::StaticReport report;
    /** The analyzer's Phase-1 path decision. */
    static_analysis::SimdPathDecision simd;

    Plan() : sig({1.0}, {1.0}) {}
};

/** Point-in-time cache counters. */
struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
};

/**
 * Thread-safe LRU cache of compiled Plans.
 *
 * lookup() throws ServerError(kPlanRejected) when the text cannot be
 * planned (DSL parse failure, order 0, int domain with non-integral
 * coefficients, carry shape outside the wire-format bounds); rejections
 * are not cached — they are cheap to re-derive and must not evict real
 * plans.
 */
class PlanCache {
  public:
    explicit PlanCache(std::size_t capacity);

    /**
     * Return the plan for @p text in @p domain, compiling it on a miss.
     * @p hit, when non-null, receives whether the plan was served from
     * the cache.
     */
    std::shared_ptr<const Plan> lookup(const std::string& text,
                                       kernels::Domain domain,
                                       bool* hit = nullptr);

    PlanCacheStats stats() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    /** Most recently used first. */
    std::list<std::shared_ptr<const Plan>> lru_;
    std::unordered_map<std::uint64_t,
                       std::list<std::shared_ptr<const Plan>>::iterator>
        by_key_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace plr::server

#endif  // PLR_SERVER_PLAN_CACHE_H_
