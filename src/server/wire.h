#ifndef PLR_SERVER_WIRE_H_
#define PLR_SERVER_WIRE_H_

/**
 * @file
 * The recurrence-serving wire format (docs/SERVER.md).
 *
 * Requests and responses travel as length-prefixed binary frames —
 * over a local socket (examples/plr_server.cpp) or an in-process queue
 * (server.h). The frame body is versioned, endian-stable, and sealed
 * with the same Fletcher-32 the checkpoint format uses
 * (kernels/checkpoint.h), so a torn read, a flipped bit, or a frame
 * from a different build is rejected with a typed FrameError — never
 * dispatched as a silently wrong request.
 *
 * Two format versions are live. Version 1 (the PR 9 format) is still
 * accepted byte-for-byte: a v1 client talks to this server unchanged
 * and gets v1 responses back. Version 2 adds the resilience fields —
 * a per-request deadline, an idempotent-retry flag, and a retry-after
 * backpressure hint in responses. The parser accepts either version
 * and records which one it saw (RequestFrame::wire_version); the
 * server answers in the version the request spoke.
 *
 * Request frame layout (all fields little-endian):
 *
 *   offset  size  field
 *        0     4  magic "PLRQ"
 *        4     4  u32 format version (1 or 2)
 *        8     8  u64 request id (client-chosen; echoed in the response)
 *       16     8  u64 tenant id
 *       24     8  u64 session id (0 = stateless one-shot)
 *       32     4  u32 domain (0 int, 1 float, 2 tropical)
 *       36     4  u32 flags (v1: must be 0; v2: kRequestFlag* bits)
 *    [v2] 40    4  u32 deadline_ms (0 = no deadline)
 *        ..     4  u32 signature text length in bytes (s)
 *        ..     4  u32 payload element count (n)
 *        ..   s..  signature text, NUL-padded to a 4-byte boundary
 *        ..    4n  payload element bit patterns
 *     end-4     4  u32 Fletcher-32 over every preceding 32-bit word
 *
 * (v1 header is 48 bytes — no deadline word; v2 is 52.)
 *
 * The signature travels as DSL text ("(1 : 2, -1)"); the text cannot
 * express max-plus, so domain=tropical instructs the server to rebuild
 * the parsed coefficients with Signature::max_plus. Payload elements
 * are the 32-bit bit patterns of the domain's value type
 * (kernels/stream_state.h value_bits/bits_value).
 *
 * The (tenant, request id) pair is the idempotency key: a request
 * carrying kRequestFlagIdempotent that reuses a key replays the sealed
 * original response from the server's replay cache instead of being
 * recomputed (docs/SERVER.md).
 *
 * Response frame layout:
 *
 *   offset  size  field
 *        0     4  magic "PLRS"
 *        4     4  u32 format version (echoes the request's version)
 *        8     8  u64 request id (echoed)
 *       16     8  u64 tenant id (echoed)
 *       24     4  u32 status (0 = ok; else ServerErrorKind code + 1)
 *       28     4  u32 flags (kResponseFlag* bits below)
 *       32     4  u32 batch — segments in the fused launch that served
 *                  this request (1 = ran alone)
 *    [v2] 36    4  u32 retry_after_ms (nonzero only with kRetryAfter)
 *        ..     4  u32 payload element count (n)
 *        ..   4n   output element bit patterns
 *     end-4     4  u32 Fletcher-32 seal
 *
 * (v1 header is 40 bytes — no retry_after word; v2 is 44.)
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernels/registry.h"
#include "util/diag.h"

namespace plr::server {

/** Newest format version this build writes and understands. */
inline constexpr std::uint32_t kWireFormatVersion = 2;

/** Oldest format version still accepted (v1 clients keep working). */
inline constexpr std::uint32_t kWireMinFormatVersion = 1;

/** Magic prefixes of request and response frames. */
inline constexpr char kRequestMagic[4] = {'P', 'L', 'R', 'Q'};
inline constexpr char kResponseMagic[4] = {'P', 'L', 'R', 'S'};

/** Format-level sanity bounds (far above any real request). */
inline constexpr std::uint32_t kMaxSignatureText = 4096;
inline constexpr std::uint32_t kMaxPayloadElements = 1u << 24;

/** Why a frame was rejected (mirrors CheckpointErrorKind). */
enum class FrameErrorKind {
    /** First four bytes are not the expected magic. */
    kBadMagic,
    /** Format version is outside [kWireMinFormatVersion,
        kWireFormatVersion]. */
    kVersionSkew,
    /** Fewer bytes than the header + payload declare. */
    kTruncated,
    /** Sizes/fields are internally inconsistent (trailing bytes,
        unknown domain, reserved flags set, bounds exceeded). */
    kMalformed,
    /** Fletcher-32 seal does not match. */
    kCorrupt,
    /** Transport-level read/write failure (server/transport.h). */
    kIo,
};

/** Stable lowercase name ("truncated", "corrupt", ...). */
const char* to_string(FrameErrorKind kind);

/**
 * Typed rejection of a frame parse. Derives FatalError: a bad frame is
 * caller-visible input, not a library bug, and must never surface as a
 * silently wrong request or response.
 */
class FrameError : public FatalError {
  public:
    FrameError(FrameErrorKind kind, const std::string& what)
        : FatalError(what), kind_(kind)
    {
    }

    FrameErrorKind kind() const { return kind_; }

  private:
    FrameErrorKind kind_;
};

/** Request flag bits (wire v2 only; v1 requires flags == 0). */
inline constexpr std::uint32_t kRequestFlagIdempotent = 1u << 0;

/** Every request flag bit this build understands. */
inline constexpr std::uint32_t kRequestFlagsMask = kRequestFlagIdempotent;

/** In-memory form of a request frame. */
struct RequestFrame {
    /** Format version to encode as / that was parsed. */
    std::uint32_t wire_version = kWireFormatVersion;
    std::uint64_t request_id = 0;
    std::uint64_t tenant = 0;
    /** 0 = stateless one-shot; nonzero = resumable session stream. */
    std::uint64_t session = 0;
    kernels::Domain domain = kernels::Domain::kInt;
    /** kRequestFlag* bits (v2; always 0 on a v1 frame). */
    std::uint32_t flags = 0;
    /** Client deadline in milliseconds from admission; 0 = none (v2). */
    std::uint32_t deadline_ms = 0;
    std::string signature_text;
    /** Input element bit patterns (value_bits of the domain's type). */
    std::vector<std::uint32_t> payload;
};

/** Response status: 0 is success, else ServerErrorKind code + 1. */
inline constexpr std::uint32_t kStatusOk = 0;

/** Response flag bits. */
inline constexpr std::uint32_t kResponseFlagPlanCacheHit = 1u << 0;
inline constexpr std::uint32_t kResponseFlagFusedBatch = 1u << 1;
inline constexpr std::uint32_t kResponseFlagRecovered = 1u << 2;
/** Served from the replay cache / durable session record, not
    recomputed — the retried request got the sealed original answer. */
inline constexpr std::uint32_t kResponseFlagReplayed = 1u << 3;

/** In-memory form of a response frame. */
struct ResponseFrame {
    /** Format version to encode as (echoes the request's version). */
    std::uint32_t wire_version = kWireFormatVersion;
    std::uint64_t request_id = 0;
    std::uint64_t tenant = 0;
    std::uint32_t status = kStatusOk;
    std::uint32_t flags = 0;
    /** Segments in the fused launch that served this request. */
    std::uint32_t batch = 0;
    /** Backpressure hint in milliseconds (v2; nonzero only when status
        is kRetryAfter's code). */
    std::uint32_t retry_after_ms = 0;
    /** Output element bit patterns (empty on error). */
    std::vector<std::uint32_t> payload;
};

/** Serialize a request to the sealed byte layout above. */
std::vector<std::uint8_t> encode_request(const RequestFrame& frame);

/**
 * Parse and verify a request frame. Throws FrameError — every byte of
 * the input is validated before any field is trusted.
 */
RequestFrame parse_request(std::span<const std::uint8_t> bytes);

/** Serialize a response to the sealed byte layout above. */
std::vector<std::uint8_t> encode_response(const ResponseFrame& frame);

/** Parse and verify a response frame (client side). Throws FrameError. */
ResponseFrame parse_response(std::span<const std::uint8_t> bytes);

}  // namespace plr::server

#endif  // PLR_SERVER_WIRE_H_
