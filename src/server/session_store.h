#ifndef PLR_SERVER_SESSION_STORE_H_
#define PLR_SERVER_SESSION_STORE_H_

/**
 * @file
 * Durable (tenant, session) records: crash-recoverable stream state
 * (docs/SERVER.md).
 *
 * A server crash must not cost a tenant its stream, and a client retry
 * of the last chunk after a crash must not advance the stream twice.
 * Both require the same invariant: the session's carry state and the
 * response that produced it persist ATOMICALLY, as one sealed record —
 * two separate files would always leave a crash window in which one
 * exists without the other, and either ordering turns that window into
 * a silently wrong answer (a lost advance or a double advance).
 *
 * A record bundles the session's sealed carry checkpoint
 * (kernels/checkpoint.h) with the sealed wire response
 * (server/wire.h) of the last request committed to it, keyed by that
 * request's id. On restart the server lazily reloads the record,
 * resumes the StreamSession from the embedded checkpoint, and — when
 * the first request after the crash repeats the last committed
 * request id — replays the embedded response instead of recomputing
 * (exactly-once across kill -9).
 *
 * Record layout (all fields little-endian):
 *
 *   offset  size  field
 *        0     4  magic "PLRD"
 *        4     4  u32 format version (kSessionRecordVersion)
 *        8     8  u64 tenant id
 *       16     8  u64 session id
 *       24     8  u64 last committed request id
 *       32     4  u32 checkpoint byte length (c; multiple of 4)
 *       36     4  u32 response byte length (r; multiple of 4)
 *       40     c  serialized checkpoint (itself sealed)
 *     40+c     r  encoded response frame (itself sealed)
 *     end-4    4  u32 Fletcher-32 over every preceding 32-bit word
 *
 * Records are written atomically (tmp file + rename) so a crash
 * mid-write leaves either the old record or the new one — never a
 * torn mix. Damage of any kind is a typed SessionStoreError; the
 * server surfaces it as kSessionCorrupt, never a wrong resume.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/diag.h"

namespace plr::server {

/** Serialized record version this build writes and understands. */
inline constexpr std::uint32_t kSessionRecordVersion = 1;

/** Magic prefix of every session record file. */
inline constexpr char kSessionRecordMagic[4] = {'P', 'L', 'R', 'D'};

/** Why a session record was rejected (mirrors CheckpointErrorKind). */
enum class SessionStoreErrorKind {
    /** File or directory could not be read/written/created. */
    kIo,
    /** First four bytes are not "PLRD". */
    kBadMagic,
    /** Record version is not kSessionRecordVersion. */
    kVersionSkew,
    /** Fewer bytes than the header declares (torn write). */
    kTruncated,
    /** Sizes/fields are internally inconsistent. */
    kMalformed,
    /** Fletcher-32 seal does not match. */
    kCorrupt,
};

/** Stable lowercase name ("truncated", "corrupt", ...). */
const char* to_string(SessionStoreErrorKind kind);

/**
 * Typed rejection of a session record load or save. Derives
 * FatalError: a damaged record is caller-visible state, not a library
 * bug, and must never resume as a silently wrong stream.
 */
class SessionStoreError : public FatalError {
  public:
    SessionStoreError(SessionStoreErrorKind kind, const std::string& what)
        : FatalError(what), kind_(kind)
    {
    }

    SessionStoreErrorKind kind() const { return kind_; }

  private:
    SessionStoreErrorKind kind_;
};

/** In-memory form of one durable session record. */
struct SessionRecord {
    std::uint64_t tenant = 0;
    std::uint64_t session = 0;
    /** Request id of the last request committed to this session. */
    std::uint64_t last_request_id = 0;
    /** serialize_checkpoint() bytes of the post-commit carry state. */
    std::vector<std::uint8_t> checkpoint;
    /** encode_response() bytes of that request's response. */
    std::vector<std::uint8_t> response;
};

/** Serialize to the sealed byte layout above. */
std::vector<std::uint8_t> serialize_session_record(const SessionRecord& rec);

/**
 * Parse and verify a session record. Throws SessionStoreError — every
 * byte is validated before any field is trusted. The embedded
 * checkpoint and response carry their own seals and are validated by
 * their own parsers when used.
 */
SessionRecord parse_session_record(std::span<const std::uint8_t> bytes);

/**
 * A directory of session records, one file per (tenant, session).
 * Thread-compatible: the server serializes access under its own lock.
 */
class SessionStore {
  public:
    /** Opens (creating if needed) @p dir. Throws SessionStoreError(kIo). */
    explicit SessionStore(std::string dir);

    const std::string& dir() const { return dir_; }

    /** File path a (tenant, session) record lives at. */
    std::string path_for(std::uint64_t tenant, std::uint64_t session) const;

    /** Atomically persist @p rec (tmp + rename). Throws on failure. */
    void save(const SessionRecord& rec) const;

    /**
     * Load the record for (tenant, session). Returns nullopt when no
     * record exists; throws SessionStoreError when one exists but is
     * damaged (the caller surfaces kSessionCorrupt, never resumes).
     */
    std::optional<SessionRecord> load(std::uint64_t tenant,
                                      std::uint64_t session) const;

    /** Remove the record for (tenant, session), if any. */
    void erase(std::uint64_t tenant, std::uint64_t session) const;

    /** Every (tenant, session) with a record on disk (sorted). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> list() const;

  private:
    std::string dir_;
};

}  // namespace plr::server

#endif  // PLR_SERVER_SESSION_STORE_H_
