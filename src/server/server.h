#ifndef PLR_SERVER_SERVER_H_
#define PLR_SERVER_SERVER_H_

/**
 * @file
 * Recurrence-as-a-service (docs/SERVER.md): a multi-tenant front end
 * over the kernel stack for ROADMAP item 2's million-user scenario.
 *
 * Requests enter through submit() (in-process) or handle() (wire
 * frames, server/wire.h) and pass admission control — a bounded queue
 * plus per-tenant in-flight caps; over-limit requests are answered
 * kOverloaded immediately (backpressure), never silently dropped or
 * wedged. Admitted requests are planned once per distinct signature
 * through the LRU PlanCache (server/plan_cache.h) and handed to the
 * batching coalescer: a single batcher thread drains the queue and
 * fuses concurrent same-plan requests into one cross-request segment
 * launch (kernels/batched.h) with per-tenant carry reset — many small
 * scans pay one dispatch instead of one each. Session requests
 * (session id != 0) keep a StreamSession (kernels/stream.h) per
 * (tenant, session): fused launches seed from its carry state and
 * commit their outputs back through StreamSession::advance(), so a
 * tenant's chunked stream resumes bit-identically across requests.
 *
 * The simulated-GPU backend serves a clean device with one fused
 * batched_segments_recurrence launch per coalescing round — the
 * per-launch overhead amortization bench/server_load.cpp gates. With
 * fault injection armed (or if the fused launch dies) stateless
 * requests fall back to run_recurrence's per-request recovery ladder
 * (kernels/runner.h): faulted launches are repaired, relaunched, or
 * degraded to the CPU per the configured FailurePolicy, and survivors
 * carry kResponseFlagRecovered.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernels/runner.h"
#include "server/plan_cache.h"
#include "server/wire.h"

namespace plr::server {

/** Which engine serves stateless requests. */
enum class ServerBackend {
    /** Fused cross-request segment launches on the host. */
    kFusedCpu,
    /** Fused batched launches on the simulated GPU; per-request PLR
        kernels behind the recovery ladder when fault injection is
        armed. Session requests still use the fused host path — their
        carry lives in host StreamSessions. */
    kGpusim,
};

/** Server tuning. */
struct ServerConfig {
    /** Bounded admission queue; a full queue answers kOverloaded. */
    std::size_t queue_depth = 256;
    /** Per-tenant in-flight cap (queued + being served). */
    std::size_t tenant_inflight_cap = 16;
    /** Distinct compiled plans kept (LRU beyond this). */
    std::size_t plan_cache_capacity = 64;
    /** Most requests fused into one launch. */
    std::size_t max_batch = 64;
    /** false = request-at-a-time through the same pipeline (the load
        bench's A/B control for the fused-batch speedup gate). */
    bool batching = true;
    /** Host threads for fused launches (0 = shared pool default). */
    std::size_t threads = 0;
    ServerBackend backend = ServerBackend::kFusedCpu;
    /** Fault-injection seed for the simulated-GPU backend (0 = off). */
    std::uint64_t fault_seed = 0;
    /** What the recovery ladder does when the GPU launch fails. */
    kernels::FailurePolicy on_failure =
        kernels::FailurePolicy::kDegradeToCpu;
    /** Deadline applied to wire-v2 requests that carry none
        (milliseconds; 0 = no server-side default). */
    std::uint32_t default_deadline_ms = 0;
    /** Sealed responses kept for idempotent replay (LRU beyond this;
        0 disables the replay cache). */
    std::size_t replay_cache_capacity = 1024;
    /** Directory of durable (tenant, session) records; empty keeps
        session carries in memory only (lost on crash). */
    std::string session_store_dir;
    /** Admission-control cost model: projected per-request dispatch
        and per-element work, in nanoseconds. A request whose projected
        queue wait already exceeds its deadline is rejected
        kDeadlineExceeded at admission instead of timing out inside. */
    std::uint64_t admission_ns_per_request = 50'000;
    std::uint64_t admission_ns_per_element = 20;
    /** Spin-watchdog bound for simulated-GPU launches (polls; 0 =
        backend default) — the per-launch budget that turns a hung
        device into a typed LaunchError for the recovery ladder. */
    std::uint64_t spin_watchdog = 0;
};

/**
 * Overlay the PLR_SERVER_* environment knobs onto @p base:
 * PLR_SERVER_DEADLINE_MS, PLR_SERVER_REPLAY_CAPACITY, and
 * PLR_SERVER_SESSION_STORE (util/env.h). Malformed values are fatal
 * with the knob named, never silently ignored.
 */
ServerConfig server_config_from_env(ServerConfig base = {});

/** Point-in-time server counters. */
struct ServerStats {
    std::uint64_t accepted = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected_overloaded = 0;
    std::uint64_t rejected_bad_frame = 0;
    std::uint64_t rejected_plan = 0;
    std::uint64_t rejected_session = 0;
    std::uint64_t failed_launches = 0;
    /** Fused launches dispatched, and requests they carried. */
    std::uint64_t batches = 0;
    std::uint64_t fused_requests = 0;
    std::uint64_t max_batch_fused = 0;
    /** GPU-backend runs that needed any recovery rung. */
    std::uint64_t recovered = 0;
    /** Requests answered kShutdown while draining. */
    std::uint64_t shutdown_drained = 0;
    /** Requests rejected kDeadlineExceeded (admission or in-queue). */
    std::uint64_t rejected_deadline = 0;
    /** Backpressure rejections that carried a kRetryAfter hint. */
    std::uint64_t retry_after_hints = 0;
    /** Idempotent retries answered from a sealed original response
        (replay cache or durable session record), not recomputed. */
    std::uint64_t replayed = 0;
    /** Idempotent retries that joined a still-in-flight original. */
    std::uint64_t joined_inflight = 0;
    /** Sessions resumed from durable records after a restart. */
    std::uint64_t sessions_resumed = 0;
    /** Requests rejected kSessionCorrupt (damaged durable record). */
    std::uint64_t rejected_corrupt = 0;
    std::size_t sessions = 0;
    PlanCacheStats plan_cache;
};

/**
 * The in-process server. One batcher thread; submit() may be called
 * from any number of client threads concurrently.
 */
class Server {
  public:
    explicit Server(const ServerConfig& config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Serve one request, blocking until its response is ready. Every
     * outcome is a response — rejections carry the typed status code,
     * never an exception.
     */
    ResponseFrame submit(const RequestFrame& frame);

    /**
     * Wire entry: parse the frame, serve it, encode the response. A
     * frame failing validation is answered with status kBadFrame
     * (request id 0 — the id cannot be trusted from a bad frame).
     */
    std::vector<std::uint8_t> handle(std::span<const std::uint8_t> bytes);

    /**
     * Stop accepting work, answer every queued request kShutdown, and
     * join the batcher. Idempotent; the destructor calls it.
     */
    void shutdown();

    ServerStats stats() const;

    /**
     * Test hooks: freeze the batcher so concurrent submissions pile up
     * behind it, then release them — the only way a test can *prove*
     * coalescing (N paused requests must come back with batch == N).
     */
    void pause();
    void resume();

  private:
    struct Pending;
    struct Session;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace plr::server

#endif  // PLR_SERVER_SERVER_H_
