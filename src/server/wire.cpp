#include "server/wire.h"

#include <cstring>
#include <sstream>

#include "kernels/verify.h"

namespace plr::server {

namespace {

/** Fixed request-header bytes before the variable sections. */
constexpr std::size_t kRequestHeaderBytesV1 = 48;
constexpr std::size_t kRequestHeaderBytesV2 = 52;
/** Fixed response-header bytes before the payload. */
constexpr std::size_t kResponseHeaderBytesV1 = 40;
constexpr std::size_t kResponseHeaderBytesV2 = 44;
/** Trailing Fletcher-32 seal. */
constexpr std::size_t kSealBytes = 4;

std::size_t
request_header_bytes(std::uint32_t version)
{
    return version >= 2 ? kRequestHeaderBytesV2 : kRequestHeaderBytesV1;
}

std::size_t
response_header_bytes(std::uint32_t version)
{
    return version >= 2 ? kResponseHeaderBytesV2 : kResponseHeaderBytesV1;
}

void
put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
get_u32(std::span<const std::uint8_t> bytes, std::size_t offset)
{
    return static_cast<std::uint32_t>(bytes[offset]) |
           (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

std::uint64_t
get_u64(std::span<const std::uint8_t> bytes, std::size_t offset)
{
    return static_cast<std::uint64_t>(get_u32(bytes, offset)) |
           (static_cast<std::uint64_t>(get_u32(bytes, offset + 4)) << 32);
}

/** Signature text bytes rounded up to whole 32-bit words. */
std::size_t
padded_text_bytes(std::size_t text_len)
{
    return (text_len + 3) / 4 * 4;
}

/** Fletcher-32 over the byte range decoded as little-endian words. */
std::uint32_t
seal_over(std::span<const std::uint8_t> bytes)
{
    std::vector<std::uint32_t> words(bytes.size() / 4);
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] = get_u32(bytes, w * 4);
    return kernels::fletcher32(words.data(), words.size());
}

[[noreturn]] void
reject(FrameErrorKind kind, const std::string& detail)
{
    throw FrameError(kind,
                     std::string("frame ") + to_string(kind) + ": " + detail);
}

/**
 * The magic/version/length validation shared by both frame kinds.
 * Returns the (accepted) format version; every reject throws. The
 * caller picks its header size from the returned version.
 */
std::uint32_t
check_envelope(std::span<const std::uint8_t> bytes, const char (&magic)[4],
               std::size_t (*header_bytes)(std::uint32_t))
{
    if (bytes.size() < sizeof(magic))
        reject(FrameErrorKind::kTruncated,
               "only " + std::to_string(bytes.size()) +
                   " bytes, shorter than the magic");
    if (std::memcmp(bytes.data(), magic, sizeof(magic)) != 0)
        reject(FrameErrorKind::kBadMagic,
               std::string("frame does not start with \"") +
                   std::string(magic, 4) + "\"");
    if (bytes.size() < 8)
        reject(FrameErrorKind::kTruncated,
               "header ends before the format version");
    const std::uint32_t version = get_u32(bytes, 4);
    if (version < kWireMinFormatVersion || version > kWireFormatVersion)
        reject(FrameErrorKind::kVersionSkew,
               "format version " + std::to_string(version) +
                   ", this build speaks versions " +
                   std::to_string(kWireMinFormatVersion) + ".." +
                   std::to_string(kWireFormatVersion));
    if (bytes.size() < header_bytes(version))
        reject(FrameErrorKind::kTruncated,
               "header is " + std::to_string(bytes.size()) + " of " +
                   std::to_string(header_bytes(version)) + " bytes");
    return version;
}

/** Verify the trailing seal once the exact frame size is known. */
void
check_seal(std::span<const std::uint8_t> bytes, std::size_t expected)
{
    if (bytes.size() < expected)
        reject(FrameErrorKind::kTruncated,
               std::to_string(bytes.size()) + " of " +
                   std::to_string(expected) + " bytes (torn read?)");
    if (bytes.size() > expected)
        reject(FrameErrorKind::kMalformed,
               std::to_string(bytes.size() - expected) +
                   " trailing bytes after the seal");
    const std::uint32_t stored = get_u32(bytes, expected - kSealBytes);
    const std::uint32_t computed =
        seal_over(bytes.subspan(0, expected - kSealBytes));
    if (stored != computed) {
        std::ostringstream what;
        what << "Fletcher-32 seal mismatch (stored 0x" << std::hex << stored
             << ", computed 0x" << computed << ")";
        reject(FrameErrorKind::kCorrupt, what.str());
    }
}

}  // namespace

const char*
to_string(FrameErrorKind kind)
{
    switch (kind) {
      case FrameErrorKind::kBadMagic: return "bad-magic";
      case FrameErrorKind::kVersionSkew: return "version-skew";
      case FrameErrorKind::kTruncated: return "truncated";
      case FrameErrorKind::kMalformed: return "malformed";
      case FrameErrorKind::kCorrupt: return "corrupt";
      case FrameErrorKind::kIo: return "io";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encode_request(const RequestFrame& frame)
{
    PLR_REQUIRE(frame.wire_version >= kWireMinFormatVersion &&
                    frame.wire_version <= kWireFormatVersion,
                "wire version " << frame.wire_version
                                << " is not encodable by this build");
    PLR_REQUIRE(frame.signature_text.size() <= kMaxSignatureText,
                "signature text exceeds " << kMaxSignatureText << " bytes");
    PLR_REQUIRE(frame.payload.size() <= kMaxPayloadElements,
                "payload exceeds " << kMaxPayloadElements << " elements");
    PLR_REQUIRE((frame.flags & ~kRequestFlagsMask) == 0,
                "unknown request flag bits 0x" << std::hex << frame.flags);
    const bool v2 = frame.wire_version >= 2;
    PLR_REQUIRE(v2 || (frame.flags == 0 && frame.deadline_ms == 0),
                "flags/deadline are wire-v2 fields; a v1 frame cannot "
                "carry them");
    const std::size_t padded = padded_text_bytes(frame.signature_text.size());
    std::vector<std::uint8_t> out;
    out.reserve(request_header_bytes(frame.wire_version) + padded +
                4 * frame.payload.size() + kSealBytes);
    for (char c : kRequestMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    put_u32(out, frame.wire_version);
    put_u64(out, frame.request_id);
    put_u64(out, frame.tenant);
    put_u64(out, frame.session);
    put_u32(out, static_cast<std::uint32_t>(frame.domain));
    put_u32(out, frame.flags);
    if (v2)
        put_u32(out, frame.deadline_ms);
    put_u32(out, static_cast<std::uint32_t>(frame.signature_text.size()));
    put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
    for (char c : frame.signature_text)
        out.push_back(static_cast<std::uint8_t>(c));
    for (std::size_t i = frame.signature_text.size(); i < padded; ++i)
        out.push_back(0);
    for (std::uint32_t word : frame.payload)
        put_u32(out, word);
    put_u32(out, seal_over(out));
    return out;
}

RequestFrame
parse_request(std::span<const std::uint8_t> bytes)
{
    const std::uint32_t version =
        check_envelope(bytes, kRequestMagic, request_header_bytes);
    const std::size_t header = request_header_bytes(version);

    const std::uint32_t domain = get_u32(bytes, 32);
    if (domain > static_cast<std::uint32_t>(kernels::Domain::kTropical))
        reject(FrameErrorKind::kMalformed,
               "unknown domain id " + std::to_string(domain));
    const std::uint32_t flags = get_u32(bytes, 36);
    if (version < 2 && flags != 0)
        reject(FrameErrorKind::kMalformed,
               "reserved v1 request flags 0x" + std::to_string(flags) +
                   " must be zero");
    if ((flags & ~kRequestFlagsMask) != 0)
        reject(FrameErrorKind::kMalformed,
               "unknown request flag bits 0x" + std::to_string(flags));
    const std::uint32_t deadline_ms = version >= 2 ? get_u32(bytes, 40) : 0;
    const std::uint32_t text_len = get_u32(bytes, header - 8);
    if (text_len > kMaxSignatureText)
        reject(FrameErrorKind::kMalformed,
               "signature text length " + std::to_string(text_len) +
                   " above " + std::to_string(kMaxSignatureText));
    const std::uint32_t n = get_u32(bytes, header - 4);
    if (n > kMaxPayloadElements)
        reject(FrameErrorKind::kMalformed,
               "payload count " + std::to_string(n) + " above " +
                   std::to_string(kMaxPayloadElements));
    const std::size_t padded = padded_text_bytes(text_len);
    const std::size_t expected =
        header + padded + 4 * std::size_t{n} + kSealBytes;
    check_seal(bytes, expected);

    // Padding bytes beyond the text must be NUL so every frame has one
    // canonical encoding (a covert channel in the pad would also dodge
    // the fuzzer's byte-identity checks).
    for (std::size_t i = text_len; i < padded; ++i)
        if (bytes[header + i] != 0)
            reject(FrameErrorKind::kMalformed,
                   "nonzero signature padding byte at offset " +
                       std::to_string(header + i));

    RequestFrame frame;
    frame.wire_version = version;
    frame.request_id = get_u64(bytes, 8);
    frame.tenant = get_u64(bytes, 16);
    frame.session = get_u64(bytes, 24);
    frame.domain = static_cast<kernels::Domain>(domain);
    frame.flags = flags;
    frame.deadline_ms = deadline_ms;
    frame.signature_text.assign(
        reinterpret_cast<const char*>(bytes.data()) + header, text_len);
    frame.payload.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        frame.payload[i] = get_u32(bytes, header + padded + 4 * i);
    return frame;
}

std::vector<std::uint8_t>
encode_response(const ResponseFrame& frame)
{
    PLR_REQUIRE(frame.wire_version >= kWireMinFormatVersion &&
                    frame.wire_version <= kWireFormatVersion,
                "wire version " << frame.wire_version
                                << " is not encodable by this build");
    PLR_REQUIRE(frame.payload.size() <= kMaxPayloadElements,
                "payload exceeds " << kMaxPayloadElements << " elements");
    const bool v2 = frame.wire_version >= 2;
    PLR_REQUIRE(v2 || frame.retry_after_ms == 0,
                "retry_after_ms is a wire-v2 field; a v1 frame cannot "
                "carry it");
    std::vector<std::uint8_t> out;
    out.reserve(response_header_bytes(frame.wire_version) +
                4 * frame.payload.size() + kSealBytes);
    for (char c : kResponseMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    put_u32(out, frame.wire_version);
    put_u64(out, frame.request_id);
    put_u64(out, frame.tenant);
    put_u32(out, frame.status);
    put_u32(out, frame.flags);
    put_u32(out, frame.batch);
    if (v2)
        put_u32(out, frame.retry_after_ms);
    put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
    for (std::uint32_t word : frame.payload)
        put_u32(out, word);
    put_u32(out, seal_over(out));
    return out;
}

ResponseFrame
parse_response(std::span<const std::uint8_t> bytes)
{
    const std::uint32_t version =
        check_envelope(bytes, kResponseMagic, response_header_bytes);
    const std::size_t header = response_header_bytes(version);

    const std::uint32_t n = get_u32(bytes, header - 4);
    if (n > kMaxPayloadElements)
        reject(FrameErrorKind::kMalformed,
               "payload count " + std::to_string(n) + " above " +
                   std::to_string(kMaxPayloadElements));
    const std::size_t expected = header + 4 * std::size_t{n} + kSealBytes;
    check_seal(bytes, expected);

    ResponseFrame frame;
    frame.wire_version = version;
    frame.request_id = get_u64(bytes, 8);
    frame.tenant = get_u64(bytes, 16);
    frame.status = get_u32(bytes, 24);
    frame.flags = get_u32(bytes, 28);
    frame.batch = get_u32(bytes, 32);
    frame.retry_after_ms = version >= 2 ? get_u32(bytes, 36) : 0;
    frame.payload.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        frame.payload[i] = get_u32(bytes, header + 4 * i);
    return frame;
}

}  // namespace plr::server
