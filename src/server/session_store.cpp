#include "server/session_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "kernels/verify.h"

namespace plr::server {

namespace {

namespace fs = std::filesystem;

/** Fixed header bytes before the two variable sections. */
constexpr std::size_t kRecordHeaderBytes = 40;
constexpr std::size_t kSealBytes = 4;

void
put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
get_u32(std::span<const std::uint8_t> bytes, std::size_t offset)
{
    return static_cast<std::uint32_t>(bytes[offset]) |
           (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

std::uint64_t
get_u64(std::span<const std::uint8_t> bytes, std::size_t offset)
{
    return static_cast<std::uint64_t>(get_u32(bytes, offset)) |
           (static_cast<std::uint64_t>(get_u32(bytes, offset + 4)) << 32);
}

/** Fletcher-32 over the byte range decoded as little-endian words. */
std::uint32_t
seal_over(std::span<const std::uint8_t> bytes)
{
    std::vector<std::uint32_t> words(bytes.size() / 4);
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] = get_u32(bytes, w * 4);
    return kernels::fletcher32(words.data(), words.size());
}

[[noreturn]] void
reject(SessionStoreErrorKind kind, const std::string& detail)
{
    throw SessionStoreError(kind, std::string("session record ") +
                                      to_string(kind) + ": " + detail);
}

}  // namespace

const char*
to_string(SessionStoreErrorKind kind)
{
    switch (kind) {
      case SessionStoreErrorKind::kIo: return "io";
      case SessionStoreErrorKind::kBadMagic: return "bad-magic";
      case SessionStoreErrorKind::kVersionSkew: return "version-skew";
      case SessionStoreErrorKind::kTruncated: return "truncated";
      case SessionStoreErrorKind::kMalformed: return "malformed";
      case SessionStoreErrorKind::kCorrupt: return "corrupt";
    }
    return "unknown";
}

std::vector<std::uint8_t>
serialize_session_record(const SessionRecord& rec)
{
    PLR_REQUIRE(rec.checkpoint.size() % 4 == 0,
                "checkpoint bytes not word-aligned");
    PLR_REQUIRE(rec.response.size() % 4 == 0,
                "response bytes not word-aligned");
    std::vector<std::uint8_t> out;
    out.reserve(kRecordHeaderBytes + rec.checkpoint.size() +
                rec.response.size() + kSealBytes);
    for (char c : kSessionRecordMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    put_u32(out, kSessionRecordVersion);
    put_u64(out, rec.tenant);
    put_u64(out, rec.session);
    put_u64(out, rec.last_request_id);
    put_u32(out, static_cast<std::uint32_t>(rec.checkpoint.size()));
    put_u32(out, static_cast<std::uint32_t>(rec.response.size()));
    out.insert(out.end(), rec.checkpoint.begin(), rec.checkpoint.end());
    out.insert(out.end(), rec.response.begin(), rec.response.end());
    put_u32(out, seal_over(out));
    return out;
}

SessionRecord
parse_session_record(std::span<const std::uint8_t> bytes)
{
    if (bytes.size() < sizeof(kSessionRecordMagic))
        reject(SessionStoreErrorKind::kTruncated,
               "only " + std::to_string(bytes.size()) +
                   " bytes, shorter than the magic");
    if (std::memcmp(bytes.data(), kSessionRecordMagic,
                    sizeof(kSessionRecordMagic)) != 0)
        reject(SessionStoreErrorKind::kBadMagic,
               "record does not start with \"PLRD\"");
    if (bytes.size() < 8)
        reject(SessionStoreErrorKind::kTruncated,
               "header ends before the record version");
    const std::uint32_t version = get_u32(bytes, 4);
    if (version != kSessionRecordVersion)
        reject(SessionStoreErrorKind::kVersionSkew,
               "record version " + std::to_string(version) +
                   ", this build speaks version " +
                   std::to_string(kSessionRecordVersion));
    if (bytes.size() < kRecordHeaderBytes)
        reject(SessionStoreErrorKind::kTruncated,
               "header is " + std::to_string(bytes.size()) + " of " +
                   std::to_string(kRecordHeaderBytes) + " bytes");
    const std::uint32_t ckpt_len = get_u32(bytes, 32);
    const std::uint32_t resp_len = get_u32(bytes, 36);
    if (ckpt_len % 4 != 0 || resp_len % 4 != 0)
        reject(SessionStoreErrorKind::kMalformed,
               "section lengths are not word-aligned");
    const std::size_t expected = kRecordHeaderBytes + std::size_t{ckpt_len} +
                                 std::size_t{resp_len} + kSealBytes;
    if (bytes.size() < expected)
        reject(SessionStoreErrorKind::kTruncated,
               std::to_string(bytes.size()) + " of " +
                   std::to_string(expected) + " bytes (torn write?)");
    if (bytes.size() > expected)
        reject(SessionStoreErrorKind::kMalformed,
               std::to_string(bytes.size() - expected) +
                   " trailing bytes after the seal");
    const std::uint32_t stored = get_u32(bytes, expected - kSealBytes);
    const std::uint32_t computed =
        seal_over(bytes.subspan(0, expected - kSealBytes));
    if (stored != computed) {
        std::ostringstream what;
        what << "Fletcher-32 seal mismatch (stored 0x" << std::hex << stored
             << ", computed 0x" << computed << ")";
        reject(SessionStoreErrorKind::kCorrupt, what.str());
    }

    SessionRecord rec;
    rec.tenant = get_u64(bytes, 8);
    rec.session = get_u64(bytes, 16);
    rec.last_request_id = get_u64(bytes, 24);
    rec.checkpoint.assign(bytes.begin() + kRecordHeaderBytes,
                          bytes.begin() + kRecordHeaderBytes + ckpt_len);
    rec.response.assign(
        bytes.begin() + kRecordHeaderBytes + ckpt_len,
        bytes.begin() + kRecordHeaderBytes + ckpt_len + resp_len);
    return rec;
}

SessionStore::SessionStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        reject(SessionStoreErrorKind::kIo,
               "cannot create session store directory " + dir_ +
                   (ec ? ": " + ec.message() : ""));
}

std::string
SessionStore::path_for(std::uint64_t tenant, std::uint64_t session) const
{
    return dir_ + "/t" + std::to_string(tenant) + "-s" +
           std::to_string(session) + ".plrd";
}

void
SessionStore::save(const SessionRecord& rec) const
{
    const std::vector<std::uint8_t> bytes = serialize_session_record(rec);
    const std::string path = path_for(rec.tenant, rec.session);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            reject(SessionStoreErrorKind::kIo, "cannot open " + tmp);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out)
            reject(SessionStoreErrorKind::kIo, "cannot write " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        reject(SessionStoreErrorKind::kIo,
               "cannot rename " + tmp + " into place: " + ec.message());
}

std::optional<SessionRecord>
SessionStore::load(std::uint64_t tenant, std::uint64_t session) const
{
    const std::string path = path_for(tenant, session);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (in.bad())
        reject(SessionStoreErrorKind::kIo, "cannot read " + path);
    SessionRecord rec = parse_session_record(bytes);
    if (rec.tenant != tenant || rec.session != session)
        reject(SessionStoreErrorKind::kMalformed,
               path + " holds the record of (tenant " +
                   std::to_string(rec.tenant) + ", session " +
                   std::to_string(rec.session) + ")");
    return rec;
}

void
SessionStore::erase(std::uint64_t tenant, std::uint64_t session) const
{
    std::error_code ec;
    fs::remove(path_for(tenant, session), ec);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
SessionStore::list() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        std::uint64_t tenant = 0, session = 0;
        if (std::sscanf(name.c_str(), "t%" SCNu64 "-s%" SCNu64 ".plrd",
                        &tenant, &session) == 2)
            keys.emplace_back(tenant, session);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

}  // namespace plr::server
