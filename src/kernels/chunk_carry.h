#ifndef PLR_KERNELS_CHUNK_CARRY_H_
#define PLR_KERNELS_CHUNK_CARRY_H_

/**
 * @file
 * The sequential chunk-boundary carry fix-up shared by the native CPU
 * backends (cpu_parallel, cpu_simd).
 *
 * After Phase A computes each chunk's recurrence with zero initial
 * state, the true last-k values flowing into chunk c are obtained by
 * walking the boundaries left to right and correcting each chunk's
 * local tail with the carries of the previous boundary — the paper's
 * O(chunks * k^2) sequential fix-up between the two parallel phases.
 */

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "core/correction_factors.h"
#include "util/diag.h"

namespace plr::kernels {

/**
 * Compute the k carries flowing INTO each chunk. @p y holds the Phase-A
 * per-chunk results (chunk c covering [c*chunk, min((c+1)*chunk, n))),
 * @p factors the correction factors generated for @p chunk. Returns a
 * flat array with the carries for chunk c at [c*k .. c*k + k); chunk 0
 * receives @p seed — the k output values preceding the input, newest
 * first (seed[d] = y[-1-d]), as restored from a streaming checkpoint
 * (docs/STREAMING.md) — or ring zeros when @p seed is empty (a stream
 * start: values before the sequence are zero). A seeded walk folds the
 * seed into every boundary exactly as if the preceding elements had
 * been part of this run, so callers must also Phase-B-correct chunk 0.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
advance_chunk_carries(std::span<const typename Ring::value_type> y,
                      std::size_t chunk, std::size_t num_chunks,
                      std::size_t k, const CorrectionFactors<Ring>& factors,
                      std::span<const typename Ring::value_type> seed = {})
{
    using V = typename Ring::value_type;
    PLR_ASSERT(seed.empty() || seed.size() == k,
               "carry seed must hold exactly k values");
    const std::size_t n = y.size();
    std::vector<V> carries(num_chunks * k, Ring::zero());
    std::vector<V> carry(k, Ring::zero());
    std::vector<V> next(k, Ring::zero());
    if (!seed.empty() && num_chunks > 0) {
        std::copy(seed.begin(), seed.end(), carry.begin());
        std::copy(seed.begin(), seed.end(), carries.begin());
    }
    for (std::size_t c = 1; c < num_chunks; ++c) {
        const std::size_t prev_base = (c - 1) * chunk;
        const std::size_t prev_len = std::min(chunk, n - prev_base);
        std::fill(next.begin(), next.end(), Ring::zero());
        for (std::size_t j = 1; j <= k && j <= prev_len; ++j) {
            V acc = y[prev_base + prev_len - j];
            const std::size_t o = prev_len - j;
            for (std::size_t i = 1; i <= k; ++i)
                acc = Ring::mul_add(acc, factors.factor(i, o), carry[i - 1]);
            next[j - 1] = acc;
        }
        // A chunk shorter than k (callers normally round chunks up to k,
        // so only degenerate splits hit this): the remaining carries are
        // the previous boundary's own carries, slid past the short chunk.
        for (std::size_t j = prev_len + 1; j <= k; ++j)
            next[j - 1] = carry[j - prev_len - 1];
        carry.swap(next);
        std::copy(carry.begin(), carry.end(),
                  carries.begin() + static_cast<std::ptrdiff_t>(c * k));
    }
    return carries;
}

}  // namespace plr::kernels

#endif  // PLR_KERNELS_CHUNK_CARRY_H_
