#include "kernels/batched.h"

#include <algorithm>

#include "kernels/serial.h"
#include "util/thread_pool.h"

namespace plr::kernels {

namespace {

/** Shared precondition checks of the fused segment launches. */
void
validate_segments(const Signature& sig, std::size_t n,
                  std::span<const CrossSegment> segments,
                  std::size_t seed_count)
{
    PLR_REQUIRE(sig.order() >= 1, "batched segments need order >= 1");
    PLR_REQUIRE(seed_count == 0 || seed_count == segments.size(),
                "seeds must be empty or one per segment ("
                    << seed_count << " for " << segments.size()
                    << " segments)");
    for (const CrossSegment& seg : segments) {
        PLR_REQUIRE(seg.length <= n && seg.offset <= n - seg.length,
                    "segment [" << seg.offset << ", +" << seg.length
                                << ") exceeds input size " << n);
    }
    // Overlapping segments would race on the fused output array.
    std::vector<CrossSegment> sorted(segments.begin(), segments.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const CrossSegment& l, const CrossSegment& r) {
                  return l.offset < r.offset;
              });
    for (std::size_t s = 1; s < sorted.size(); ++s) {
        PLR_REQUIRE(sorted[s - 1].offset + sorted[s - 1].length <=
                        sorted[s].offset,
                    "segments overlap at offset " << sorted[s].offset);
    }
}

}  // namespace

template <typename Ring>
std::vector<typename Ring::value_type>
batched_recurrence(gpusim::Device& device, const Signature& sig,
                   std::span<const typename Ring::value_type> input,
                   std::size_t rows, std::size_t cols, Axis axis,
                   BatchedRunStats* stats)
{
    using V = typename Ring::value_type;
    const std::size_t n = rows * cols;
    PLR_REQUIRE(input.size() == n,
                "input size " << input.size() << " != " << rows << "x"
                              << cols);
    PLR_REQUIRE(sig.order() >= 1, "batched recurrence needs order >= 1");

    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    std::vector<V> b(sig.order());
    for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = Ring::from_coefficient(sig.b()[j]);

    auto in = device.alloc<V>(n, "batched.input");
    auto out = device.alloc<V>(n, "batched.output");
    device.upload<V>(in, input);
    const auto before = device.snapshot();

    const std::size_t lines = axis == Axis::kRows ? rows : cols;
    const std::size_t length = axis == Axis::kRows ? cols : rows;
    const std::size_t stride = axis == Axis::kRows ? 1 : cols;

    device.launch(lines, [&](gpusim::BlockContext& ctx) {
        const std::size_t line = ctx.block_index();
        const std::size_t base =
            axis == Axis::kRows ? line * cols : line;

        // Load the line: contiguous for rows; for columns the accesses of
        // the blocks in a wave interleave and coalesce.
        std::vector<V> x(length);
        if (axis == Axis::kRows) {
            ctx.ld_bulk<V>(in, base, x);
        } else {
            for (std::size_t i = 0; i < length; ++i)
                x[i] = ctx.ld_coalesced(in, base + i * stride);
        }

        std::vector<V> y(length);
        for (std::size_t i = 0; i < length; ++i) {
            V acc = Ring::zero();
            for (std::size_t j = 0; j < a.size() && j <= i; ++j) {
                acc = Ring::mul_add(acc, a[j], x[i - j]);
                ctx.count_flop(2);
            }
            for (std::size_t j = 1; j <= b.size() && j <= i; ++j) {
                acc = Ring::mul_add(acc, b[j - 1], y[i - j]);
                ctx.count_flop(2);
            }
            y[i] = acc;
        }

        if (axis == Axis::kRows) {
            ctx.st_bulk<V>(out, base, std::span<const V>(y));
        } else {
            for (std::size_t i = 0; i < length; ++i)
                ctx.st(out, base + i * stride, y[i]);
        }
    });

    auto result = device.download<V>(out);
    if (stats) {
        stats->lines = lines;
        stats->counters = device.snapshot() - before;
    }
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

template std::vector<std::int32_t>
batched_recurrence<IntRing>(gpusim::Device&, const Signature&,
                            std::span<const std::int32_t>, std::size_t,
                            std::size_t, Axis, BatchedRunStats*);
template std::vector<float>
batched_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                              std::span<const float>, std::size_t,
                              std::size_t, Axis, BatchedRunStats*);
template std::vector<float>
batched_recurrence<TropicalRing>(gpusim::Device&, const Signature&,
                                 std::span<const float>, std::size_t,
                                 std::size_t, Axis, BatchedRunStats*);

template <typename Ring>
void
batched_segments_cpu(const Signature& sig,
                     std::span<const typename Ring::value_type> input,
                     std::span<const CrossSegment> segments,
                     std::span<const SegmentSeed<Ring>> seeds,
                     std::span<typename Ring::value_type> output,
                     std::size_t threads)
{
    using V = typename Ring::value_type;
    PLR_REQUIRE(output.size() == input.size(),
                "fused output size " << output.size() << " != input size "
                                     << input.size());
    validate_segments(sig, input.size(), segments, seeds.size());

    auto run_one = [&](std::size_t s) {
        const CrossSegment& seg = segments[s];
        if (seg.length == 0)
            return;
        std::span<const V> y_tail, x_tail;
        if (!seeds.empty()) {
            y_tail = seeds[s].y_tail;
            x_tail = seeds[s].x_tail;
        }
        serial_recurrence_seeded_into<Ring>(
            sig, y_tail, x_tail, input.subspan(seg.offset, seg.length),
            output.subspan(seg.offset, seg.length));
    };

    if (threads == 1 || segments.size() <= 1) {
        for (std::size_t s = 0; s < segments.size(); ++s)
            run_one(s);
        return;
    }
    ThreadPool& pool = ThreadPool::shared();
    if (threads > 1)
        pool.ensure_workers(threads - 1);
    pool.parallel_for(segments.size(), run_one);
}

template <typename Ring>
std::vector<typename Ring::value_type>
batched_segments_recurrence(gpusim::Device& device, const Signature& sig,
                            std::span<const typename Ring::value_type> input,
                            std::span<const CrossSegment> segments,
                            std::span<const SegmentSeed<Ring>> seeds,
                            BatchedRunStats* stats)
{
    using V = typename Ring::value_type;
    validate_segments(sig, input.size(), segments, seeds.size());
    for (std::size_t s = 0; s < seeds.size(); ++s) {
        PLR_REQUIRE(seeds[s].y_tail.empty() ||
                        seeds[s].y_tail.size() == sig.order(),
                    "segment " << s << " y seed must hold " << sig.order()
                               << " values");
        PLR_REQUIRE(seeds[s].x_tail.empty() ||
                        seeds[s].x_tail.size() == sig.fir_taps(),
                    "segment " << s << " x seed must hold "
                               << sig.fir_taps() << " values");
    }

    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    std::vector<V> b(sig.order());
    for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = Ring::from_coefficient(sig.b()[j]);

    const std::size_t n = input.size();
    auto in = device.alloc<V>(n, "batched.seg.input");
    auto out = device.alloc<V>(n, "batched.seg.output");
    device.upload<V>(in, input);
    // Zero-fill so gaps between segments stay defined in the download.
    if (n > 0) {
        std::vector<V> zeros(n, Ring::zero());
        device.upload<V>(out, zeros);
    }
    const auto before = device.snapshot();

    device.launch(segments.size(), [&](gpusim::BlockContext& ctx) {
        const std::size_t s = ctx.block_index();
        const CrossSegment& seg = segments[s];
        if (seg.length == 0)
            return;
        std::span<const V> y_seed, x_seed;
        if (!seeds.empty()) {
            y_seed = seeds[s].y_tail;
            x_seed = seeds[s].x_tail;
        }

        std::vector<V> x(seg.length);
        ctx.ld_bulk<V>(in, seg.offset, x);

        // The seeded serial loop of serial_recurrence_seeded_into,
        // in-block: references before the segment base read the carry
        // seed (newest first) or ring zero for a fresh stream.
        std::vector<V> y(seg.length);
        for (std::size_t i = 0; i < seg.length; ++i) {
            V acc = Ring::zero();
            for (std::size_t j = 0; j < a.size(); ++j) {
                V xv;
                if (j <= i)
                    xv = x[i - j];
                else if (j - i - 1 < x_seed.size())
                    xv = x_seed[j - i - 1];
                else
                    continue;
                acc = Ring::mul_add(acc, a[j], xv);
                ctx.count_flop(2);
            }
            for (std::size_t j = 1; j <= b.size(); ++j) {
                V yv;
                if (j <= i)
                    yv = y[i - j];
                else if (j - i - 1 < y_seed.size())
                    yv = y_seed[j - i - 1];
                else
                    continue;
                acc = Ring::mul_add(acc, b[j - 1], yv);
                ctx.count_flop(2);
            }
            y[i] = acc;
        }

        ctx.st_bulk<V>(out, seg.offset, std::span<const V>(y));
    });

    auto result = device.download<V>(out);
    if (stats) {
        stats->lines = segments.size();
        stats->counters = device.snapshot() - before;
    }
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

template void
batched_segments_cpu<IntRing>(const Signature&, std::span<const std::int32_t>,
                              std::span<const CrossSegment>,
                              std::span<const SegmentSeed<IntRing>>,
                              std::span<std::int32_t>, std::size_t);
template void
batched_segments_cpu<FloatRing>(const Signature&, std::span<const float>,
                                std::span<const CrossSegment>,
                                std::span<const SegmentSeed<FloatRing>>,
                                std::span<float>, std::size_t);
template void
batched_segments_cpu<TropicalRing>(const Signature&, std::span<const float>,
                                   std::span<const CrossSegment>,
                                   std::span<const SegmentSeed<TropicalRing>>,
                                   std::span<float>, std::size_t);

template std::vector<std::int32_t>
batched_segments_recurrence<IntRing>(gpusim::Device&, const Signature&,
                                     std::span<const std::int32_t>,
                                     std::span<const CrossSegment>,
                                     std::span<const SegmentSeed<IntRing>>,
                                     BatchedRunStats*);
template std::vector<float>
batched_segments_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                                       std::span<const float>,
                                       std::span<const CrossSegment>,
                                       std::span<const SegmentSeed<FloatRing>>,
                                       BatchedRunStats*);
template std::vector<float>
batched_segments_recurrence<TropicalRing>(
    gpusim::Device&, const Signature&, std::span<const float>,
    std::span<const CrossSegment>,
    std::span<const SegmentSeed<TropicalRing>>, BatchedRunStats*);

}  // namespace plr::kernels
