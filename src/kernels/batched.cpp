#include "kernels/batched.h"

namespace plr::kernels {

template <typename Ring>
std::vector<typename Ring::value_type>
batched_recurrence(gpusim::Device& device, const Signature& sig,
                   std::span<const typename Ring::value_type> input,
                   std::size_t rows, std::size_t cols, Axis axis,
                   BatchedRunStats* stats)
{
    using V = typename Ring::value_type;
    const std::size_t n = rows * cols;
    PLR_REQUIRE(input.size() == n,
                "input size " << input.size() << " != " << rows << "x"
                              << cols);
    PLR_REQUIRE(sig.order() >= 1, "batched recurrence needs order >= 1");

    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    std::vector<V> b(sig.order());
    for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = Ring::from_coefficient(sig.b()[j]);

    auto in = device.alloc<V>(n, "batched.input");
    auto out = device.alloc<V>(n, "batched.output");
    device.upload<V>(in, input);
    const auto before = device.snapshot();

    const std::size_t lines = axis == Axis::kRows ? rows : cols;
    const std::size_t length = axis == Axis::kRows ? cols : rows;
    const std::size_t stride = axis == Axis::kRows ? 1 : cols;

    device.launch(lines, [&](gpusim::BlockContext& ctx) {
        const std::size_t line = ctx.block_index();
        const std::size_t base =
            axis == Axis::kRows ? line * cols : line;

        // Load the line: contiguous for rows; for columns the accesses of
        // the blocks in a wave interleave and coalesce.
        std::vector<V> x(length);
        if (axis == Axis::kRows) {
            ctx.ld_bulk<V>(in, base, x);
        } else {
            for (std::size_t i = 0; i < length; ++i)
                x[i] = ctx.ld_coalesced(in, base + i * stride);
        }

        std::vector<V> y(length);
        for (std::size_t i = 0; i < length; ++i) {
            V acc = Ring::zero();
            for (std::size_t j = 0; j < a.size() && j <= i; ++j) {
                acc = Ring::mul_add(acc, a[j], x[i - j]);
                ctx.count_flop(2);
            }
            for (std::size_t j = 1; j <= b.size() && j <= i; ++j) {
                acc = Ring::mul_add(acc, b[j - 1], y[i - j]);
                ctx.count_flop(2);
            }
            y[i] = acc;
        }

        if (axis == Axis::kRows) {
            ctx.st_bulk<V>(out, base, std::span<const V>(y));
        } else {
            for (std::size_t i = 0; i < length; ++i)
                ctx.st(out, base + i * stride, y[i]);
        }
    });

    auto result = device.download<V>(out);
    if (stats) {
        stats->lines = lines;
        stats->counters = device.snapshot() - before;
    }
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

template std::vector<std::int32_t>
batched_recurrence<IntRing>(gpusim::Device&, const Signature&,
                            std::span<const std::int32_t>, std::size_t,
                            std::size_t, Axis, BatchedRunStats*);
template std::vector<float>
batched_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                              std::span<const float>, std::size_t,
                              std::size_t, Axis, BatchedRunStats*);
template std::vector<float>
batched_recurrence<TropicalRing>(gpusim::Device&, const Signature&,
                                 std::span<const float>, std::size_t,
                                 std::size_t, Axis, BatchedRunStats*);

}  // namespace plr::kernels
