#ifndef PLR_KERNELS_REGISTRY_H_
#define PLR_KERNELS_REGISTRY_H_

/**
 * @file
 * Uniform kernel registry: every recurrence implementation in this
 * directory, discoverable by name and runnable through one type-erased
 * interface. The conformance harness (src/testing) iterates this table to
 * validate each kernel differentially against the serial reference; new
 * kernels added here inherit the whole correctness suite for free (see
 * docs/TESTING.md).
 */

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/signature.h"
#include "gpusim/perf_counters.h"

namespace plr::kernels {

/** Arithmetic domain a kernel run evaluates in. */
enum class Domain {
    /** Exact int32 ring (wrap-around mod 2^32). */
    kInt,
    /** IEEE float ring. */
    kFloat,
    /** Max-plus semiring over floats (Signature::max_plus). */
    kTropical,
};

/** Short lowercase name ("int", "float", "tropical"). */
const char* to_string(Domain d);

/** Tuning knobs a registry run may honor (0 = kernel default). */
struct RunOptions {
    /**
     * Requested chunk size (elements per block / per parallel unit).
     * Kernels round this up to whatever granularity they require (e.g.
     * PLR needs chunk >= order and a dividing block width); 0 picks the
     * kernel's own default.
     */
    std::size_t chunk = 0;
    /** Host thread count for CPU backends; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /**
     * Fault-injection seed for the simulated-GPU backends (see
     * docs/FAULTS.md); 0 disables fault injection. CPU kernels ignore it.
     */
    std::uint64_t fault_seed = 0;
    /**
     * Spin-watchdog limit for the simulated-GPU backends; 0 keeps the
     * device default ($PLR_SPIN_WATCHDOG or 200M spins). Fault tests lower
     * it so wedges are detected in milliseconds.
     */
    std::uint64_t spin_watchdog = 0;
    /**
     * Enable the happens-before race detector on the simulated-GPU
     * backends (docs/ANALYSIS.md); a violating launch throws RaceError.
     * CPU kernels ignore it.
     */
    bool race_detect = false;
    /** Enable the look-back protocol invariant checker (ditto). */
    bool invariants = false;
    /**
     * Arm silent-data-corruption injection on the simulated-GPU backends:
     * the fault plan built from fault_seed gets the default SDC bit-flip
     * mix (gpusim::with_default_sdc, docs/FAULTS.md). No effect unless
     * fault_seed != 0. CPU kernels ignore it.
     */
    bool sdc = false;
    /**
     * Run the ABFT verify-and-repair pass (src/kernels/verify.h) over the
     * simulated-GPU result: per-chunk checksums recorded by the kernel
     * plus seam/interior residual checks. Detected corruption is repaired
     * in place when possible; otherwise the run throws IntegrityError —
     * never a silent wrong answer. CPU kernels ignore it.
     */
    bool verify = false;
    /**
     * Serialize the simulated launch to one resident block
     * (gpusim::serialized): blocks run in index order, making every perf
     * counter interleaving-independent. Used by the counter-budget
     * regression gates (docs/BENCH.md). CPU kernels ignore it.
     */
    bool serialize_blocks = false;
    /**
     * When non-null, receives the simulated device's counter totals for
     * the run. Left untouched by kernels without a simulated device
     * (serial, cpu_parallel).
     */
    gpusim::CounterSnapshot* counters = nullptr;
    /**
     * Streaming checkpoint period in segments for the checkpoint-resume
     * conformance check (docs/STREAMING.md); 0 disables the check.
     * Kernels themselves ignore it — the harness drives the streaming
     * session around them.
     */
    std::size_t checkpoint_every = 0;
    /**
     * Seed of the crash plan the checkpoint-resume check injects (kill
     * point, mid-write tearing; testing/crash.h). Reproducer lines carry
     * it as the crash= token. Kernels ignore it.
     */
    std::uint64_t crash_seed = 0;
    /**
     * Seed of the cross-request segment layout the batched-segments
     * conformance check derives (kernels/batched.h, docs/SERVER.md);
     * 0 disables the check. Reproducer lines carry it as the batch=
     * token. Kernels ignore it — the harness drives the fused launches.
     */
    std::uint64_t batch_seed = 0;
};

/** One registered kernel with type-erased entry points per domain. */
struct KernelInfo {
    /** Stable identifier used in reproducer strings ("plr_sim", ...). */
    std::string name;
    /** One-line human description. */
    std::string description;
    /** True when this entry is the serial reference itself. */
    bool is_reference = false;
    /**
     * True when RunOptions::chunk changes the parallel partitioning (and
     * the chunk-boundary-invariance metamorphic check is meaningful).
     */
    bool chunk_sensitive = true;
    /** Whether the kernel can evaluate @p sig in @p domain. */
    std::function<bool(const Signature& sig, Domain domain)> supports;
    /** Exact int32 evaluation; requires supports(sig, kInt). */
    std::function<std::vector<std::int32_t>(
        const Signature& sig, std::span<const std::int32_t> input,
        const RunOptions& opts)>
        run_int;
    /**
     * Float evaluation; serves both kFloat and kTropical (the signature's
     * max_plus flag selects the ring). Requires supports() for the domain.
     */
    std::function<std::vector<float>(const Signature& sig,
                                     std::span<const float> input,
                                     const RunOptions& opts)>
        run_float;
};

/**
 * All production kernels: serial (reference), plr_sim, cpu_parallel,
 * scan, cublike, samlike. Every entry accepts empty input (returns an
 * empty result) so degenerate sizes are testable uniformly.
 */
const std::vector<KernelInfo>& kernel_registry();

/** Registry entry by name, or nullptr. */
const KernelInfo* find_kernel(std::string_view name);

/** Names of all registered kernels, registry order. */
std::vector<std::string> kernel_names();

}  // namespace plr::kernels

#endif  // PLR_KERNELS_REGISTRY_H_
