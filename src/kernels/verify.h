#ifndef PLR_KERNELS_VERIFY_H_
#define PLR_KERNELS_VERIFY_H_

/**
 * @file
 * ABFT self-verification for chunked recurrence results (docs/FAULTS.md).
 *
 * The recurrence itself is the error-detecting code: every output element
 * must satisfy y[i] = sum_j a[j]*x[i-j] + sum_j b[j]*y[i-j], so a chunk can
 * be audited in O(k) at its seam (the first k elements, which consume the
 * predecessor chunk's carries) plus O(len/stride) sampled interior
 * residuals. A Fletcher-32 checksum per chunk — recorded by the kernels
 * from in-register values before the store traffic that SDC injection can
 * corrupt — makes detection bit-exact even where a low-order float flip
 * would hide inside the residual tolerance.
 *
 * Corrupt chunks are repaired selectively: the chunk is recomputed from the
 * already-verified history to its left (the serial recurrence restarted at
 * the chunk base), so one flipped word costs one chunk of serial work, not
 * a full relaunch. Corruption that survives repair (or exceeds the repair
 * budget) escalates to the RecoveryCoordinator's relaunch/CPU rungs via
 * IntegrityError.
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/signature.h"
#include "util/diag.h"
#include "util/ring.h"

namespace plr::kernels {

/**
 * A data-integrity violation: a checksum or residual check failed and the
 * result cannot be trusted (or repaired within budget). PanicError, so the
 * runner's degradation machinery treats it like any other internal launch
 * failure: report, relaunch, or fall back to CPU — never a silent wrong
 * answer.
 */
class IntegrityError : public PanicError {
  public:
    static constexpr std::size_t kNoChunk = static_cast<std::size_t>(-1);

    explicit IntegrityError(const std::string& what,
                            std::size_t chunk = kNoChunk,
                            const char* site = "");

    /** Chunk the violation was pinned to (kNoChunk when unknown). */
    std::size_t chunk() const { return chunk_; }

    /** Check site ("look-back", "verify", ...; may be empty). */
    const std::string& site() const { return site_; }

  private:
    std::size_t chunk_;
    std::string site_;
};

/** Fletcher-32 over a word sequence (never 0, so 0 can mean "unset"). */
std::uint32_t fletcher32(const std::uint32_t* words, std::size_t count);

/** Fletcher-32 over typed 32-bit values (bit pattern, not numeric value). */
template <typename V>
std::uint32_t
checksum_values(std::span<const V> values)
{
    static_assert(sizeof(V) == sizeof(std::uint32_t));
    static_assert(std::is_trivially_copyable_v<V>);
    return fletcher32(reinterpret_cast<const std::uint32_t*>(values.data()),
                      values.size());
}

/**
 * Per-chunk output checksums recorded by a kernel run. The kernels compute
 * each sum from in-register values immediately before storing the chunk, so
 * a flip anywhere between the store and the host-side verify pass is
 * caught bit-exactly.
 */
struct ChunkChecksums {
    /** Chunk size the sums were recorded at (0 = not recorded). */
    std::size_t chunk_size = 0;
    /** One Fletcher-32 sum per chunk, in chunk order. */
    std::vector<std::uint32_t> sums;

    bool armed() const { return chunk_size != 0 && !sums.empty(); }
};

/** Knobs for verify_and_repair. */
struct VerifyOptions {
    /** Interior sampling stride (0 = seam and checksum checks only). */
    std::size_t sample_stride = 16;
    /** ULP gate for inexact-ring residuals (matches OracleOptions). */
    std::uint64_t max_ulps = 512;
    /** Relative-error fallback for inexact-ring residuals. */
    double float_tolerance = 1e-3;
    /** Recompute corrupt chunks in place (false = detect only). */
    bool repair = true;
    /** Maximum chunks repaired before escalating (0 = unlimited). */
    std::size_t max_repairs = 8;
};

/** Outcome of one verify_and_repair sweep. */
struct VerifyReport {
    std::size_t chunks = 0;
    std::size_t checksum_checks = 0;
    std::size_t residual_checks = 0;
    /** Chunks that failed a checksum or residual check, in sweep order. */
    std::vector<std::size_t> corrupt_chunks;
    /** Chunks recomputed (and re-verified) in place. */
    std::size_t repaired = 0;
    /**
     * Corruption was detected but NOT cleaned up — repair was disabled,
     * the repair budget ran out, or a repaired chunk still failed. The
     * output must not be consumed; escalate to relaunch or CPU.
     */
    bool escalated = false;

    /** No corruption was detected at all. */
    bool clean() const { return corrupt_chunks.empty(); }
    /** The output is trustworthy (clean, or every corruption repaired). */
    bool trustworthy() const { return !escalated; }

    /** One-line summary for reports and error messages. */
    std::string describe() const;
};

/**
 * Audit @p output (a chunked kernel result for @p sig over @p input)
 * left-to-right: per chunk, the recorded checksum (when @p checksums is
 * armed), the k seam residuals against the predecessor chunk's tail, and
 * interior residuals every sample_stride elements. A corrupt chunk is
 * recomputed from its (already verified) left context and re-audited;
 * @p checksums is updated to match so later sweeps stay consistent.
 * Exact rings compare residuals bit-for-bit; inexact rings use the
 * ULP/relative gates from @p opts.
 */
template <typename Ring>
VerifyReport
verify_and_repair(const Signature& sig,
                  std::span<const typename Ring::value_type> input,
                  std::span<typename Ring::value_type> output,
                  std::size_t chunk_size, ChunkChecksums* checksums,
                  const VerifyOptions& opts = VerifyOptions{});

extern template VerifyReport
verify_and_repair<IntRing>(const Signature&, std::span<const std::int32_t>,
                           std::span<std::int32_t>, std::size_t,
                           ChunkChecksums*, const VerifyOptions&);
extern template VerifyReport
verify_and_repair<FloatRing>(const Signature&, std::span<const float>,
                             std::span<float>, std::size_t, ChunkChecksums*,
                             const VerifyOptions&);
extern template VerifyReport
verify_and_repair<TropicalRing>(const Signature&, std::span<const float>,
                                std::span<float>, std::size_t,
                                ChunkChecksums*, const VerifyOptions&);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_VERIFY_H_
