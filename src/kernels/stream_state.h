#ifndef PLR_KERNELS_STREAM_STATE_H_
#define PLR_KERNELS_STREAM_STATE_H_

/**
 * @file
 * The in-memory carry state a streaming recurrence threads between
 * segments (docs/STREAMING.md): the last k outputs and last p inputs,
 * newest first. This is exactly the state the decoupled look-back
 * protocol (src/kernels/lookback_chain.h) publishes per chunk, lifted
 * out of a single launch so it can outlive it — seeded into the next
 * segment's carry chain, or sealed into a durable Checkpoint
 * (src/kernels/checkpoint.h).
 */

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/signature.h"
#include "util/diag.h"
#include "util/ring.h"

namespace plr::kernels {

/**
 * Carry state of a stream positioned after @p elements outputs.
 * y_tail[d] is the output d+1 positions back, x_tail[j] the input j+1
 * positions back (both newest first). Tails always hold exactly k and
 * sig.fir_taps() values; a fresh stream holds ring zeros (values before
 * the sequence start are zero).
 */
template <typename Ring>
struct StreamState {
    using V = typename Ring::value_type;

    std::vector<V> y_tail;
    std::vector<V> x_tail;
    /** Elements consumed so far (the global position of the next one). */
    std::uint64_t elements = 0;
    /** Segments fed so far. */
    std::uint64_t segments = 0;

    static StreamState
    fresh(const Signature& sig)
    {
        StreamState state;
        state.y_tail.assign(sig.order(), Ring::zero());
        state.x_tail.assign(sig.fir_taps(), Ring::zero());
        return state;
    }

    /** Slide the tails over one consumed segment and its outputs. */
    void
    advance(std::span<const V> segment, std::span<const V> outputs)
    {
        PLR_ASSERT(segment.size() == outputs.size(),
                   "stream segment and outputs must align");
        shift_in(y_tail, outputs);
        shift_in(x_tail, segment);
        elements += segment.size();
        segments += 1;
    }

  private:
    /** tail'[d] = value d+1 back after appending @p values. */
    static void
    shift_in(std::vector<V>& tail, std::span<const V> values)
    {
        const std::size_t k = tail.size();
        if (k == 0)
            return;
        if (values.size() >= k) {
            for (std::size_t d = 0; d < k; ++d)
                tail[d] = values[values.size() - 1 - d];
            return;
        }
        // Short segment: newest values come from it, the rest slide.
        for (std::size_t d = k; d-- > values.size();)
            tail[d] = tail[d - values.size()];
        for (std::size_t d = 0; d < values.size(); ++d)
            tail[d] = values[values.size() - 1 - d];
    }
};

/** Bit pattern of a 32-bit ring value (for checkpoint payload words). */
template <typename V>
std::uint32_t
value_bits(V v)
{
    static_assert(sizeof(V) == sizeof(std::uint32_t));
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Inverse of value_bits. */
template <typename V>
V
bits_value(std::uint32_t bits)
{
    static_assert(sizeof(V) == sizeof(std::uint32_t));
    V v{};
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

}  // namespace plr::kernels

#endif  // PLR_KERNELS_STREAM_STATE_H_
