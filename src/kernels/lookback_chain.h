#ifndef PLR_KERNELS_LOOKBACK_CHAIN_H_
#define PLR_KERNELS_LOOKBACK_CHAIN_H_

/**
 * @file
 * Decoupled look-back carry propagation (Merrill & Garland), shared by the
 * single-pass baseline kernels (Scan, CUB-like, SAM-like).
 *
 * Each chunk publishes a *local* aggregate (over its own elements) behind
 * a flag, then resolves its *exclusive* carry by walking backwards from
 * the previous chunk: it takes the most recent available inclusive
 * (global) state and folds in the local aggregates of the chunks in
 * between, finally publishing its own inclusive state. This is the same
 * protocol PLR's Phase 2 uses; PLR differs in how carries are combined
 * (correction factors instead of the scan operator).
 */

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "kernels/verify.h"

namespace plr::kernels {

/**
 * Carry chain over fixed-width carry states stored in device memory.
 *
 * @tparam V element type of the carry state
 */
template <typename V>
class LookbackChain {
  public:
    /**
     * Allocate the chain's device state.
     *
     * @param width number of V words per carry state
     * @param window maximum look-back distance before a chunk must wait
     */
    LookbackChain(gpusim::Device& device, std::size_t num_chunks,
                  std::size_t width, std::size_t window,
                  const std::string& label)
        : width_(width), window_(window), num_chunks_(num_chunks),
          label_(label), device_(&device)
    {
        local_state_ = device.alloc<V>(num_chunks * width, label + ".local");
        global_state_ =
            device.alloc<V>(num_chunks * width, label + ".global");
        local_flags_ =
            device.alloc<std::uint32_t>(num_chunks, label + ".local_flags");
        global_flags_ =
            device.alloc<std::uint32_t>(num_chunks, label + ".global_flags");
        integrity_ = device.integrity();
        if (integrity_) {
            local_sums_ = device.alloc<std::uint32_t>(
                num_chunks, label + ".local_sums");
            global_sums_ = device.alloc<std::uint32_t>(
                num_chunks, label + ".global_sums");
        }
        forensic_id_ = device.register_forensic_source(
            [this]() { return forensics(); });

        analysis::ProtocolSpec spec;
        spec.label = label;
        spec.num_chunks = num_chunks;
        spec.width = width;
        spec.value_bytes = sizeof(V);
        spec.local_flags = local_flags_.alloc_id;
        spec.global_flags = global_flags_.alloc_id;
        spec.local_state = local_state_.alloc_id;
        spec.global_state = global_state_.alloc_id;
        protocol_id_ = device.register_protocol(std::move(spec));
    }

    ~LookbackChain()
    {
        if (device_ != nullptr) {
            device_->unregister_forensic_source(forensic_id_);
            device_->unregister_protocol(protocol_id_);
        }
    }

    LookbackChain(const LookbackChain&) = delete;
    LookbackChain& operator=(const LookbackChain&) = delete;

    /** Publish the chunk-local aggregate behind a fence + flag. */
    void
    publish_local(gpusim::BlockContext& ctx, std::size_t chunk,
                  const std::vector<V>& state)
    {
        ctx.note_chunk(chunk);
        ctx.note_site("publish-local");
        for (std::size_t i = 0; i < width_; ++i)
            ctx.st(local_state_, chunk * width_ + i, state[i]);
        if (integrity_) {
            // Checksum of the in-register state, stored before the same
            // fence + flag as the carry words: consumers validate the
            // published words against it before merging. A flip of the
            // checksum word itself is a safe false positive.
            ctx.st(local_sums_, chunk,
                   checksum_values<V>(std::span<const V>(state)));
        }
        ctx.threadfence();
        ctx.st_release(local_flags_, chunk, 1);
        ctx.note_site(nullptr);
    }

    /**
     * Resolve the exclusive carry for @p chunk (which must be > 0):
     * waits for a global state within the window and all later local
     * states, then folds the local aggregates into the global state with
     * @p fold(carry, local_state_of_q) applied in increasing chunk order.
     * Returns the exclusive carry and reports the look-back distance.
     */
    std::vector<V>
    wait_and_resolve(
        gpusim::BlockContext& ctx, std::size_t chunk,
        const std::function<std::vector<V>(std::vector<V>,
                                           const std::vector<V>&)>& fold,
        std::size_t* lookback_distance = nullptr)
    {
        ctx.note_site("look-back");
        const std::size_t lo = chunk > window_ ? chunk - window_ : 0;
        std::size_t g = chunk;  // sentinel
        for (;;) {
            g = chunk;
            // The oldest window slot if no global appears; refined below.
            std::size_t blocked_on = lo;
            for (std::size_t q = chunk; q-- > lo;) {
                if (ctx.ld_acquire(global_flags_, q) != 0) {
                    g = q;
                    break;
                }
            }
            if (g != chunk) {
                bool ready = true;
                for (std::size_t q = g + 1; q < chunk; ++q) {
                    if (ctx.ld_acquire(local_flags_, q) == 0) {
                        ready = false;
                        blocked_on = q;
                        break;
                    }
                }
                if (ready)
                    break;
            }
            ctx.note_wait(blocked_on, "look-back");
            ctx.spin_wait();
        }
        ctx.note_progress();
        if (lookback_distance)
            *lookback_distance = chunk - g;

        std::vector<V> carry(width_);
        for (std::size_t i = 0; i < width_; ++i)
            carry[i] = ctx.ld(global_state_, g * width_ + i);
        if (integrity_)
            validate(ctx, global_sums_, g, carry, "global");
        for (std::size_t q = g + 1; q < chunk; ++q) {
            std::vector<V> local(width_);
            for (std::size_t i = 0; i < width_; ++i)
                local[i] = ctx.ld(local_state_, q * width_ + i);
            if (integrity_)
                validate(ctx, local_sums_, q, local, "local");
            carry = fold(std::move(carry), local);
        }
        ctx.note_site(nullptr);
        return carry;
    }

    /** Publish the chunk's inclusive (global) state behind a flag. */
    void
    publish_global(gpusim::BlockContext& ctx, std::size_t chunk,
                   const std::vector<V>& state)
    {
        ctx.note_site("publish-global");
        for (std::size_t i = 0; i < width_; ++i)
            ctx.st(global_state_, chunk * width_ + i, state[i]);
        if (integrity_) {
            ctx.st(global_sums_, chunk,
                   checksum_values<V>(std::span<const V>(state)));
        }
        ctx.threadfence();
        ctx.st_release(global_flags_, chunk, 1);
        ctx.note_site(nullptr);
    }

    /** Release the chain's device allocations. */
    void
    free(gpusim::Device& device)
    {
        device.unregister_forensic_source(forensic_id_);
        device.unregister_protocol(protocol_id_);
        device_ = nullptr;
        device.memory().free(local_state_);
        device.memory().free(global_state_);
        device.memory().free(local_flags_);
        device.memory().free(global_flags_);
        if (integrity_) {
            device.memory().free(local_sums_);
            device.memory().free(global_sums_);
        }
    }

    std::size_t width() const { return width_; }

    /** Device buffers, exposed so integrity tests can corrupt carries. */
    const gpusim::Buffer<V>& local_state_buffer() const
    {
        return local_state_;
    }
    const gpusim::Buffer<V>& global_state_buffer() const
    {
        return global_state_;
    }

  private:
    /** Compare published carry words against their published checksum. */
    void
    validate(gpusim::BlockContext& ctx,
             const gpusim::Buffer<std::uint32_t>& sums, std::size_t chunk,
             const std::vector<V>& state, const char* kind) const
    {
        const std::uint32_t want = ctx.ld(sums, chunk);
        if (checksum_values<V>(std::span<const V>(state)) == want)
            return;
        throw IntegrityError(label_ + ": corrupt " + kind +
                                 " carry consumed at chunk " +
                                 std::to_string(chunk) +
                                 " (checksum mismatch before merge)",
                             chunk, "look-back");
    }

    /** Snapshot flags and carries for the watchdog (post-join, race-free). */
    gpusim::ProtocolForensics
    forensics() const
    {
        gpusim::ProtocolForensics f;
        f.label = label_;
        f.num_chunks = num_chunks_;
        f.width = width_;
        const std::uint32_t* lf = device_->memory().data(local_flags_);
        const std::uint32_t* gf = device_->memory().data(global_flags_);
        f.local_flags.assign(lf, lf + num_chunks_);
        f.global_flags.assign(gf, gf + num_chunks_);
        const V* ls = device_->memory().data(local_state_);
        const V* gs = device_->memory().data(global_state_);
        f.local_state.reserve(num_chunks_ * width_);
        f.global_state.reserve(num_chunks_ * width_);
        for (std::size_t i = 0; i < num_chunks_ * width_; ++i) {
            f.local_state.push_back(static_cast<double>(ls[i]));
            f.global_state.push_back(static_cast<double>(gs[i]));
        }
        return f;
    }

    std::size_t width_;
    std::size_t window_;
    std::size_t num_chunks_;
    std::string label_;
    gpusim::Device* device_;
    std::size_t forensic_id_ = 0;
    std::size_t protocol_id_ = 0;
    bool integrity_ = false;
    gpusim::Buffer<V> local_state_;
    gpusim::Buffer<V> global_state_;
    gpusim::Buffer<std::uint32_t> local_flags_;
    gpusim::Buffer<std::uint32_t> global_flags_;
    gpusim::Buffer<std::uint32_t> local_sums_;
    gpusim::Buffer<std::uint32_t> global_sums_;
};

}  // namespace plr::kernels

#endif  // PLR_KERNELS_LOOKBACK_CHAIN_H_
