#include "kernels/alg3like.h"

#include "util/ring.h"

namespace plr::kernels {

namespace {

/** Causal FIR+IIR filter of one row held in registers. */
void
filter_row(gpusim::BlockContext& ctx, std::vector<float>& row,
           const std::vector<float>& a, const std::vector<float>& b)
{
    std::vector<float> y(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < a.size() && j <= i; ++j) {
            acc += a[j] * row[i - j];
            ctx.count_flop(2);
        }
        for (std::size_t j = 1; j <= b.size() && j <= i; ++j) {
            acc += b[j - 1] * y[i - j];
            ctx.count_flop(2);
        }
        y[i] = acc;
    }
    row = std::move(y);
}

}  // namespace

Alg3LikeKernel::Alg3LikeKernel(Signature sig, std::size_t rows,
                               std::size_t cols)
    : sig_(std::move(sig)), rows_(rows), cols_(cols)
{
    PLR_REQUIRE(sig_.order() >= 1, "Alg3 needs a recursive filter");
    PLR_REQUIRE(rows_ >= 1 && cols_ >= 1, "empty image");
    a_.resize(sig_.a().size());
    for (std::size_t j = 0; j < a_.size(); ++j)
        a_[j] = static_cast<float>(sig_.a()[j]);
    b_.resize(sig_.order());
    for (std::size_t j = 0; j < b_.size(); ++j)
        b_[j] = static_cast<float>(sig_.b()[j]);
}

std::vector<float>
Alg3LikeKernel::run(gpusim::Device& device, std::span<const float> image,
                    Alg3RunStats* stats) const
{
    const std::size_t n = rows_ * cols_;
    PLR_REQUIRE(image.size() == n,
                "image size " << image.size() << " != " << rows_ << "x"
                              << cols_);
    const std::size_t k = sig_.order();
    const auto before = device.snapshot();

    auto in = device.alloc<float>(n, "alg3.input");
    auto inter = device.alloc<float>(n, "alg3.intermediate");
    auto out = device.alloc<float>(n, "alg3.output");
    // Block-boundary carry buffers Alg3 keeps for its overlapped
    // row/column processing; sized per 32-column block and direction.
    const std::size_t boundary_words = 2 * rows_ * ((cols_ + 31) / 32) * k;
    auto boundaries =
        device.alloc<float>(boundary_words, "alg3.boundaries");
    device.upload<float>(in, image);

    const auto& a = a_;
    const auto& b = b_;
    const std::size_t cols = cols_;

    // Pass 1: causal (positive-direction) row filter.
    device.launch(rows_, [&](gpusim::BlockContext& ctx) {
        const std::size_t row = ctx.block_index();
        std::vector<float> w(cols);
        ctx.ld_bulk<float>(in, row * cols, w);
        filter_row(ctx, w, a, b);
        // Publish the per-32-block boundary state (part of Alg3's
        // overlapped processing).
        for (std::size_t blk = 0; blk < (cols + 31) / 32; ++blk)
            for (std::size_t j = 0; j < k; ++j)
                ctx.st(boundaries, (row * ((cols + 31) / 32) + blk) * k + j,
                       w[std::min(cols - 1, blk * 32 + 31)]);
        ctx.st_bulk<float>(inter, row * cols, std::span<const float>(w));
    });

    // The causal result is what we validate against the serial filter.
    std::vector<float> causal = device.download<float>(inter);

    // Pass 2: anticausal (negative-direction) filter over the causal
    // result; re-reads the data (L2 misses beyond 2 MB, Table 3).
    device.launch(rows_, [&](gpusim::BlockContext& ctx) {
        const std::size_t row = ctx.block_index();
        std::vector<float> w(cols);
        ctx.ld_bulk<float>(inter, row * cols, w);
        std::reverse(w.begin(), w.end());
        filter_row(ctx, w, a, b);
        std::reverse(w.begin(), w.end());
        ctx.st_bulk<float>(out, row * cols, std::span<const float>(w));
    });

    anticausal_ = device.download<float>(out);

    if (stats)
        stats->counters = device.snapshot() - before;

    device.memory().free(in);
    device.memory().free(inter);
    device.memory().free(out);
    device.memory().free(boundaries);
    return causal;
}

}  // namespace plr::kernels
