#ifndef PLR_KERNELS_RECLIKE_H_
#define PLR_KERNELS_RECLIKE_H_

/**
 * @file
 * The Rec-like baseline, modeling Chaurasia et al.'s Halide-generated
 * recursive filters ("Rec" in the paper), restricted — as in the paper's
 * setup — to one horizontal direction on a square 2D image.
 *
 * Rec tiles each row, computes tile-local filters in parallel, combines
 * the tile carries *serially* (the paper contrasts this with PLR
 * parallelizing every stage), and runs a fix-up pass that re-reads the
 * input tiles to apply the carries:
 *  - many small filter operations -> strong small-input performance,
 *  - the fix-up pass re-reads the data: beyond the 2 MB L2 this doubles
 *    the DRAM reads, which is why PLR overtakes Rec at one million
 *    entries (Section 6.5),
 *  - tile-carry buffers grow with the order (Table 2).
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/correction_factors.h"
#include "core/signature.h"
#include "gpusim/device.h"
#include "util/ring.h"

namespace plr::kernels {

/** Execution statistics of one Rec-like run. */
struct RecRunStats {
    std::size_t tiles = 0;
    gpusim::CounterSnapshot counters;
};

/** Rec-like tiled row filter on a 2D image. */
class RecLikeKernel {
  public:
    /**
     * @param sig recursive filter; Rec supports at most one non-recursive
     *        coefficient (Section 6.2.2), enforced here
     * @param tile tile width in elements
     */
    RecLikeKernel(Signature sig, std::size_t rows, std::size_t cols,
                  std::size_t tile = 32);

    /** True when Rec can express the filter (a single a0 coefficient). */
    static bool supports(const Signature& sig);

    /** Filter all rows causally; validated per row against the serial code. */
    std::vector<float> run(gpusim::Device& device,
                           std::span<const float> image,
                           RecRunStats* stats = nullptr) const;

  private:
    Signature sig_;
    std::size_t rows_;
    std::size_t cols_;
    std::size_t tile_;
    float a0_;
    std::vector<float> b_;
    CorrectionFactors<FloatRing> factors_;
};

}  // namespace plr::kernels

#endif  // PLR_KERNELS_RECLIKE_H_
