#include "kernels/serial.h"

#include "util/diag.h"

namespace plr::kernels {

template <typename Ring>
void
serial_recurrence_into(const Signature& sig,
                       std::span<const typename Ring::value_type> input,
                       std::span<typename Ring::value_type> output)
{
    using V = typename Ring::value_type;
    PLR_REQUIRE(output.size() == input.size(),
                "serial_recurrence_into: output size " << output.size()
                    << " != input size " << input.size());

    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    std::vector<V> b(sig.order());
    for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = Ring::from_coefficient(sig.b()[j]);

    const std::size_t n = input.size();
    V* const y = output.data();
    for (std::size_t i = 0; i < n; ++i) {
        V acc = Ring::zero();
        for (std::size_t j = 0; j < a.size() && j <= i; ++j)
            acc = Ring::mul_add(acc, a[j], input[i - j]);
        for (std::size_t j = 1; j <= b.size() && j <= i; ++j)
            acc = Ring::mul_add(acc, b[j - 1], y[i - j]);
        y[i] = acc;
    }
}

template <typename Ring>
void
serial_recurrence_seeded_into(
    const Signature& sig,
    std::span<const typename Ring::value_type> y_tail,
    std::span<const typename Ring::value_type> x_tail,
    std::span<const typename Ring::value_type> input,
    std::span<typename Ring::value_type> output)
{
    using V = typename Ring::value_type;
    PLR_REQUIRE(output.size() == input.size(),
                "serial_recurrence_seeded_into: output size "
                    << output.size() << " != input size " << input.size());
    PLR_REQUIRE(y_tail.empty() || y_tail.size() == sig.order(),
                "y tail must hold exactly k = " << sig.order() << " values");
    PLR_REQUIRE(x_tail.empty() || x_tail.size() == sig.fir_taps(),
                "x tail must hold exactly p = " << sig.fir_taps()
                                                << " values");

    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    std::vector<V> b(sig.order());
    for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = Ring::from_coefficient(sig.b()[j]);

    // Positions before the segment base read the tails (the value d
    // positions back is tail[d - 1]); terms reaching past a tail are
    // skipped exactly like the unseeded loop skips pre-start terms, so
    // empty tails reproduce serial_recurrence_into bit-for-bit.
    const std::size_t n = input.size();
    V* const y = output.data();
    for (std::size_t i = 0; i < n; ++i) {
        V acc = Ring::zero();
        for (std::size_t j = 0; j < a.size(); ++j) {
            if (j <= i) {
                acc = Ring::mul_add(acc, a[j], input[i - j]);
            } else if (j - i - 1 < x_tail.size()) {
                acc = Ring::mul_add(acc, a[j], x_tail[j - i - 1]);
            }
        }
        for (std::size_t j = 1; j <= b.size(); ++j) {
            if (j <= i) {
                acc = Ring::mul_add(acc, b[j - 1], y[i - j]);
            } else if (j - i - 1 < y_tail.size()) {
                acc = Ring::mul_add(acc, b[j - 1], y_tail[j - i - 1]);
            }
        }
        y[i] = acc;
    }
}

template <typename Ring>
std::vector<typename Ring::value_type>
serial_recurrence(const Signature& sig,
                  std::span<const typename Ring::value_type> input)
{
    std::vector<typename Ring::value_type> y(input.size());
    serial_recurrence_into<Ring>(sig, input, y);
    return y;
}

template std::vector<std::int32_t>
serial_recurrence<IntRing>(const Signature&, std::span<const std::int32_t>);
template std::vector<float>
serial_recurrence<FloatRing>(const Signature&, std::span<const float>);
template std::vector<float>
serial_recurrence<TropicalRing>(const Signature&, std::span<const float>);

template void
serial_recurrence_into<IntRing>(const Signature&,
                                std::span<const std::int32_t>,
                                std::span<std::int32_t>);
template void
serial_recurrence_into<FloatRing>(const Signature&, std::span<const float>,
                                  std::span<float>);
template void
serial_recurrence_into<TropicalRing>(const Signature&,
                                     std::span<const float>,
                                     std::span<float>);

template void
serial_recurrence_seeded_into<IntRing>(const Signature&,
                                       std::span<const std::int32_t>,
                                       std::span<const std::int32_t>,
                                       std::span<const std::int32_t>,
                                       std::span<std::int32_t>);
template void
serial_recurrence_seeded_into<FloatRing>(const Signature&,
                                         std::span<const float>,
                                         std::span<const float>,
                                         std::span<const float>,
                                         std::span<float>);
template void
serial_recurrence_seeded_into<TropicalRing>(const Signature&,
                                            std::span<const float>,
                                            std::span<const float>,
                                            std::span<const float>,
                                            std::span<float>);

}  // namespace plr::kernels
