#include "kernels/serial.h"

namespace plr::kernels {

template <typename Ring>
std::vector<typename Ring::value_type>
serial_recurrence(const Signature& sig,
                  std::span<const typename Ring::value_type> input)
{
    using V = typename Ring::value_type;

    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    std::vector<V> b(sig.order());
    for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = Ring::from_coefficient(sig.b()[j]);

    const std::size_t n = input.size();
    std::vector<V> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        V acc = Ring::zero();
        for (std::size_t j = 0; j < a.size() && j <= i; ++j)
            acc = Ring::mul_add(acc, a[j], input[i - j]);
        for (std::size_t j = 1; j <= b.size() && j <= i; ++j)
            acc = Ring::mul_add(acc, b[j - 1], y[i - j]);
        y[i] = acc;
    }
    return y;
}

template std::vector<std::int32_t>
serial_recurrence<IntRing>(const Signature&, std::span<const std::int32_t>);
template std::vector<float>
serial_recurrence<FloatRing>(const Signature&, std::span<const float>);
template std::vector<float>
serial_recurrence<TropicalRing>(const Signature&, std::span<const float>);

}  // namespace plr::kernels
