#ifndef PLR_KERNELS_SERIAL_H_
#define PLR_KERNELS_SERIAL_H_

/**
 * @file
 * The serial reference implementation of equation (1) from Section 2:
 *
 *   for (i = 0; i < n; i++) {
 *       y[i] = a0*x[i] + ... + a-p*x[i-p];
 *       for (j = 1; j <= min(i, k); j++)
 *           y[i] += b[j] * y[i - j];
 *   }
 *
 * Every parallel code in this repository is validated against this
 * function, exactly as the paper validates against the serial CPU result.
 */

#include <span>
#include <vector>

#include "core/signature.h"
#include "util/ring.h"

namespace plr::kernels {

/** Evaluate the full recurrence (map + recursive part) serially. */
template <typename Ring>
std::vector<typename Ring::value_type>
serial_recurrence(const Signature& sig,
                  std::span<const typename Ring::value_type> input);

/**
 * Same evaluation, writing into caller-owned storage: @p output must have
 * input.size() elements and may not alias @p input. Lets the chunked CPU
 * backend evaluate each chunk directly into the result array without a
 * per-chunk allocation and copy.
 */
template <typename Ring>
void
serial_recurrence_into(const Signature& sig,
                       std::span<const typename Ring::value_type> input,
                       std::span<typename Ring::value_type> output);

/**
 * Seeded evaluation for streaming resume (docs/STREAMING.md): the
 * recurrence continues mid-stream with @p y_tail holding the k outputs
 * preceding @p input and @p x_tail the sig.fir_taps() preceding inputs,
 * both newest first (tail[d] is the value d+1 positions before the
 * segment base). Empty tails mean "stream start" (ring zeros, i.e. the
 * unseeded semantics); non-empty tails must be exactly k and
 * sig.fir_taps() long. Bit-identical to evaluating the concatenated
 * stream in one serial pass for every ring (the tails ARE that pass's
 * loop state).
 */
template <typename Ring>
void
serial_recurrence_seeded_into(const Signature& sig,
                              std::span<const typename Ring::value_type> y_tail,
                              std::span<const typename Ring::value_type> x_tail,
                              std::span<const typename Ring::value_type> input,
                              std::span<typename Ring::value_type> output);

extern template std::vector<std::int32_t>
serial_recurrence<IntRing>(const Signature&, std::span<const std::int32_t>);
extern template std::vector<float>
serial_recurrence<FloatRing>(const Signature&, std::span<const float>);
extern template std::vector<float>
serial_recurrence<TropicalRing>(const Signature&, std::span<const float>);

extern template void
serial_recurrence_into<IntRing>(const Signature&,
                                std::span<const std::int32_t>,
                                std::span<std::int32_t>);
extern template void
serial_recurrence_into<FloatRing>(const Signature&, std::span<const float>,
                                  std::span<float>);
extern template void
serial_recurrence_into<TropicalRing>(const Signature&,
                                     std::span<const float>,
                                     std::span<float>);

extern template void
serial_recurrence_seeded_into<IntRing>(const Signature&,
                                       std::span<const std::int32_t>,
                                       std::span<const std::int32_t>,
                                       std::span<const std::int32_t>,
                                       std::span<std::int32_t>);
extern template void
serial_recurrence_seeded_into<FloatRing>(const Signature&,
                                         std::span<const float>,
                                         std::span<const float>,
                                         std::span<const float>,
                                         std::span<float>);
extern template void
serial_recurrence_seeded_into<TropicalRing>(const Signature&,
                                            std::span<const float>,
                                            std::span<const float>,
                                            std::span<const float>,
                                            std::span<float>);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_SERIAL_H_
