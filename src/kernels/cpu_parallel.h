#ifndef PLR_KERNELS_CPU_PARALLEL_H_
#define PLR_KERNELS_CPU_PARALLEL_H_

/**
 * @file
 * A native CPU backend for the PLR algorithm.
 *
 * The paper points out that the algorithm, the parallelization approach,
 * and most optimizations are not GPU specific (Section 7). This backend
 * maps the two phases onto host threads:
 *
 *   1. the input is split into one chunk per thread; each thread computes
 *      its chunk's recurrence serially (work-efficient, like a thread's
 *      in-register pass on the GPU) and publishes its local carries;
 *   2. the carries are corrected sequentially across the T chunk
 *      boundaries with the precomputed correction factors (O(T*k^2), T =
 *      thread count — negligible), after which every thread corrects its
 *      own chunk in parallel using the factor lists.
 *
 * This is exactly Phase 2 of the paper with the pipeline replaced by a
 * barrier, which is the right trade-off at CPU core counts.
 *
 * Parallel regions run on the persistent shared ThreadPool by default
 * (util/thread_pool.h): the seed implementation spawned fresh
 * `std::thread`s for all three regions of every call, which dominated
 * small-input runs. The spawn-per-call execution mode is kept selectable
 * so `bench/cpu_native` can measure the pool's win against it; results
 * are bit-identical either way.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/signature.h"
#include "kernels/stream_state.h"
#include "util/ring.h"

namespace plr::kernels {

/** How the backend executes its parallel regions. */
enum class CpuExecMode {
    /** Persistent shared thread pool (default). */
    kPool,
    /** Fresh std::thread spawn per region, as the seed implementation. */
    kSpawn,
};

/** Short lowercase name ("pool", "spawn"). */
const char* to_string(CpuExecMode mode);

/**
 * Input size below which auto-threaded runs go straight to the serial
 * code: bench/cpu_native shows the parallel backend losing to serial at
 * n = 2^16 (chunking + carry overhead dominates) and pulling ahead in
 * the 2^17..2^18 decade, so the default sits at the bottom of that band.
 */
inline constexpr std::size_t kCpuSerialCrossover = std::size_t{1} << 17;

/** Tuning knobs of one CPU-parallel run. */
struct CpuParallelOptions {
    /** Host threads / chunks to split into (0 = hardware concurrency). */
    std::size_t threads = 0;
    /** Parallel-region execution mode. */
    CpuExecMode mode = CpuExecMode::kPool;
    /**
     * With threads == 0 (auto), inputs shorter than this run serially
     * and set CpuRunStats::crossover_fallback. An explicit thread count
     * bypasses the crossover: callers (oracles, tests) asking for a
     * parallel run get one.
     */
    std::size_t serial_crossover = kCpuSerialCrossover;
};

/** Statistics of one CPU-parallel run. */
struct CpuRunStats {
    std::size_t threads_used = 0;
    std::size_t chunk_size = 0;
    /** Execution mode the run actually used. */
    CpuExecMode mode = CpuExecMode::kPool;
    /** True when the input was too small to split (serial fallback). */
    bool serial_fallback = false;
    /** True when an auto-threaded run fell back to serial because the
     * input was below CpuParallelOptions::serial_crossover. */
    bool crossover_fallback = false;
    // Per-phase wall-clock in nanoseconds (steady_clock). map_ns is 0 for
    // pure-recursive signatures; carry_ns covers the sequential
    // chunk-boundary fix-up between the two parallel phases.
    std::uint64_t map_ns = 0;
    std::uint64_t phase1_ns = 0;
    std::uint64_t carry_ns = 0;
    std::uint64_t phase2_ns = 0;
    /** End-to-end wall-clock of the call, including planning. */
    std::uint64_t total_ns = 0;
};

/**
 * Compute @p sig over @p input with the tuning in @p options. Falls back
 * to the serial code for inputs too small to split.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
cpu_parallel_recurrence(const Signature& sig,
                        std::span<const typename Ring::value_type> input,
                        const CpuParallelOptions& options,
                        CpuRunStats* stats = nullptr);

/**
 * Convenience overload: @p threads host threads (0 = hardware
 * concurrency), pooled execution.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
cpu_parallel_recurrence(const Signature& sig,
                        std::span<const typename Ring::value_type> input,
                        std::size_t threads = 0,
                        CpuRunStats* stats = nullptr)
{
    return cpu_parallel_recurrence<Ring>(
        sig, input, CpuParallelOptions{threads, CpuExecMode::kPool}, stats);
}

/**
 * Streaming resume entry point (docs/STREAMING.md): evaluate @p input
 * as the continuation of the stream captured in @p state — the carry
 * chain is seeded from state.y_tail (via the shared chunk_carry.h
 * fix-up, which then also Phase-B-corrects chunk 0) and the FIR taps of
 * the first elements read state.x_tail. Bit-identical to evaluating the
 * concatenated stream in one call for IntRing; ULP-level drift for
 * floats. @p state is not advanced (callers slide it with
 * StreamState::advance once they accept the outputs).
 */
template <typename Ring>
std::vector<typename Ring::value_type>
cpu_parallel_recurrence_resumed(const Signature& sig,
                                std::span<const typename Ring::value_type>
                                    input,
                                const StreamState<Ring>& state,
                                const CpuParallelOptions& options,
                                CpuRunStats* stats = nullptr);

extern template std::vector<std::int32_t>
cpu_parallel_recurrence<IntRing>(const Signature&,
                                 std::span<const std::int32_t>,
                                 const CpuParallelOptions&, CpuRunStats*);
extern template std::vector<float>
cpu_parallel_recurrence<FloatRing>(const Signature&, std::span<const float>,
                                   const CpuParallelOptions&, CpuRunStats*);
extern template std::vector<float>
cpu_parallel_recurrence<TropicalRing>(const Signature&,
                                      std::span<const float>,
                                      const CpuParallelOptions&,
                                      CpuRunStats*);

extern template std::vector<std::int32_t>
cpu_parallel_recurrence_resumed<IntRing>(const Signature&,
                                         std::span<const std::int32_t>,
                                         const StreamState<IntRing>&,
                                         const CpuParallelOptions&,
                                         CpuRunStats*);
extern template std::vector<float>
cpu_parallel_recurrence_resumed<FloatRing>(const Signature&,
                                           std::span<const float>,
                                           const StreamState<FloatRing>&,
                                           const CpuParallelOptions&,
                                           CpuRunStats*);
extern template std::vector<float>
cpu_parallel_recurrence_resumed<TropicalRing>(const Signature&,
                                              std::span<const float>,
                                              const StreamState<TropicalRing>&,
                                              const CpuParallelOptions&,
                                              CpuRunStats*);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_CPU_PARALLEL_H_
