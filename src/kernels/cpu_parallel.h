#ifndef PLR_KERNELS_CPU_PARALLEL_H_
#define PLR_KERNELS_CPU_PARALLEL_H_

/**
 * @file
 * A native CPU backend for the PLR algorithm.
 *
 * The paper points out that the algorithm, the parallelization approach,
 * and most optimizations are not GPU specific (Section 7). This backend
 * maps the two phases onto host threads:
 *
 *   1. the input is split into one chunk per thread; each thread computes
 *      its chunk's recurrence serially (work-efficient, like a thread's
 *      in-register pass on the GPU) and publishes its local carries;
 *   2. the carries are corrected sequentially across the T chunk
 *      boundaries with the precomputed correction factors (O(T*k^2), T =
 *      thread count — negligible), after which every thread corrects its
 *      own chunk in parallel using the factor lists.
 *
 * This is exactly Phase 2 of the paper with the pipeline replaced by a
 * barrier, which is the right trade-off at CPU core counts.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "util/ring.h"

namespace plr::kernels {

/** Statistics of one CPU-parallel run. */
struct CpuRunStats {
    std::size_t threads_used = 0;
    std::size_t chunk_size = 0;
};

/**
 * Compute @p sig over @p input using @p threads host threads
 * (0 = hardware concurrency). Falls back to the serial code for inputs
 * too small to split.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
cpu_parallel_recurrence(const Signature& sig,
                        std::span<const typename Ring::value_type> input,
                        std::size_t threads = 0,
                        CpuRunStats* stats = nullptr);

extern template std::vector<std::int32_t>
cpu_parallel_recurrence<IntRing>(const Signature&,
                                 std::span<const std::int32_t>, std::size_t,
                                 CpuRunStats*);
extern template std::vector<float>
cpu_parallel_recurrence<FloatRing>(const Signature&, std::span<const float>,
                                   std::size_t, CpuRunStats*);
extern template std::vector<float>
cpu_parallel_recurrence<TropicalRing>(const Signature&,
                                      std::span<const float>, std::size_t,
                                      CpuRunStats*);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_CPU_PARALLEL_H_
