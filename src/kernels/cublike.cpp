#include "kernels/cublike.h"

#include "kernels/lookback_chain.h"

namespace plr::kernels {

template <typename Ring>
bool
CubLikeKernel<Ring>::supports(const Signature& sig)
{
    switch (sig.classify()) {
      case SignatureClass::kPrefixSum:
      case SignatureClass::kTuplePrefixSum:
      case SignatureClass::kHigherOrderPrefixSum:
        return true;
      default:
        return false;
    }
}

template <typename Ring>
CubLikeKernel<Ring>::CubLikeKernel(Signature sig, std::size_t n,
                                   std::size_t chunk)
    : sig_(std::move(sig)), n_(n)
{
    PLR_REQUIRE(supports(sig_),
                "CUB-like kernel only supports the prefix-sum family, got "
                    << sig_.to_string());
    PLR_REQUIRE(n_ >= 1, "input must not be empty");

    const auto cls = sig_.classify();
    tuple_ = cls == SignatureClass::kTuplePrefixSum ? sig_.tuple_size() : 1;
    passes_ =
        cls == SignatureClass::kHigherOrderPrefixSum ? sig_.order() : 1;
    chunk_ = std::max<std::size_t>(chunk, tuple_);
    chunk_ = (chunk_ + tuple_ - 1) / tuple_ * tuple_;
}

template <typename Ring>
std::vector<typename Ring::value_type>
CubLikeKernel<Ring>::run(gpusim::Device& device,
                         std::span<const value_type> input,
                         CubRunStats* stats) const
{
    using V = value_type;
    PLR_REQUIRE(input.size() == n_,
                "input length " << input.size() << " != configured " << n_);

    const std::size_t s = tuple_;
    const std::size_t num_chunks = (n_ + chunk_ - 1) / chunk_;
    const bool integrity = device.integrity();
    const auto before = device.snapshot();

    auto in = device.alloc<V>(n_, "cub.input");
    auto out = device.alloc<V>(n_, "cub.output");
    device.upload<V>(in, input);

    // Inter-pass ABFT handoff: each pass records in-register checksums of
    // its output chunks; the next pass validates what it loads against
    // them, so a flip on the in-place rescan traffic is caught at the pass
    // boundary. The final pass's sums double as the verify-pass checksums.
    std::vector<std::uint32_t> prev_sums;
    std::vector<std::uint32_t> cur_sums(integrity ? num_chunks : 0);

    for (std::size_t pass = 0; pass < passes_; ++pass) {
        // Pass 0 reads the input array; later passes rescan the output
        // array in place (CUB allocates no additional n-sized buffers,
        // Table 2).
        const auto& src = pass == 0 ? in : out;

        LookbackChain<V> chain(device, num_chunks, s, 32,
                               "cub.chain." + std::to_string(pass));
        auto fold = [s](std::vector<V> carry, const std::vector<V>& local) {
            for (std::size_t l = 0; l < s; ++l)
                carry[l] = Ring::add(carry[l], local[l]);
            return carry;
        };

        device.launch(num_chunks, [&](gpusim::BlockContext& ctx) {
            const std::size_t chunk_id = ctx.block_index();
            const std::size_t base = chunk_id * chunk_;
            const std::size_t len = std::min(chunk_, n_ - base);

            std::vector<V> w(len);
            ctx.ld_bulk<V>(src, base, w);
            if (integrity && pass > 0 &&
                checksum_values<V>(std::span<const V>(w)) !=
                    prev_sums[chunk_id]) {
                throw IntegrityError(
                    "cub.pass" + std::to_string(pass) +
                        ": corrupt rescan input at chunk " +
                        std::to_string(chunk_id) + " (checksum mismatch)",
                    chunk_id, "pass-input");
            }

            // Local per-lane inclusive scan (lane = global index mod s;
            // base is a multiple of s by construction).
            for (std::size_t i = s; i < len; ++i) {
                w[i] = Ring::add(w[i], w[i - s]);
                ctx.count_flop(1);
            }

            // Lane sums of this chunk.
            std::vector<V> sums(s, Ring::zero());
            for (std::size_t l = 0; l < s && l < len; ++l) {
                std::size_t last = len - 1 - ((len - 1 - l) % s);
                sums[l] = w[last];
            }
            chain.publish_local(ctx, chunk_id, sums);

            std::vector<V> carry(s, Ring::zero());
            if (chunk_id > 0)
                carry = chain.wait_and_resolve(ctx, chunk_id, fold);

            std::vector<V> inclusive(s);
            for (std::size_t l = 0; l < s; ++l)
                inclusive[l] = Ring::add(carry[l], sums[l]);
            chain.publish_global(ctx, chunk_id, inclusive);

            if (chunk_id > 0) {
                for (std::size_t i = 0; i < len; ++i) {
                    w[i] = Ring::add(w[i], carry[i % s]);
                    ctx.count_flop(1);
                }
            }
            if (integrity) {
                cur_sums[chunk_id] =
                    checksum_values<V>(std::span<const V>(w));
            }
            ctx.st_bulk<V>(out, base, std::span<const V>(w));
        });

        chain.free(device);
        if (integrity)
            prev_sums = cur_sums;
    }

    auto result = device.download<V>(out);
    if (stats) {
        stats->passes = passes_;
        stats->chunks_per_pass = num_chunks;
        stats->counters = device.snapshot() - before;
        if (integrity) {
            stats->checksums.chunk_size = chunk_;
            stats->checksums.sums = std::move(prev_sums);
        }
    }
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

template class CubLikeKernel<IntRing>;
template class CubLikeKernel<FloatRing>;

}  // namespace plr::kernels
