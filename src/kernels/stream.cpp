#include "kernels/stream.h"

#include <algorithm>
#include <type_traits>

#include "kernels/cpu_parallel.h"
#include "kernels/cpu_simd.h"
#include "kernels/serial.h"
#include "util/diag.h"

namespace plr::kernels {
namespace {

/** Dispatch a registry entry through the right type-erased entry point. */
template <typename Ring>
std::vector<typename Ring::value_type>
run_registry_kernel(const KernelInfo& kernel, const Signature& sig,
                    std::span<const typename Ring::value_type> input,
                    const RunOptions& opts)
{
    if constexpr (std::is_same_v<Ring, IntRing>)
        return kernel.run_int(sig, input, opts);
    else
        return kernel.run_float(sig, input, opts);
}

}  // namespace

template <typename Ring>
StreamSession<Ring>::StreamSession(const Signature& sig,
                                   const KernelInfo* kernel,
                                   const RunOptions& opts)
    : sig_(sig),
      kernel_(kernel),
      opts_(opts),
      state_(StreamState<Ring>::fresh(sig))
{
    PLR_REQUIRE(sig_.order() >= 1,
                "streaming needs a recurrence of order >= 1");
    if (kernel_ != nullptr) {
        PLR_REQUIRE(kernel_->supports(sig_, domain_of<Ring>()),
                    "kernel '" << kernel_->name << "' does not support "
                               << sig_.to_string() << " in the "
                               << to_string(domain_of<Ring>()) << " domain");
    }
}

template <typename Ring>
StreamSession<Ring>
StreamSession<Ring>::resume_from(const Checkpoint& ckpt, const Signature& sig,
                                 const KernelInfo* kernel,
                                 const RunOptions& opts)
{
    validate_checkpoint_for(ckpt, sig, domain_of<Ring>());
    StreamSession session(sig, kernel, opts);
    session.state_.y_tail.clear();
    for (std::uint32_t w : ckpt.y_words)
        session.state_.y_tail.push_back(bits_value<V>(w));
    session.state_.x_tail.clear();
    for (std::uint32_t w : ckpt.x_words)
        session.state_.x_tail.push_back(bits_value<V>(w));
    session.state_.segments = ckpt.segments;
    session.state_.elements = ckpt.elements;
    return session;
}

template <typename Ring>
Checkpoint
StreamSession<Ring>::checkpoint() const
{
    Checkpoint ckpt;
    ckpt.domain = domain_of<Ring>();
    ckpt.order = static_cast<std::uint32_t>(sig_.order());
    ckpt.fir_taps = static_cast<std::uint32_t>(sig_.fir_taps());
    ckpt.sig_hash = signature_hash(sig_, ckpt.domain);
    ckpt.segments = state_.segments;
    ckpt.elements = state_.elements;
    ckpt.y_words.reserve(state_.y_tail.size());
    for (V v : state_.y_tail)
        ckpt.y_words.push_back(value_bits(v));
    ckpt.x_words.reserve(state_.x_tail.size());
    for (V v : state_.x_tail)
        ckpt.x_words.push_back(value_bits(v));
    return ckpt;
}

template <typename Ring>
std::vector<typename Ring::value_type>
StreamSession<Ring>::feed(std::span<const V> segment)
{
    if (segment.empty())
        return {};
    std::vector<V> out = run_segment(segment);
    state_.advance(segment, out);
    return out;
}

template <typename Ring>
void
StreamSession<Ring>::advance(std::span<const V> segment,
                             std::span<const V> outputs)
{
    if (segment.empty())
        return;
    state_.advance(segment, outputs);
}

template <typename Ring>
std::vector<typename Ring::value_type>
StreamSession<Ring>::run_segment(std::span<const V> segment)
{
    // A stream at position 0 is a plain one-shot run: same kernel entry
    // the conformance harness exercises, identical by construction.
    if (state_.elements == 0) {
        if (kernel_ != nullptr)
            return run_registry_kernel<Ring>(*kernel_, sig_, segment, opts_);
        return serial_recurrence<Ring>(sig_, segment);
    }

    if (kernel_ != nullptr) {
        // Native resume entry points: the tail goes straight into the
        // backend's carry chain.
        if (kernel_->name == "cpu_parallel") {
            CpuParallelOptions options;
            options.threads = opts_.threads;
            return cpu_parallel_recurrence_resumed<Ring>(sig_, segment,
                                                         state_, options);
        }
        if constexpr (!std::is_same_v<Ring, TropicalRing>) {
            if (kernel_->name == "cpu_simd") {
                CpuSimdOptions options;
                options.threads = opts_.threads;
                options.chunk = opts_.chunk;
                return cpu_simd_recurrence_resumed<Ring>(sig_, segment,
                                                         state_, options);
            }
        }
    }
    return run_generic(segment);
}

template <typename Ring>
std::vector<typename Ring::value_type>
StreamSession<Ring>::run_generic(std::span<const V> segment)
{
    const std::size_t n = segment.size();
    const std::size_t k = sig_.order();

    // Map stage (eq. 2), with the FIR taps of the first p elements
    // reading the checkpointed x-tail.
    std::vector<V> a(sig_.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig_.a()[j]);

    const bool pure = sig_.fir_taps() == 0 && Ring::is_one(a[0]);
    std::vector<V> t_storage;
    std::span<const V> t = segment;
    if (!pure) {
        t_storage.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            V acc = Ring::zero();
            for (std::size_t j = 0; j < a.size(); ++j) {
                if (j <= i)
                    acc = Ring::mul_add(acc, a[j], segment[i - j]);
                else if (j - i - 1 < state_.x_tail.size())
                    acc = Ring::mul_add(acc, a[j], state_.x_tail[j - i - 1]);
            }
            t_storage[i] = acc;
        }
        t = t_storage;
    }

    // Zero-state evaluation of the recursive part (1 : b...) by the
    // session's kernel; fall back to the serial reference when this
    // kernel cannot take the reduced signature.
    const Signature recursive = sig_.recursive_part();
    std::vector<V> z;
    if (kernel_ != nullptr && !kernel_->is_reference &&
        kernel_->supports(recursive, domain_of<Ring>())) {
        z = run_registry_kernel<Ring>(*kernel_, recursive, t, opts_);
    } else {
        z.resize(n);
        serial_recurrence_into<Ring>(recursive, t, z);
    }

    // Boundary correction: superpose the checkpointed y-tail through the
    // same factor lists Phase 2 applies at chunk seams. mul_add-only, so
    // it is valid in the max-plus semiring, and capped by the effective
    // length (decayed factors contribute nothing).
    if (cache_.length != n || !cache_.factors.has_value()) {
        cache_.factors = CorrectionFactors<Ring>::generate(
            recursive, n, /*flush_denormals=*/!Ring::is_exact);
        cache_.props = analyze_factors(*cache_.factors);
        cache_.length = n;
    }
    for (std::size_t d = 1; d <= k; ++d) {
        const V carry = state_.y_tail[d - 1];
        // A ring-zero carry contributes nothing; skipping it also keeps
        // float -0.0 outputs bit-stable, like the pre-start convention.
        if (Ring::is_zero(carry))
            continue;
        const auto list = cache_.factors->list(d);
        const std::size_t eff =
            std::min(n, cache_.props.lists[d - 1].effective_length);
        for (std::size_t o = 0; o < eff; ++o)
            z[o] = Ring::mul_add(z[o], list[o], carry);
    }
    return z;
}

template class StreamSession<IntRing>;
template class StreamSession<FloatRing>;
template class StreamSession<TropicalRing>;

}  // namespace plr::kernels
