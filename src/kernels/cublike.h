#ifndef PLR_KERNELS_CUBLIKE_H_
#define PLR_KERNELS_CUBLIKE_H_

/**
 * @file
 * The CUB-like baseline: a work-efficient single-pass prefix scan with
 * decoupled look-back and 2n data movement, mirroring how the paper's
 * CUB 1.5.1 comparison behaves (Sections 4 and 6.1):
 *
 *  - standard prefix sum: single-pass scalar scan;
 *  - s-tuple prefix sum: a scan over s-element vectors (CUB's approach,
 *    which the paper contrasts with SAM's interleaved scalar sums and
 *    PLR's scalar order-s recurrence);
 *  - order-k prefix sum: the entire scan repeated k times (prefix sums of
 *    prefix sums), re-reading and re-writing the data each pass — the
 *    reason CUB trails SAM and PLR on higher orders.
 *
 * General recurrences (arbitrary coefficients) are not supported, as in
 * the real library.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "gpusim/device.h"
#include "kernels/verify.h"
#include "util/ring.h"

namespace plr::kernels {

/** Execution statistics of one CUB-like run. */
struct CubRunStats {
    /** Scan passes executed (k for order-k prefix sums, else 1). */
    std::size_t passes = 0;
    std::size_t chunks_per_pass = 0;
    gpusim::CounterSnapshot counters;
    /** Per-chunk checksums of the final pass's output (integrity only). */
    ChunkChecksums checksums;
};

/** CUB-like scan kernel for the prefix-sum family. */
template <typename Ring>
class CubLikeKernel {
  public:
    using value_type = typename Ring::value_type;

    /** True for standard, tuple-based, and higher-order prefix sums. */
    static bool supports(const Signature& sig);

    /**
     * @param chunk elements per thread block per pass (rounded up to a
     *        multiple of the tuple size)
     */
    CubLikeKernel(Signature sig, std::size_t n, std::size_t chunk = 4096);

    std::vector<value_type> run(gpusim::Device& device,
                                std::span<const value_type> input,
                                CubRunStats* stats = nullptr) const;

  private:
    Signature sig_;
    std::size_t n_;
    std::size_t chunk_;
    std::size_t tuple_;  // vector width s (1 for scalar scans)
    std::size_t passes_;
};

extern template class CubLikeKernel<IntRing>;
extern template class CubLikeKernel<FloatRing>;

}  // namespace plr::kernels

#endif  // PLR_KERNELS_CUBLIKE_H_
