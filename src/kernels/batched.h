#ifndef PLR_KERNELS_BATCHED_H_
#define PLR_KERNELS_BATCHED_H_

/**
 * @file
 * Batched recurrences over the rows or columns of a 2D array — the
 * paper's "multiple dimensions" future-work item (Section 7).
 *
 * Rows (or columns) are independent recurrences, so the batch is
 * embarrassingly parallel across lines while each line runs the usual
 * recurrence. One thread block processes one line: along rows the block
 * streams a contiguous line; along columns the accesses of consecutive
 * blocks interleave, which a real GPU coalesces across the blocks of a
 * wave (modeled with coalesced element accesses). Composing a row pass
 * with a column pass of the prefix sum yields the summed-area table of
 * Hensley et al., one of the earliest GPU recurrence applications the
 * paper cites.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "gpusim/device.h"
#include "util/ring.h"

namespace plr::kernels {

/** Direction a batched recurrence runs in. */
enum class Axis {
    /** Left to right along each row (contiguous lines). */
    kRows,
    /** Top to bottom along each column (strided lines). */
    kCols,
};

/** Execution statistics of one batched run. */
struct BatchedRunStats {
    std::size_t lines = 0;
    gpusim::CounterSnapshot counters;
};

/**
 * Apply @p sig independently along every row or column of the row-major
 * @p rows x @p cols array @p input.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
batched_recurrence(gpusim::Device& device, const Signature& sig,
                   std::span<const typename Ring::value_type> input,
                   std::size_t rows, std::size_t cols, Axis axis,
                   BatchedRunStats* stats = nullptr);

extern template std::vector<std::int32_t>
batched_recurrence<IntRing>(gpusim::Device&, const Signature&,
                            std::span<const std::int32_t>, std::size_t,
                            std::size_t, Axis, BatchedRunStats*);
extern template std::vector<float>
batched_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                              std::span<const float>, std::size_t,
                              std::size_t, Axis, BatchedRunStats*);
extern template std::vector<float>
batched_recurrence<TropicalRing>(gpusim::Device&, const Signature&,
                                 std::span<const float>, std::size_t,
                                 std::size_t, Axis, BatchedRunStats*);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_BATCHED_H_
