#ifndef PLR_KERNELS_BATCHED_H_
#define PLR_KERNELS_BATCHED_H_

/**
 * @file
 * Batched recurrences over the rows or columns of a 2D array — the
 * paper's "multiple dimensions" future-work item (Section 7).
 *
 * Rows (or columns) are independent recurrences, so the batch is
 * embarrassingly parallel across lines while each line runs the usual
 * recurrence. One thread block processes one line: along rows the block
 * streams a contiguous line; along columns the accesses of consecutive
 * blocks interleave, which a real GPU coalesces across the blocks of a
 * wave (modeled with coalesced element accesses). Composing a row pass
 * with a column pass of the prefix sum yields the summed-area table of
 * Hensley et al., one of the earliest GPU recurrence applications the
 * paper cites.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "gpusim/device.h"
#include "util/ring.h"

namespace plr::kernels {

/** Direction a batched recurrence runs in. */
enum class Axis {
    /** Left to right along each row (contiguous lines). */
    kRows,
    /** Top to bottom along each column (strided lines). */
    kCols,
};

/** Execution statistics of one batched run. */
struct BatchedRunStats {
    std::size_t lines = 0;
    gpusim::CounterSnapshot counters;
};

/**
 * Apply @p sig independently along every row or column of the row-major
 * @p rows x @p cols array @p input.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
batched_recurrence(gpusim::Device& device, const Signature& sig,
                   std::span<const typename Ring::value_type> input,
                   std::size_t rows, std::size_t cols, Axis axis,
                   BatchedRunStats* stats = nullptr);

extern template std::vector<std::int32_t>
batched_recurrence<IntRing>(gpusim::Device&, const Signature&,
                            std::span<const std::int32_t>, std::size_t,
                            std::size_t, Axis, BatchedRunStats*);
extern template std::vector<float>
batched_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                              std::span<const float>, std::size_t,
                              std::size_t, Axis, BatchedRunStats*);
extern template std::vector<float>
batched_recurrence<TropicalRing>(gpusim::Device&, const Signature&,
                                 std::span<const float>, std::size_t,
                                 std::size_t, Axis, BatchedRunStats*);

/**
 * One independent line of a fused cross-request batch: @p length
 * elements starting at @p offset of the fused input array. Segments of
 * one launch must be disjoint (they usually tile the array); length 0
 * is legal and produces no outputs.
 */
struct CrossSegment {
    std::size_t offset = 0;
    std::size_t length = 0;
};

/**
 * Optional carry seed of one segment: the outputs/inputs preceding its
 * first element, newest first — exactly the tail layout of
 * serial_recurrence_seeded_into (and StreamState). Empty tails mean a
 * fresh stream. Non-empty tails must be sig.order() / sig.fir_taps()
 * long.
 */
template <typename Ring>
struct SegmentSeed {
    std::vector<typename Ring::value_type> y_tail;
    std::vector<typename Ring::value_type> x_tail;
};

/**
 * Evaluate @p sig independently over every segment of @p input on the
 * host, writing each segment's outputs into the same positions of
 * @p output. This is the server's fused-launch primitive: many
 * concurrent small requests become one parallel region instead of one
 * kernel dispatch each, with the carry reset (or seeded) at every
 * segment boundary so tenants cannot observe each other's state.
 *
 * @p seeds is empty (all segments fresh) or exactly one per segment.
 * @p threads = 0 uses the shared pool; 1 runs inline on the caller.
 * Each segment is bit-identical to serial_recurrence_seeded_into on its
 * slice, for every ring.
 */
template <typename Ring>
void
batched_segments_cpu(const Signature& sig,
                     std::span<const typename Ring::value_type> input,
                     std::span<const CrossSegment> segments,
                     std::span<const SegmentSeed<Ring>> seeds,
                     std::span<typename Ring::value_type> output,
                     std::size_t threads = 0);

/**
 * The same fused launch on the simulated GPU: one block per segment
 * (the ScanWeaver-style segmented lowering — per-tenant reset
 * boundaries in one grid), each block running the seeded in-block
 * recurrence over its slice. Returns the fused output array.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
batched_segments_recurrence(gpusim::Device& device, const Signature& sig,
                            std::span<const typename Ring::value_type> input,
                            std::span<const CrossSegment> segments,
                            std::span<const SegmentSeed<Ring>> seeds,
                            BatchedRunStats* stats = nullptr);

extern template void
batched_segments_cpu<IntRing>(const Signature&, std::span<const std::int32_t>,
                              std::span<const CrossSegment>,
                              std::span<const SegmentSeed<IntRing>>,
                              std::span<std::int32_t>, std::size_t);
extern template void
batched_segments_cpu<FloatRing>(const Signature&, std::span<const float>,
                                std::span<const CrossSegment>,
                                std::span<const SegmentSeed<FloatRing>>,
                                std::span<float>, std::size_t);
extern template void
batched_segments_cpu<TropicalRing>(const Signature&, std::span<const float>,
                                   std::span<const CrossSegment>,
                                   std::span<const SegmentSeed<TropicalRing>>,
                                   std::span<float>, std::size_t);

extern template std::vector<std::int32_t>
batched_segments_recurrence<IntRing>(gpusim::Device&, const Signature&,
                                     std::span<const std::int32_t>,
                                     std::span<const CrossSegment>,
                                     std::span<const SegmentSeed<IntRing>>,
                                     BatchedRunStats*);
extern template std::vector<float>
batched_segments_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                                       std::span<const float>,
                                       std::span<const CrossSegment>,
                                       std::span<const SegmentSeed<FloatRing>>,
                                       BatchedRunStats*);
extern template std::vector<float>
batched_segments_recurrence<TropicalRing>(
    gpusim::Device&, const Signature&, std::span<const float>,
    std::span<const CrossSegment>,
    std::span<const SegmentSeed<TropicalRing>>, BatchedRunStats*);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_BATCHED_H_
