#include "kernels/samlike.h"

#include "kernels/lookback_chain.h"

namespace plr::kernels {

namespace {

/**
 * Modeled SAM auto-tuner: pick the per-thread element count x (threads
 * fixed at 256 per block) so that one wave of the device roughly covers
 * the input, clamped to the range SAM's tuner explores.
 */
std::size_t
auto_tune_x(std::size_t n)
{
    constexpr std::size_t threads = 256;
    constexpr std::size_t resident_blocks = 192;  // 49152 threads / 256
    const std::size_t wave = threads * resident_blocks;
    std::size_t x = n / wave + 1;
    return std::min<std::size_t>(x, 16);
}

}  // namespace

template <typename Ring>
bool
SamLikeKernel<Ring>::supports(const Signature& sig)
{
    switch (sig.classify()) {
      case SignatureClass::kPrefixSum:
      case SignatureClass::kTuplePrefixSum:
      case SignatureClass::kHigherOrderPrefixSum:
        return true;
      default:
        return false;
    }
}

template <typename Ring>
SamLikeKernel<Ring>::SamLikeKernel(Signature sig, std::size_t n,
                                   std::size_t chunk)
    : sig_(std::move(sig)),
      n_(n),
      chunk_(chunk),
      x_(0),
      k_(sig_.order()),
      tuple_(sig_.tuple_size()),
      factors_(CorrectionFactors<Ring>::generate(
          sig_.recursive_part(),
          std::max<std::size_t>(chunk ? chunk : auto_tune_x(n) * 256,
                                sig_.order())))
{
    PLR_REQUIRE(supports(sig_),
                "SAM-like kernel only supports the prefix-sum family, got "
                    << sig_.to_string());
    PLR_REQUIRE(n_ >= 1, "input must not be empty");
    if (chunk_ == 0) {
        x_ = auto_tune_x(n_);
        chunk_ = x_ * 256;
    } else {
        x_ = (chunk_ + 255) / 256;
    }
    PLR_REQUIRE(chunk_ >= k_, "chunk below recurrence order");
}

template <typename Ring>
std::vector<typename Ring::value_type>
SamLikeKernel<Ring>::run(gpusim::Device& device,
                         std::span<const value_type> input,
                         SamRunStats* stats) const
{
    using V = value_type;
    PLR_REQUIRE(input.size() == n_,
                "input length " << input.size() << " != configured " << n_);

    const std::size_t num_chunks = (n_ + chunk_ - 1) / chunk_;
    const bool is_tuple = tuple_ > 0;
    const std::size_t iterations = is_tuple ? 1 : k_;
    const std::size_t stride = is_tuple ? tuple_ : 1;
    const bool integrity = device.integrity();
    const auto before = device.snapshot();
    std::vector<std::uint32_t> output_sums(integrity ? num_chunks : 0);

    auto in = device.alloc<V>(n_, "sam.input");
    auto out = device.alloc<V>(n_, "sam.output");
    device.upload<V>(in, input);

    // Carry state: the last k values of the (locally computed) chunk,
    // advanced across chunks with the closed-form correction weights,
    // exactly like PLR's carries but computed arithmetically instead of
    // loaded from factor arrays.
    LookbackChain<V> chain(device, num_chunks, k_, 32, "sam.chain");
    const auto& factors = factors_;
    const std::size_t m = chunk_;
    const std::size_t k = k_;
    auto fold = [&factors, m, k](std::vector<V> carry,
                                 const std::vector<V>& local) {
        std::vector<V> corrected(k);
        for (std::size_t j = 1; j <= k; ++j) {
            V acc = local[j - 1];
            for (std::size_t i = 1; i <= k; ++i)
                acc = Ring::mul_add(acc, factors.factor(i, m - j),
                                    carry[i - 1]);
            corrected[j - 1] = acc;
        }
        return corrected;
    };

    device.launch(num_chunks, [&](gpusim::BlockContext& ctx) {
        const std::size_t chunk_id = ctx.block_index();
        const std::size_t base = chunk_id * chunk_;
        const std::size_t len = std::min(chunk_, n_ - base);

        std::vector<V> w(len);
        ctx.ld_bulk<V>(in, base, w);

        // Repeat the computation, not the I/O: k iterated in-register
        // prefix sums (or one interleaved pass for tuples).
        for (std::size_t r = 0; r < iterations; ++r) {
            for (std::size_t i = stride; i < len; ++i) {
                w[i] = Ring::add(w[i], w[i - stride]);
                ctx.count_flop(1);
            }
        }

        // Publish the local carries (last k values, zero-padded when the
        // final partial chunk is shorter than k — nothing follows it).
        std::vector<V> local(k, Ring::zero());
        for (std::size_t j = 1; j <= k && j <= len; ++j)
            local[j - 1] = w[len - j];
        chain.publish_local(ctx, chunk_id, local);

        std::vector<V> carry(k, Ring::zero());
        if (chunk_id > 0) {
            carry = chain.wait_and_resolve(ctx, chunk_id, fold);
            // Correct this chunk's carries and publish the global state.
            std::vector<V> global(k, Ring::zero());
            for (std::size_t j = 1; j <= k && j <= len; ++j) {
                V acc = w[len - j];
                for (std::size_t i = 1; i <= k; ++i) {
                    acc = Ring::mul_add(acc, factors.factor(i, len - j),
                                        carry[i - 1]);
                    ctx.count_flop(2);
                }
                global[j - 1] = acc;
            }
            chain.publish_global(ctx, chunk_id, global);

            // Correct every element with the closed-form weights.
            for (std::size_t o = 0; o < len; ++o) {
                V acc = w[o];
                for (std::size_t i = 1; i <= k; ++i) {
                    const V f = factors.factor(i, o);
                    if (Ring::is_zero(f))
                        continue;
                    if (Ring::is_one(f)) {
                        acc = Ring::add(acc, carry[i - 1]);
                        ctx.count_flop(1);
                    } else {
                        acc = Ring::mul_add(acc, f, carry[i - 1]);
                        ctx.count_flop(2);
                    }
                }
                w[o] = acc;
            }
        } else {
            chain.publish_global(ctx, chunk_id, local);
        }

        if (integrity) {
            output_sums[chunk_id] =
                checksum_values<V>(std::span<const V>(w));
        }
        ctx.st_bulk<V>(out, base, std::span<const V>(w));
    });

    auto result = device.download<V>(out);
    if (stats) {
        stats->chunks = num_chunks;
        stats->x = x_;
        stats->counters = device.snapshot() - before;
        if (integrity) {
            stats->checksums.chunk_size = chunk_;
            stats->checksums.sums = std::move(output_sums);
        }
    }
    chain.free(device);
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

template class SamLikeKernel<IntRing>;
template class SamLikeKernel<FloatRing>;

}  // namespace plr::kernels
