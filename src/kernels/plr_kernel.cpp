#include "kernels/plr_kernel.h"

#include <atomic>

namespace plr::kernels {

namespace {

using gpusim::BlockContext;
using gpusim::Buffer;

/**
 * Resolved access strategy for one correction-factor list, combining the
 * Section-3.1 optimizations with the shared-memory cache policy.
 */
template <typename Ring>
struct FactorAccess {
    using V = typename Ring::value_type;

    /** Host copy of the (possibly compressed) factor values. */
    std::vector<V> values;
    /** Device copy backing uncached accesses; invalid when not needed. */
    Buffer<V> device_values;
    /** Compression period (values.size()); == full length when aperiodic. */
    std::size_t period = 0;
    /** Offsets >= eff_len have zero factors and are skipped entirely. */
    std::size_t eff_len = 0;
    /** Leading elements served from the shared-memory cache. */
    std::size_t cached_elems = 0;
    /** All factors identical: no loads at all. */
    bool constant = false;
    /** All factors 0/1 and conditional adds enabled: add, don't multiply. */
    bool conditional = false;
    /** This list is served by list 1 shifted one position (k > 1). */
    bool shifted_alias = false;

    /**
     * Fetch factor[o], counting the shared or global access it would cost
     * on the GPU. @p offset must be < eff_len.
     */
    V
    fetch(BlockContext& ctx, std::size_t offset) const
    {
        const std::size_t o = offset % period;
        if (constant)
            return values[0];
        if (o < cached_elems) {
            ctx.count_shared(1);
            return values[o];
        }
        if (shifted_alias) {
            // Served by list 1's array shifted one position; F_k[0] is an
            // inline constant in the generated code.
            if (o == 0)
                return values[0];
            const V loaded = ctx.ld_coalesced(device_values, o - 1);
            PLR_ASSERT(loaded == values[o],
                       "shifted-list alias returned a wrong factor");
            return loaded;
        }
        // Neighboring lanes fetch neighboring offsets: coalesced.
        return ctx.ld_coalesced(device_values, o);
    }
};

/** Per-run device-side state shared by all blocks. */
template <typename Ring>
struct DeviceState {
    using V = typename Ring::value_type;

    Buffer<V> input;
    Buffer<V> output;
    Buffer<V> local_carries;   // num_chunks * k
    Buffer<V> global_carries;  // num_chunks * k
    Buffer<std::uint32_t> local_flags;
    Buffer<std::uint32_t> global_flags;
    Buffer<std::uint32_t> chunk_counter;  // one word
    Buffer<std::uint32_t> local_sums;   // ABFT carry checksums (integrity)
    Buffer<std::uint32_t> global_sums;  // ditto for global carries
};

/**
 * Apply the correction for carry j to an accumulator:
 * acc += F_j[offset] * carry (or a conditional add for 0/1 factors).
 */
template <typename Ring>
typename Ring::value_type
apply_correction(BlockContext& ctx, const FactorAccess<Ring>& access,
                 std::size_t offset, typename Ring::value_type acc,
                 typename Ring::value_type carry)
{
    using V = typename Ring::value_type;
    const V f = access.fetch(ctx, offset);
    if (access.conditional) {
        if (Ring::is_zero(f))
            return acc;
        ctx.count_flop(1);
        return Ring::add(acc, carry);
    }
    ctx.count_flop(2);
    return Ring::mul_add(acc, f, carry);
}

/**
 * Phase 1: iteratively merge adjacent chunk pairs, doubling the chunk
 * size from 1 to w.size(). Merges below the warp width use shuffles;
 * larger merges exchange data through shared memory (Section 3, code
 * section 4). In-place: corrections write only the second chunk of each
 * pair and read only the (unmodified) first chunk.
 */
template <typename Ring>
void
phase1(BlockContext& ctx, std::span<typename Ring::value_type> w,
       const std::vector<FactorAccess<Ring>>& access, std::size_t warp_size)
{
    using V = typename Ring::value_type;
    const std::size_t len = w.size();
    const std::size_t k = access.size();

    for (std::size_t s = 1; s < len; s *= 2) {
        const bool warp_level = 2 * s <= warp_size;
        for (std::size_t base = 0; base + s < len; base += 2 * s) {
            const std::size_t second_len = std::min(s, len - base - s);
            for (std::size_t o = 0; o < second_len; ++o) {
                V acc = w[base + s + o];
                bool touched = false;
                // Only existing terms are corrected; when s < k the
                // missing carries are zero and their terms suppressed
                // (PLR emits no code for them).
                for (std::size_t j = 1; j <= k && j <= s; ++j) {
                    if (o >= access[j - 1].eff_len)
                        continue;  // decayed factor tail: no work
                    acc = apply_correction<Ring>(ctx, access[j - 1], o, acc,
                                                 w[base + s - j]);
                    touched = true;
                    if (warp_level)
                        ctx.count_shuffle(1);
                    else
                        ctx.count_shared(2);
                }
                if (touched)
                    w[base + s + o] = acc;
            }
        }
    }
}

}  // namespace

template <typename Ring>
PlrKernel<Ring>::PlrKernel(KernelPlan plan)
    : plan_(std::move(plan)),
      factors_(CorrectionFactors<Ring>::generate(
          plan_.signature.recursive_part(), plan_.m,
          plan_.opts.flush_denormals)),
      props_(analyze_factors(factors_))
{
    PLR_REQUIRE(plan_.m >= plan_.signature.order(),
                "chunk size " << plan_.m << " below recurrence order "
                              << plan_.signature.order());
    map_coeffs_.resize(plan_.signature.a().size());
    for (std::size_t j = 0; j < map_coeffs_.size(); ++j)
        map_coeffs_[j] = Ring::from_coefficient(plan_.signature.a()[j]);
}

template <typename Ring>
std::vector<typename Ring::value_type>
PlrKernel<Ring>::run(gpusim::Device& device,
                     std::span<const value_type> input,
                     PlrRunStats* stats) const
{
    using V = value_type;
    PLR_REQUIRE(input.size() == plan_.n,
                "input length " << input.size() << " != planned n "
                                << plan_.n);

    const std::size_t n = plan_.n;
    const std::size_t m = plan_.m;
    const std::size_t k = plan_.signature.order();
    const std::size_t num_chunks = plan_.num_chunks();
    const Optimizations& opts = plan_.opts;

    // Resolve the per-list access strategies from the factor analysis.
    std::vector<FactorAccess<Ring>> access(k);
    for (std::size_t j = 1; j <= k; ++j) {
        FactorAccess<Ring>& fa = access[j - 1];
        const FactorListProperties& props = props_.lists[j - 1];
        auto list = factors_.list(j);

        fa.eff_len = opts.zero_tail_suppress ? props.effective_length
                                             : factors_.length();
        fa.period = (opts.periodic_compress && props.period < list.size())
                        ? props.period
                        : list.size();
        fa.constant = opts.constant_fold && props.all_equal;
        fa.conditional = opts.conditional_add && props.all_zero_one;
        fa.values.assign(list.begin(),
                         list.begin() + static_cast<std::ptrdiff_t>(fa.period));
        fa.cached_elems =
            opts.shared_factor_cache
                ? std::min(fa.period, opts.shared_cache_elems)
                : 0;
    }
    // Shifted-list sharing (Section 3.1 future-work optimization): when
    // list k is list 1 shifted by one position, serve it from list 1's
    // storage and allocate no second array. Only applied when neither
    // list is otherwise specialized or compressed.
    const bool use_shift_alias =
        k > 1 && opts.suppress_shifted_list && props_.last_is_shift_of_first &&
        !access[0].constant && !access[k - 1].constant &&
        access[0].period == factors_.length() &&
        access[k - 1].period == factors_.length();

    // Device allocations (section 1 of the generated code + the carry and
    // flag arrays of Section 2.2).
    DeviceState<Ring> dev;
    dev.input = device.alloc<V>(n, "plr.input");
    dev.output = device.alloc<V>(n, "plr.output");
    dev.local_carries = device.alloc<V>(num_chunks * k, "plr.local_carries");
    dev.global_carries = device.alloc<V>(num_chunks * k, "plr.global_carries");
    dev.local_flags =
        device.alloc<std::uint32_t>(num_chunks, "plr.local_flags");
    dev.global_flags =
        device.alloc<std::uint32_t>(num_chunks, "plr.global_flags");
    dev.chunk_counter = device.alloc<std::uint32_t>(1, "plr.chunk_counter");
    const bool integrity = device.integrity();
    if (integrity) {
        dev.local_sums =
            device.alloc<std::uint32_t>(num_chunks, "plr.local_sums");
        dev.global_sums =
            device.alloc<std::uint32_t>(num_chunks, "plr.global_sums");
    }
    device.upload<V>(dev.input, input);

    for (std::size_t j = 1; j <= k; ++j) {
        FactorAccess<Ring>& fa = access[j - 1];
        if (use_shift_alias && j == k) {
            fa.shifted_alias = true;
            fa.device_values = access[0].device_values;
            continue;
        }
        const bool needs_device_array =
            !fa.constant && fa.cached_elems < fa.period;
        if (needs_device_array) {
            fa.device_values = device.alloc<V>(
                fa.period, "plr.factors." + std::to_string(j));
            device.upload<V>(fa.device_values, fa.values);
        }
    }

    std::atomic<std::size_t> max_lookback{0};
    std::atomic<std::size_t> total_lookback{0};
    // Host-side per-chunk output checksums, computed from in-register
    // values right before the output store (each block writes only its own
    // slot, so plain vector access is race-free).
    std::vector<std::uint32_t> output_sums(integrity ? num_chunks : 0);

    const std::size_t p = map_coeffs_.size() > 0 ? map_coeffs_.size() - 1 : 0;
    const bool has_map = map_coeffs_.size() != 1 ||
                         !Ring::is_one(map_coeffs_[0]);
    const auto& map_coeffs = map_coeffs_;
    const std::size_t warp_size = device.spec().warp_size;
    const auto counters_before = device.snapshot();

    // Watchdog forensics: snapshot the carry/flag arrays if this launch
    // wedges (invoked only after the launch threads are joined).
    gpusim::ForensicSourceGuard forensic_guard(device, [&device, &dev,
                                                        num_chunks, k]() {
        gpusim::ProtocolForensics f;
        f.label = "plr.lookback";
        f.num_chunks = num_chunks;
        f.width = k;
        const std::uint32_t* lf = device.memory().data(dev.local_flags);
        const std::uint32_t* gf = device.memory().data(dev.global_flags);
        f.local_flags.assign(lf, lf + num_chunks);
        f.global_flags.assign(gf, gf + num_chunks);
        const V* lc = device.memory().data(dev.local_carries);
        const V* gc = device.memory().data(dev.global_carries);
        for (std::size_t i = 0; i < num_chunks * k; ++i) {
            f.local_state.push_back(static_cast<double>(lc[i]));
            f.global_state.push_back(static_cast<double>(gc[i]));
        }
        return f;
    });

    // Invariant-checker registration: the same protocol instance, described
    // by its allocations (see docs/ANALYSIS.md). No-op unless the device
    // has analysis enabled at launch.
    analysis::ProtocolSpec protocol_spec;
    protocol_spec.label = "plr.lookback";
    protocol_spec.num_chunks = num_chunks;
    protocol_spec.width = k;
    protocol_spec.value_bytes = sizeof(V);
    protocol_spec.local_flags = dev.local_flags.alloc_id;
    protocol_spec.global_flags = dev.global_flags.alloc_id;
    protocol_spec.local_state = dev.local_carries.alloc_id;
    protocol_spec.global_state = dev.global_carries.alloc_id;
    gpusim::ProtocolGuard protocol_guard(device, std::move(protocol_spec));

    auto body = [&](BlockContext& ctx) {
        // -- Section 2: grab a chunk id, load the chunk.
        const std::size_t chunk = ctx.atomic_add(dev.chunk_counter, 0, 1);
        ctx.note_chunk(chunk);
        const std::size_t base = chunk * m;
        const std::size_t len = std::min(m, n - base);
        std::vector<V> w(len);
        ctx.ld_bulk<V>(dev.input, base, w);

        // Reserve the block's shared memory: the factor caches plus the
        // cross-warp carry staging area; the 48 kB per-block budget is
        // enforced (a real launch would fail beyond it).
        {
            std::size_t shared_bytes =
                (plan_.block_threads / warp_size) * k * sizeof(V) +
                k * sizeof(V);
            for (std::size_t j = 1; j <= k; ++j) {
                const FactorAccess<Ring>& fa = access[j - 1];
                if (!fa.constant && !fa.shifted_alias)
                    shared_bytes += fa.cached_elems * sizeof(V);
            }
            ctx.alloc_shared(shared_bytes);
        }

        // Load the shared-memory factor cache (counted once per block).
        for (std::size_t j = 1; j <= k; ++j) {
            const FactorAccess<Ring>& fa = access[j - 1];
            if (fa.cached_elems > 0 && !fa.constant) {
                const std::size_t load =
                    std::min(fa.cached_elems, fa.eff_len);
                if (load > 0 && !fa.shifted_alias) {
                    // One coalesced read of the factor array prefix plus
                    // the shared-memory fills.
                    if (fa.device_values.valid()) {
                        std::vector<V> tmp(load);
                        ctx.ld_bulk<V>(fa.device_values, 0, tmp);
                    } else {
                        ctx.local_counters().global_load_bytes +=
                            (load * sizeof(V) + 31) / 32 * 32;
                        ctx.local_counters().global_load_transactions +=
                            (load * sizeof(V) + 31) / 32;
                    }
                    ctx.count_shared(load);
                }
            }
        }

        // -- Section 3: the map operation (eq. 2), embarrassingly
        // parallel; boundary elements read the previous chunk's inputs
        // directly from global memory.
        if (has_map) {
            std::vector<V> t(len);
            for (std::size_t i = 0; i < len; ++i) {
                V acc = Ring::zero();
                for (std::size_t j = 0; j <= p; ++j) {
                    const std::size_t global_i = base + i;
                    if (j > global_i)
                        break;
                    V x;
                    if (j > i)  // crosses the chunk boundary
                        x = ctx.ld(dev.input, global_i - j);
                    else
                        x = w[i - j];
                    acc = Ring::mul_add(acc, map_coeffs[j], x);
                    ctx.count_flop(2);
                }
                t[i] = acc;
            }
            std::copy(t.begin(), t.end(), w.begin());
        }

        // -- Section 4: Phase 1, hierarchical pairwise merging.
        phase1<Ring>(ctx, w, access, warp_size);

        // -- Section 5: publish the local carries (last k values).
        ctx.note_site("publish-local");
        for (std::size_t j = 1; j <= k && j <= len; ++j)
            ctx.st(dev.local_carries, chunk * k + (j - 1), w[len - j]);
        if (integrity) {
            // Checksum of the in-register carry values, behind the same
            // fence + flag: consumers validate before merging, so a flip
            // of either a carry word or the checksum word aborts typed
            // instead of propagating downstream.
            std::vector<V> published(std::min(k, len));
            for (std::size_t j = 1; j <= published.size(); ++j)
                published[j - 1] = w[len - j];
            ctx.st(dev.local_sums, chunk,
                   checksum_values<V>(std::span<const V>(published)));
        }
        ctx.threadfence();
        ctx.st_release(dev.local_flags, chunk, 1);
        ctx.note_site(nullptr);

        // -- Section 6: variable look-back (Section 2.2).
        std::vector<V> carry(k, Ring::zero());
        if (chunk > 0) {
            ctx.note_site("look-back");
            const std::size_t window = plan_.pipeline_depth;
            const std::size_t lo = chunk > window ? chunk - window : 0;
            std::size_t g = chunk;  // sentinel: not found
            for (;;) {
                g = chunk;
                std::size_t blocked_on = lo;
                for (std::size_t q = chunk; q-- > lo;) {
                    if (ctx.ld_acquire(dev.global_flags, q) != 0) {
                        g = q;
                        break;
                    }
                }
                if (g != chunk) {
                    bool locals_ready = true;
                    for (std::size_t q = g + 1; q < chunk; ++q) {
                        if (ctx.ld_acquire(dev.local_flags, q) == 0) {
                            locals_ready = false;
                            blocked_on = q;
                            break;
                        }
                    }
                    if (locals_ready)
                        break;
                }
                ctx.note_wait(blocked_on, "look-back");
                ctx.spin_wait();
            }
            ctx.note_progress();

            const std::size_t distance = chunk - g;
            total_lookback.fetch_add(distance, std::memory_order_relaxed);
            std::size_t seen = max_lookback.load(std::memory_order_relaxed);
            while (distance > seen &&
                   !max_lookback.compare_exchange_weak(
                       seen, distance, std::memory_order_relaxed)) {
            }

            // Consumed carries are validated against their published
            // checksum before they contaminate this chunk (ABFT layer;
            // no-op unless Device integrity is armed).
            const auto validate_carry = [&](const Buffer<std::uint32_t>& sums,
                                            std::size_t q,
                                            const std::vector<V>& values,
                                            const char* kind) {
                if (!integrity)
                    return;
                const std::uint32_t want = ctx.ld(sums, q);
                if (checksum_values<V>(std::span<const V>(values)) == want)
                    return;
                throw IntegrityError(
                    std::string("plr.lookback: corrupt ") + kind +
                        " carry consumed at chunk " + std::to_string(q) +
                        " (checksum mismatch before merge)",
                    q, "look-back");
            };

            // Global carries of chunk g...
            for (std::size_t j = 1; j <= k; ++j)
                carry[j - 1] = ctx.ld(dev.global_carries, g * k + (j - 1));
            validate_carry(dev.global_sums, g, carry, "global");
            // ...advanced across the intervening chunks' local carries
            // with the last k correction factors: O(c*k^2) work.
            for (std::size_t q = g + 1; q < chunk; ++q) {
                std::vector<V> lc(k);
                for (std::size_t j = 1; j <= k; ++j)
                    lc[j - 1] = ctx.ld(dev.local_carries, q * k + (j - 1));
                validate_carry(dev.local_sums, q, lc, "local");
                std::vector<V> corrected(k);
                for (std::size_t j = 1; j <= k; ++j) {
                    V acc = lc[j - 1];
                    const std::size_t o = m - j;  // offset of carry j
                    for (std::size_t i = 1; i <= k; ++i) {
                        if (o >= access[i - 1].eff_len)
                            continue;
                        acc = apply_correction<Ring>(ctx, access[i - 1], o,
                                                     acc, carry[i - 1]);
                    }
                    corrected[j - 1] = acc;
                }
                carry = std::move(corrected);
            }
            ctx.note_site(nullptr);
        }

        // Global carries of this chunk: its local carries corrected with
        // the incoming carry, published as early as possible.
        ctx.note_site("publish-global");
        std::vector<V> published_global(std::min(k, len));
        for (std::size_t j = 1; j <= k && j <= len; ++j) {
            V acc = w[len - j];
            const std::size_t o = len - j;
            for (std::size_t i = 1; i <= k; ++i) {
                if (o >= access[i - 1].eff_len)
                    continue;
                acc = apply_correction<Ring>(ctx, access[i - 1], o, acc,
                                             carry[i - 1]);
            }
            published_global[j - 1] = acc;
            ctx.st(dev.global_carries, chunk * k + (j - 1), acc);
        }
        if (integrity) {
            ctx.st(dev.global_sums, chunk,
                   checksum_values<V>(
                       std::span<const V>(published_global)));
        }
        ctx.threadfence();
        ctx.st_release(dev.global_flags, chunk, 1);
        ctx.note_site(nullptr);

        // -- Section 7: correct the whole chunk and store it.
        if (chunk > 0) {
            for (std::size_t o = 0; o < len; ++o) {
                V acc = w[o];
                bool touched = false;
                for (std::size_t i = 1; i <= k; ++i) {
                    if (o >= access[i - 1].eff_len)
                        continue;
                    acc = apply_correction<Ring>(ctx, access[i - 1], o, acc,
                                                 carry[i - 1]);
                    touched = true;
                }
                if (touched)
                    w[o] = acc;
            }
        }
        if (integrity)
            output_sums[chunk] = checksum_values<V>(std::span<const V>(w));
        ctx.st_bulk<V>(dev.output, base, std::span<const V>(w));
    };

    device.launch(num_chunks, body);

    std::vector<V> result = device.download<V>(dev.output);

    if (stats) {
        stats->chunks = num_chunks;
        stats->max_lookback = max_lookback.load();
        stats->total_lookback = total_lookback.load();
        stats->counters = device.snapshot() - counters_before;
        if (integrity) {
            stats->checksums.chunk_size = m;
            stats->checksums.sums = std::move(output_sums);
        }
    }

    // Free the run's buffers; the ledger keeps the records for accounting.
    device.memory().free(dev.input);
    device.memory().free(dev.output);
    device.memory().free(dev.local_carries);
    device.memory().free(dev.global_carries);
    device.memory().free(dev.local_flags);
    device.memory().free(dev.global_flags);
    device.memory().free(dev.chunk_counter);
    if (integrity) {
        device.memory().free(dev.local_sums);
        device.memory().free(dev.global_sums);
    }
    for (std::size_t j = 1; j <= k; ++j) {
        if (access[j - 1].device_values.valid() &&
            !access[j - 1].shifted_alias)
            device.memory().free(access[j - 1].device_values);
    }

    return result;
}

template class PlrKernel<IntRing>;
template class PlrKernel<FloatRing>;
template class PlrKernel<TropicalRing>;

}  // namespace plr::kernels
