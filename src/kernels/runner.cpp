#include "kernels/runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "gpusim/device.h"
#include "kernels/cpu_parallel.h"
#include "kernels/plr_kernel.h"

namespace plr::kernels {

namespace {

/**
 * A production plan scaled to the input: the Section-3 heuristics, with
 * the chunk shrunk for inputs too small to fill even one 1024-thread
 * block sensibly (the simulator equivalent of launching fewer threads).
 */
KernelPlan
auto_plan(const Signature& sig, std::size_t n)
{
    if (n >= 4096)
        return make_plan(sig, n);
    std::size_t m = 64;
    while (m < sig.order())
        m *= 2;
    return make_plan_with_chunk(sig, n, m, std::min<std::size_t>(m, 64));
}

std::string
format_coefficients(const std::vector<double>& values)
{
    std::string out;
    char buf[64];
    for (std::size_t i = 0; i < values.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%.17g", values[i]);
        if (i)
            out += ',';
        out += buf;
    }
    return out;
}

/**
 * PR-1-style reproducer line for a GPU-backend failure, extended with the
 * fault seed. seed=0 marks the input as caller-provided (not corpus-
 * generated); the kernel/fault configuration is still fully replayable.
 */
std::string
degraded_repro_line(const Signature& sig, const char* domain, std::size_t n,
                    const RunnerOptions& options)
{
    std::ostringstream os;
    os << "plr-repro:v1 kernel=plr_sim domain=" << domain
       << " check=differential a=" << format_coefficients(sig.a())
       << " b=" << format_coefficients(sig.b()) << " n=" << n
       << " chunk=0 threads=0 seed=0";
    if (options.fault_seed != 0)
        os << " fault=" << options.fault_seed;
    if (options.spin_watchdog != 0)
        os << " watchdog=" << options.spin_watchdog;
    const unsigned race_mask = (options.race_detect ? 1u : 0u) |
                               (options.invariants ? 2u : 0u);
    if (race_mask != 0)
        os << " race=" << race_mask;
    return os.str();
}

/** Log a degradation reproducer to $PLR_REPRO_LOG and the caller's sink. */
void
log_degradation(const std::string& line, const std::string& why,
                const RunnerOptions& options)
{
    if (options.repro_out)
        *options.repro_out = line;
    if (const char* path = std::getenv("PLR_REPRO_LOG")) {
        std::ofstream out(path, std::ios::app);
        if (out)
            out << line << "\n";
    }
    std::cerr << "plr: simulated-GPU backend failed (" << why << "); "
              << (options.on_failure == FailurePolicy::kDegradeToCpu
                      ? "degrading to the CPU backend"
                      : "failing fast")
              << "\n"
              << "plr: " << line << "\n";
}

template <typename Ring>
std::vector<typename Ring::value_type>
run_gpu(const Signature& sig,
        std::span<const typename Ring::value_type> input,
        const RunnerOptions& options)
{
    gpusim::Device device;
    if (options.fault_seed != 0)
        device.set_fault_plan(std::make_shared<gpusim::FaultPlan>(
            options.fault_seed, options.fault_config));
    if (options.spin_watchdog != 0)
        device.set_spin_watchdog_limit(options.spin_watchdog);
    if (options.race_detect || options.invariants) {
        analysis::AnalysisConfig config;
        config.race_detect = options.race_detect;
        config.invariants = options.invariants;
        device.enable_analysis(config);
    }
    PlrKernel<Ring> kernel(auto_plan(sig, input.size()));
    return kernel.run(device, input);
}

template <typename Ring>
std::vector<typename Ring::value_type>
dispatch(const Signature& sig, std::span<const typename Ring::value_type> input,
         const char* domain, const RunnerOptions& options)
{
    PLR_REQUIRE(!input.empty(), "input must not be empty");
    switch (options.backend) {
      case Backend::kSimulatedGpu:
        try {
            return run_gpu<Ring>(sig, input, options);
        } catch (const PanicError& error) {
            // LaunchError (watchdog wedge) or an internal invariant
            // violation — not a user error (FatalError propagates).
            const std::string line =
                degraded_repro_line(sig, domain, input.size(), options);
            log_degradation(line, error.what(), options);
            if (options.on_failure == FailurePolicy::kFailFast)
                throw;
            return cpu_parallel_recurrence<Ring>(sig, input);
        }
      case Backend::kCpu:
        return cpu_parallel_recurrence<Ring>(sig, input);
    }
    PLR_PANIC("unreachable");
}

}  // namespace

std::vector<std::int32_t>
run_recurrence(const Signature& sig, std::span<const std::int32_t> input,
               Backend backend)
{
    RunnerOptions options;
    options.backend = backend;
    return run_recurrence(sig, input, options);
}

std::vector<float>
run_recurrence(const Signature& sig, std::span<const float> input,
               Backend backend)
{
    RunnerOptions options;
    options.backend = backend;
    return run_recurrence(sig, input, options);
}

std::vector<std::int32_t>
run_recurrence(const Signature& sig, std::span<const std::int32_t> input,
               const RunnerOptions& options)
{
    PLR_REQUIRE(sig.is_integral(),
                "integer data needs an integral signature; " << sig.to_string()
                << " has fractional (or max-plus) coefficients — use float "
                   "data instead");
    return dispatch<IntRing>(sig, input, "int", options);
}

std::vector<float>
run_recurrence(const Signature& sig, std::span<const float> input,
               const RunnerOptions& options)
{
    if (sig.is_max_plus())
        return dispatch<TropicalRing>(sig, input, "tropical", options);
    return dispatch<FloatRing>(sig, input, "float", options);
}

}  // namespace plr::kernels
