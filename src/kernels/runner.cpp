#include "kernels/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "gpusim/device.h"
#include "kernels/cpu_parallel.h"
#include "kernels/plr_kernel.h"
#include "kernels/verify.h"
#include "util/env.h"

namespace plr::kernels {

namespace {

/**
 * A production plan scaled to the input: the Section-3 heuristics, with
 * the chunk shrunk for inputs too small to fill even one 1024-thread
 * block sensibly (the simulator equivalent of launching fewer threads).
 */
KernelPlan
auto_plan(const Signature& sig, std::size_t n)
{
    if (n >= 4096)
        return make_plan(sig, n);
    std::size_t m = 64;
    while (m < sig.order())
        m *= 2;
    return make_plan_with_chunk(sig, n, m, std::min<std::size_t>(m, 64));
}

std::string
format_coefficients(const std::vector<double>& values)
{
    std::string out;
    char buf[64];
    for (std::size_t i = 0; i < values.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%.17g", values[i]);
        if (i)
            out += ',';
        out += buf;
    }
    return out;
}

/**
 * PR-1-style reproducer line for a GPU-backend failure, extended with the
 * fault seed. seed=0 marks the input as caller-provided (not corpus-
 * generated); the kernel/fault configuration is still fully replayable.
 */
std::string
degraded_repro_line(const Signature& sig, const char* domain, std::size_t n,
                    const RunnerOptions& options)
{
    std::ostringstream os;
    os << "plr-repro:v1 kernel=plr_sim domain=" << domain
       << " check=differential a=" << format_coefficients(sig.a())
       << " b=" << format_coefficients(sig.b()) << " n=" << n
       << " chunk=0 threads=0 seed=0";
    if (options.fault_seed != 0)
        os << " fault=" << options.fault_seed;
    if (options.spin_watchdog != 0)
        os << " watchdog=" << options.spin_watchdog;
    const unsigned race_mask = (options.race_detect ? 1u : 0u) |
                               (options.invariants ? 2u : 0u);
    if (race_mask != 0)
        os << " race=" << race_mask;
    const unsigned sdc_mask =
        ((options.sdc || options.fault_config.sdc_enabled()) ? 1u : 0u) |
        (options.verify ? 2u : 0u);
    if (sdc_mask != 0)
        os << " sdc=" << sdc_mask;
    return os.str();
}

/** Log a degradation reproducer to $PLR_REPRO_LOG and the caller's sink. */
void
log_degradation(const std::string& line, const std::string& why,
                const RunnerOptions& options)
{
    if (options.repro_out)
        *options.repro_out = line;
    const std::string log_path = env::string_or("PLR_REPRO_LOG");
    if (!log_path.empty()) {
        std::ofstream out(log_path, std::ios::app);
        if (out)
            out << line << "\n";
    }
    std::cerr << "plr: simulated-GPU backend failed (" << why << "); "
              << (options.on_failure == FailurePolicy::kDegradeToCpu
                      ? "degrading to the CPU backend"
                      : "failing fast")
              << "\n"
              << "plr: " << line << "\n";
}

/**
 * Drives the selective recovery ladder (docs/FAULTS.md) for the
 * simulated-GPU backend: repair corrupt chunks in place first, escalate to
 * bounded full relaunches with exponential backoff (each with a fresh SDC
 * round, so deterministic flips model fresh transient upsets), and only
 * then hand the failure to the dispatch-level policy (CPU fallback or
 * fail-fast).
 */
class RecoveryCoordinator {
  public:
    RecoveryCoordinator(const RunnerOptions& options, RecoveryReport& report)
        : options_(options), report_(report) {}

    /** Total GPU attempts the ladder allows (first launch + relaunches). */
    std::size_t attempts() const { return options_.max_relaunches + 1; }

    /** True when @p attempt is the last rung before dispatch-level policy. */
    bool last(std::size_t attempt) const { return attempt + 1 >= attempts(); }

    /** Record the relaunch (and back off) before attempt @p attempt. */
    void begin_attempt(std::size_t attempt) {
        if (attempt == 0)
            return;
        ++report_.relaunches;
        const std::uint64_t ms = options_.relaunch_backoff_ms
                                 << (attempt - 1);
        if (ms != 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }

    /** Append one ladder event to the report's detail log. */
    void note(std::size_t attempt, const std::string& event) {
        std::ostringstream os;
        os << "attempt " << attempt << ": " << event << "\n";
        report_.detail += os.str();
    }

    /** Fold one attempt's verify sweep into the report. */
    void note_verify(std::size_t attempt, const VerifyReport& verify) {
        ++report_.verify_passes;
        report_.chunks_repaired += verify.repaired;
        if (!verify.clean())
            note(attempt, verify.describe());
    }

    /** Stage of a successful GPU return, from what the ladder needed. */
    RecoveryStage success_stage() const {
        if (report_.relaunches > 0)
            return RecoveryStage::kRelaunched;
        if (report_.chunks_repaired > 0)
            return RecoveryStage::kRepaired;
        return RecoveryStage::kClean;
    }

  private:
    const RunnerOptions& options_;
    RecoveryReport& report_;
};

template <typename Ring>
std::vector<typename Ring::value_type>
run_gpu(const Signature& sig,
        std::span<const typename Ring::value_type> input,
        const RunnerOptions& options, RecoveryReport& report)
{
    using V = typename Ring::value_type;
    const KernelPlan plan = auto_plan(sig, input.size());
    PlrKernel<Ring> kernel(plan);
    RecoveryCoordinator coordinator(options, report);

    for (std::size_t attempt = 0;; ++attempt) {
        coordinator.begin_attempt(attempt);

        gpusim::Device device;
        std::shared_ptr<gpusim::FaultPlan> fault_plan;
        if (options.fault_seed != 0) {
            gpusim::FaultConfig config =
                options.sdc ? gpusim::with_default_sdc(options.fault_config)
                            : options.fault_config;
            config.sdc_round = attempt;
            fault_plan = std::make_shared<gpusim::FaultPlan>(
                options.fault_seed, config);
            device.set_fault_plan(fault_plan);
        }
        if (options.spin_watchdog != 0)
            device.set_spin_watchdog_limit(options.spin_watchdog);
        if (options.race_detect || options.invariants) {
            analysis::AnalysisConfig config;
            config.race_detect = options.race_detect;
            config.invariants = options.invariants;
            device.enable_analysis(config);
        }
        if (options.verify)
            device.set_integrity(true);

        try {
            PlrRunStats stats;
            auto result = kernel.run(device, input, &stats);
            if (fault_plan)
                report.faults = fault_plan->stats();
            if (!options.verify) {
                report.stage = coordinator.success_stage();
                return result;
            }

            VerifyOptions verify_options;
            verify_options.max_repairs = options.max_chunk_repairs;
            const VerifyReport verify = verify_and_repair<Ring>(
                sig, input, std::span<V>(result), plan.m,
                stats.checksums.armed() ? &stats.checksums : nullptr,
                verify_options);
            coordinator.note_verify(attempt, verify);
            if (verify.trustworthy()) {
                report.stage = coordinator.success_stage();
                return result;
            }
            if (coordinator.last(attempt))
                throw IntegrityError(
                    "plr.recovery: " + verify.describe() + " after " +
                        std::to_string(attempt + 1) +
                        " attempt(s); relaunch budget exhausted",
                    IntegrityError::kNoChunk, "verify");
            coordinator.note(attempt, "escalating to relaunch");
        } catch (const PanicError& error) {
            if (fault_plan)
                report.faults = fault_plan->stats();
            coordinator.note(attempt, std::string("raised: ") + error.what());
            if (coordinator.last(attempt))
                throw;
        }
    }
}

/**
 * Satellite of the failure-policy design: GPU-only knobs on the CPU
 * backend are a caller bug — error out loudly instead of silently
 * computing an un-instrumented answer the caller thinks is instrumented.
 */
void
require_cpu_compatible(const RunnerOptions& options)
{
    std::string offending;
    const auto flag = [&offending](bool on, const char* name) {
        if (!on)
            return;
        if (!offending.empty())
            offending += ", ";
        offending += name;
    };
    flag(options.fault_seed != 0, "fault_seed");
    flag(options.spin_watchdog != 0, "spin_watchdog");
    flag(options.race_detect, "race_detect");
    flag(options.invariants, "invariants");
    flag(options.sdc, "sdc");
    flag(options.verify, "verify");
    PLR_REQUIRE(offending.empty(),
                "Backend::kCpu does not support the simulated-GPU-only "
                "option(s): "
                    << offending
                    << "; drop them or use Backend::kSimulatedGpu");
}

template <typename Ring>
std::vector<typename Ring::value_type>
dispatch(const Signature& sig, std::span<const typename Ring::value_type> input,
         const char* domain, const RunnerOptions& options)
{
    PLR_REQUIRE(!input.empty(), "input must not be empty");
    switch (options.backend) {
      case Backend::kSimulatedGpu: {
        RecoveryReport report;
        try {
            auto result = run_gpu<Ring>(sig, input, options, report);
            if (options.recovery_out)
                *options.recovery_out = report;
            return result;
        } catch (const PanicError& error) {
            // LaunchError (watchdog wedge), an internal invariant
            // violation, or an IntegrityError that survived the ladder —
            // not a user error (FatalError propagates).
            const std::string line =
                degraded_repro_line(sig, domain, input.size(), options);
            log_degradation(line, error.what(), options);
            report.detail += std::string("runner: ") + error.what() + "\n";
            if (options.on_failure == FailurePolicy::kFailFast) {
                report.stage = RecoveryStage::kFailed;
                if (options.recovery_out)
                    *options.recovery_out = report;
                throw;
            }
            report.stage = RecoveryStage::kCpuFallback;
            if (options.recovery_out)
                *options.recovery_out = report;
            return cpu_parallel_recurrence<Ring>(sig, input);
        }
      }
      case Backend::kCpu:
        require_cpu_compatible(options);
        return cpu_parallel_recurrence<Ring>(sig, input);
    }
    PLR_PANIC("unreachable");
}

}  // namespace

const char*
to_string(RecoveryStage stage)
{
    switch (stage) {
      case RecoveryStage::kClean:
        return "clean";
      case RecoveryStage::kRepaired:
        return "repaired";
      case RecoveryStage::kRelaunched:
        return "relaunched";
      case RecoveryStage::kCpuFallback:
        return "cpu-fallback";
      case RecoveryStage::kFailed:
        return "failed";
    }
    return "unknown";
}

std::string
RecoveryReport::summary() const
{
    std::ostringstream os;
    os << "recovery: stage=" << to_string(stage)
       << " verify_passes=" << verify_passes
       << " chunks_repaired=" << chunks_repaired
       << " relaunches=" << relaunches;
    if (faults.sdc_flips() != 0)
        os << " sdc_flips=" << faults.sdc_flips()
           << " sdc_bits=" << faults.sdc_bits_flipped;
    return os.str();
}

std::vector<std::int32_t>
run_recurrence(const Signature& sig, std::span<const std::int32_t> input,
               Backend backend)
{
    RunnerOptions options;
    options.backend = backend;
    return run_recurrence(sig, input, options);
}

std::vector<float>
run_recurrence(const Signature& sig, std::span<const float> input,
               Backend backend)
{
    RunnerOptions options;
    options.backend = backend;
    return run_recurrence(sig, input, options);
}

std::vector<std::int32_t>
run_recurrence(const Signature& sig, std::span<const std::int32_t> input,
               const RunnerOptions& options)
{
    PLR_REQUIRE(sig.is_integral(),
                "integer data needs an integral signature; " << sig.to_string()
                << " has fractional (or max-plus) coefficients — use float "
                   "data instead");
    return dispatch<IntRing>(sig, input, "int", options);
}

std::vector<float>
run_recurrence(const Signature& sig, std::span<const float> input,
               const RunnerOptions& options)
{
    if (sig.is_max_plus())
        return dispatch<TropicalRing>(sig, input, "tropical", options);
    return dispatch<FloatRing>(sig, input, "float", options);
}

}  // namespace plr::kernels
