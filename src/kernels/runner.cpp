#include "kernels/runner.h"

#include <algorithm>

#include "gpusim/device.h"
#include "kernels/cpu_parallel.h"
#include "kernels/plr_kernel.h"

namespace plr::kernels {

namespace {

/**
 * A production plan scaled to the input: the Section-3 heuristics, with
 * the chunk shrunk for inputs too small to fill even one 1024-thread
 * block sensibly (the simulator equivalent of launching fewer threads).
 */
KernelPlan
auto_plan(const Signature& sig, std::size_t n)
{
    if (n >= 4096)
        return make_plan(sig, n);
    std::size_t m = 64;
    while (m < sig.order())
        m *= 2;
    return make_plan_with_chunk(sig, n, m, std::min<std::size_t>(m, 64));
}

template <typename Ring>
std::vector<typename Ring::value_type>
dispatch(const Signature& sig, std::span<const typename Ring::value_type> input,
         Backend backend)
{
    PLR_REQUIRE(!input.empty(), "input must not be empty");
    switch (backend) {
      case Backend::kSimulatedGpu: {
        gpusim::Device device;
        PlrKernel<Ring> kernel(auto_plan(sig, input.size()));
        return kernel.run(device, input);
      }
      case Backend::kCpu:
        return cpu_parallel_recurrence<Ring>(sig, input);
    }
    PLR_PANIC("unreachable");
}

}  // namespace

std::vector<std::int32_t>
run_recurrence(const Signature& sig, std::span<const std::int32_t> input,
               Backend backend)
{
    PLR_REQUIRE(sig.is_integral(),
                "integer data needs an integral signature; " << sig.to_string()
                << " has fractional (or max-plus) coefficients — use float "
                   "data instead");
    return dispatch<IntRing>(sig, input, backend);
}

std::vector<float>
run_recurrence(const Signature& sig, std::span<const float> input,
               Backend backend)
{
    if (sig.is_max_plus())
        return dispatch<TropicalRing>(sig, input, backend);
    return dispatch<FloatRing>(sig, input, backend);
}

}  // namespace plr::kernels
