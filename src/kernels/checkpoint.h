#ifndef PLR_KERNELS_CHECKPOINT_H_
#define PLR_KERNELS_CHECKPOINT_H_

/**
 * @file
 * Durable, self-verifying carry-state checkpoints (docs/STREAMING.md).
 *
 * A checkpoint captures everything a linear recurrence needs to resume
 * mid-stream: the signature it was computed under (as a collision-
 * resistant hash), the arithmetic domain, the stream position, the last
 * k outputs (the look-back carry state of src/kernels/lookback_chain.h)
 * and the last p inputs feeding the FIR taps. The serialized form is
 * versioned, endian-stable, and sealed with the same Fletcher-32 used
 * by the ABFT layer (src/kernels/verify.h) over header and payload, so
 * a torn write, a flipped bit, or a file from a different build is
 * rejected with a typed CheckpointError — never loaded as a silently
 * wrong carry.
 *
 * Binary layout (all fields little-endian, total 48 + 4*(k + p) bytes):
 *
 *   offset  size  field
 *        0     4  magic "PLRC"
 *        4     4  u32 format version (kCheckpointFormatVersion)
 *        8     4  u32 domain (0 int, 1 float, 2 tropical)
 *       12     4  u32 k — recurrence order (y-tail words)
 *       16     4  u32 p — FIR taps beyond a0 (x-tail words)
 *       20     8  u64 signature hash (signature_hash())
 *       28     8  u64 segments consumed so far
 *       36     8  u64 elements consumed so far (the resume position)
 *       44   4*k  y-tail bit patterns, newest first: word d is y[P-1-d]
 *     44+4k  4*p  x-tail bit patterns, newest first: word j is x[P-1-j]
 *      end-4    4  u32 Fletcher-32 over every preceding 32-bit word
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/signature.h"
#include "kernels/registry.h"
#include "util/diag.h"

namespace plr::kernels {

/** Serialized format version this build writes and understands. */
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/** Magic prefix of every checkpoint file. */
inline constexpr char kCheckpointMagic[4] = {'P', 'L', 'R', 'C'};

/** Format-level sanity bounds (far above any real signature). */
inline constexpr std::uint32_t kCheckpointMaxOrder = 64;
inline constexpr std::uint32_t kCheckpointMaxTaps = 256;

/** Why a checkpoint load was rejected. */
enum class CheckpointErrorKind {
    /** File could not be opened/read/written. */
    kIo,
    /** First four bytes are not "PLRC". */
    kBadMagic,
    /** Format version is not kCheckpointFormatVersion. */
    kVersionSkew,
    /** Fewer bytes than the header + payload declare (torn write). */
    kTruncated,
    /** Sizes/fields are internally inconsistent (trailing bytes, order
        or tap counts outside the format bounds, unknown domain). */
    kMalformed,
    /** Fletcher-32 seal does not match (bit flip / torn rewrite). */
    kCorrupt,
    /** Valid checkpoint, but for a different signature or domain. */
    kSignatureMismatch,
};

/** Stable lowercase name ("truncated", "corrupt", ...). */
const char* to_string(CheckpointErrorKind kind);

/**
 * Typed rejection of a checkpoint load or save. Derives FatalError: a
 * bad checkpoint is caller-visible state, not a library bug, and must
 * never surface as a silent wrong answer.
 */
class CheckpointError : public FatalError {
  public:
    CheckpointError(CheckpointErrorKind kind, const std::string& what)
        : FatalError(what), kind_(kind)
    {
    }

    CheckpointErrorKind kind() const { return kind_; }

  private:
    CheckpointErrorKind kind_;
};

/** In-memory form of a serialized checkpoint. */
struct Checkpoint {
    std::uint32_t version = kCheckpointFormatVersion;
    Domain domain = Domain::kInt;
    /** Recurrence order k: number of y-tail words. */
    std::uint32_t order = 0;
    /** FIR taps beyond a0: number of x-tail words. */
    std::uint32_t fir_taps = 0;
    /** signature_hash() of the signature the state was computed under. */
    std::uint64_t sig_hash = 0;
    /** Segments fed so far. */
    std::uint64_t segments = 0;
    /** Elements consumed so far — the position the stream resumes at. */
    std::uint64_t elements = 0;
    /** y-tail bit patterns, newest first: y_words[d] = bits of y[P-1-d]. */
    std::vector<std::uint32_t> y_words;
    /** x-tail bit patterns, newest first: x_words[j] = bits of x[P-1-j]. */
    std::vector<std::uint32_t> x_words;
};

/**
 * Collision-resistant (FNV-1a/64) hash over the signature coefficients
 * (exact double bit patterns), the max-plus flag, and the domain. Two
 * runs agree on the hash iff they evaluate the same recurrence in the
 * same ring.
 */
std::uint64_t signature_hash(const Signature& sig, Domain domain);

/** Serialize to the endian-stable byte layout above (with seal). */
std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& ckpt);

/**
 * Parse and verify a serialized checkpoint. Throws CheckpointError
 * (kBadMagic, kVersionSkew, kTruncated, kMalformed, kCorrupt) — every
 * byte of the input is validated before any field is trusted.
 */
Checkpoint parse_checkpoint(std::span<const std::uint8_t> bytes);

/**
 * Check that @p ckpt belongs to (@p sig, @p domain); throws
 * CheckpointError(kSignatureMismatch) otherwise. parse_checkpoint
 * cannot do this — it has no expected signature — so resume paths call
 * both.
 */
void validate_checkpoint_for(const Checkpoint& ckpt, const Signature& sig,
                             Domain domain);

/** Write the serialized form to @p path (throws CheckpointError(kIo)). */
void save_checkpoint(const Checkpoint& ckpt, const std::string& path);

/** Read, parse, and verify a checkpoint file (kIo + parse errors). */
Checkpoint load_checkpoint(const std::string& path);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_CHECKPOINT_H_
