/**
 * @file
 * AVX2 + FMA variants of the SimdScan table (8 x 32-bit lanes). This
 * translation unit is the only one compiled with -mavx2 -mfma; nothing
 * here runs unless isa_available(kAvx2) said the CPU supports it.
 *
 * Intra-register scans are Kogge-Stone: lane shifts by 1 and 2 via
 * alignr against a permute2x128-shifted copy, by 4 via permute2x128
 * alone (alignr cannot cross the 128-bit lane boundary on its own).
 * Integer variants use wrap-around mullo/add, so every reassociation
 * is bit-identical to the scalar table.
 */

#include "kernels/simd/simd_scan.h"

#if defined(PLR_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace plr::kernels::simd {
namespace {

// ---- Lane shifts toward higher indices, zero-filling lane 0. -------

inline __m256i
shl_lanes1(__m256i v)
{
    const __m256i low = _mm256_permute2x128_si256(v, v, 0x08);
    return _mm256_alignr_epi8(v, low, 12);
}

inline __m256i
shl_lanes2(__m256i v)
{
    const __m256i low = _mm256_permute2x128_si256(v, v, 0x08);
    return _mm256_alignr_epi8(v, low, 8);
}

inline __m256i
shl_lanes4(__m256i v)
{
    return _mm256_permute2x128_si256(v, v, 0x08);
}

inline __m256
shl_lanes1(__m256 v)
{
    return _mm256_castsi256_ps(shl_lanes1(_mm256_castps_si256(v)));
}

inline __m256
shl_lanes2(__m256 v)
{
    return _mm256_castsi256_ps(shl_lanes2(_mm256_castps_si256(v)));
}

inline __m256
shl_lanes4(__m256 v)
{
    return _mm256_castsi256_ps(shl_lanes4(_mm256_castps_si256(v)));
}

inline std::int32_t
lane7(__m256i v)
{
    return _mm256_extract_epi32(v, 7);
}

inline float
lane7(__m256 v)
{
    return _mm256_cvtss_f32(
        _mm256_permutevar8x32_ps(v, _mm256_set1_epi32(7)));
}

/** Load mask with the low @p remaining lanes active (remaining in
 * [0, 8]). Masked loads/stores never touch inactive lanes, which is
 * what keeps the tail paths clean under ASan. */
inline __m256i
tail_mask(std::size_t remaining)
{
    alignas(32) static constexpr std::int32_t kMask[16] = {
        -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kMask + 8 - remaining));
}

inline std::int32_t
uadd(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                     static_cast<std::uint32_t>(b));
}

inline std::int32_t
umul(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                     static_cast<std::uint32_t>(b));
}

// ---- Prefix sums. --------------------------------------------------

inline __m256i
inclusive_scan(__m256i v)
{
    v = _mm256_add_epi32(v, shl_lanes1(v));
    v = _mm256_add_epi32(v, shl_lanes2(v));
    v = _mm256_add_epi32(v, shl_lanes4(v));
    return v;
}

inline __m256
inclusive_scan(__m256 v)
{
    v = _mm256_add_ps(v, shl_lanes1(v));
    v = _mm256_add_ps(v, shl_lanes2(v));
    v = _mm256_add_ps(v, shl_lanes4(v));
    return v;
}

void
prefix_sum_i32_avx2(const std::int32_t* x, std::int32_t* y, std::size_t n,
                    std::int32_t carry_in, std::int32_t* carry_out)
{
    std::int32_t acc = carry_in;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(x + i));
        v = inclusive_scan(v);
        v = _mm256_add_epi32(v, _mm256_set1_epi32(acc));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), v);
        acc = lane7(v);
    }
    for (; i < n; ++i) {
        acc = uadd(acc, x[i]);
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

void
prefix_sum_f32_avx2(const float* x, float* y, std::size_t n, float carry_in,
                    float* carry_out)
{
    float acc = carry_in;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(x + i);
        v = inclusive_scan(v);
        v = _mm256_add_ps(v, _mm256_set1_ps(acc));
        _mm256_storeu_ps(y + i, v);
        acc = lane7(v);
    }
    for (; i < n; ++i) {
        acc = acc + x[i];
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

// ---- First-order recurrences (weighted Kogge-Stone). ---------------

void
first_order_i32_avx2(const std::int32_t* x, std::int32_t* y, std::size_t n,
                     std::int32_t a0, std::int32_t b, std::int32_t carry_in,
                     std::int32_t* carry_out)
{
    const std::int32_t b2 = umul(b, b);
    const std::int32_t b4 = umul(b2, b2);
    const __m256i vb = _mm256_set1_epi32(b);
    const __m256i vb2 = _mm256_set1_epi32(b2);
    const __m256i vb4 = _mm256_set1_epi32(b4);
    const __m256i va0 = _mm256_set1_epi32(a0);
    // Per-lane carry weights b^1 .. b^8.
    const __m256i vpow = _mm256_setr_epi32(
        b, b2, umul(b2, b), b4, umul(b4, b), umul(b4, b2),
        umul(b4, umul(b2, b)), umul(b4, b4));

    std::int32_t acc = carry_in;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i v = _mm256_mullo_epi32(
            va0,
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)));
        v = _mm256_add_epi32(v, _mm256_mullo_epi32(vb, shl_lanes1(v)));
        v = _mm256_add_epi32(v, _mm256_mullo_epi32(vb2, shl_lanes2(v)));
        v = _mm256_add_epi32(v, _mm256_mullo_epi32(vb4, shl_lanes4(v)));
        v = _mm256_add_epi32(
            v, _mm256_mullo_epi32(vpow, _mm256_set1_epi32(acc)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), v);
        acc = lane7(v);
    }
    for (; i < n; ++i) {
        acc = uadd(umul(a0, x[i]), umul(b, acc));
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

void
first_order_f32_avx2(const float* x, float* y, std::size_t n, float a0,
                     float b, float carry_in, float* carry_out)
{
    const float b2 = b * b;
    const float b4 = b2 * b2;
    const __m256 vb = _mm256_set1_ps(b);
    const __m256 vb2 = _mm256_set1_ps(b2);
    const __m256 vb4 = _mm256_set1_ps(b4);
    const __m256 va0 = _mm256_set1_ps(a0);
    const __m256 vpow = _mm256_setr_ps(b, b2, b2 * b, b4, b4 * b, b4 * b2,
                                       b4 * b2 * b, b4 * b4);

    float acc = carry_in;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_mul_ps(va0, _mm256_loadu_ps(x + i));
        v = _mm256_fmadd_ps(vb, shl_lanes1(v), v);
        v = _mm256_fmadd_ps(vb2, shl_lanes2(v), v);
        v = _mm256_fmadd_ps(vb4, shl_lanes4(v), v);
        v = _mm256_fmadd_ps(vpow, _mm256_set1_ps(acc), v);
        _mm256_storeu_ps(y + i, v);
        acc = lane7(v);
    }
    for (; i < n; ++i) {
        acc = a0 * x[i] + b * acc;
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

void
first_order_log_f32_avx2(const float* x, float* y, std::size_t n, float a0,
                         float b, float carry_in, float* carry_out)
{
    if (!(b > 0.0f && b < 1.0f)) {
        first_order_f32_avx2(x, y, n, a0, b, carry_in, carry_out);
        return;
    }
    const std::size_t block = heinsen_block_length(b);
    const float rb = 1.0f / b;
    // Geometric ramps 1 .. b^-7 and 1 .. b^7, stepped by b^-8 / b^8.
    alignas(32) float ramp_r[8];
    alignas(32) float ramp_p[8];
    ramp_r[0] = 1.0f;
    ramp_p[0] = 1.0f;
    for (int l = 1; l < 8; ++l) {
        ramp_r[l] = ramp_r[l - 1] * rb;
        ramp_p[l] = ramp_p[l - 1] * b;
    }
    const __m256 base_r = _mm256_load_ps(ramp_r);
    const __m256 base_p = _mm256_load_ps(ramp_p);
    const __m256 rstep = _mm256_set1_ps(ramp_r[7] * rb);
    const __m256 pstep = _mm256_set1_ps(ramp_p[7] * b);
    const __m256 va0 = _mm256_set1_ps(a0);

    float carry = carry_in;
    std::size_t i = 0;
    while (i < n) {
        const std::size_t len = std::min(block, n - i);
        const float base = b * carry;
        const __m256 vbase = _mm256_set1_ps(base);
        __m256 rcur = base_r;
        __m256 pcur = base_p;
        float sum = 0.0f;
        std::size_t t = 0;
        for (; t + 8 <= len; t += 8) {
            __m256 v = _mm256_mul_ps(
                _mm256_mul_ps(va0, _mm256_loadu_ps(x + i + t)), rcur);
            v = inclusive_scan(v);
            v = _mm256_add_ps(v, _mm256_set1_ps(sum));
            _mm256_storeu_ps(y + i + t,
                             _mm256_mul_ps(pcur, _mm256_add_ps(vbase, v)));
            sum = lane7(v);
            rcur = _mm256_mul_ps(rcur, rstep);
            pcur = _mm256_mul_ps(pcur, pstep);
        }
        // The block length is a multiple of 8, so only the final block
        // has a scalar tail. Lane 0 of the ramps is b^-t / b^t here.
        float r0 = _mm256_cvtss_f32(rcur);
        float p0 = _mm256_cvtss_f32(pcur);
        for (; t < len; ++t) {
            sum = sum + a0 * x[i + t] * r0;
            y[i + t] = p0 * (base + sum);
            r0 *= rb;
            p0 *= b;
        }
        carry = y[i + len - 1];
        i += len;
    }
    if (carry_out != nullptr)
        *carry_out = carry;
}

// ---- Tuple prefix sums. --------------------------------------------

template <typename T, typename Fn>
inline void
tuple_scalar_finish(const T* x, T* y, std::size_t n, std::size_t s,
                    const T* carry_in, T* carry_out, std::size_t from,
                    Fn add)
{
    for (std::size_t i = from; i < n; ++i)
        y[i] = add(x[i], i >= s ? y[i - s] : carry_in[i]);
    if (carry_out != nullptr)
        for (std::size_t j = 0; j < s; ++j)
            carry_out[j] = n + j >= s ? y[n + j - s] : carry_in[n + j];
}

void
tuple_prefix_i32_avx2(const std::int32_t* x, std::int32_t* y, std::size_t n,
                      std::size_t s, const std::int32_t* carry_in,
                      std::int32_t* carry_out)
{
    const auto add = [](std::int32_t a, std::int32_t b) {
        return uadd(a, b);
    };
    std::size_t i = 0;
    if (s >= 8) {
        // Vertical: y[i] = x[i] + y[i-s] with the operand s >= lanes
        // behind, so a whole vector of it is already in memory.
        const std::size_t head = std::min(s, n);
        for (; i < head; ++i)
            y[i] = uadd(x[i], carry_in[i]);
        for (; i + 8 <= n; i += 8) {
            const __m256i v = _mm256_add_epi32(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(x + i)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(y + i - s)));
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), v);
        }
    } else if (s == 1 || s == 2 || s == 4) {
        // Lane-aligned: strided Kogge-Stone plus a repeating carry
        // vector {c0..c_{s-1}} tiled across the register.
        __m256i cvec;
        if (s == 1) {
            cvec = _mm256_set1_epi32(carry_in[0]);
        } else if (s == 2) {
            cvec = _mm256_setr_epi32(carry_in[0], carry_in[1], carry_in[0],
                                     carry_in[1], carry_in[0], carry_in[1],
                                     carry_in[0], carry_in[1]);
        } else {
            cvec = _mm256_setr_epi32(carry_in[0], carry_in[1], carry_in[2],
                                     carry_in[3], carry_in[0], carry_in[1],
                                     carry_in[2], carry_in[3]);
        }
        const __m256i tile2 = _mm256_setr_epi32(6, 7, 6, 7, 6, 7, 6, 7);
        for (; i + 8 <= n; i += 8) {
            __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(x + i));
            if (s == 1)
                v = _mm256_add_epi32(v, shl_lanes1(v));
            if (s <= 2)
                v = _mm256_add_epi32(v, shl_lanes2(v));
            v = _mm256_add_epi32(v, shl_lanes4(v));
            v = _mm256_add_epi32(v, cvec);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), v);
            if (s == 1)
                cvec = _mm256_set1_epi32(lane7(v));
            else if (s == 2)
                cvec = _mm256_permutevar8x32_epi32(v, tile2);
            else
                cvec = _mm256_permute2x128_si256(v, v, 0x11);
        }
    }
    // Any other tuple size, plus every tail, runs scalar.
    tuple_scalar_finish(x, y, n, s, carry_in, carry_out, i, add);
}

void
tuple_prefix_f32_avx2(const float* x, float* y, std::size_t n,
                      std::size_t s, const float* carry_in,
                      float* carry_out)
{
    const auto add = [](float a, float b) { return a + b; };
    std::size_t i = 0;
    if (s >= 8) {
        const std::size_t head = std::min(s, n);
        for (; i < head; ++i)
            y[i] = x[i] + carry_in[i];
        for (; i + 8 <= n; i += 8)
            _mm256_storeu_ps(y + i,
                             _mm256_add_ps(_mm256_loadu_ps(x + i),
                                           _mm256_loadu_ps(y + i - s)));
    } else if (s == 1 || s == 2 || s == 4) {
        __m256 cvec;
        if (s == 1) {
            cvec = _mm256_set1_ps(carry_in[0]);
        } else if (s == 2) {
            cvec = _mm256_setr_ps(carry_in[0], carry_in[1], carry_in[0],
                                  carry_in[1], carry_in[0], carry_in[1],
                                  carry_in[0], carry_in[1]);
        } else {
            cvec = _mm256_setr_ps(carry_in[0], carry_in[1], carry_in[2],
                                  carry_in[3], carry_in[0], carry_in[1],
                                  carry_in[2], carry_in[3]);
        }
        const __m256i tile2 = _mm256_setr_epi32(6, 7, 6, 7, 6, 7, 6, 7);
        for (; i + 8 <= n; i += 8) {
            __m256 v = _mm256_loadu_ps(x + i);
            if (s == 1)
                v = _mm256_add_ps(v, shl_lanes1(v));
            if (s <= 2)
                v = _mm256_add_ps(v, shl_lanes2(v));
            v = _mm256_add_ps(v, shl_lanes4(v));
            v = _mm256_add_ps(v, cvec);
            _mm256_storeu_ps(y + i, v);
            if (s == 1)
                cvec = _mm256_set1_ps(lane7(v));
            else if (s == 2)
                cvec = _mm256_permutevar8x32_ps(v, tile2);
            else {
                const __m256i iv = _mm256_castps_si256(v);
                cvec = _mm256_castsi256_ps(
                    _mm256_permute2x128_si256(iv, iv, 0x11));
            }
        }
    }
    tuple_scalar_finish(x, y, n, s, carry_in, carry_out, i, add);
}

// ---- Map stage. ----------------------------------------------------

void
scale_i32_avx2(const std::int32_t* x, std::int32_t* y, std::size_t n,
               std::int32_t a0)
{
    const __m256i va0 = _mm256_set1_epi32(a0);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(y + i),
            _mm256_mullo_epi32(va0, _mm256_loadu_si256(
                                        reinterpret_cast<const __m256i*>(
                                            x + i))));
    for (; i < n; ++i)
        y[i] = umul(a0, x[i]);
}

void
scale_f32_avx2(const float* x, float* y, std::size_t n, float a0)
{
    const __m256 va0 = _mm256_set1_ps(a0);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(y + i,
                         _mm256_mul_ps(va0, _mm256_loadu_ps(x + i)));
    for (; i < n; ++i)
        y[i] = a0 * x[i];
}

// ---- Phase-2 correction. -------------------------------------------

void
correct_i32_avx2(std::int32_t* y, std::size_t len,
                 const CorrectionTermI32* terms, std::size_t k)
{
    for (std::size_t j = 0; j < k; ++j) {
        const CorrectionTermI32& t = terms[j];
        const std::size_t lim = std::min(len, t.effective_length);
        if (lim == 0)
            continue;  // don't touch factors[0] of an empty list
        std::size_t o = 0;
        if (t.all_equal) {
            const __m256i addv =
                _mm256_set1_epi32(umul(t.factors[0], t.carry));
            for (; o + 8 <= lim; o += 8)
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(y + o),
                    _mm256_add_epi32(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(y + o)),
                        addv));
            if (o < lim) {
                const __m256i mask = tail_mask(lim - o);
                const __m256i v = _mm256_add_epi32(
                    _mm256_maskload_epi32(y + o, mask), addv);
                _mm256_maskstore_epi32(y + o, mask, v);
            }
        } else {
            const __m256i cv = _mm256_set1_epi32(t.carry);
            for (; o + 8 <= lim; o += 8) {
                const __m256i f = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(t.factors + o));
                const __m256i v = _mm256_add_epi32(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(y + o)),
                    _mm256_mullo_epi32(f, cv));
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + o), v);
            }
            if (o < lim) {
                const __m256i mask = tail_mask(lim - o);
                const __m256i f =
                    _mm256_maskload_epi32(t.factors + o, mask);
                const __m256i v = _mm256_add_epi32(
                    _mm256_maskload_epi32(y + o, mask),
                    _mm256_mullo_epi32(f, cv));
                _mm256_maskstore_epi32(y + o, mask, v);
            }
        }
    }
}

void
correct_f32_avx2(float* y, std::size_t len, const CorrectionTermF32* terms,
                 std::size_t k)
{
    for (std::size_t j = 0; j < k; ++j) {
        const CorrectionTermF32& t = terms[j];
        const std::size_t lim = std::min(len, t.effective_length);
        if (lim == 0)
            continue;  // don't touch factors[0] of an empty list
        std::size_t o = 0;
        if (t.all_equal) {
            const __m256 addv = _mm256_set1_ps(t.factors[0] * t.carry);
            for (; o + 8 <= lim; o += 8)
                _mm256_storeu_ps(
                    y + o, _mm256_add_ps(_mm256_loadu_ps(y + o), addv));
            if (o < lim) {
                const __m256i mask = tail_mask(lim - o);
                const __m256 v =
                    _mm256_add_ps(_mm256_maskload_ps(y + o, mask), addv);
                _mm256_maskstore_ps(y + o, mask, v);
            }
        } else {
            const __m256 cv = _mm256_set1_ps(t.carry);
            for (; o + 8 <= lim; o += 8) {
                const __m256 v = _mm256_fmadd_ps(
                    _mm256_loadu_ps(t.factors + o), cv,
                    _mm256_loadu_ps(y + o));
                _mm256_storeu_ps(y + o, v);
            }
            if (o < lim) {
                const __m256i mask = tail_mask(lim - o);
                const __m256 v = _mm256_fmadd_ps(
                    _mm256_maskload_ps(t.factors + o, mask), cv,
                    _mm256_maskload_ps(y + o, mask));
                _mm256_maskstore_ps(y + o, mask, v);
            }
        }
    }
}

}  // namespace

namespace detail {

const SimdScan&
avx2_table()
{
    static const SimdScan table = [] {
        SimdScan t;
        t.isa = Isa::kAvx2;
        t.lanes = 8;
        t.prefix_sum_i32 = prefix_sum_i32_avx2;
        t.prefix_sum_f32 = prefix_sum_f32_avx2;
        t.first_order_i32 = first_order_i32_avx2;
        t.first_order_f32 = first_order_f32_avx2;
        t.first_order_log_f32 = first_order_log_f32_avx2;
        t.tuple_prefix_i32 = tuple_prefix_i32_avx2;
        t.tuple_prefix_f32 = tuple_prefix_f32_avx2;
        t.scale_i32 = scale_i32_avx2;
        t.scale_f32 = scale_f32_avx2;
        t.correct_i32 = correct_i32_avx2;
        t.correct_f32 = correct_f32_avx2;
        return t;
    }();
    return table;
}

}  // namespace detail
}  // namespace plr::kernels::simd

#endif  // PLR_HAVE_AVX2
