#include "kernels/simd/simd_scan.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/env.h"

namespace plr::kernels::simd {

const char*
to_string(Isa isa)
{
    switch (isa) {
      case Isa::kScalar: return "scalar";
      case Isa::kAvx2: return "avx2";
    }
    return "unknown";
}

bool
isa_available(Isa isa)
{
    switch (isa) {
      case Isa::kScalar:
        return true;
      case Isa::kAvx2:
#if defined(PLR_HAVE_AVX2)
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
    }
    return false;
}

Isa
best_supported_isa()
{
    return isa_available(Isa::kAvx2) ? Isa::kAvx2 : Isa::kScalar;
}

std::optional<Isa>
parse_isa(std::string_view name)
{
    if (name == "scalar")
        return Isa::kScalar;
    if (name == "avx2")
        return Isa::kAvx2;
    return std::nullopt;  // "auto", "", unknown: use the best available
}

Isa
selected_isa()
{
    static const Isa selected = [] {
        // env::choice_or rejects misspelled table names with a clear
        // diagnostic; "auto" (or unset) picks the best available.
        const std::string name =
            env::choice_or("PLR_SIMD", {"auto", "scalar", "avx2"}, "auto");
        const auto forced = parse_isa(name);
        if (forced.has_value())
            return isa_available(*forced) ? *forced : Isa::kScalar;
        return best_supported_isa();
    }();
    return selected;
}

std::size_t
heinsen_block_length(float b)
{
    if (!(b > 0.0f && b < 1.0f))
        return 8;
    // Largest L with b^-L <= 2^kMaxExponentBits, so the b^-i-scaled
    // partial sums of the two-prefix-sum formulation stay ~18 binades
    // below the float overflow threshold.
    constexpr double kMaxExponentBits = 20.0;
    const double bits_per_step = -std::log2(static_cast<double>(b));
    const double raw = kMaxExponentBits / bits_per_step;
    std::size_t len =
        raw < 8.0 ? 8 : (raw > 4096.0 ? 4096 : static_cast<std::size_t>(raw));
    return len & ~std::size_t{7};  // multiple of the widest lane count
}

namespace {

// ---- Portable scalar variants. ------------------------------------
// These are the reference semantics of the SimdScan contract: the AVX2
// table must match them bit-for-bit in the wrap-around int ring and
// within the conformance ULP gates in floats.

inline std::int32_t
uadd(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                     static_cast<std::uint32_t>(b));
}

inline std::int32_t
umul(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                     static_cast<std::uint32_t>(b));
}

void
prefix_sum_i32_scalar(const std::int32_t* x, std::int32_t* y, std::size_t n,
                      std::int32_t carry_in, std::int32_t* carry_out)
{
    std::int32_t acc = carry_in;
    for (std::size_t i = 0; i < n; ++i) {
        acc = uadd(acc, x[i]);
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

void
prefix_sum_f32_scalar(const float* x, float* y, std::size_t n,
                      float carry_in, float* carry_out)
{
    float acc = carry_in;
    for (std::size_t i = 0; i < n; ++i) {
        acc = acc + x[i];
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

void
first_order_i32_scalar(const std::int32_t* x, std::int32_t* y, std::size_t n,
                       std::int32_t a0, std::int32_t b, std::int32_t carry_in,
                       std::int32_t* carry_out)
{
    std::int32_t acc = carry_in;
    for (std::size_t i = 0; i < n; ++i) {
        acc = uadd(umul(a0, x[i]), umul(b, acc));
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

void
first_order_f32_scalar(const float* x, float* y, std::size_t n, float a0,
                       float b, float carry_in, float* carry_out)
{
    float acc = carry_in;
    for (std::size_t i = 0; i < n; ++i) {
        acc = a0 * x[i] + b * acc;
        y[i] = acc;
    }
    if (carry_out != nullptr)
        *carry_out = acc;
}

void
first_order_log_f32_scalar(const float* x, float* y, std::size_t n, float a0,
                           float b, float carry_in, float* carry_out)
{
    if (!(b > 0.0f && b < 1.0f)) {  // contract: decay coefficients only
        first_order_f32_scalar(x, y, n, a0, b, carry_in, carry_out);
        return;
    }
    // Heinsen's two-prefix-sum formulation, per block:
    //   y[t] = b^t * (b*carry + S[t]),  S[t] = cumsum(a0 * x[u] * b^-u).
    // The first "prefix sum" — cumsum(log b) — is the geometric ladder
    // b^t / b^-u (our coefficients are constant); the block length keeps
    // its excursion inside the float exponent budget.
    const std::size_t block = heinsen_block_length(b);
    const float rb = 1.0f / b;
    float carry = carry_in;
    std::size_t i = 0;
    while (i < n) {
        const std::size_t len = std::min(block, n - i);
        const float base = b * carry;
        float sum = 0.0f;
        float r = 1.0f;  // b^-t
        float p = 1.0f;  // b^t
        for (std::size_t t = 0; t < len; ++t) {
            sum = sum + a0 * x[i + t] * r;
            y[i + t] = p * (base + sum);
            r *= rb;
            p *= b;
        }
        carry = y[i + len - 1];
        i += len;
    }
    if (carry_out != nullptr)
        *carry_out = carry;
}

void
tuple_prefix_i32_scalar(const std::int32_t* x, std::int32_t* y,
                        std::size_t n, std::size_t s,
                        const std::int32_t* carry_in,
                        std::int32_t* carry_out)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] = uadd(x[i], i >= s ? y[i - s] : carry_in[i]);
    if (carry_out != nullptr)
        for (std::size_t j = 0; j < s; ++j)
            carry_out[j] = n + j >= s ? y[n + j - s] : carry_in[n + j];
}

void
tuple_prefix_f32_scalar(const float* x, float* y, std::size_t n,
                        std::size_t s, const float* carry_in,
                        float* carry_out)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] = x[i] + (i >= s ? y[i - s] : carry_in[i]);
    if (carry_out != nullptr)
        for (std::size_t j = 0; j < s; ++j)
            carry_out[j] = n + j >= s ? y[n + j - s] : carry_in[n + j];
}

void
scale_i32_scalar(const std::int32_t* x, std::int32_t* y, std::size_t n,
                 std::int32_t a0)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] = umul(a0, x[i]);
}

void
scale_f32_scalar(const float* x, float* y, std::size_t n, float a0)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] = a0 * x[i];
}

void
correct_i32_scalar(std::int32_t* y, std::size_t len,
                   const CorrectionTermI32* terms, std::size_t k)
{
    for (std::size_t j = 0; j < k; ++j) {
        const CorrectionTermI32& t = terms[j];
        const std::size_t lim = std::min(len, t.effective_length);
        if (lim == 0)
            continue;  // don't touch factors[0] of an empty list
        if (t.all_equal) {
            const std::int32_t add = umul(t.factors[0], t.carry);
            for (std::size_t o = 0; o < lim; ++o)
                y[o] = uadd(y[o], add);
        } else {
            for (std::size_t o = 0; o < lim; ++o)
                y[o] = uadd(y[o], umul(t.factors[o], t.carry));
        }
    }
}

void
correct_f32_scalar(float* y, std::size_t len, const CorrectionTermF32* terms,
                   std::size_t k)
{
    for (std::size_t j = 0; j < k; ++j) {
        const CorrectionTermF32& t = terms[j];
        const std::size_t lim = std::min(len, t.effective_length);
        if (lim == 0)
            continue;  // don't touch factors[0] of an empty list
        if (t.all_equal) {
            const float add = t.factors[0] * t.carry;
            for (std::size_t o = 0; o < lim; ++o)
                y[o] = y[o] + add;
        } else {
            for (std::size_t o = 0; o < lim; ++o)
                y[o] = y[o] + t.factors[o] * t.carry;
        }
    }
}

}  // namespace

namespace detail {

const SimdScan&
scalar_table()
{
    static const SimdScan table = [] {
        SimdScan t;
        t.isa = Isa::kScalar;
        t.lanes = 1;
        t.prefix_sum_i32 = prefix_sum_i32_scalar;
        t.prefix_sum_f32 = prefix_sum_f32_scalar;
        t.first_order_i32 = first_order_i32_scalar;
        t.first_order_f32 = first_order_f32_scalar;
        t.first_order_log_f32 = first_order_log_f32_scalar;
        t.tuple_prefix_i32 = tuple_prefix_i32_scalar;
        t.tuple_prefix_f32 = tuple_prefix_f32_scalar;
        t.scale_i32 = scale_i32_scalar;
        t.scale_f32 = scale_f32_scalar;
        t.correct_i32 = correct_i32_scalar;
        t.correct_f32 = correct_f32_scalar;
        return t;
    }();
    return table;
}

}  // namespace detail

const SimdScan&
scan_table(Isa isa)
{
#if defined(PLR_HAVE_AVX2)
    if (isa == Isa::kAvx2 && isa_available(Isa::kAvx2))
        return detail::avx2_table();
#else
    (void)isa;
#endif
    return detail::scalar_table();
}

const SimdScan&
active_scan()
{
    return scan_table(selected_isa());
}

}  // namespace plr::kernels::simd
