#ifndef PLR_KERNELS_SIMD_SIMD_SCAN_H_
#define PLR_KERNELS_SIMD_SIMD_SCAN_H_

/**
 * @file
 * The SIMD scan layer: vectorized Phase-1/Phase-2 primitives for the
 * native CPU backends, behind a runtime-dispatched table.
 *
 * The paper's Phase 1 computes an independent serial recurrence per
 * chunk and Phase 2 corrects each chunk with precomputed factor lists
 * (Section 2). Both phases vectorize on the signature shapes that
 * dominate real workloads:
 *
 *  - prefix sum (1: 1): Blelloch/Kogge-Stone intra-register scan —
 *    log2(lanes) shifted adds per vector plus a running carry;
 *  - first-order (1: b): the same scan with the shifted adds weighted
 *    by b^1, b^2, b^4 (exact in the wrap-around int ring, ULP-level
 *    reassociation drift in floats);
 *  - first-order decay, log-space (Heinsen, "Efficient Parallelization
 *    of a Ubiquitous Sequential Computation"): y is rewritten as the
 *    composition of two prefix sums, cumsum(log b) — a geometric ladder
 *    for our constant coefficients — and a cumsum of inputs scaled by
 *    b^-i. Evaluated blockwise so the scale excursion stays inside the
 *    float exponent budget (see heinsen_block_length);
 *  - tuple prefix sums (1: 0,..,0,1): lane-aligned shifted adds for
 *    tuple sizes dividing the lane count, vertical adds for tuple
 *    sizes >= the lane count;
 *  - Phase-2 correction y[o] += sum_j F_j[o] * carry_j for ANY
 *    signature: an elementwise multiply-add streamed over the chunk,
 *    with all-equal factor lists folded to one broadcast term.
 *
 * Every entry point exists in a portable-scalar variant and (when the
 * toolchain can target it) an AVX2 variant. Dispatch is runtime: the
 * selected table is the best instruction set the running CPU supports,
 * overridable with $PLR_SIMD ("scalar", "avx2", "auto"). Integer
 * variants agree bit-for-bit across tables (wrap-around arithmetic is
 * associative); float variants agree within the conformance ULP gates.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace plr::kernels::simd {

/** Instruction sets the scan layer can dispatch to. */
enum class Isa {
    /** Portable scalar C++ (always available). */
    kScalar,
    /** AVX2 + FMA, 8 x 32-bit lanes. */
    kAvx2,
};

/** Short lowercase name ("scalar", "avx2"). */
const char* to_string(Isa isa);

/** True when this binary contains code for @p isa AND the running CPU
 * supports it. kScalar is always available. */
bool isa_available(Isa isa);

/** Best available ISA (currently: kAvx2 when available, else kScalar). */
Isa best_supported_isa();

/** Parse a $PLR_SIMD value: "scalar" or "avx2"; "auto", "", and unknown
 * names yield nullopt (= use best_supported_isa()). */
std::optional<Isa> parse_isa(std::string_view name);

/**
 * The ISA the process uses: best_supported_isa() unless $PLR_SIMD
 * forces one. A forced ISA the CPU cannot run falls back to kScalar.
 * Cached on first call.
 */
Isa selected_isa();

/**
 * Heinsen log-space block length for coefficient @p b in (0, 1): the
 * largest power-of-two-friendly length L with b^-L <= 2^kMaxExponent,
 * so the scaled partial sums stay well inside the float range. Clamped
 * to [8, 4096].
 */
std::size_t heinsen_block_length(float b);

/** One Phase-2 correction term (carry j of the paper's Section 2.1). */
struct CorrectionTermI32 {
    /** Factor list F_j, at least effective_length elements. */
    const std::int32_t* factors = nullptr;
    /** Offsets >= this need no correction (decayed tail, Section 3.1). */
    std::size_t effective_length = 0;
    /** The boundary carry value flowing into the chunk. */
    std::int32_t carry = 0;
    /** All factors equal factors[0]: fold to one broadcast term. */
    bool all_equal = false;
};

/** Float flavor of CorrectionTermI32. */
struct CorrectionTermF32 {
    const float* factors = nullptr;
    std::size_t effective_length = 0;
    float carry = 0.0f;
    bool all_equal = false;
};

/**
 * The runtime-dispatched vector-scan table. All scans stream x into y
 * (x == y is allowed: elements are consumed before they are written)
 * and chain a carry so callers can split work into chunks:
 *
 *   carry_in  = y[-1] (zero / ring-zero for the first chunk)
 *   carry_out = y[n-1] after the call (carry_in when n == 0)
 *
 * Tuple scans chain s carries: carry[j] = y[j - s] on entry and
 * y[n - s + j] on exit (shifted through when n < s).
 */
struct SimdScan {
    Isa isa = Isa::kScalar;
    /** 32-bit lanes processed per vector step (1 for scalar). */
    std::size_t lanes = 1;

    // ---- Phase-1 scans (recursive part). ---------------------------
    /** y[i] = x[i] + y[i-1] in the wrap-around int ring. */
    void (*prefix_sum_i32)(const std::int32_t* x, std::int32_t* y,
                           std::size_t n, std::int32_t carry_in,
                           std::int32_t* carry_out);
    /** y[i] = x[i] + y[i-1] in floats. */
    void (*prefix_sum_f32)(const float* x, float* y, std::size_t n,
                           float carry_in, float* carry_out);
    /** y[i] = a0*x[i] + b*y[i-1], wrap-around int ring. */
    void (*first_order_i32)(const std::int32_t* x, std::int32_t* y,
                            std::size_t n, std::int32_t a0, std::int32_t b,
                            std::int32_t carry_in, std::int32_t* carry_out);
    /** y[i] = a0*x[i] + b*y[i-1], direct weighted-scan evaluation. */
    void (*first_order_f32)(const float* x, float* y, std::size_t n,
                            float a0, float b, float carry_in,
                            float* carry_out);
    /**
     * y[i] = a0*x[i] + b*y[i-1] via Heinsen's log-space two-prefix-sum
     * formulation, blocked by heinsen_block_length(b). Requires
     * 0 < b < 1 (a decay signature); callers route other coefficients
     * to first_order_f32.
     */
    void (*first_order_log_f32)(const float* x, float* y, std::size_t n,
                                float a0, float b, float carry_in,
                                float* carry_out);
    /**
     * y[i] = x[i] + y[i-s] (signature (1: 0,..,0,1), tuple size s).
     * Vectorized when s divides the lane count or s >= lanes; any s is
     * accepted (scalar fallback inside the table otherwise).
     */
    void (*tuple_prefix_i32)(const std::int32_t* x, std::int32_t* y,
                             std::size_t n, std::size_t s,
                             const std::int32_t* carry_in,
                             std::int32_t* carry_out);
    /** Float flavor of tuple_prefix_i32. */
    void (*tuple_prefix_f32)(const float* x, float* y, std::size_t n,
                             std::size_t s, const float* carry_in,
                             float* carry_out);

    // ---- Map stage (single-tap feed-forward). ----------------------
    /** y[i] = a0 * x[i] (wrap-around). */
    void (*scale_i32)(const std::int32_t* x, std::int32_t* y, std::size_t n,
                      std::int32_t a0);
    /** y[i] = a0 * x[i]. */
    void (*scale_f32)(const float* x, float* y, std::size_t n, float a0);

    // ---- Phase-2 correction (any signature). -----------------------
    /** y[o] += sum_j terms[j].factors[o] * terms[j].carry for o below
     * each term's effective length (wrap-around int ring). */
    void (*correct_i32)(std::int32_t* y, std::size_t len,
                        const CorrectionTermI32* terms, std::size_t k);
    /** Float flavor; uses masked tail stores in the AVX2 variant. */
    void (*correct_f32)(float* y, std::size_t len,
                        const CorrectionTermF32* terms, std::size_t k);
};

/**
 * The table for @p isa; requesting an unavailable ISA returns the
 * scalar table (so forced-AVX2 binaries degrade instead of crashing).
 */
const SimdScan& scan_table(Isa isa);

/** scan_table(selected_isa()). */
const SimdScan& active_scan();

namespace detail {
/** The portable table (always present). */
const SimdScan& scalar_table();
#if defined(PLR_HAVE_AVX2)
/** The AVX2 table (present when compiled in; see simd_avx2.cpp). */
const SimdScan& avx2_table();
#endif
}  // namespace detail

}  // namespace plr::kernels::simd

#endif  // PLR_KERNELS_SIMD_SIMD_SCAN_H_
