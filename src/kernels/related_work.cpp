#include "kernels/related_work.h"

namespace plr::kernels {

namespace {

/** Pairs processed per block in the tree sweeps. */
constexpr std::size_t kPairsPerBlock = 256;

}  // namespace

template <typename Ring>
std::vector<typename Ring::value_type>
kogge_stone_recurrence(gpusim::Device& device, const Signature& sig,
                       std::span<const typename Ring::value_type> input,
                       RelatedWorkStats* stats)
{
    using V = typename Ring::value_type;
    PLR_REQUIRE(sig.order() == 1,
                "recursive doubling handles first-order recurrences; "
                "Kogge & Stone's higher-order extension is not modeled");
    const std::size_t n = input.size();
    PLR_REQUIRE(n >= 1, "empty input");

    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    const V b = Ring::from_coefficient(sig.b()[0]);

    // Double-buffered value and coefficient arrays.
    gpusim::Buffer<V> y[2] = {device.alloc<V>(n, "ks.y0"),
                              device.alloc<V>(n, "ks.y1")};
    gpusim::Buffer<V> c[2] = {device.alloc<V>(n, "ks.c0"),
                              device.alloc<V>(n, "ks.c1")};
    auto in = device.alloc<V>(n, "ks.input");
    device.upload<V>(in, input);
    const auto before = device.snapshot();

    const std::size_t chunk = 4096;
    const std::size_t blocks = (n + chunk - 1) / chunk;

    // Initialize: y = map(t), c[i] = b (c[0] = 0: element 0 is final).
    device.launch(blocks, [&](gpusim::BlockContext& ctx) {
        const std::size_t base = ctx.block_index() * chunk;
        const std::size_t len = std::min(chunk, n - base);
        std::vector<V> x(len), t(len), coeff(len);
        ctx.ld_bulk<V>(in, base, x);
        for (std::size_t i = 0; i < len; ++i) {
            V acc = Ring::zero();
            for (std::size_t j = 0; j < a.size(); ++j) {
                const std::size_t gi = base + i;
                if (j > gi)
                    break;
                const V xv = (j > i) ? ctx.ld(in, gi - j) : x[i - j];
                acc = Ring::mul_add(acc, a[j], xv);
                ctx.count_flop(2);
            }
            t[i] = acc;
            coeff[i] = (base + i == 0) ? Ring::zero() : b;
        }
        ctx.st_bulk<V>(y[0], base, std::span<const V>(t));
        ctx.st_bulk<V>(c[0], base, std::span<const V>(coeff));
    });

    // Recursive doubling sweeps: O(log n) full passes over the data.
    std::size_t sweeps = 0;
    int src = 0;
    for (std::size_t d = 1; d < n; d *= 2, src ^= 1, ++sweeps) {
        const int dst = src ^ 1;
        device.launch(blocks, [&](gpusim::BlockContext& ctx) {
            const std::size_t base = ctx.block_index() * chunk;
            const std::size_t len = std::min(chunk, n - base);
            std::vector<V> yv(len), cv(len);
            ctx.ld_bulk<V>(y[src], base, yv);
            ctx.ld_bulk<V>(c[src], base, cv);
            std::vector<V> yo(len), co(len);
            for (std::size_t i = 0; i < len; ++i) {
                const std::size_t gi = base + i;
                if (gi < d) {
                    yo[i] = yv[i];
                    co[i] = cv[i];
                    continue;
                }
                // Neighbor 2^s back may live in another chunk.
                const V yn = (gi - d >= base) ? yv[gi - d - base]
                                              : ctx.ld(y[src], gi - d);
                const V cn = (gi - d >= base) ? cv[gi - d - base]
                                              : ctx.ld(c[src], gi - d);
                yo[i] = Ring::mul_add(yv[i], cv[i], yn);
                co[i] = Ring::mul(cv[i], cn);
                ctx.count_flop(3);
            }
            ctx.st_bulk<V>(y[dst], base, std::span<const V>(yo));
            ctx.st_bulk<V>(c[dst], base, std::span<const V>(co));
        });
    }

    auto result = device.download<V>(y[src]);
    if (stats) {
        stats->sweeps = sweeps;
        stats->counters = device.snapshot() - before;
    }
    device.memory().free(y[0]);
    device.memory().free(y[1]);
    device.memory().free(c[0]);
    device.memory().free(c[1]);
    device.memory().free(in);
    return result;
}

template <typename Ring>
std::vector<typename Ring::value_type>
blelloch_tree_prefix_sum(gpusim::Device& device,
                         std::span<const typename Ring::value_type> input,
                         RelatedWorkStats* stats)
{
    using V = typename Ring::value_type;
    const std::size_t n = input.size();
    PLR_REQUIRE(n >= 1, "empty input");
    std::size_t padded = 1;
    while (padded < n)
        padded *= 2;

    auto data = device.alloc<V>(padded, "blelloch.data");
    auto in = device.alloc<V>(n, "blelloch.input");
    device.upload<V>(in, input);
    {
        std::vector<V> host(padded, Ring::zero());
        std::copy(input.begin(), input.end(), host.begin());
        device.upload<V>(data, host);
    }
    const auto before = device.snapshot();

    std::size_t sweeps = 0;
    // Upsweep: build the reduction tree in place. Accesses at small
    // strides coalesce within a warp; beyond a sector they are isolated
    // transactions (hence the tree scans' memory inefficiency).
    for (std::size_t d = 1; d < padded; d *= 2, ++sweeps) {
        const std::size_t pairs = padded / (2 * d);
        const bool coalesced = 2 * d * sizeof(V) <= 32;
        const std::size_t blocks =
            (pairs + kPairsPerBlock - 1) / kPairsPerBlock;
        device.launch(blocks, [&](gpusim::BlockContext& ctx) {
            const std::size_t first = ctx.block_index() * kPairsPerBlock;
            const std::size_t last = std::min(pairs, first + kPairsPerBlock);
            for (std::size_t p = first; p < last; ++p) {
                const std::size_t i = p * 2 * d;
                V left, right;
                if (coalesced) {
                    left = ctx.ld_coalesced(data, i + d - 1);
                    right = ctx.ld_coalesced(data, i + 2 * d - 1);
                    ctx.st_coalesced(data, i + 2 * d - 1,
                                     Ring::add(left, right));
                } else {
                    left = ctx.ld(data, i + d - 1);
                    right = ctx.ld(data, i + 2 * d - 1);
                    ctx.st(data, i + 2 * d - 1, Ring::add(left, right));
                }
                ctx.count_flop(1);
            }
        });
    }

    // Downsweep: clear the root, push partial sums down.
    device.launch(1, [&](gpusim::BlockContext& ctx) {
        ctx.st(data, padded - 1, Ring::zero());
    });
    for (std::size_t d = padded / 2; d >= 1; d /= 2, ++sweeps) {
        const std::size_t pairs = padded / (2 * d);
        const bool coalesced = 2 * d * sizeof(V) <= 32;
        const std::size_t blocks =
            (pairs + kPairsPerBlock - 1) / kPairsPerBlock;
        device.launch(blocks, [&](gpusim::BlockContext& ctx) {
            const std::size_t first = ctx.block_index() * kPairsPerBlock;
            const std::size_t last = std::min(pairs, first + kPairsPerBlock);
            for (std::size_t p = first; p < last; ++p) {
                const std::size_t i = p * 2 * d;
                V left, right;
                if (coalesced) {
                    left = ctx.ld_coalesced(data, i + d - 1);
                    right = ctx.ld_coalesced(data, i + 2 * d - 1);
                    ctx.st_coalesced(data, i + d - 1, right);
                    ctx.st_coalesced(data, i + 2 * d - 1,
                                     Ring::add(left, right));
                } else {
                    left = ctx.ld(data, i + d - 1);
                    right = ctx.ld(data, i + 2 * d - 1);
                    ctx.st(data, i + d - 1, right);
                    ctx.st(data, i + 2 * d - 1, Ring::add(left, right));
                }
                ctx.count_flop(1);
            }
        });
        if (d == 1)
            break;
    }

    // Exclusive -> inclusive: add the input back elementwise.
    const std::size_t chunk = 4096;
    device.launch((n + chunk - 1) / chunk, [&](gpusim::BlockContext& ctx) {
        const std::size_t base = ctx.block_index() * chunk;
        const std::size_t len = std::min(chunk, n - base);
        std::vector<V> ex(len), x(len);
        ctx.ld_bulk<V>(data, base, ex);
        ctx.ld_bulk<V>(in, base, x);
        std::vector<V> out(len);
        for (std::size_t i = 0; i < len; ++i) {
            out[i] = Ring::add(ex[i], x[i]);
            ctx.count_flop(1);
        }
        ctx.st_bulk<V>(data, base, std::span<const V>(out));
    });
    ++sweeps;

    auto padded_result = device.download<V>(data);
    padded_result.resize(n);
    if (stats) {
        stats->sweeps = sweeps;
        stats->counters = device.snapshot() - before;
    }
    device.memory().free(data);
    device.memory().free(in);
    return padded_result;
}

template std::vector<std::int32_t>
kogge_stone_recurrence<IntRing>(gpusim::Device&, const Signature&,
                                std::span<const std::int32_t>,
                                RelatedWorkStats*);
template std::vector<float>
kogge_stone_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                                  std::span<const float>,
                                  RelatedWorkStats*);
template std::vector<std::int32_t>
blelloch_tree_prefix_sum<IntRing>(gpusim::Device&,
                                  std::span<const std::int32_t>,
                                  RelatedWorkStats*);
template std::vector<float>
blelloch_tree_prefix_sum<FloatRing>(gpusim::Device&,
                                    std::span<const float>,
                                    RelatedWorkStats*);

}  // namespace plr::kernels
