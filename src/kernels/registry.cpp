#include "kernels/registry.h"

#include <algorithm>
#include <memory>

#include "core/plan.h"
#include "gpusim/device.h"
#include "kernels/cpu_parallel.h"
#include "kernels/cpu_simd.h"
#include "kernels/cublike.h"
#include "kernels/plr_kernel.h"
#include "kernels/samlike.h"
#include "kernels/scan_baseline.h"
#include "kernels/serial.h"
#include "kernels/verify.h"
#include "util/diag.h"

namespace plr::kernels {

const char*
to_string(Domain d)
{
    switch (d) {
      case Domain::kInt: return "int";
      case Domain::kFloat: return "float";
      case Domain::kTropical: return "tropical";
    }
    return "unknown";
}

namespace {

bool
domain_matches_ring(const Signature& sig, Domain domain)
{
    switch (domain) {
      case Domain::kInt:
        return sig.is_integral() && !sig.is_max_plus();
      case Domain::kFloat:
        return !sig.is_max_plus();
      case Domain::kTropical:
        return sig.is_max_plus();
    }
    return false;
}

/**
 * Resolve a requested chunk size to a (m, block_threads) pair PLR's
 * planner accepts: m >= order, block_threads the largest power of two
 * <= min(m, 64) that divides m.
 */
/** Device spec for a run: serialized when counter budgets demand it. */
gpusim::DeviceSpec
make_spec(const RunOptions& opts)
{
    return opts.serialize_blocks ? gpusim::serialized() : gpusim::titan_x();
}

/** Apply the RunOptions fault/watchdog/analysis knobs to a device. */
void
configure_device(gpusim::Device& device, const RunOptions& opts)
{
    if (opts.fault_seed != 0) {
        gpusim::FaultConfig config;
        if (opts.sdc)
            config = gpusim::with_default_sdc();
        device.set_fault_plan(
            std::make_shared<gpusim::FaultPlan>(opts.fault_seed, config));
    }
    if (opts.spin_watchdog != 0)
        device.set_spin_watchdog_limit(opts.spin_watchdog);
    if (opts.race_detect || opts.invariants) {
        analysis::AnalysisConfig config;
        config.race_detect = opts.race_detect;
        config.invariants = opts.invariants;
        device.enable_analysis(config);
    }
    if (opts.verify)
        device.set_integrity(true);
}

/**
 * Post-run ABFT sweep for a registry kernel: repair what can be repaired
 * in place, throw a typed IntegrityError for anything that cannot — a
 * registry run never returns a detected-corrupt result.
 */
template <typename Ring>
void
verify_registry_result(const char* kernel, const Signature& sig,
                       std::span<const typename Ring::value_type> input,
                       std::span<typename Ring::value_type> output,
                       std::size_t fallback_chunk, ChunkChecksums* checksums)
{
    const std::size_t chunk = (checksums != nullptr && checksums->armed())
                                  ? checksums->chunk_size
                                  : fallback_chunk;
    const VerifyReport report = verify_and_repair<Ring>(
        sig, input, output, chunk,
        (checksums != nullptr && checksums->armed()) ? checksums : nullptr);
    if (!report.trustworthy())
        throw IntegrityError(std::string(kernel) + ": " + report.describe(),
                             IntegrityError::kNoChunk, "verify");
}

std::pair<std::size_t, std::size_t>
plr_chunk_shape(const Signature& sig, std::size_t requested)
{
    std::size_t m = requested ? requested : 64;
    m = std::max(m, std::max<std::size_t>(sig.order(), 1));
    std::size_t block = 1;
    for (std::size_t b = 2; b <= 64 && b <= m; b *= 2)
        if (m % b == 0)
            block = b;
    return {m, block};
}

template <typename Ring>
std::vector<typename Ring::value_type>
run_plr_sim(const Signature& sig,
            std::span<const typename Ring::value_type> input,
            const RunOptions& opts)
{
    if (input.empty())
        return {};
    const auto [m, block] = plr_chunk_shape(sig, opts.chunk);
    gpusim::Device device(make_spec(opts));
    configure_device(device, opts);
    PlrKernel<Ring> kernel(make_plan_with_chunk(sig, input.size(), m, block));
    PlrRunStats stats;
    auto result = kernel.run(device, input, &stats);
    if (opts.verify)
        verify_registry_result<Ring>("plr_sim", sig, input,
                                     std::span(result), m,
                                     &stats.checksums);
    if (opts.counters != nullptr)
        *opts.counters = device.counters().snapshot();
    return result;
}

template <typename Ring>
std::vector<typename Ring::value_type>
run_scan(const Signature& sig,
         std::span<const typename Ring::value_type> input,
         const RunOptions& opts)
{
    if (input.empty())
        return {};
    const std::size_t chunk = opts.chunk ? opts.chunk : 1024;
    gpusim::Device device(make_spec(opts));
    configure_device(device, opts);
    ScanBaseline<Ring> kernel(sig, input.size(), chunk);
    ScanRunStats stats;
    auto result = kernel.run(device, input, &stats);
    if (opts.verify)
        verify_registry_result<Ring>("scan", sig, input, std::span(result),
                                     chunk, &stats.checksums);
    if (opts.counters != nullptr)
        *opts.counters = device.counters().snapshot();
    return result;
}

template <typename Ring>
std::vector<typename Ring::value_type>
run_cublike(const Signature& sig,
            std::span<const typename Ring::value_type> input,
            const RunOptions& opts)
{
    if (input.empty())
        return {};
    const std::size_t chunk = opts.chunk ? opts.chunk : 4096;
    gpusim::Device device(make_spec(opts));
    configure_device(device, opts);
    CubLikeKernel<Ring> kernel(sig, input.size(), chunk);
    CubRunStats stats;
    auto result = kernel.run(device, input, &stats);
    if (opts.verify)
        verify_registry_result<Ring>("cublike", sig, input,
                                     std::span(result), chunk,
                                     &stats.checksums);
    if (opts.counters != nullptr)
        *opts.counters = device.counters().snapshot();
    return result;
}

template <typename Ring>
std::vector<typename Ring::value_type>
run_samlike(const Signature& sig,
            std::span<const typename Ring::value_type> input,
            const RunOptions& opts)
{
    if (input.empty())
        return {};
    // 0 = the kernel's install-time auto-tuner; otherwise SAM requires
    // chunk >= order.
    const std::size_t chunk =
        opts.chunk ? std::max(opts.chunk, sig.order()) : 0;
    gpusim::Device device(make_spec(opts));
    configure_device(device, opts);
    SamLikeKernel<Ring> kernel(sig, input.size(), chunk);
    SamRunStats stats;
    auto result = kernel.run(device, input, &stats);
    if (opts.verify)
        verify_registry_result<Ring>("samlike", sig, input,
                                     std::span(result), kernel.chunk_size(),
                                     &stats.checksums);
    if (opts.counters != nullptr)
        *opts.counters = device.counters().snapshot();
    return result;
}

std::vector<KernelInfo>
build_registry()
{
    std::vector<KernelInfo> registry;

    {
        KernelInfo info;
        info.name = "serial";
        info.description = "serial reference evaluation of equation (1)";
        info.is_reference = true;
        info.chunk_sensitive = false;
        info.supports = domain_matches_ring;
        info.run_int = [](const Signature& sig,
                          std::span<const std::int32_t> input,
                          const RunOptions&) {
            return serial_recurrence<IntRing>(sig, input);
        };
        info.run_float = [](const Signature& sig, std::span<const float> input,
                            const RunOptions&) {
            return sig.is_max_plus()
                       ? serial_recurrence<TropicalRing>(sig, input)
                       : serial_recurrence<FloatRing>(sig, input);
        };
        registry.push_back(std::move(info));
    }

    {
        KernelInfo info;
        info.name = "plr_sim";
        info.description =
            "PLR two-phase kernel on the simulated GPU (Sections 2-3)";
        info.supports = [](const Signature& sig, Domain domain) {
            return sig.order() >= 1 && domain_matches_ring(sig, domain);
        };
        info.run_int = run_plr_sim<IntRing>;
        info.run_float = [](const Signature& sig, std::span<const float> input,
                            const RunOptions& opts) {
            return sig.is_max_plus()
                       ? run_plr_sim<TropicalRing>(sig, input, opts)
                       : run_plr_sim<FloatRing>(sig, input, opts);
        };
        registry.push_back(std::move(info));
    }

    {
        KernelInfo info;
        info.name = "cpu_parallel";
        info.description =
            "native std::thread two-phase backend (Section 7 port)";
        info.supports = [](const Signature& sig, Domain domain) {
            return sig.order() >= 1 && domain_matches_ring(sig, domain);
        };
        info.run_int = [](const Signature& sig,
                          std::span<const std::int32_t> input,
                          const RunOptions& opts) {
            if (input.empty())
                return std::vector<std::int32_t>{};
            return cpu_parallel_recurrence<IntRing>(sig, input, opts.threads);
        };
        info.run_float = [](const Signature& sig, std::span<const float> input,
                            const RunOptions& opts) {
            if (input.empty())
                return std::vector<float>{};
            return sig.is_max_plus()
                       ? cpu_parallel_recurrence<TropicalRing>(sig, input,
                                                               opts.threads)
                       : cpu_parallel_recurrence<FloatRing>(sig, input,
                                                            opts.threads);
        };
        registry.push_back(std::move(info));
    }

    {
        KernelInfo info;
        info.name = "cpu_simd";
        info.description =
            "SIMD-vectorized native backend (runtime-dispatched scans)";
        // Chunking is observable for floats (reassociation), so the
        // oracle's chunk-invariance variant must exercise it.
        info.supports = [](const Signature& sig, Domain domain) {
            return sig.order() >= 1 && domain != Domain::kTropical &&
                   domain_matches_ring(sig, domain);
        };
        info.run_int = [](const Signature& sig,
                          std::span<const std::int32_t> input,
                          const RunOptions& opts) {
            if (input.empty())
                return std::vector<std::int32_t>{};
            CpuSimdOptions options;
            options.threads = opts.threads;
            options.chunk = opts.chunk;
            return cpu_simd_recurrence<IntRing>(sig, input, options);
        };
        info.run_float = [](const Signature& sig, std::span<const float> input,
                            const RunOptions& opts) {
            if (input.empty())
                return std::vector<float>{};
            CpuSimdOptions options;
            options.threads = opts.threads;
            options.chunk = opts.chunk;
            return cpu_simd_recurrence<FloatRing>(sig, input, options);
        };
        registry.push_back(std::move(info));
    }

    {
        KernelInfo info;
        info.name = "scan";
        info.description =
            "Blelloch matrix-pair scan baseline with decoupled look-back";
        info.supports = [](const Signature& sig, Domain domain) {
            return sig.order() >= 1 && domain != Domain::kTropical &&
                   domain_matches_ring(sig, domain);
        };
        info.run_int = run_scan<IntRing>;
        info.run_float = run_scan<FloatRing>;
        registry.push_back(std::move(info));
    }

    {
        KernelInfo info;
        info.name = "cublike";
        info.description = "CUB-like scan (prefix-sum family only)";
        info.supports = [](const Signature& sig, Domain domain) {
            return domain != Domain::kTropical &&
                   domain_matches_ring(sig, domain) &&
                   CubLikeKernel<IntRing>::supports(sig);
        };
        info.run_int = run_cublike<IntRing>;
        info.run_float = run_cublike<FloatRing>;
        registry.push_back(std::move(info));
    }

    {
        KernelInfo info;
        info.name = "samlike";
        info.description = "SAM-like scan (prefix-sum family only)";
        info.supports = [](const Signature& sig, Domain domain) {
            return domain != Domain::kTropical &&
                   domain_matches_ring(sig, domain) &&
                   SamLikeKernel<IntRing>::supports(sig);
        };
        info.run_int = run_samlike<IntRing>;
        info.run_float = run_samlike<FloatRing>;
        registry.push_back(std::move(info));
    }

    return registry;
}

}  // namespace

const std::vector<KernelInfo>&
kernel_registry()
{
    static const std::vector<KernelInfo> registry = build_registry();
    return registry;
}

const KernelInfo*
find_kernel(std::string_view name)
{
    for (const KernelInfo& info : kernel_registry())
        if (info.name == name)
            return &info;
    return nullptr;
}

std::vector<std::string>
kernel_names()
{
    std::vector<std::string> names;
    for (const KernelInfo& info : kernel_registry())
        names.push_back(info.name);
    return names;
}

}  // namespace plr::kernels
