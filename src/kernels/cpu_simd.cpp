#include "kernels/cpu_simd.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <type_traits>

#include "analysis/static/analyzer.h"
#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "kernels/chunk_carry.h"
#include "kernels/serial.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace plr::kernels {

const char*
to_string(FirstOrderPath path)
{
    switch (path) {
      case FirstOrderPath::kAuto: return "auto";
      case FirstOrderPath::kDirect: return "direct";
      case FirstOrderPath::kLogSpace: return "log";
    }
    return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsed_ns(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
}

/**
 * Largest chunk that keeps a chunk's input + output resident in L2
 * across Phase A and Phase B (2 x 256 KiB of 32-bit words).
 */
constexpr std::size_t kL2BlockElems = std::size_t{1} << 16;

enum class VecPath {
    kScalarPath,
    kPrefix,
    kFirstOrder,
    kFirstOrderLog,
    kTuple,
};

const char*
path_name(VecPath path)
{
    switch (path) {
      case VecPath::kScalarPath: return "scalar";
      case VecPath::kPrefix: return "prefix";
      case VecPath::kFirstOrder: return "first_order";
      case VecPath::kFirstOrderLog: return "first_order_log";
      case VecPath::kTuple: return "tuple";
    }
    return "unknown";
}

FirstOrderPath
env_first_order_path()
{
    static const FirstOrderPath path = [] {
        const std::string name = env::choice_or(
            "PLR_SIMD_FIRST_ORDER", {"auto", "direct", "log"}, "auto");
        if (name == "direct")
            return FirstOrderPath::kDirect;
        if (name == "log")
            return FirstOrderPath::kLogSpace;
        return FirstOrderPath::kAuto;
    }();
    return path;
}

/** The Phase-A evaluation strategy resolved for one (ring, signature). */
template <typename Ring>
struct PathPlan {
    using V = typename Ring::value_type;
    VecPath path = VecPath::kScalarPath;
    /** Map coefficient folded into the scan (ring one unless fuse_map). */
    V a0 = Ring::one();
    /** First-order feedback coefficient. */
    V b1 = Ring::zero();
    /** Tuple size for kTuple. */
    std::size_t tuple = 0;
    /** Single-tap map fused into the scan call (no separate map pass). */
    bool fuse_map = false;
};

/**
 * Resolve the Phase-A strategy by consulting the static analyzer's
 * path-legality slice (analysis/static/analyzer.h). The analyzer owns
 * the shape decision — including the proof obligations of the log-space
 * path — while the ring-typed plan coefficients stay here.
 */
template <typename Ring>
PathPlan<Ring>
classify_path(const Signature& sig, FirstOrderPath requested,
              const char** log_legality = nullptr)
{
    namespace sa = plr::static_analysis;
    const FirstOrderPath resolved = requested == FirstOrderPath::kAuto
                                        ? env_first_order_path()
                                        : requested;
    const sa::FirstOrderMode mode =
        resolved == FirstOrderPath::kDirect     ? sa::FirstOrderMode::kDirect
        : resolved == FirstOrderPath::kLogSpace ? sa::FirstOrderMode::kLog
                                                : sa::FirstOrderMode::kAuto;
    const sa::ValueDomain domain = std::is_same_v<Ring, IntRing>
                                       ? sa::ValueDomain::kInt32
                                       : sa::ValueDomain::kFloat32;
    const sa::SimdPathDecision dec = sa::choose_simd_path(sig, domain, mode);
    if (log_legality != nullptr)
        *log_legality = sa::to_string(dec.log_legality);

    PathPlan<Ring> plan;
    switch (dec.shape) {
      case sa::SimdShape::kScalar: plan.path = VecPath::kScalarPath; break;
      case sa::SimdShape::kPrefix: plan.path = VecPath::kPrefix; break;
      case sa::SimdShape::kFirstOrder: plan.path = VecPath::kFirstOrder; break;
      case sa::SimdShape::kFirstOrderLog:
        plan.path = VecPath::kFirstOrderLog;
        break;
      case sa::SimdShape::kTuple: plan.path = VecPath::kTuple; break;
    }
    plan.tuple = dec.tuple;
    if (sig.order() == 1) {
        plan.b1 = Ring::from_coefficient(sig.b()[0]);
        if (dec.fuse_map) {
            plan.a0 = Ring::from_coefficient(sig.a()[0]);
            plan.fuse_map = true;
        }
    }
    return plan;
}

/**
 * Evaluate one chunk's recursive part through the vector table.
 * stage points at the chunk's (post-map) input. @p seed_y, when
 * non-empty, holds the k outputs preceding the chunk (newest first) and
 * threads straight into the table's carry chain — the streaming-resume
 * fast path (docs/STREAMING.md); empty means zero initial state.
 */
template <typename Ring>
void
scan_chunk(const simd::SimdScan& table, const PathPlan<Ring>& plan,
           const Signature& recursive,
           std::span<const typename Ring::value_type> stage,
           std::span<typename Ring::value_type> out,
           std::span<const typename Ring::value_type> seed_y = {})
{
    using V = typename Ring::value_type;
    const std::size_t len = stage.size();
    const V carry0 = seed_y.empty() ? Ring::zero() : seed_y[0];
    // Tuple scans chain s carries: carry[j] = y[j - s] on entry, i.e.
    // the value s - j positions back = seed_y[s - j - 1].
    auto tuple_carries = [&]() {
        std::vector<V> carries(plan.tuple, Ring::zero());
        for (std::size_t j = 0; j < plan.tuple && j < seed_y.size(); ++j)
            carries[plan.tuple - 1 - j] = seed_y[j];
        return carries;
    };
    if constexpr (std::is_same_v<Ring, IntRing>) {
        switch (plan.path) {
          case VecPath::kPrefix:
            table.prefix_sum_i32(stage.data(), out.data(), len, carry0,
                                 nullptr);
            return;
          case VecPath::kFirstOrder:
          case VecPath::kFirstOrderLog:
            table.first_order_i32(stage.data(), out.data(), len, plan.a0,
                                  plan.b1, carry0, nullptr);
            return;
          case VecPath::kTuple: {
            const std::vector<V> carries = tuple_carries();
            table.tuple_prefix_i32(stage.data(), out.data(), len,
                                   plan.tuple, carries.data(), nullptr);
            return;
          }
          case VecPath::kScalarPath:
            break;
        }
    } else {
        switch (plan.path) {
          case VecPath::kPrefix:
            table.prefix_sum_f32(stage.data(), out.data(), len, carry0,
                                 nullptr);
            return;
          case VecPath::kFirstOrder:
            table.first_order_f32(stage.data(), out.data(), len, plan.a0,
                                  plan.b1, carry0, nullptr);
            return;
          case VecPath::kFirstOrderLog:
            table.first_order_log_f32(stage.data(), out.data(), len,
                                      plan.a0, plan.b1, carry0, nullptr);
            return;
          case VecPath::kTuple: {
            const std::vector<V> carries = tuple_carries();
            table.tuple_prefix_f32(stage.data(), out.data(), len,
                                   plan.tuple, carries.data(), nullptr);
            return;
          }
          case VecPath::kScalarPath:
            break;
        }
    }
    serial_recurrence_seeded_into<Ring>(recursive, seed_y, {}, stage, out);
}

/**
 * Shared implementation: @p resume, when non-null, continues the stream
 * captured in it (docs/STREAMING.md).
 */
template <typename Ring>
std::vector<typename Ring::value_type>
run_impl(const Signature& sig,
         std::span<const typename Ring::value_type> input,
         const CpuSimdOptions& options, const StreamState<Ring>* resume,
         CpuSimdStats* stats)
{
    using V = typename Ring::value_type;
    const auto call_start = Clock::now();
    const std::size_t n = input.size();
    const std::size_t k = sig.order();
    PLR_REQUIRE(k >= 1, "simd recurrence needs order >= 1");
    PLR_REQUIRE(!sig.is_max_plus(),
                "cpu_simd does not support the max-plus semiring");

    const simd::SimdScan& table =
        simd::scan_table(options.isa.value_or(simd::selected_isa()));
    const char* log_legality = "unknown";
    const PathPlan<Ring> plan =
        classify_path<Ring>(sig, options.first_order, &log_legality);
    const std::span<const V> seed_y =
        resume != nullptr ? std::span<const V>(resume->y_tail)
                          : std::span<const V>();
    const std::span<const V> seed_x =
        resume != nullptr ? std::span<const V>(resume->x_tail)
                          : std::span<const V>();

    CpuSimdStats local;
    local.isa = table.isa;
    local.lanes = table.lanes;
    local.path = path_name(plan.path);
    local.log_legality = log_legality;

    std::size_t threads = options.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads = std::min(threads, ThreadPool::kMaxWorkers);

    // Chunks small enough that a chunk's Phase A + Phase B run out of
    // L2, large enough that the carry fix-up stays negligible.
    const std::size_t min_chunk = std::max<std::size_t>(4 * k, 256);
    std::size_t chunk = options.chunk;
    if (chunk == 0)
        chunk = std::min((n + threads - 1) / threads, kL2BlockElems);
    chunk = std::max(chunk, min_chunk);
    chunk = (chunk + table.lanes - 1) / table.lanes * table.lanes;
    const std::size_t num_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;

    std::vector<V> y(n);
    if (n == 0) {
        if (stats) {
            local.total_ns = elapsed_ns(call_start);
            *stats = local;
        }
        return y;
    }

    const bool fused = threads <= 1 || num_chunks <= 1;
    local.fused = fused;
    local.threads_used = fused ? 1 : threads;
    local.num_chunks = fused ? 1 : num_chunks;
    local.chunk_size = fused ? n : chunk;

    if (fused && plan.path == VecPath::kScalarPath) {
        std::vector<V> result(n);
        serial_recurrence_seeded_into<Ring>(sig, seed_y, seed_x, input,
                                            result);
        if (stats) {
            local.total_ns = elapsed_ns(call_start);
            *stats = local;
        }
        return result;
    }

    auto run_tasks = [&](std::size_t count, auto&& task) {
        if (count == 0)
            return;
        if (count == 1 || threads <= 1) {
            for (std::size_t c = 0; c < count; ++c)
                task(c);
            return;
        }
        ThreadPool& pool = ThreadPool::shared();
        pool.ensure_workers(threads - 1);
        pool.parallel_for(count, task);
    };

    // ---- Map operation (eq. 2) when it cannot fuse into the scan.
    const Signature recursive = sig.recursive_part();
    const bool map_needed = !sig.is_pure_recursive() && !plan.fuse_map;
    std::vector<V> t;
    std::span<const V> stage = input;
    if (map_needed) {
        const auto phase_start = Clock::now();
        t.resize(n);
        if (sig.a().size() == 1) {
            const V a0 = Ring::from_coefficient(sig.a()[0]);
            run_tasks(num_chunks, [&](std::size_t c) {
                const std::size_t base = c * chunk;
                const std::size_t len = std::min(chunk, n - base);
                if constexpr (std::is_same_v<Ring, IntRing>)
                    table.scale_i32(input.data() + base, t.data() + base,
                                    len, a0);
                else
                    table.scale_f32(input.data() + base, t.data() + base,
                                    len, a0);
            });
        } else {
            std::vector<V> a(sig.a().size());
            for (std::size_t j = 0; j < a.size(); ++j)
                a[j] = Ring::from_coefficient(sig.a()[j]);
            run_tasks(num_chunks, [&](std::size_t c) {
                const std::size_t base = c * chunk;
                const std::size_t len = std::min(chunk, n - base);
                std::size_t i = base;
                // A resumed stream's first p positions read their FIR
                // taps from the checkpointed x-tail.
                for (; i < base + len && i + 1 < a.size(); ++i) {
                    V acc = Ring::zero();
                    for (std::size_t j = 0; j < a.size(); ++j) {
                        if (j <= i)
                            acc = Ring::mul_add(acc, a[j], input[i - j]);
                        else if (j - i - 1 < seed_x.size())
                            acc = Ring::mul_add(acc, a[j],
                                                seed_x[j - i - 1]);
                    }
                    t[i] = acc;
                }
                for (; i < base + len; ++i) {
                    V acc = Ring::zero();
                    for (std::size_t j = 0; j < a.size(); ++j)
                        acc = Ring::mul_add(acc, a[j], input[i - j]);
                    t[i] = acc;
                }
            });
        }
        stage = t;
        local.map_ns = elapsed_ns(phase_start);
    }

    if (fused) {
        // One streaming pass over the whole input; Phase B vanishes. A
        // resumed run threads the y-tail into the carry chain directly.
        const auto phase_start = Clock::now();
        scan_chunk<Ring>(table, plan, recursive, stage, std::span<V>(y),
                         seed_y);
        local.phase1_ns = elapsed_ns(phase_start);
        if (stats) {
            local.total_ns = elapsed_ns(call_start);
            *stats = local;
        }
        return y;
    }

    const auto factors = CorrectionFactors<Ring>::generate(
        recursive, chunk, /*flush_denormals=*/!Ring::is_exact);
    const auto props = analyze_factors(factors);

    // ---- Phase A: vectorized per-chunk recurrence, zero initial state.
    {
        const auto phase_start = Clock::now();
        run_tasks(num_chunks, [&](std::size_t c) {
            const std::size_t base = c * chunk;
            const std::size_t len = std::min(chunk, n - base);
            scan_chunk<Ring>(table, plan, recursive,
                             stage.subspan(base, len),
                             std::span<V>(y.data() + base, len));
        });
        local.phase1_ns = elapsed_ns(phase_start);
    }

    // ---- Sequential chunk-boundary carry fix-up (shared with
    // cpu_parallel).
    std::vector<V> carries;
    {
        const auto phase_start = Clock::now();
        carries = advance_chunk_carries<Ring>(std::span<const V>(y), chunk,
                                              num_chunks, k, factors,
                                              seed_y);
        local.carry_ns = elapsed_ns(phase_start);
    }

    // ---- Phase B: vectorized correction with the factor lists. A
    // resumed run corrects chunk 0 too: its carry is the checkpointed
    // y-tail rather than ring zeros.
    const std::size_t skip = resume != nullptr ? 0 : 1;
    {
        const auto phase_start = Clock::now();
        run_tasks(num_chunks - skip, [&](std::size_t task) {
            const std::size_t c = task + skip;
            const std::size_t base = c * chunk;
            const std::size_t len = std::min(chunk, n - base);
            if constexpr (std::is_same_v<Ring, IntRing>) {
                std::vector<simd::CorrectionTermI32> terms(k);
                for (std::size_t i = 1; i <= k; ++i)
                    terms[i - 1] = {factors.list(i).data(),
                                    props.lists[i - 1].effective_length,
                                    carries[c * k + i - 1],
                                    props.lists[i - 1].all_equal};
                table.correct_i32(y.data() + base, len, terms.data(), k);
            } else {
                std::vector<simd::CorrectionTermF32> terms(k);
                for (std::size_t i = 1; i <= k; ++i)
                    terms[i - 1] = {factors.list(i).data(),
                                    props.lists[i - 1].effective_length,
                                    carries[c * k + i - 1],
                                    props.lists[i - 1].all_equal};
                table.correct_f32(y.data() + base, len, terms.data(), k);
            }
        });
        local.phase2_ns = elapsed_ns(phase_start);
    }

    if (stats) {
        local.total_ns = elapsed_ns(call_start);
        *stats = local;
    }
    return y;
}

}  // namespace

template <typename Ring>
std::vector<typename Ring::value_type>
cpu_simd_recurrence(const Signature& sig,
                    std::span<const typename Ring::value_type> input,
                    const CpuSimdOptions& options, CpuSimdStats* stats)
{
    return run_impl<Ring>(sig, input, options, nullptr, stats);
}

template <typename Ring>
std::vector<typename Ring::value_type>
cpu_simd_recurrence_resumed(const Signature& sig,
                            std::span<const typename Ring::value_type> input,
                            const StreamState<Ring>& state,
                            const CpuSimdOptions& options,
                            CpuSimdStats* stats)
{
    PLR_REQUIRE(state.y_tail.size() == sig.order() &&
                    state.x_tail.size() == sig.fir_taps(),
                "stream state does not fit " << sig.to_string());
    return run_impl<Ring>(sig, input, options, &state, stats);
}

template std::vector<std::int32_t>
cpu_simd_recurrence<IntRing>(const Signature&, std::span<const std::int32_t>,
                             const CpuSimdOptions&, CpuSimdStats*);
template std::vector<float>
cpu_simd_recurrence<FloatRing>(const Signature&, std::span<const float>,
                               const CpuSimdOptions&, CpuSimdStats*);

template std::vector<std::int32_t>
cpu_simd_recurrence_resumed<IntRing>(const Signature&,
                                     std::span<const std::int32_t>,
                                     const StreamState<IntRing>&,
                                     const CpuSimdOptions&, CpuSimdStats*);
template std::vector<float>
cpu_simd_recurrence_resumed<FloatRing>(const Signature&,
                                       std::span<const float>,
                                       const StreamState<FloatRing>&,
                                       const CpuSimdOptions&, CpuSimdStats*);

}  // namespace plr::kernels
