#include "kernels/checkpoint.h"

#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

#include "kernels/verify.h"

namespace plr::kernels {

namespace {

/** Fixed header bytes before the variable payload. */
constexpr std::size_t kHeaderBytes = 44;
/** Trailing Fletcher-32 seal. */
constexpr std::size_t kSealBytes = 4;

void
put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
get_u32(std::span<const std::uint8_t> bytes, std::size_t offset)
{
    return static_cast<std::uint32_t>(bytes[offset]) |
           (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

std::uint64_t
get_u64(std::span<const std::uint8_t> bytes, std::size_t offset)
{
    return static_cast<std::uint64_t>(get_u32(bytes, offset)) |
           (static_cast<std::uint64_t>(get_u32(bytes, offset + 4)) << 32);
}

/**
 * Fletcher-32 over the byte range decoded as little-endian 32-bit
 * words — byte-order independent because the decode is explicit.
 * @p bytes.size() must be a multiple of 4.
 */
std::uint32_t
seal_over(std::span<const std::uint8_t> bytes)
{
    std::vector<std::uint32_t> words(bytes.size() / 4);
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] = get_u32(bytes, w * 4);
    return fletcher32(words.data(), words.size());
}

[[noreturn]] void
reject(CheckpointErrorKind kind, const std::string& detail)
{
    throw CheckpointError(kind, std::string("checkpoint ") +
                                    to_string(kind) + ": " + detail);
}

}  // namespace

const char*
to_string(CheckpointErrorKind kind)
{
    switch (kind) {
      case CheckpointErrorKind::kIo: return "io";
      case CheckpointErrorKind::kBadMagic: return "bad-magic";
      case CheckpointErrorKind::kVersionSkew: return "version-skew";
      case CheckpointErrorKind::kTruncated: return "truncated";
      case CheckpointErrorKind::kMalformed: return "malformed";
      case CheckpointErrorKind::kCorrupt: return "corrupt";
      case CheckpointErrorKind::kSignatureMismatch:
        return "signature-mismatch";
    }
    return "unknown";
}

std::uint64_t
signature_hash(const Signature& sig, Domain domain)
{
    constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    std::uint64_t hash = kOffset;
    auto mix_byte = [&hash](std::uint8_t byte) {
        hash ^= byte;
        hash *= kPrime;
    };
    auto mix_u64 = [&mix_byte](std::uint64_t v) {
        for (int shift = 0; shift < 64; shift += 8)
            mix_byte(static_cast<std::uint8_t>((v >> shift) & 0xff));
    };
    auto mix_double = [&mix_u64](double d) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        mix_u64(bits);
    };
    mix_byte(static_cast<std::uint8_t>(domain));
    mix_byte(sig.is_max_plus() ? 1 : 0);
    mix_u64(sig.a().size());
    for (double c : sig.a())
        mix_double(c);
    mix_u64(sig.b().size());
    for (double c : sig.b())
        mix_double(c);
    return hash;
}

std::vector<std::uint8_t>
serialize_checkpoint(const Checkpoint& ckpt)
{
    PLR_REQUIRE(ckpt.y_words.size() == ckpt.order,
                "checkpoint y-tail must hold exactly k words");
    PLR_REQUIRE(ckpt.x_words.size() == ckpt.fir_taps,
                "checkpoint x-tail must hold exactly p words");
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes +
                4 * (ckpt.y_words.size() + ckpt.x_words.size()) + kSealBytes);
    for (char c : kCheckpointMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    put_u32(out, ckpt.version);
    put_u32(out, static_cast<std::uint32_t>(ckpt.domain));
    put_u32(out, ckpt.order);
    put_u32(out, ckpt.fir_taps);
    put_u64(out, ckpt.sig_hash);
    put_u64(out, ckpt.segments);
    put_u64(out, ckpt.elements);
    for (std::uint32_t word : ckpt.y_words)
        put_u32(out, word);
    for (std::uint32_t word : ckpt.x_words)
        put_u32(out, word);
    const std::uint32_t seal = seal_over(out);
    put_u32(out, seal);
    return out;
}

Checkpoint
parse_checkpoint(std::span<const std::uint8_t> bytes)
{
    if (bytes.size() < sizeof(kCheckpointMagic))
        reject(CheckpointErrorKind::kTruncated,
               "only " + std::to_string(bytes.size()) +
                   " bytes, shorter than the magic");
    if (std::memcmp(bytes.data(), kCheckpointMagic,
                    sizeof(kCheckpointMagic)) != 0)
        reject(CheckpointErrorKind::kBadMagic,
               "file does not start with \"PLRC\"");
    if (bytes.size() < 8)
        reject(CheckpointErrorKind::kTruncated,
               "header ends before the format version");
    const std::uint32_t version = get_u32(bytes, 4);
    if (version != kCheckpointFormatVersion)
        reject(CheckpointErrorKind::kVersionSkew,
               "format version " + std::to_string(version) +
                   ", this build reads version " +
                   std::to_string(kCheckpointFormatVersion));
    if (bytes.size() < kHeaderBytes)
        reject(CheckpointErrorKind::kTruncated,
               "header is " + std::to_string(bytes.size()) + " of " +
                   std::to_string(kHeaderBytes) + " bytes");

    Checkpoint ckpt;
    ckpt.version = version;
    const std::uint32_t domain = get_u32(bytes, 8);
    if (domain > static_cast<std::uint32_t>(Domain::kTropical))
        reject(CheckpointErrorKind::kMalformed,
               "unknown domain id " + std::to_string(domain));
    ckpt.domain = static_cast<Domain>(domain);
    ckpt.order = get_u32(bytes, 12);
    ckpt.fir_taps = get_u32(bytes, 16);
    if (ckpt.order == 0 || ckpt.order > kCheckpointMaxOrder)
        reject(CheckpointErrorKind::kMalformed,
               "order " + std::to_string(ckpt.order) +
                   " outside [1, " + std::to_string(kCheckpointMaxOrder) +
                   "]");
    if (ckpt.fir_taps > kCheckpointMaxTaps)
        reject(CheckpointErrorKind::kMalformed,
               "fir taps " + std::to_string(ckpt.fir_taps) + " above " +
                   std::to_string(kCheckpointMaxTaps));
    const std::size_t expected =
        kHeaderBytes + 4 * (std::size_t{ckpt.order} + ckpt.fir_taps) +
        kSealBytes;
    if (bytes.size() < expected)
        reject(CheckpointErrorKind::kTruncated,
               std::to_string(bytes.size()) + " of " +
                   std::to_string(expected) + " bytes (torn write?)");
    if (bytes.size() > expected)
        reject(CheckpointErrorKind::kMalformed,
               std::to_string(bytes.size() - expected) +
                   " trailing bytes after the seal");

    const std::uint32_t stored_seal = get_u32(bytes, expected - kSealBytes);
    const std::uint32_t computed_seal =
        seal_over(bytes.subspan(0, expected - kSealBytes));
    if (stored_seal != computed_seal) {
        std::ostringstream what;
        what << "Fletcher-32 seal mismatch (stored 0x" << std::hex
             << stored_seal << ", computed 0x" << computed_seal << ")";
        reject(CheckpointErrorKind::kCorrupt, what.str());
    }

    ckpt.sig_hash = get_u64(bytes, 20);
    ckpt.segments = get_u64(bytes, 28);
    ckpt.elements = get_u64(bytes, 36);
    ckpt.y_words.resize(ckpt.order);
    for (std::size_t d = 0; d < ckpt.order; ++d)
        ckpt.y_words[d] = get_u32(bytes, kHeaderBytes + 4 * d);
    ckpt.x_words.resize(ckpt.fir_taps);
    for (std::size_t j = 0; j < ckpt.fir_taps; ++j)
        ckpt.x_words[j] =
            get_u32(bytes, kHeaderBytes + 4 * (ckpt.order + j));
    return ckpt;
}

void
validate_checkpoint_for(const Checkpoint& ckpt, const Signature& sig,
                        Domain domain)
{
    if (ckpt.domain != domain)
        reject(CheckpointErrorKind::kSignatureMismatch,
               std::string("checkpoint domain is ") +
                   to_string(ckpt.domain) + ", run wants " +
                   to_string(domain));
    if (ckpt.sig_hash != signature_hash(sig, domain))
        reject(CheckpointErrorKind::kSignatureMismatch,
               "signature hash does not match " + sig.to_string());
    if (ckpt.order != sig.order() || ckpt.fir_taps != sig.fir_taps())
        reject(CheckpointErrorKind::kSignatureMismatch,
               "carry shape (k=" + std::to_string(ckpt.order) +
                   ", p=" + std::to_string(ckpt.fir_taps) +
                   ") does not fit " + sig.to_string());
}

void
save_checkpoint(const Checkpoint& ckpt, const std::string& path)
{
    const std::vector<std::uint8_t> bytes = serialize_checkpoint(ckpt);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        reject(CheckpointErrorKind::kIo, "cannot open " + path +
                                             " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        reject(CheckpointErrorKind::kIo, "short write to " + path);
}

Checkpoint
load_checkpoint(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        reject(CheckpointErrorKind::kIo, "cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        reject(CheckpointErrorKind::kIo, "read error on " + path);
    return parse_checkpoint(bytes);
}

}  // namespace plr::kernels
