#ifndef PLR_KERNELS_PLR_KERNEL_H_
#define PLR_KERNELS_PLR_KERNEL_H_

/**
 * @file
 * The PLR recurrence kernel (paper Sections 2 and 3) running on the
 * gpusim substrate.
 *
 * Per chunk (thread block), following the eight code sections of
 * Section 3: grab a chunk id with an atomic counter; load the chunk; run
 * the map operation (eq. 2); run Phase 1 hierarchically (shuffle-width
 * merges, then shared-memory merges) with the precomputed correction
 * factors; publish the local carries (last k values) behind a memory
 * fence and flag; look back up to 32 chunks for the most recent global
 * carries, correcting the intervening local carries (O(c*k^2)); publish
 * the global carries; correct all m values; store the result.
 *
 * All Section-3.1 optimizations are implemented and individually
 * toggleable through the plan:
 * shared-memory factor caching, constant folding, 0/1 conditional adds,
 * periodic compression, denormal flushing with zero-tail suppression,
 * and shifted-list sharing.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "core/plan.h"
#include "gpusim/device.h"
#include "kernels/verify.h"
#include "util/ring.h"

namespace plr::kernels {

/** Execution statistics of one PLR kernel run. */
struct PlrRunStats {
    /** Number of chunks processed. */
    std::size_t chunks = 0;
    /** Maximum look-back distance observed (the paper's dynamic c). */
    std::size_t max_lookback = 0;
    /** Sum of look-back distances over all chunks (chunk 0 contributes 0). */
    std::size_t total_lookback = 0;
    /** Device counters for this run only. */
    gpusim::CounterSnapshot counters;
    /** Per-chunk output checksums (armed only under Device integrity). */
    ChunkChecksums checksums;
};

/** The PLR kernel for one recurrence plan. */
template <typename Ring>
class PlrKernel {
  public:
    using value_type = typename Ring::value_type;

    /**
     * Prepare the kernel: precompute the correction factors with the
     * n-nacci method (Section 2.1) and analyze them for the Section-3.1
     * optimizations.
     */
    explicit PlrKernel(KernelPlan plan);

    /** Compute the recurrence on @p input; validates nothing by itself. */
    std::vector<value_type> run(gpusim::Device& device,
                                std::span<const value_type> input,
                                PlrRunStats* stats = nullptr) const;

    const KernelPlan& plan() const { return plan_; }
    const CorrectionFactors<Ring>& factors() const { return factors_; }
    const FactorSetProperties& properties() const { return props_; }

  private:
    KernelPlan plan_;
    CorrectionFactors<Ring> factors_;
    FactorSetProperties props_;
    std::vector<value_type> map_coeffs_;  // a0..a-p in ring domain
};

extern template class PlrKernel<IntRing>;
extern template class PlrKernel<FloatRing>;
extern template class PlrKernel<TropicalRing>;

}  // namespace plr::kernels

#endif  // PLR_KERNELS_PLR_KERNEL_H_
