#include "kernels/cpu_parallel.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "kernels/chunk_carry.h"
#include "kernels/serial.h"
#include "util/thread_pool.h"

namespace plr::kernels {

const char*
to_string(CpuExecMode mode)
{
    switch (mode) {
      case CpuExecMode::kPool: return "pool";
      case CpuExecMode::kSpawn: return "spawn";
    }
    return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsed_ns(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
}

/**
 * Run task(0) .. task(count - 1) either on the shared pool or by
 * spawning one thread per task (the seed behavior, kept for A/B
 * benchmarking).
 */
template <typename Task>
void
run_region(CpuExecMode mode, std::size_t count, const Task& task)
{
    if (count == 0)
        return;
    if (mode == CpuExecMode::kPool) {
        ThreadPool& pool = ThreadPool::shared();
        pool.ensure_workers(count > 0 ? count - 1 : 0);
        pool.parallel_for(count, task);
        return;
    }
    std::vector<std::thread> workers;
    workers.reserve(count);
    for (std::size_t c = 0; c < count; ++c)
        workers.emplace_back([&task, c]() { task(c); });
    for (auto& worker : workers)
        worker.join();
}

/**
 * Shared implementation: @p resume, when non-null, seeds the carry
 * chain and FIR taps from a streaming checkpoint (docs/STREAMING.md).
 */
template <typename Ring>
std::vector<typename Ring::value_type>
run_impl(const Signature& sig,
         std::span<const typename Ring::value_type> input,
         const CpuParallelOptions& options,
         const StreamState<Ring>* resume, CpuRunStats* stats)
{
    using V = typename Ring::value_type;
    const auto call_start = Clock::now();
    const std::size_t n = input.size();
    const std::size_t k = sig.order();
    PLR_REQUIRE(k >= 1, "parallel recurrence needs order >= 1");

    const std::span<const V> seed_y =
        resume != nullptr ? std::span<const V>(resume->y_tail)
                          : std::span<const V>();
    const std::span<const V> seed_x =
        resume != nullptr ? std::span<const V>(resume->x_tail)
                          : std::span<const V>();

    std::size_t threads = options.threads;
    // Below the measured crossover the chunking + carry overhead loses
    // to a plain serial pass; only auto-threaded runs take the shortcut
    // so callers forcing a thread count still get the parallel path.
    const bool below_crossover =
        options.threads == 0 && n < options.serial_crossover;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads = std::min(threads, ThreadPool::kMaxWorkers);
    // Each chunk must have at least k elements; small inputs run serially.
    const std::size_t min_chunk = std::max<std::size_t>(4 * k, 256);
    threads = std::min(threads, n / min_chunk);
    if (threads <= 1 || below_crossover) {
        std::vector<V> result(n);
        serial_recurrence_seeded_into<Ring>(sig, seed_y, seed_x, input,
                                            result);
        if (stats) {
            *stats = CpuRunStats{};
            stats->threads_used = 1;
            stats->chunk_size = n;
            stats->mode = options.mode;
            stats->serial_fallback = true;
            stats->crossover_fallback = below_crossover;
            stats->total_ns = elapsed_ns(call_start);
        }
        return result;
    }

    const std::size_t chunk = (n + threads - 1) / threads;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    const auto factors = CorrectionFactors<Ring>::generate(
        sig.recursive_part(), chunk, /*flush_denormals=*/!Ring::is_exact);
    const auto props = analyze_factors(factors);

    // Respect the decay optimization: offsets beyond the effective length
    // need no correction at all (IIR filters decay; Section 3.1).
    std::size_t eff = 0;
    for (const auto& list : props.lists)
        eff = std::max(eff, list.effective_length);

    CpuRunStats local_stats;
    local_stats.threads_used = num_chunks;
    local_stats.chunk_size = chunk;
    local_stats.mode = options.mode;

    // ---- Map operation (eq. 2): embarrassingly parallel over the full
    // input, so chunk-boundary FIR taps see the true neighbors.
    const bool has_map = !sig.is_pure_recursive();
    const Signature recursive = sig.recursive_part();
    std::vector<V> t;
    if (has_map) {
        const auto phase_start = Clock::now();
        std::vector<V> a(sig.a().size());
        for (std::size_t j = 0; j < a.size(); ++j)
            a[j] = Ring::from_coefficient(sig.a()[j]);
        t.resize(n);
        run_region(options.mode, num_chunks, [&](std::size_t c) {
            const std::size_t base = c * chunk;
            const std::size_t len = std::min(chunk, n - base);
            std::size_t i = base;
            // The first p positions of a resumed stream reach back into
            // the checkpointed x-tail for their FIR taps.
            for (; i < base + len && i + 1 < a.size(); ++i) {
                V acc = Ring::zero();
                for (std::size_t j = 0; j < a.size(); ++j) {
                    if (j <= i)
                        acc = Ring::mul_add(acc, a[j], input[i - j]);
                    else if (j - i - 1 < seed_x.size())
                        acc = Ring::mul_add(acc, a[j], seed_x[j - i - 1]);
                }
                t[i] = acc;
            }
            for (; i < base + len; ++i) {
                V acc = Ring::zero();
                for (std::size_t j = 0; j < a.size(); ++j)
                    acc = Ring::mul_add(acc, a[j], input[i - j]);
                t[i] = acc;
            }
        });
        local_stats.map_ns = elapsed_ns(phase_start);
    }
    const std::span<const V> stage_input =
        has_map ? std::span<const V>(t) : input;

    // ---- Phase A: per-thread serial recurrence on each chunk, written
    // directly into the result array (no per-chunk scratch allocation).
    std::vector<V> y(n);
    {
        const auto phase_start = Clock::now();
        run_region(options.mode, num_chunks, [&](std::size_t c) {
            const std::size_t base = c * chunk;
            const std::size_t len = std::min(chunk, n - base);
            serial_recurrence_into<Ring>(
                recursive, stage_input.subspan(base, len),
                std::span<V>(y.data() + base, len));
        });
        local_stats.phase1_ns = elapsed_ns(phase_start);
    }

    // ---- Carry fix-up: advance the k boundary carries sequentially
    // across chunks (O(num_chunks * k^2), trivial for CPU thread counts).
    // `carries` is one flat allocation: k values flowing INTO chunk c at
    // carries[c * k ..].
    std::vector<V> carries;
    {
        const auto phase_start = Clock::now();
        carries = advance_chunk_carries<Ring>(std::span<const V>(y), chunk,
                                              num_chunks, k, factors,
                                              seed_y);
        local_stats.carry_ns = elapsed_ns(phase_start);
    }

    // ---- Phase B: parallel correction of every chunk with its carry.
    // A resumed run corrects chunk 0 too: its carry is the checkpointed
    // y-tail rather than ring zeros.
    const std::size_t skip = resume != nullptr ? 0 : 1;
    {
        const auto phase_start = Clock::now();
        run_region(options.mode, num_chunks - skip, [&](std::size_t task) {
            const std::size_t c = task + skip;
            const std::size_t base = c * chunk;
            const std::size_t len = std::min(chunk, n - base);
            const V* in_carry = carries.data() + c * k;
            const std::size_t limit = std::min(len, std::max(eff, k));
            for (std::size_t o = 0; o < limit; ++o) {
                V acc = y[base + o];
                for (std::size_t i = 1; i <= k; ++i) {
                    if (o >= props.lists[i - 1].effective_length)
                        continue;
                    acc = Ring::mul_add(acc, factors.factor(i, o),
                                        in_carry[i - 1]);
                }
                y[base + o] = acc;
            }
        });
        local_stats.phase2_ns = elapsed_ns(phase_start);
    }

    if (stats) {
        local_stats.total_ns = elapsed_ns(call_start);
        *stats = local_stats;
    }
    return y;
}

}  // namespace

template <typename Ring>
std::vector<typename Ring::value_type>
cpu_parallel_recurrence(const Signature& sig,
                        std::span<const typename Ring::value_type> input,
                        const CpuParallelOptions& options, CpuRunStats* stats)
{
    return run_impl<Ring>(sig, input, options, nullptr, stats);
}

template <typename Ring>
std::vector<typename Ring::value_type>
cpu_parallel_recurrence_resumed(
    const Signature& sig, std::span<const typename Ring::value_type> input,
    const StreamState<Ring>& state, const CpuParallelOptions& options,
    CpuRunStats* stats)
{
    PLR_REQUIRE(state.y_tail.size() == sig.order() &&
                    state.x_tail.size() == sig.fir_taps(),
                "stream state does not fit " << sig.to_string());
    return run_impl<Ring>(sig, input, options, &state, stats);
}

template std::vector<std::int32_t>
cpu_parallel_recurrence<IntRing>(const Signature&,
                                 std::span<const std::int32_t>,
                                 const CpuParallelOptions&, CpuRunStats*);
template std::vector<float>
cpu_parallel_recurrence<FloatRing>(const Signature&, std::span<const float>,
                                   const CpuParallelOptions&, CpuRunStats*);
template std::vector<float>
cpu_parallel_recurrence<TropicalRing>(const Signature&,
                                      std::span<const float>,
                                      const CpuParallelOptions&,
                                      CpuRunStats*);

template std::vector<std::int32_t>
cpu_parallel_recurrence_resumed<IntRing>(const Signature&,
                                         std::span<const std::int32_t>,
                                         const StreamState<IntRing>&,
                                         const CpuParallelOptions&,
                                         CpuRunStats*);
template std::vector<float>
cpu_parallel_recurrence_resumed<FloatRing>(const Signature&,
                                           std::span<const float>,
                                           const StreamState<FloatRing>&,
                                           const CpuParallelOptions&,
                                           CpuRunStats*);
template std::vector<float>
cpu_parallel_recurrence_resumed<TropicalRing>(const Signature&,
                                              std::span<const float>,
                                              const StreamState<TropicalRing>&,
                                              const CpuParallelOptions&,
                                              CpuRunStats*);

}  // namespace plr::kernels
