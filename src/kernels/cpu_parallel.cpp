#include "kernels/cpu_parallel.h"

#include <algorithm>
#include <thread>

#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "kernels/serial.h"

namespace plr::kernels {

template <typename Ring>
std::vector<typename Ring::value_type>
cpu_parallel_recurrence(const Signature& sig,
                        std::span<const typename Ring::value_type> input,
                        std::size_t threads, CpuRunStats* stats)
{
    using V = typename Ring::value_type;
    const std::size_t n = input.size();
    const std::size_t k = sig.order();
    PLR_REQUIRE(k >= 1, "parallel recurrence needs order >= 1");

    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // Each chunk must have at least k elements; small inputs run serially.
    const std::size_t min_chunk = std::max<std::size_t>(4 * k, 256);
    threads = std::min(threads, n / min_chunk);
    if (threads <= 1) {
        if (stats) {
            stats->threads_used = 1;
            stats->chunk_size = n;
        }
        return serial_recurrence<Ring>(sig, input);
    }

    const std::size_t chunk = (n + threads - 1) / threads;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    const auto factors = CorrectionFactors<Ring>::generate(
        sig.recursive_part(), chunk, /*flush_denormals=*/!Ring::is_exact);
    const auto props = analyze_factors(factors);

    // Respect the decay optimization: offsets beyond the effective length
    // need no correction at all (IIR filters decay; Section 3.1).
    std::size_t eff = 0;
    for (const auto& list : props.lists)
        eff = std::max(eff, list.effective_length);

    // ---- Map operation (eq. 2): embarrassingly parallel over the full
    // input, so chunk-boundary FIR taps see the true neighbors.
    const bool has_map = !sig.is_pure_recursive();
    const Signature recursive = sig.recursive_part();
    std::vector<V> t;
    if (has_map) {
        std::vector<V> a(sig.a().size());
        for (std::size_t j = 0; j < a.size(); ++j)
            a[j] = Ring::from_coefficient(sig.a()[j]);
        t.resize(n);
        std::vector<std::thread> workers;
        workers.reserve(num_chunks);
        for (std::size_t c = 0; c < num_chunks; ++c) {
            workers.emplace_back([&, c]() {
                const std::size_t base = c * chunk;
                const std::size_t len = std::min(chunk, n - base);
                for (std::size_t i = base; i < base + len; ++i) {
                    V acc = Ring::zero();
                    for (std::size_t j = 0; j < a.size() && j <= i; ++j)
                        acc = Ring::mul_add(acc, a[j], input[i - j]);
                    t[i] = acc;
                }
            });
        }
        for (auto& worker : workers)
            worker.join();
    }
    const std::span<const V> stage_input =
        has_map ? std::span<const V>(t) : input;

    // ---- Phase A: per-thread serial recurrence on each chunk.
    std::vector<V> y(n);
    {
        std::vector<std::thread> workers;
        workers.reserve(num_chunks);
        for (std::size_t c = 0; c < num_chunks; ++c) {
            workers.emplace_back([&, c]() {
                const std::size_t base = c * chunk;
                const std::size_t len = std::min(chunk, n - base);
                auto local = serial_recurrence<Ring>(
                    recursive, stage_input.subspan(base, len));
                std::copy(local.begin(), local.end(), y.begin() + base);
            });
        }
        for (auto& worker : workers)
            worker.join();
    }

    // ---- Carry fix-up: advance the k boundary carries sequentially
    // across chunks (O(num_chunks * k^2), trivial for CPU thread counts).
    std::vector<std::vector<V>> carries(num_chunks);  // carries INTO chunk c
    std::vector<V> carry(k, Ring::zero());
    for (std::size_t c = 1; c < num_chunks; ++c) {
        const std::size_t prev_base = (c - 1) * chunk;
        const std::size_t prev_len = std::min(chunk, n - prev_base);
        std::vector<V> next(k, Ring::zero());
        for (std::size_t j = 1; j <= k && j <= prev_len; ++j) {
            V acc = y[prev_base + prev_len - j];
            const std::size_t o = prev_len - j;
            for (std::size_t i = 1; i <= k; ++i)
                acc = Ring::mul_add(acc, factors.factor(i, o),
                                    carry[i - 1]);
            next[j - 1] = acc;
        }
        carry = std::move(next);
        carries[c] = carry;
    }

    // ---- Phase B: parallel correction of every chunk with its carry.
    {
        std::vector<std::thread> workers;
        workers.reserve(num_chunks);
        for (std::size_t c = 1; c < num_chunks; ++c) {
            workers.emplace_back([&, c]() {
                const std::size_t base = c * chunk;
                const std::size_t len = std::min(chunk, n - base);
                const std::vector<V>& in_carry = carries[c];
                const std::size_t limit = std::min(len, std::max(eff, k));
                for (std::size_t o = 0; o < limit; ++o) {
                    V acc = y[base + o];
                    for (std::size_t i = 1; i <= k; ++i) {
                        if (o >= props.lists[i - 1].effective_length)
                            continue;
                        acc = Ring::mul_add(acc, factors.factor(i, o),
                                            in_carry[i - 1]);
                    }
                    y[base + o] = acc;
                }
            });
        }
        for (auto& worker : workers)
            worker.join();
    }

    if (stats) {
        stats->threads_used = num_chunks;
        stats->chunk_size = chunk;
    }
    return y;
}

template std::vector<std::int32_t>
cpu_parallel_recurrence<IntRing>(const Signature&,
                                 std::span<const std::int32_t>, std::size_t,
                                 CpuRunStats*);
template std::vector<float>
cpu_parallel_recurrence<FloatRing>(const Signature&, std::span<const float>,
                                   std::size_t, CpuRunStats*);
template std::vector<float>
cpu_parallel_recurrence<TropicalRing>(const Signature&,
                                      std::span<const float>, std::size_t,
                                      CpuRunStats*);

}  // namespace plr::kernels
