#ifndef PLR_KERNELS_SAMLIKE_H_
#define PLR_KERNELS_SAMLIKE_H_

/**
 * @file
 * The SAM-like baseline (Maleki, Yang & Burtscher, PLDI'16): the fastest
 * prior code for higher-order and tuple-based prefix sums. Like CUB it is
 * a work-efficient single-pass scan with 2n data movement, but:
 *
 *  - for order-k prefix sums it repeats the *computation* (k iterated
 *    in-register sums per chunk) without repeating the I/O, which is why
 *    it beats CUB on higher orders (Section 6.1.3);
 *  - for s-tuples it computes s independent interleaved scalar prefix
 *    sums (Section 6.1.2);
 *  - an install-time auto-tuner picks the per-thread element count x for
 *    each input size, which gives it the edge on small inputs; we model
 *    the tuner with the published heuristic of minimizing wave count.
 *
 * Carry propagation across chunks uses decoupled look-back; the chunk
 * correction applies the closed-form binomial weights, which are exactly
 * the correction factors of the corresponding signature, computed on the
 * fly rather than stored in arrays.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/correction_factors.h"
#include "core/signature.h"
#include "gpusim/device.h"
#include "kernels/verify.h"
#include "util/ring.h"

namespace plr::kernels {

/** Execution statistics of one SAM-like run. */
struct SamRunStats {
    std::size_t chunks = 0;
    /** Auto-tuned per-thread element count. */
    std::size_t x = 0;
    gpusim::CounterSnapshot counters;
    /** Per-chunk output checksums (armed only under Device integrity). */
    ChunkChecksums checksums;
};

/** SAM-like single-pass kernel for the prefix-sum family. */
template <typename Ring>
class SamLikeKernel {
  public:
    using value_type = typename Ring::value_type;

    /** True for standard, tuple-based, and higher-order prefix sums. */
    static bool supports(const Signature& sig);

    /**
     * @param chunk elements per block; 0 = auto-tune from the input size
     *        (the modeled install-time tuner)
     */
    SamLikeKernel(Signature sig, std::size_t n, std::size_t chunk = 0);

    std::vector<value_type> run(gpusim::Device& device,
                                std::span<const value_type> input,
                                SamRunStats* stats = nullptr) const;

    std::size_t chunk_size() const { return chunk_; }

  private:
    Signature sig_;
    std::size_t n_;
    std::size_t chunk_;
    std::size_t x_;
    std::size_t k_;
    std::size_t tuple_;
    CorrectionFactors<Ring> factors_;
};

extern template class SamLikeKernel<IntRing>;
extern template class SamLikeKernel<FloatRing>;

}  // namespace plr::kernels

#endif  // PLR_KERNELS_SAMLIKE_H_
