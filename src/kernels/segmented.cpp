#include "kernels/segmented.h"

namespace plr::kernels {

template <typename Ring>
std::vector<typename Ring::value_type>
segmented_recurrence(gpusim::Device& device,
                     const std::vector<Signature>& signatures,
                     const std::vector<Segment>& segments,
                     std::span<const typename Ring::value_type> input,
                     SegmentedRunStats* stats)
{
    using V = typename Ring::value_type;
    PLR_REQUIRE(!signatures.empty(), "need at least one signature");
    PLR_REQUIRE(!segments.empty(), "need at least one segment");

    std::size_t total = 0;
    for (const Segment& segment : segments) {
        PLR_REQUIRE(segment.length >= 1, "empty segment");
        PLR_REQUIRE(segment.signature_index < signatures.size(),
                    "segment references signature "
                        << segment.signature_index << " of "
                        << signatures.size());
        total += segment.length;
    }
    PLR_REQUIRE(total == input.size(),
                "segment lengths sum to " << total << " but the input has "
                                          << input.size() << " elements");

    // Precompute ring-domain coefficients per signature.
    struct Coeffs {
        std::vector<V> a;
        std::vector<V> b;
    };
    std::vector<Coeffs> coeffs(signatures.size());
    for (std::size_t s = 0; s < signatures.size(); ++s) {
        PLR_REQUIRE(signatures[s].order() >= 1,
                    "segment signature must have order >= 1");
        coeffs[s].a.resize(signatures[s].a().size());
        for (std::size_t j = 0; j < coeffs[s].a.size(); ++j)
            coeffs[s].a[j] = Ring::from_coefficient(signatures[s].a()[j]);
        coeffs[s].b.resize(signatures[s].order());
        for (std::size_t j = 0; j < coeffs[s].b.size(); ++j)
            coeffs[s].b[j] = Ring::from_coefficient(signatures[s].b()[j]);
    }

    // Segment base offsets.
    std::vector<std::size_t> bases(segments.size());
    std::size_t offset = 0;
    for (std::size_t s = 0; s < segments.size(); ++s) {
        bases[s] = offset;
        offset += segments[s].length;
    }

    const std::size_t n = input.size();
    auto in = device.alloc<V>(n, "segmented.input");
    auto out = device.alloc<V>(n, "segmented.output");
    device.upload<V>(in, input);
    const auto before = device.snapshot();

    device.launch(segments.size(), [&](gpusim::BlockContext& ctx) {
        const std::size_t s = ctx.block_index();
        const std::size_t base = bases[s];
        const std::size_t len = segments[s].length;
        const Coeffs& co = coeffs[segments[s].signature_index];

        std::vector<V> x(len);
        ctx.ld_bulk<V>(in, base, x);
        std::vector<V> y(len);
        for (std::size_t i = 0; i < len; ++i) {
            V acc = Ring::zero();
            for (std::size_t j = 0; j < co.a.size() && j <= i; ++j) {
                acc = Ring::mul_add(acc, co.a[j], x[i - j]);
                ctx.count_flop(2);
            }
            for (std::size_t j = 1; j <= co.b.size() && j <= i; ++j) {
                acc = Ring::mul_add(acc, co.b[j - 1], y[i - j]);
                ctx.count_flop(2);
            }
            y[i] = acc;
        }
        ctx.st_bulk<V>(out, base, std::span<const V>(y));
    });

    auto result = device.download<V>(out);
    if (stats) {
        stats->segments = segments.size();
        stats->counters = device.snapshot() - before;
    }
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

template std::vector<std::int32_t>
segmented_recurrence<IntRing>(gpusim::Device&, const std::vector<Signature>&,
                              const std::vector<Segment>&,
                              std::span<const std::int32_t>,
                              SegmentedRunStats*);
template std::vector<float>
segmented_recurrence<FloatRing>(gpusim::Device&,
                                const std::vector<Signature>&,
                                const std::vector<Segment>&,
                                std::span<const float>, SegmentedRunStats*);

}  // namespace plr::kernels
