#ifndef PLR_KERNELS_RELATED_WORK_H_
#define PLR_KERNELS_RELATED_WORK_H_

/**
 * @file
 * Historical parallel-recurrence algorithms from the paper's related
 * work (Section 4), implemented as reference baselines:
 *
 *  - **Recursive doubling** (Stone 1973; Kogge & Stone 1973): solves a
 *    first-order recurrence in ceil(log2 n) data-parallel sweeps, each
 *    updating every element from its neighbor 2^s positions back. Simple
 *    and step-efficient, but it performs O(n log n) work and moves
 *    O(n log n) words — the inefficiency later algorithms (including
 *    PLR) were designed to avoid.
 *
 *  - **Blelloch tree scan** (Blelloch 1989): the classic work-efficient
 *    two-sweep (upsweep/downsweep) prefix sum, O(n) work but two tree
 *    traversals over the data and an exclusive-to-inclusive fix-up.
 *
 * Both run on the gpusim substrate so their data movement can be
 * compared against PLR's single pass (bench/related_work.cpp).
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "gpusim/device.h"
#include "util/ring.h"

namespace plr::kernels {

/** Statistics of a related-work run. */
struct RelatedWorkStats {
    std::size_t sweeps = 0;
    gpusim::CounterSnapshot counters;
};

/**
 * Kogge-Stone recursive doubling for a first-order recurrence
 * (a0..a-p : b). Performs ceil(log2 n) full passes over the data.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
kogge_stone_recurrence(gpusim::Device& device, const Signature& sig,
                       std::span<const typename Ring::value_type> input,
                       RelatedWorkStats* stats = nullptr);

/**
 * Blelloch two-sweep prefix sum (signature (1: 1) semantics), returned
 * inclusive. Works for any ring's add operation.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
blelloch_tree_prefix_sum(gpusim::Device& device,
                         std::span<const typename Ring::value_type> input,
                         RelatedWorkStats* stats = nullptr);

extern template std::vector<std::int32_t>
kogge_stone_recurrence<IntRing>(gpusim::Device&, const Signature&,
                                std::span<const std::int32_t>,
                                RelatedWorkStats*);
extern template std::vector<float>
kogge_stone_recurrence<FloatRing>(gpusim::Device&, const Signature&,
                                  std::span<const float>,
                                  RelatedWorkStats*);
extern template std::vector<std::int32_t>
blelloch_tree_prefix_sum<IntRing>(gpusim::Device&,
                                  std::span<const std::int32_t>,
                                  RelatedWorkStats*);
extern template std::vector<float>
blelloch_tree_prefix_sum<FloatRing>(gpusim::Device&,
                                    std::span<const float>,
                                    RelatedWorkStats*);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_RELATED_WORK_H_
