#include "kernels/reclike.h"

namespace plr::kernels {

namespace {

/** Tile-local causal filter assuming zero history before the tile. */
void
filter_tile(gpusim::BlockContext& ctx, std::vector<float>& w, float a0,
            const std::vector<float>& b)
{
    for (std::size_t i = 0; i < w.size(); ++i) {
        float acc = a0 * w[i];
        ctx.count_flop(1);
        for (std::size_t j = 1; j <= b.size() && j <= i; ++j) {
            acc += b[j - 1] * w[i - j];
            ctx.count_flop(2);
        }
        w[i] = acc;
    }
}

}  // namespace

bool
RecLikeKernel::supports(const Signature& sig)
{
    return sig.order() >= 1 && sig.a().size() == 1;
}

RecLikeKernel::RecLikeKernel(Signature sig, std::size_t rows,
                             std::size_t cols, std::size_t tile)
    : sig_(std::move(sig)),
      rows_(rows),
      cols_(cols),
      tile_(tile),
      a0_(static_cast<float>(sig_.a().empty() ? 1.0 : sig_.a()[0])),
      factors_(CorrectionFactors<FloatRing>::generate(
          sig_.recursive_part(), std::max(tile, sig_.order()),
          /*flush_denormals=*/true))
{
    PLR_REQUIRE(supports(sig_),
                "Rec supports recursive filters with a single non-recursive "
                "coefficient, got " << sig_.to_string());
    PLR_REQUIRE(rows_ >= 1 && cols_ >= 1, "empty image");
    PLR_REQUIRE(tile_ >= sig_.order(), "tile below filter order");
    b_.resize(sig_.order());
    for (std::size_t j = 0; j < b_.size(); ++j)
        b_[j] = static_cast<float>(sig_.b()[j]);
}

std::vector<float>
RecLikeKernel::run(gpusim::Device& device, std::span<const float> image,
                   RecRunStats* stats) const
{
    const std::size_t n = rows_ * cols_;
    PLR_REQUIRE(image.size() == n,
                "image size " << image.size() << " != " << rows_ << "x"
                              << cols_);
    const std::size_t k = sig_.order();
    const std::size_t tiles_per_row = (cols_ + tile_ - 1) / tile_;
    const auto before = device.snapshot();

    auto in = device.alloc<float>(n, "rec.input");
    auto out = device.alloc<float>(n, "rec.output");
    auto local_carries = device.alloc<float>(rows_ * tiles_per_row * k,
                                             "rec.local_carries");
    auto global_carries = device.alloc<float>(rows_ * tiles_per_row * k,
                                              "rec.global_carries");
    device.upload<float>(in, image);

    const float a0 = a0_;
    const auto& b = b_;
    const auto& factors = factors_;
    const std::size_t cols = cols_;
    const std::size_t tile = tile_;

    // Pass 1: tile-local filters; publish the per-tile carries (written
    // coalesced, one row's worth at a time).
    device.launch(rows_, [&](gpusim::BlockContext& ctx) {
        const std::size_t row = ctx.block_index();
        std::vector<float> carries(tiles_per_row * k, 0.0f);
        for (std::size_t t = 0; t < tiles_per_row; ++t) {
            const std::size_t base = row * cols + t * tile;
            const std::size_t len = std::min(tile, cols - t * tile);
            std::vector<float> w(len);
            ctx.ld_bulk<float>(in, base, w);
            filter_tile(ctx, w, a0, b);
            for (std::size_t j = 1; j <= k && j <= len; ++j)
                carries[t * k + (j - 1)] = w[len - j];
        }
        ctx.st_bulk<float>(local_carries, row * tiles_per_row * k,
                           std::span<const float>(carries));
    });

    // Pass 2: serial carry combination along each row (Rec combines the
    // local carries serially, unlike PLR which parallelizes this stage).
    device.launch(rows_, [&](gpusim::BlockContext& ctx) {
        const std::size_t row = ctx.block_index();
        std::vector<float> local(tiles_per_row * k);
        ctx.ld_bulk<float>(local_carries, row * tiles_per_row * k, local);
        std::vector<float> global(tiles_per_row * k, 0.0f);
        std::vector<float> carry(k, 0.0f);
        for (std::size_t t = 0; t < tiles_per_row; ++t) {
            const std::size_t len = std::min(tile, cols - t * tile);
            std::vector<float> corrected(k);
            for (std::size_t j = 1; j <= k; ++j) {
                float acc = local[t * k + (j - 1)];
                if (t > 0 && j <= len) {
                    for (std::size_t i = 1; i <= k; ++i) {
                        acc += factors.factor(i, len - j) * carry[i - 1];
                        ctx.count_flop(2);
                    }
                }
                corrected[j - 1] = acc;
            }
            carry = corrected;
            for (std::size_t j = 1; j <= k; ++j)
                global[t * k + (j - 1)] = carry[j - 1];
        }
        ctx.st_bulk<float>(global_carries, row * tiles_per_row * k,
                           std::span<const float>(global));
    });

    // Pass 3: fix-up. Re-reads the input tiles (the second read the paper
    // measures in Table 3), recomputes the local filters, applies the
    // carries of the preceding tile, and writes the final rows.
    device.launch(rows_, [&](gpusim::BlockContext& ctx) {
        const std::size_t row = ctx.block_index();
        std::vector<float> global(tiles_per_row * k);
        ctx.ld_bulk<float>(global_carries, row * tiles_per_row * k, global);
        for (std::size_t t = 0; t < tiles_per_row; ++t) {
            const std::size_t base = row * cols + t * tile;
            const std::size_t len = std::min(tile, cols - t * tile);
            std::vector<float> w(len);
            ctx.ld_bulk<float>(in, base, w);
            filter_tile(ctx, w, a0, b);
            if (t > 0) {
                std::vector<float> carry(k);
                for (std::size_t j = 1; j <= k; ++j)
                    carry[j - 1] = global[(t - 1) * k + (j - 1)];
                for (std::size_t o = 0; o < len; ++o) {
                    float acc = w[o];
                    for (std::size_t i = 1; i <= k; ++i) {
                        acc += factors.factor(i, o) * carry[i - 1];
                        ctx.count_flop(2);
                    }
                    w[o] = acc;
                }
            }
            ctx.st_bulk<float>(out, base, std::span<const float>(w));
        }
    });

    auto result = device.download<float>(out);
    if (stats) {
        stats->tiles = rows_ * tiles_per_row;
        stats->counters = device.snapshot() - before;
    }
    device.memory().free(in);
    device.memory().free(out);
    device.memory().free(local_carries);
    device.memory().free(global_carries);
    return result;
}

}  // namespace plr::kernels
