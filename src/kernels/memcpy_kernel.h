#ifndef PLR_KERNELS_MEMCPY_KERNEL_H_
#define PLR_KERNELS_MEMCPY_KERNEL_H_

/**
 * @file
 * The memory-copy "kernel": copies input to output with no computation.
 * The paper uses its throughput as the upper bound no recurrence code can
 * exceed, since every code must read each input value and write each
 * output value at least once.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"

namespace plr::kernels {

/**
 * Copy @p input through device memory in chunks of @p chunk elements per
 * block; returns the copied sequence and counts the traffic.
 */
template <typename T>
std::vector<T> device_memcpy(gpusim::Device& device,
                             std::span<const T> input,
                             std::size_t chunk = 4096);

extern template std::vector<std::int32_t>
device_memcpy<std::int32_t>(gpusim::Device&, std::span<const std::int32_t>,
                            std::size_t);
extern template std::vector<float>
device_memcpy<float>(gpusim::Device&, std::span<const float>, std::size_t);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_MEMCPY_KERNEL_H_
