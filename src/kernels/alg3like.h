#ifndef PLR_KERNELS_ALG3LIKE_H_
#define PLR_KERNELS_ALG3LIKE_H_

/**
 * @file
 * The Alg3-like baseline, modeling Nehab et al.'s GPU-efficient recursive
 * filtering ("Alg3" in the paper) under the paper's measurement setup:
 * a square 2D image of about the same total size as the 1D input, with
 * vertical filtering disabled, filtering the rows in the causal (positive)
 * direction and then — not disableable, as the paper notes — in the
 * anticausal (negative) direction.
 *
 * The properties the paper measures and that this model reproduces:
 *  - two filter passes over the data (the extra anticausal work),
 *  - not communication-efficient: the second pass re-reads the data,
 *    which misses in L2 whenever the image exceeds the 2 MB cache,
 *  - large extra allocations (an n-word intermediate plus order-dependent
 *    boundary-carry buffers), cf. Tables 2 and 3.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "gpusim/device.h"

namespace plr::kernels {

/** Execution statistics of one Alg3-like run. */
struct Alg3RunStats {
    gpusim::CounterSnapshot counters;
};

/** Alg3-like two-direction row filter on a 2D image. */
class Alg3LikeKernel {
  public:
    /**
     * @param sig recursive filter (float coefficients, any order)
     * @param rows image height
     * @param cols image width (row length; each row filtered independently)
     */
    Alg3LikeKernel(Signature sig, std::size_t rows, std::size_t cols);

    /**
     * Filter all rows. Returns the *causal* row-filter result (the
     * component comparable to PLR's output); the anticausal pass runs and
     * is counted but its product is overhead, exactly as in the paper's
     * measurements.
     */
    std::vector<float> run(gpusim::Device& device,
                           std::span<const float> image,
                           Alg3RunStats* stats = nullptr) const;

    /** The anticausal result of the last run (for validation in tests). */
    const std::vector<float>& last_anticausal() const { return anticausal_; }

  private:
    Signature sig_;
    std::size_t rows_;
    std::size_t cols_;
    std::vector<float> a_;
    std::vector<float> b_;
    mutable std::vector<float> anticausal_;
};

}  // namespace plr::kernels

#endif  // PLR_KERNELS_ALG3LIKE_H_
