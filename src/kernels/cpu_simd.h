#ifndef PLR_KERNELS_CPU_SIMD_H_
#define PLR_KERNELS_CPU_SIMD_H_

/**
 * @file
 * The SIMD-vectorized native CPU backend.
 *
 * Same two-phase structure as cpu_parallel (chunked Phase A, sequential
 * carry fix-up, parallel Phase B), with both phases running on the
 * vector units through the runtime-dispatched SimdScan table
 * (kernels/simd/simd_scan.h):
 *
 *  - Phase A evaluates each chunk's recurrence with an intra-register
 *    Kogge-Stone scan when the signature is a prefix sum, a tuple
 *    prefix sum, or first-order; other signatures fall back to the
 *    scalar serial code per chunk.
 *  - First-order float decay signatures (0 < b < 1) default to
 *    Heinsen's log-space two-prefix-sum evaluation; $PLR_SIMD_FIRST_ORDER
 *    ("direct", "log", "auto") overrides the choice.
 *  - Phase B applies the correction-factor lists with streamed
 *    multiply-adds for EVERY signature, folding all-equal lists (e.g.
 *    the all-ones prefix-sum list) into one broadcast add.
 *
 * Chunks are L2-blocked: even with few threads the input is cut into
 * cache-sized pieces so Phase A + Phase B of a chunk touch warm lines.
 * On a single thread (or a single chunk) the backend runs one fused
 * streaming pass with carry chaining and skips Phase B entirely.
 *
 * Supported rings: IntRing (bit-exact vs serial, wrap-around
 * reassociation is a ring homomorphism) and FloatRing (ULP-level
 * drift, gated by the conformance tolerances). The tropical semiring
 * is not supported — max-plus with -inf identities does not map onto
 * the multiply-add table.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/signature.h"
#include "kernels/simd/simd_scan.h"
#include "kernels/stream_state.h"
#include "util/ring.h"

namespace plr::kernels {

/** How first-order float recurrences evaluate in Phase A. */
enum class FirstOrderPath {
    /** Log-space for decay coefficients (0 < b < 1), direct otherwise. */
    kAuto,
    /** Always the direct weighted Kogge-Stone scan. */
    kDirect,
    /** Heinsen log-space whenever the coefficient allows it. */
    kLogSpace,
};

/** Short lowercase name ("auto", "direct", "log"). */
const char* to_string(FirstOrderPath path);

/** Tuning knobs of one cpu_simd run. */
struct CpuSimdOptions {
    /** Host threads (0 = hardware concurrency). */
    std::size_t threads = 0;
    /** Chunk size in elements (0 = auto: L2-blocked, lane-rounded). */
    std::size_t chunk = 0;
    /** Force an ISA table (nullopt = simd::selected_isa()). */
    std::optional<simd::Isa> isa;
    /** First-order evaluation path; kAuto also honors
     * $PLR_SIMD_FIRST_ORDER ("direct" / "log"). */
    FirstOrderPath first_order = FirstOrderPath::kAuto;
};

/** Statistics of one cpu_simd run. */
struct CpuSimdStats {
    /** ISA table the run dispatched to. */
    simd::Isa isa = simd::Isa::kScalar;
    /** 32-bit lanes per vector step of that table. */
    std::size_t lanes = 1;
    /** Phase-A path: "prefix", "first_order", "first_order_log",
     * "tuple", or "scalar". */
    const char* path = "scalar";
    /** Static-analyzer legality verdict for the log-space path on this
     * signature ("proven" / "fallback" / "rejected" / "unknown"); the
     * log path is only taken when proven (docs/STATIC_ANALYSIS.md). */
    const char* log_legality = "unknown";
    /** Single streaming pass (no Phase B) was used. */
    bool fused = false;
    std::size_t threads_used = 0;
    std::size_t num_chunks = 0;
    std::size_t chunk_size = 0;
    std::uint64_t map_ns = 0;
    std::uint64_t phase1_ns = 0;
    std::uint64_t carry_ns = 0;
    std::uint64_t phase2_ns = 0;
    std::uint64_t total_ns = 0;
};

/**
 * Compute @p sig over @p input with the tuning in @p options.
 * Ring must be IntRing or FloatRing.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
cpu_simd_recurrence(const Signature& sig,
                    std::span<const typename Ring::value_type> input,
                    const CpuSimdOptions& options = {},
                    CpuSimdStats* stats = nullptr);

/**
 * Streaming resume entry point (docs/STREAMING.md): evaluate @p input
 * as the continuation of the stream captured in @p state. The fused
 * single-pass path threads state.y_tail straight into the SimdScan
 * carry chain; the chunked path seeds the shared chunk_carry.h fix-up
 * and Phase-B-corrects chunk 0. Bit-identical to the concatenated
 * one-shot run for IntRing; ULP-level drift for floats. @p state is
 * not advanced.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
cpu_simd_recurrence_resumed(const Signature& sig,
                            std::span<const typename Ring::value_type> input,
                            const StreamState<Ring>& state,
                            const CpuSimdOptions& options = {},
                            CpuSimdStats* stats = nullptr);

extern template std::vector<std::int32_t>
cpu_simd_recurrence<IntRing>(const Signature&, std::span<const std::int32_t>,
                             const CpuSimdOptions&, CpuSimdStats*);
extern template std::vector<float>
cpu_simd_recurrence<FloatRing>(const Signature&, std::span<const float>,
                               const CpuSimdOptions&, CpuSimdStats*);

extern template std::vector<std::int32_t>
cpu_simd_recurrence_resumed<IntRing>(const Signature&,
                                     std::span<const std::int32_t>,
                                     const StreamState<IntRing>&,
                                     const CpuSimdOptions&, CpuSimdStats*);
extern template std::vector<float>
cpu_simd_recurrence_resumed<FloatRing>(const Signature&,
                                       std::span<const float>,
                                       const StreamState<FloatRing>&,
                                       const CpuSimdOptions&, CpuSimdStats*);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_CPU_SIMD_H_
