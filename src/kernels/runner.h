#ifndef PLR_KERNELS_RUNNER_H_
#define PLR_KERNELS_RUNNER_H_

/**
 * @file
 * The one-call convenience API: hand it a signature and data, get the
 * recurrence back.
 *
 * Ring dispatch is automatic: int32 data runs in the exact wrap-around
 * ring (requires an integral signature), float data runs in the float
 * ring — or in the max-plus semiring when the signature was built with
 * Signature::max_plus. The backend is either the simulated GPU (the PLR
 * kernel with the production Section-3 plan, scaled down for small
 * inputs) or the native multithreaded CPU implementation.
 *
 * The GPU backend degrades gracefully: when the launch wedges (watchdog
 * LaunchError) or trips an internal invariant, the runner emits a
 * `plr-repro:v1` line extended with the fault seed and — under the default
 * kDegradeToCpu policy — recomputes on the CPU backend. Tests use
 * kFailFast to surface the failure instead (see docs/FAULTS.md).
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/signature.h"
#include "gpusim/fault.h"

namespace plr::kernels {

/** Execution backend for run_recurrence. */
enum class Backend {
    /** PLR kernel on the bundled GPU execution simulator. */
    kSimulatedGpu,
    /** Native std::thread two-phase implementation. */
    kCpu,
};

/** What run_recurrence does when the simulated-GPU backend fails. */
enum class FailurePolicy {
    /** Rethrow the failure (tests want to see the LaunchError). */
    kFailFast,
    /** Log a reproducer line and recompute on the CPU backend. */
    kDegradeToCpu,
};

/**
 * Highest rung of the recovery ladder a run needed (docs/FAULTS.md):
 * kClean < kRepaired < kRelaunched < kCpuFallback, with kFailed for a
 * kFailFast run that exhausted the ladder and rethrew.
 */
enum class RecoveryStage {
    /** First launch verified clean (or verification was off). */
    kClean,
    /** Corrupt chunk(s) recomputed in place from saved carries. */
    kRepaired,
    /** At least one bounded full relaunch was needed. */
    kRelaunched,
    /** GPU attempts exhausted; result recomputed on the CPU backend. */
    kCpuFallback,
    /** Ladder exhausted under kFailFast; the failure was rethrown. */
    kFailed,
};

/** Stable name of a recovery stage ("clean", "repaired", ...). */
const char* to_string(RecoveryStage stage);

/** Typed account of what the recovery ladder did for one run. */
struct RecoveryReport {
    RecoveryStage stage = RecoveryStage::kClean;
    /** Verification sweeps that ran (one per GPU attempt with verify on). */
    std::size_t verify_passes = 0;
    /** Chunks selectively recomputed across all attempts. */
    std::size_t chunks_repaired = 0;
    /** Full GPU relaunches after the first attempt. */
    std::size_t relaunches = 0;
    /** Injected-event counters of the final GPU attempt's fault plan. */
    gpusim::FaultStats faults;
    /** One line per ladder event, oldest first. */
    std::string detail;

    /** One-line human-readable summary. */
    std::string summary() const;
};

/** Extended knobs for run_recurrence. */
struct RunnerOptions {
    Backend backend = Backend::kSimulatedGpu;
    FailurePolicy on_failure = FailurePolicy::kDegradeToCpu;
    /** Fault-injection seed for the GPU backend (0 = off). */
    std::uint64_t fault_seed = 0;
    /** Fault config used when fault_seed != 0. */
    gpusim::FaultConfig fault_config;
    /** Spin-watchdog limit (0 = device default / $PLR_SPIN_WATCHDOG). */
    std::uint64_t spin_watchdog = 0;
    /** Run the happens-before race detector on the GPU backend. A
        violating launch throws RaceError, subject to the failure policy;
        reproducer lines carry a race= token for replay. */
    bool race_detect = false;
    /** Run the look-back protocol invariant checker (ditto). */
    bool invariants = false;
    /** Arm SDC bit-flip injection on the GPU backend: the plan built from
        fault_seed gets the default SDC mix (gpusim::with_default_sdc).
        Requires fault_seed != 0 to have any effect. */
    bool sdc = false;
    /** Run the ABFT verify-and-repair pass over each GPU attempt
        (src/kernels/verify.h); failed verification climbs the recovery
        ladder instead of returning a wrong answer. */
    bool verify = false;
    /** Chunks the verify pass may recompute per attempt before the run
        escalates to a relaunch (0 = unlimited). */
    std::size_t max_chunk_repairs = 4;
    /** Full GPU relaunches after a failed first attempt (with a fresh
        SDC round each time) before falling back per on_failure. */
    std::size_t max_relaunches = 2;
    /** Base backoff before relaunch attempt i (doubled each rung). */
    std::uint64_t relaunch_backoff_ms = 1;
    /** Receives the reproducer line on degradation; may be null. */
    std::string* repro_out = nullptr;
    /** Receives the RecoveryReport of the run; may be null. */
    RecoveryReport* recovery_out = nullptr;
};

/**
 * Compute @p sig over int32 data. The signature must be integral (the
 * exact ring has no fractional coefficients); results match the serial
 * code bit-for-bit.
 */
std::vector<std::int32_t> run_recurrence(const Signature& sig,
                                         std::span<const std::int32_t> input,
                                         Backend backend = Backend::kSimulatedGpu);

/**
 * Compute @p sig over float data — in the max-plus semiring when the
 * signature was built with Signature::max_plus, in the ordinary float
 * ring otherwise.
 */
std::vector<float> run_recurrence(const Signature& sig,
                                  std::span<const float> input,
                                  Backend backend = Backend::kSimulatedGpu);

/** run_recurrence with the full option set (policy, faults, watchdog). */
std::vector<std::int32_t> run_recurrence(const Signature& sig,
                                         std::span<const std::int32_t> input,
                                         const RunnerOptions& options);

/** @copydoc run_recurrence(const Signature&, std::span<const std::int32_t>,
 *           const RunnerOptions&) */
std::vector<float> run_recurrence(const Signature& sig,
                                  std::span<const float> input,
                                  const RunnerOptions& options);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_RUNNER_H_
