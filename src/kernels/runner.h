#ifndef PLR_KERNELS_RUNNER_H_
#define PLR_KERNELS_RUNNER_H_

/**
 * @file
 * The one-call convenience API: hand it a signature and data, get the
 * recurrence back.
 *
 * Ring dispatch is automatic: int32 data runs in the exact wrap-around
 * ring (requires an integral signature), float data runs in the float
 * ring — or in the max-plus semiring when the signature was built with
 * Signature::max_plus. The backend is either the simulated GPU (the PLR
 * kernel with the production Section-3 plan, scaled down for small
 * inputs) or the native multithreaded CPU implementation.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "core/signature.h"

namespace plr::kernels {

/** Execution backend for run_recurrence. */
enum class Backend {
    /** PLR kernel on the bundled GPU execution simulator. */
    kSimulatedGpu,
    /** Native std::thread two-phase implementation. */
    kCpu,
};

/**
 * Compute @p sig over int32 data. The signature must be integral (the
 * exact ring has no fractional coefficients); results match the serial
 * code bit-for-bit.
 */
std::vector<std::int32_t> run_recurrence(const Signature& sig,
                                         std::span<const std::int32_t> input,
                                         Backend backend = Backend::kSimulatedGpu);

/**
 * Compute @p sig over float data — in the max-plus semiring when the
 * signature was built with Signature::max_plus, in the ordinary float
 * ring otherwise.
 */
std::vector<float> run_recurrence(const Signature& sig,
                                  std::span<const float> input,
                                  Backend backend = Backend::kSimulatedGpu);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_RUNNER_H_
