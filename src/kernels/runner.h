#ifndef PLR_KERNELS_RUNNER_H_
#define PLR_KERNELS_RUNNER_H_

/**
 * @file
 * The one-call convenience API: hand it a signature and data, get the
 * recurrence back.
 *
 * Ring dispatch is automatic: int32 data runs in the exact wrap-around
 * ring (requires an integral signature), float data runs in the float
 * ring — or in the max-plus semiring when the signature was built with
 * Signature::max_plus. The backend is either the simulated GPU (the PLR
 * kernel with the production Section-3 plan, scaled down for small
 * inputs) or the native multithreaded CPU implementation.
 *
 * The GPU backend degrades gracefully: when the launch wedges (watchdog
 * LaunchError) or trips an internal invariant, the runner emits a
 * `plr-repro:v1` line extended with the fault seed and — under the default
 * kDegradeToCpu policy — recomputes on the CPU backend. Tests use
 * kFailFast to surface the failure instead (see docs/FAULTS.md).
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/signature.h"
#include "gpusim/fault.h"

namespace plr::kernels {

/** Execution backend for run_recurrence. */
enum class Backend {
    /** PLR kernel on the bundled GPU execution simulator. */
    kSimulatedGpu,
    /** Native std::thread two-phase implementation. */
    kCpu,
};

/** What run_recurrence does when the simulated-GPU backend fails. */
enum class FailurePolicy {
    /** Rethrow the failure (tests want to see the LaunchError). */
    kFailFast,
    /** Log a reproducer line and recompute on the CPU backend. */
    kDegradeToCpu,
};

/** Extended knobs for run_recurrence. */
struct RunnerOptions {
    Backend backend = Backend::kSimulatedGpu;
    FailurePolicy on_failure = FailurePolicy::kDegradeToCpu;
    /** Fault-injection seed for the GPU backend (0 = off). */
    std::uint64_t fault_seed = 0;
    /** Fault config used when fault_seed != 0. */
    gpusim::FaultConfig fault_config;
    /** Spin-watchdog limit (0 = device default / $PLR_SPIN_WATCHDOG). */
    std::uint64_t spin_watchdog = 0;
    /** Run the happens-before race detector on the GPU backend. A
        violating launch throws RaceError, subject to the failure policy;
        reproducer lines carry a race= token for replay. */
    bool race_detect = false;
    /** Run the look-back protocol invariant checker (ditto). */
    bool invariants = false;
    /** Receives the reproducer line on degradation; may be null. */
    std::string* repro_out = nullptr;
};

/**
 * Compute @p sig over int32 data. The signature must be integral (the
 * exact ring has no fractional coefficients); results match the serial
 * code bit-for-bit.
 */
std::vector<std::int32_t> run_recurrence(const Signature& sig,
                                         std::span<const std::int32_t> input,
                                         Backend backend = Backend::kSimulatedGpu);

/**
 * Compute @p sig over float data — in the max-plus semiring when the
 * signature was built with Signature::max_plus, in the ordinary float
 * ring otherwise.
 */
std::vector<float> run_recurrence(const Signature& sig,
                                  std::span<const float> input,
                                  Backend backend = Backend::kSimulatedGpu);

/** run_recurrence with the full option set (policy, faults, watchdog). */
std::vector<std::int32_t> run_recurrence(const Signature& sig,
                                         std::span<const std::int32_t> input,
                                         const RunnerOptions& options);

/** @copydoc run_recurrence(const Signature&, std::span<const std::int32_t>,
 *           const RunnerOptions&) */
std::vector<float> run_recurrence(const Signature& sig,
                                  std::span<const float> input,
                                  const RunnerOptions& options);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_RUNNER_H_
