#include "kernels/scan_baseline.h"

#include "kernels/lookback_chain.h"

namespace plr::kernels {

namespace {

/**
 * Pair algebra on flattened (A, v) states: A is k*k row-major at offset 0,
 * v is k words at offset k*k.
 */
template <typename Ring>
struct PairAlgebra {
    using V = typename Ring::value_type;

    std::size_t k;

    std::size_t words() const { return k * k + k; }

    /** Identity pair (I, 0). */
    std::vector<V>
    identity() const
    {
        std::vector<V> p(words(), Ring::zero());
        for (std::size_t i = 0; i < k; ++i)
            p[i * k + i] = Ring::one();
        return p;
    }

    /**
     * combined = later o earlier = (A2*A1, A2*v1 + v2); counts the
     * k^3 + k^2 multiply-adds on @p ctx when provided.
     */
    std::vector<V>
    combine(const std::vector<V>& later, const std::vector<V>& earlier,
            gpusim::BlockContext* ctx) const
    {
        std::vector<V> out(words(), Ring::zero());
        // A2 * A1
        for (std::size_t r = 0; r < k; ++r)
            for (std::size_t c = 0; c < k; ++c) {
                V acc = Ring::zero();
                for (std::size_t i = 0; i < k; ++i)
                    acc = Ring::mul_add(acc, later[r * k + i],
                                        earlier[i * k + c]);
                out[r * k + c] = acc;
            }
        // A2 * v1 + v2
        for (std::size_t r = 0; r < k; ++r) {
            V acc = later[k * k + r];
            for (std::size_t i = 0; i < k; ++i)
                acc = Ring::mul_add(acc, later[r * k + i],
                                    earlier[k * k + i]);
            out[k * k + r] = acc;
        }
        if (ctx)
            ctx->count_flop(2 * (k * k * k + k * k + k));
        return out;
    }
};

}  // namespace

template <typename Ring>
ScanBaseline<Ring>::ScanBaseline(Signature sig, std::size_t n,
                                 std::size_t chunk)
    : sig_(std::move(sig)), n_(n), chunk_(chunk), k_(sig_.order())
{
    PLR_REQUIRE(k_ >= 1, "Scan needs a recurrence of order >= 1");
    PLR_REQUIRE(n_ >= 1, "input must not be empty");
    PLR_REQUIRE(chunk_ >= 1, "chunk must be positive");

    companion_.assign(k_ * k_, Ring::zero());
    for (std::size_t c = 0; c < k_; ++c)
        companion_[c] = Ring::from_coefficient(sig_.b()[c]);
    for (std::size_t r = 1; r < k_; ++r)
        companion_[r * k_ + (r - 1)] = Ring::one();

    map_coeffs_.resize(sig_.a().size());
    for (std::size_t j = 0; j < map_coeffs_.size(); ++j)
        map_coeffs_[j] = Ring::from_coefficient(sig_.a()[j]);
}

template <typename Ring>
std::vector<typename Ring::value_type>
ScanBaseline<Ring>::run(gpusim::Device& device,
                        std::span<const value_type> input,
                        ScanRunStats* stats) const
{
    using V = value_type;
    PLR_REQUIRE(input.size() == n_,
                "input length " << input.size() << " != configured " << n_);

    const PairAlgebra<Ring> algebra{k_};
    const std::size_t pw = algebra.words();
    const std::size_t num_chunks = (n_ + chunk_ - 1) / chunk_;
    const bool integrity = device.integrity();
    const auto before = device.snapshot();

    // ---- Map operation (PLR's map code) when the signature has FIR taps.
    std::vector<V> t(input.begin(), input.end());
    gpusim::Buffer<V> map_in, map_out;
    const bool has_map =
        map_coeffs_.size() != 1 || !Ring::is_one(map_coeffs_[0]);
    if (has_map) {
        map_in = device.alloc<V>(n_, "scan.map_in");
        map_out = device.alloc<V>(n_, "scan.map_out");
        device.upload<V>(map_in, input);
        const auto& coeffs = map_coeffs_;
        // In-register checksums per chunk, validated right after the
        // download below: a flip on the map_out store traffic is caught
        // before the pair expansion consumes it.
        std::vector<std::uint32_t> map_sums(integrity ? num_chunks : 0);
        device.launch(num_chunks, [&](gpusim::BlockContext& ctx) {
            const std::size_t base = ctx.block_index() * chunk_;
            const std::size_t len = std::min(chunk_, n_ - base);
            std::vector<V> w(len);
            ctx.ld_bulk<V>(map_in, base, w);
            std::vector<V> out(len);
            for (std::size_t i = 0; i < len; ++i) {
                V acc = Ring::zero();
                for (std::size_t j = 0; j < coeffs.size(); ++j) {
                    const std::size_t gi = base + i;
                    if (j > gi)
                        break;
                    const V x = (j > i) ? ctx.ld(map_in, gi - j) : w[i - j];
                    acc = Ring::mul_add(acc, coeffs[j], x);
                    ctx.count_flop(2);
                }
                out[i] = acc;
            }
            if (integrity) {
                map_sums[ctx.block_index()] =
                    checksum_values<V>(std::span<const V>(out));
            }
            ctx.st_bulk<V>(map_out, base, std::span<const V>(out));
        });
        t = device.download<V>(map_out);
        if (integrity) {
            for (std::size_t c = 0; c < num_chunks; ++c) {
                const std::size_t base = c * chunk_;
                const std::size_t len = std::min(chunk_, n_ - base);
                const auto chunk_span =
                    std::span<const V>(t).subspan(base, len);
                if (checksum_values<V>(chunk_span) != map_sums[c]) {
                    throw IntegrityError(
                        "scan.map: corrupt map output at chunk " +
                            std::to_string(c) + " (checksum mismatch)",
                        c, "map");
                }
            }
        }
    }

    // ---- Pair expansion: input preparation, done host-side (untimed),
    // exactly as the pair arrays in the paper's setup already exist on
    // the device before the timed scan.
    auto pairs_in = device.alloc<V>(n_ * pw, "scan.pairs_in");
    auto pairs_out = device.alloc<V>(n_ * pw, "scan.pairs_out");
    {
        std::vector<V> host(n_ * pw, Ring::zero());
        for (std::size_t i = 0; i < n_; ++i) {
            V* p = host.data() + i * pw;
            std::copy(companion_.begin(), companion_.end(), p);
            p[k_ * k_] = t[i];  // v = t_i * e1
        }
        device.upload<V>(pairs_in, host);
    }

    // ---- Single-pass chunked scan with decoupled look-back over pairs.
    LookbackChain<V> chain(device, num_chunks, pw, 32, "scan.chain");
    auto fold = [&algebra](std::vector<V> carry,
                           const std::vector<V>& local) {
        return algebra.combine(local, carry, nullptr);
    };

    // Per-chunk checksums of the y values (the v[0] pair component, the
    // only word the extraction below reads), computed from in-register
    // states; flips on the matrix words of pairs_out never reach y.
    std::vector<std::uint32_t> y_sums(integrity ? num_chunks : 0);

    device.launch(num_chunks, [&](gpusim::BlockContext& ctx) {
        const std::size_t chunk_id = ctx.block_index();
        const std::size_t base = chunk_id * chunk_;
        const std::size_t len = std::min(chunk_, n_ - base);

        // Load the chunk's pairs once.
        std::vector<V> local(len * pw);
        ctx.ld_bulk<V>(pairs_in, base * pw, local);

        // Local aggregate.
        std::vector<V> aggregate = algebra.identity();
        for (std::size_t i = 0; i < len; ++i) {
            const std::vector<V> p(local.begin() + i * pw,
                                   local.begin() + (i + 1) * pw);
            aggregate = algebra.combine(p, aggregate, &ctx);
        }
        chain.publish_local(ctx, chunk_id, aggregate);

        // Exclusive carry.
        std::vector<V> carry = algebra.identity();
        if (chunk_id > 0)
            carry = chain.wait_and_resolve(ctx, chunk_id, fold);

        // Inclusive state for this chunk, published for later chunks.
        chain.publish_global(ctx, chunk_id,
                             algebra.combine(aggregate, carry, &ctx));

        // Final sweep: apply the carry and write the result pairs.
        std::vector<V> running = std::move(carry);
        std::vector<V> out(len * pw);
        std::vector<V> y_vals(integrity ? len : 0);
        for (std::size_t i = 0; i < len; ++i) {
            const std::vector<V> p(local.begin() + i * pw,
                                   local.begin() + (i + 1) * pw);
            running = algebra.combine(p, running, &ctx);
            std::copy(running.begin(), running.end(),
                      out.begin() + i * pw);
            if (integrity)
                y_vals[i] = running[k_ * k_];
        }
        if (integrity) {
            y_sums[chunk_id] =
                checksum_values<V>(std::span<const V>(y_vals));
        }
        ctx.st_bulk<V>(pairs_out, base * pw, std::span<const V>(out));
    });

    // ---- Extraction: y_i is the first component of the state vector.
    const auto result_pairs = device.download<V>(pairs_out);
    std::vector<V> y(n_);
    for (std::size_t i = 0; i < n_; ++i)
        y[i] = result_pairs[i * pw + k_ * k_];

    if (stats) {
        stats->chunks = num_chunks;
        stats->counters = device.snapshot() - before;
        if (integrity) {
            stats->checksums.chunk_size = chunk_;
            stats->checksums.sums = std::move(y_sums);
        }
    }

    chain.free(device);
    device.memory().free(pairs_in);
    device.memory().free(pairs_out);
    if (has_map) {
        device.memory().free(map_in);
        device.memory().free(map_out);
    }
    return y;
}

template class ScanBaseline<IntRing>;
template class ScanBaseline<FloatRing>;

}  // namespace kernels
