#ifndef PLR_KERNELS_SEGMENTED_H_
#define PLR_KERNELS_SEGMENTED_H_

/**
 * @file
 * Segmented multi-signature recurrences — the paper's "inputs that
 * consist of multiple signatures" future-work item (Section 7).
 *
 * The input is a concatenation of segments, each carrying its own
 * signature; the recurrence state resets at every segment boundary (as
 * in segmented scans). This models, e.g., an audio stream whose filter
 * parameters change between blocks, or batched independent sequences of
 * varying length. Segments are mutually independent, so they run in
 * parallel (one thread block per segment on the simulated device), with
 * each segment evaluated by the ordinary recurrence machinery.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "gpusim/device.h"
#include "util/ring.h"

namespace plr::kernels {

/** One segment of a segmented recurrence. */
struct Segment {
    /** Elements in this segment. */
    std::size_t length = 0;
    /** Index into the signature table passed alongside. */
    std::size_t signature_index = 0;
};

/** Statistics of one segmented run. */
struct SegmentedRunStats {
    std::size_t segments = 0;
    gpusim::CounterSnapshot counters;
};

/**
 * Evaluate a segmented recurrence: segment s covers the next
 * segments[s].length input elements and computes
 * signatures[segments[s].signature_index] with fresh (zero) history.
 * The segment lengths must sum to input.size().
 */
template <typename Ring>
std::vector<typename Ring::value_type>
segmented_recurrence(gpusim::Device& device,
                     const std::vector<Signature>& signatures,
                     const std::vector<Segment>& segments,
                     std::span<const typename Ring::value_type> input,
                     SegmentedRunStats* stats = nullptr);

extern template std::vector<std::int32_t>
segmented_recurrence<IntRing>(gpusim::Device&, const std::vector<Signature>&,
                              const std::vector<Segment>&,
                              std::span<const std::int32_t>,
                              SegmentedRunStats*);
extern template std::vector<float>
segmented_recurrence<FloatRing>(gpusim::Device&,
                                const std::vector<Signature>&,
                                const std::vector<Segment>&,
                                std::span<const float>, SegmentedRunStats*);

}  // namespace plr::kernels

#endif  // PLR_KERNELS_SEGMENTED_H_
