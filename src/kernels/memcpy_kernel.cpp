#include "kernels/memcpy_kernel.h"

#include "util/diag.h"

namespace plr::kernels {

template <typename T>
std::vector<T>
device_memcpy(gpusim::Device& device, std::span<const T> input,
              std::size_t chunk)
{
    PLR_REQUIRE(chunk >= 1, "chunk must be positive");
    const std::size_t n = input.size();
    auto in = device.alloc<T>(n, "memcpy.input");
    auto out = device.alloc<T>(n, "memcpy.output");
    device.upload<T>(in, input);

    const std::size_t blocks = (n + chunk - 1) / chunk;
    device.launch(blocks, [&](gpusim::BlockContext& ctx) {
        const std::size_t base = ctx.block_index() * chunk;
        const std::size_t len = std::min(chunk, n - base);
        std::vector<T> tmp(len);
        ctx.ld_bulk<T>(in, base, tmp);
        ctx.st_bulk<T>(out, base, std::span<const T>(tmp));
    });

    auto result = device.download<T>(out);
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

template std::vector<std::int32_t>
device_memcpy<std::int32_t>(gpusim::Device&, std::span<const std::int32_t>,
                            std::size_t);
template std::vector<float>
device_memcpy<float>(gpusim::Device&, std::span<const float>, std::size_t);

}  // namespace plr::kernels
