#ifndef PLR_KERNELS_STREAM_H_
#define PLR_KERNELS_STREAM_H_

/**
 * @file
 * Segment-at-a-time streaming evaluation with durable checkpoints
 * (docs/STREAMING.md).
 *
 * A StreamSession feeds a recurrence one segment at a time — inputs
 * far larger than RAM, O(delta) append-only recomputation, session-
 * style stateful IIR filtering across request boundaries — while
 * keeping the carry state (kernels/stream_state.h) between segments.
 * At any segment boundary the state seals into a self-verifying
 * Checkpoint (kernels/checkpoint.h); resume_from() rebuilds a session
 * from a verified checkpoint and continues bit-identically (IntRing)
 * or within the conformance ULP gates (floats).
 *
 * Two resume mechanisms, same math:
 *
 *  - the native CPU backends (cpu_parallel, cpu_simd) take the y-tail
 *    straight into their carry chain (the shared chunk_carry.h fix-up,
 *    or the SimdScan carry chain on the fused path);
 *  - every other registry kernel — including the simulated-GPU
 *    look-back runners, whose per-chunk LookbackChain state is exactly
 *    what the checkpoint persists — runs its zero-state evaluation on
 *    the segment and the session applies the boundary correction
 *    y[o] (+)= sum_d F_d[o] (*) y_tail[d-1] with the same correction
 *    factors Phase 2 uses at chunk boundaries. Superposition of linear
 *    systems makes the two routes agree exactly in exact rings, and
 *    the factor route needs no subtraction, so it is valid in the
 *    max-plus semiring too.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "core/signature.h"
#include "kernels/checkpoint.h"
#include "kernels/registry.h"
#include "kernels/stream_state.h"
#include "util/ring.h"

namespace plr::kernels {

/** The Domain a ring evaluates in (TropicalRing shares float storage). */
template <typename Ring>
constexpr Domain
domain_of()
{
    if constexpr (std::is_same_v<Ring, IntRing>)
        return Domain::kInt;
    else if constexpr (std::is_same_v<Ring, TropicalRing>)
        return Domain::kTropical;
    else
        return Domain::kFloat;
}

/**
 * A resumable streaming run of one (signature, kernel) pair.
 * @p kernel may be null: the serial reference evaluates the segments.
 */
template <typename Ring>
class StreamSession {
  public:
    using V = typename Ring::value_type;

    /** Start a fresh stream (state: ring zeros, position 0). */
    StreamSession(const Signature& sig, const KernelInfo* kernel,
                  const RunOptions& opts);

    /**
     * Rebuild a session from a checkpoint. The checkpoint must already
     * parse (so its seal held); this validates it against (@p sig,
     * this ring) and throws CheckpointError(kSignatureMismatch) when
     * it belongs to a different recurrence.
     */
    static StreamSession resume_from(const Checkpoint& ckpt,
                                     const Signature& sig,
                                     const KernelInfo* kernel,
                                     const RunOptions& opts);

    /** Evaluate the next segment; advances the carry state. */
    std::vector<V> feed(std::span<const V> segment);

    /**
     * Advance the carry state over a segment whose outputs were
     * computed externally — the server's fused-batch path: it seeds a
     * cross-request segment launch (kernels/batched.h) from state()'s
     * tails, then commits the launch's outputs here. Equivalent to
     * feed(segment) when @p outputs is what feed would have returned.
     */
    void advance(std::span<const V> segment, std::span<const V> outputs);

    /** Seal the current state into a durable checkpoint. */
    Checkpoint checkpoint() const;

    const StreamState<Ring>& state() const { return state_; }
    const Signature& signature() const { return sig_; }

  private:
    std::vector<V> run_segment(std::span<const V> segment);
    std::vector<V> run_generic(std::span<const V> segment);

    Signature sig_;
    const KernelInfo* kernel_;
    RunOptions opts_;
    StreamState<Ring> state_;

    /** Generic-path correction factors, cached per segment length. */
    struct FactorCache {
        std::size_t length = 0;
        std::optional<CorrectionFactors<Ring>> factors;
        FactorSetProperties props;
    };
    FactorCache cache_;
};

extern template class StreamSession<IntRing>;
extern template class StreamSession<FloatRing>;
extern template class StreamSession<TropicalRing>;

}  // namespace plr::kernels

#endif  // PLR_KERNELS_STREAM_H_
