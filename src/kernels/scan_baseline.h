#ifndef PLR_KERNELS_SCAN_BASELINE_H_
#define PLR_KERNELS_SCAN_BASELINE_H_

/**
 * @file
 * The "Scan" baseline: Blelloch's general reduction of linear recurrences
 * to a prefix scan (Sections 4 and 5).
 *
 * Every element is encoded as a pair (A, v) of a k-by-k matrix and a
 * k-element vector; the associative operator is
 *   (A2, v2) o (A1, v1) = (A2*A1, A2*v1 + v2),
 * and the inclusive scan of the pairs (C, t_i*e1) — C the companion
 * matrix of the recurrence — carries the state vector
 * s_i = (y_i, ..., y_{i-k+1}) in its vector component.
 *
 * As in the paper's setup, the pair arrays are the scan's input and
 * output (O(n*k^2) memory, Table 2), the pair expansion is input
 * preparation (not timed/counted, like the host-to-device copy), and the
 * map operation reuses PLR's map code when the signature has FIR taps.
 * The scan itself runs as a single-pass chunked scan with decoupled
 * look-back, using CUB for the actual scan as the paper did.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "gpusim/device.h"
#include "kernels/verify.h"
#include "util/ring.h"

namespace plr::kernels {

/** Execution statistics of one Scan run. */
struct ScanRunStats {
    std::size_t chunks = 0;
    gpusim::CounterSnapshot counters;
    /** Per-chunk checksums of the extracted y values (integrity only). */
    ChunkChecksums checksums;
};

/** Blelloch scan baseline for one recurrence. */
template <typename Ring>
class ScanBaseline {
  public:
    using value_type = typename Ring::value_type;

    /**
     * @param sig the recurrence (any order >= 1; FIR taps handled by a
     *        map pass)
     * @param n input length
     * @param chunk elements per thread block in the scan pass
     */
    ScanBaseline(Signature sig, std::size_t n, std::size_t chunk = 1024);

    /** Compute the recurrence; validated against the serial reference. */
    std::vector<value_type> run(gpusim::Device& device,
                                std::span<const value_type> input,
                                ScanRunStats* stats = nullptr) const;

    /** Words of device memory per element pair (k^2 + k). */
    std::size_t pair_words() const { return k_ * k_ + k_; }

    const Signature& signature() const { return sig_; }

  private:
    Signature sig_;
    std::size_t n_;
    std::size_t chunk_;
    std::size_t k_;
    std::vector<value_type> companion_;  // k x k, row-major
    std::vector<value_type> map_coeffs_;
};

extern template class ScanBaseline<IntRing>;
extern template class ScanBaseline<FloatRing>;

}  // namespace plr::kernels

#endif  // PLR_KERNELS_SCAN_BASELINE_H_
