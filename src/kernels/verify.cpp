#include "kernels/verify.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "util/compare.h"

namespace plr::kernels {

IntegrityError::IntegrityError(const std::string& what, std::size_t chunk,
                               const char* site)
    : PanicError(what), chunk_(chunk), site_(site)
{
}

std::uint32_t
fletcher32(const std::uint32_t* words, std::size_t count)
{
    // Block form of the Fletcher recurrence. The textbook loop
    // (s1 += h; s2 += s1 per half-word) is a serial dependency chain;
    // over a block of L half-words h_0..h_{L-1} the same sums are
    //   s1' = s1 + sum(h_t)
    //   s2' = s2 + L*s1 + sum((L-t) * h_t)
    // which the compiler can pipeline. Addition commutes mod 65535, so
    // this is bit-identical to the interleaved form — the kernel-side
    // and host-side checksums must agree, so keep both on this one
    // function. Block of 1024 words (L = 2048): the weighted sum is
    // bounded by 2048 * 65535 * 2048 < 2^38, far from u64 overflow.
    std::uint64_t s1 = 0xffff;
    std::uint64_t s2 = 0xffff;
    std::size_t i = 0;
    while (i < count) {
        const std::size_t blk = std::min<std::size_t>(count - i, 1024);
        const std::uint64_t len = 2 * blk;
        std::uint64_t sum = 0;
        std::uint64_t wsum = 0;
        for (std::size_t j = 0; j < blk; ++j) {
            const std::uint32_t w = words[i + j];
            const std::uint64_t lo = w & 0xffffu;
            const std::uint64_t hi = w >> 16;
            sum += lo + hi;
            wsum += (len - 2 * j) * lo + (len - 2 * j - 1) * hi;
        }
        s2 = (s2 + len * s1 + wsum) % 65535u;
        s1 = (s1 + sum) % 65535u;
        i += blk;
    }
    const std::uint32_t sum32 =
        (static_cast<std::uint32_t>(s2) << 16) | static_cast<std::uint32_t>(s1);
    return sum32 == 0 ? 0xffffffffu : sum32;
}

namespace {

/** Direct evaluation of the signature recurrence at one position. */
template <typename Ring>
class ResidualEval {
  public:
    using V = typename Ring::value_type;

    explicit ResidualEval(const Signature& sig)
    {
        a_.resize(sig.a().size());
        for (std::size_t j = 0; j < a_.size(); ++j)
            a_[j] = Ring::from_coefficient(sig.a()[j]);
        b_.resize(sig.order());
        for (std::size_t j = 0; j < b_.size(); ++j)
            b_[j] = Ring::from_coefficient(sig.b()[j]);
    }

    /** y[i] predicted from the history in @p y (the serial loop's step). */
    V
    predict(std::span<const V> x, std::span<const V> y, std::size_t i) const
    {
        V acc = Ring::zero();
        for (std::size_t j = 0; j < a_.size() && j <= i; ++j)
            acc = Ring::mul_add(acc, a_[j], x[i - j]);
        for (std::size_t j = 1; j <= b_.size() && j <= i; ++j)
            acc = Ring::mul_add(acc, b_[j - 1], y[i - j]);
        return acc;
    }

  private:
    std::vector<V> a_;
    std::vector<V> b_;
};

/**
 * Residual gate: exact rings compare bit-for-bit; inexact rings accept the
 * parallel evaluation's rounding (same ULP/relative gates the oracle uses)
 * so only genuine corruption, not reassociation noise, trips it.
 */
template <typename Ring>
bool
residual_ok(typename Ring::value_type got, typename Ring::value_type want,
            const VerifyOptions& opts)
{
    if constexpr (Ring::is_exact) {
        return got == want;
    } else {
        // Bit equality first: covers the tropical ring's -inf identity and
        // any NaN that corruption may have minted (NaN == NaN is false).
        if (std::memcmp(&got, &want, sizeof(got)) == 0)
            return true;
        if (ulp_distance(got, want) <= opts.max_ulps)
            return true;
        const double diff =
            std::fabs(static_cast<double>(got) - static_cast<double>(want));
        return diff <= opts.float_tolerance *
                           std::max(1.0, std::fabs(static_cast<double>(want)));
    }
}

}  // namespace

std::string
VerifyReport::describe() const
{
    std::ostringstream os;
    os << chunks << " chunk(s), " << checksum_checks << " checksum + "
       << residual_checks << " residual checks: ";
    if (clean()) {
        os << "clean";
        return os.str();
    }
    os << corrupt_chunks.size() << " corrupt (chunk";
    constexpr std::size_t kMaxListed = 8;
    const std::size_t listed = std::min(corrupt_chunks.size(), kMaxListed);
    for (std::size_t i = 0; i < listed; ++i)
        os << " " << corrupt_chunks[i];
    if (corrupt_chunks.size() > listed)
        os << " ...";
    os << "), " << repaired << " repaired";
    if (escalated)
        os << ", escalated";
    return os.str();
}

template <typename Ring>
VerifyReport
verify_and_repair(const Signature& sig,
                  std::span<const typename Ring::value_type> input,
                  std::span<typename Ring::value_type> output,
                  std::size_t chunk_size, ChunkChecksums* checksums,
                  const VerifyOptions& opts)
{
    using V = typename Ring::value_type;
    VerifyReport report;
    const std::size_t n = output.size();
    PLR_REQUIRE(input.size() == n,
                "verify_and_repair: input size " << input.size()
                    << " != output size " << n);
    if (n == 0 || chunk_size == 0)
        return report;

    const ResidualEval<Ring> eval(sig);
    const std::size_t seam_width = std::max<std::size_t>(sig.order(), 1);
    const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
    report.chunks = num_chunks;

    const bool use_checksums = checksums != nullptr && checksums->armed() &&
                               checksums->chunk_size == chunk_size;

    const auto audit = [&](std::size_t c, std::size_t base, std::size_t end) {
        const bool has_sum = use_checksums && c < checksums->sums.size();
        if (has_sum) {
            ++report.checksum_checks;
            const auto chunk =
                std::span<const V>(output).subspan(base, end - base);
            if (checksum_values<V>(chunk) != checksums->sums[c])
                return true;
        }
        const std::size_t seam_end = std::min(base + seam_width, end);
        for (std::size_t i = base; i < seam_end; ++i) {
            ++report.residual_checks;
            if (!residual_ok<Ring>(output[i], eval.predict(input, output, i),
                                   opts))
                return true;
        }
        // The checksum pins the chunk interior bit-exactly to what the
        // kernel held in registers, which subsumes sampled residuals;
        // interior sampling only adds coverage when no checksum exists.
        if (opts.sample_stride != 0 && !has_sum) {
            for (std::size_t i = seam_end + opts.sample_stride - 1; i < end;
                 i += opts.sample_stride) {
                ++report.residual_checks;
                if (!residual_ok<Ring>(output[i],
                                       eval.predict(input, output, i), opts))
                    return true;
            }
        }
        return false;
    };

    for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::size_t base = c * chunk_size;
        const std::size_t end = std::min(base + chunk_size, n);
        if (!audit(c, base, end))
            continue;
        report.corrupt_chunks.push_back(c);
        if (!opts.repair || (opts.max_repairs != 0 &&
                             report.repaired >= opts.max_repairs)) {
            // Without a trustworthy chunk c there is no verified history to
            // audit successors against; stop and escalate.
            report.escalated = true;
            return report;
        }
        // Selective repair: recompute the chunk from the verified history
        // to its left (the serial step restarted at the chunk base).
        for (std::size_t i = base; i < end; ++i)
            output[i] = eval.predict(input, output, i);
        ++report.repaired;
        if (use_checksums && c < checksums->sums.size()) {
            checksums->sums[c] = checksum_values<V>(
                std::span<const V>(output).subspan(base, end - base));
        }
        if (audit(c, base, end)) {
            report.escalated = true;
            return report;
        }
    }
    return report;
}

template VerifyReport
verify_and_repair<IntRing>(const Signature&, std::span<const std::int32_t>,
                           std::span<std::int32_t>, std::size_t,
                           ChunkChecksums*, const VerifyOptions&);
template VerifyReport
verify_and_repair<FloatRing>(const Signature&, std::span<const float>,
                             std::span<float>, std::size_t, ChunkChecksums*,
                             const VerifyOptions&);
template VerifyReport
verify_and_repair<TropicalRing>(const Signature&, std::span<const float>,
                                std::span<float>, std::size_t,
                                ChunkChecksums*, const VerifyOptions&);

}  // namespace plr::kernels
