#ifndef PLR_PERFMODEL_HARDWARE_MODEL_H_
#define PLR_PERFMODEL_HARDWARE_MODEL_H_

/**
 * @file
 * The analytic performance model's hardware description.
 *
 * The structural parameters come from the paper's GTX Titan X (Section 5).
 * The *calibration* constants translate those parameters into achieved
 * rates; each is tied to a measurement the paper reports:
 *
 *  - memcpy_efficiency: the paper's memory-copy upper bound plateaus at
 *    ~35 billion 32-bit words/s = 280 GB/s of combined read+write traffic,
 *    83% of the 336 GB/s peak (Figure 1).
 *  - l2_bandwidth_scale: on-chip L2 bandwidth relative to DRAM; Maxwell's
 *    L2 sustains roughly 3-4x DRAM bandwidth. Governs the cost of factor
 *    loads that hit in L2 (Figure 10's optimizations-off mode).
 *  - achieved_compute_rate: effective scalar multiply-add throughput of
 *    dependent per-thread arithmetic, far below the 6.1 Tflop/s peak
 *    because recurrence corrections are latency-chained. Calibrated so
 *    the 3-stage low-pass filter becomes mildly compute-bound, matching
 *    Figure 8's PLR curve.
 *  - occupancy at 64 registers/thread: complex integer signatures spill
 *    to 64 regs (Section 3), halving resident threads; calibrated to
 *    PLR's ~18 Gword/s plateau on higher-order prefix sums (Figure 4).
 */

#include <cstddef>

#include "gpusim/device_spec.h"

namespace plr::perfmodel {

/** Structural + calibrated hardware parameters. */
struct HardwareModel {
    gpusim::DeviceSpec spec = gpusim::titan_x();

    /** Fraction of peak DRAM bandwidth streaming kernels achieve. */
    double memcpy_efficiency = 0.834;
    /** L2-to-DRAM bandwidth ratio for on-chip reads. */
    double l2_bandwidth_scale = 4.25;
    /** Achieved dependent multiply-add rate in ops/s. */
    double achieved_compute_rate = 1.15e12;
    /** Occupancy factor when a kernel needs 64 registers per thread. */
    double occupancy_64_regs = 0.555;

    /** Achieved DRAM bandwidth in bytes/s. */
    double
    dram_bandwidth() const
    {
        return spec.dram_bandwidth_gbps * 1e9 * memcpy_efficiency;
    }

    /** Achieved L2 bandwidth in bytes/s. */
    double l2_bandwidth() const { return dram_bandwidth() * l2_bandwidth_scale; }

    /** L2 capacity in bytes. */
    std::size_t l2_capacity() const { return spec.l2_bytes; }
};

}  // namespace plr::perfmodel

#endif  // PLR_PERFMODEL_HARDWARE_MODEL_H_
