#include "perfmodel/cost_model.h"

#include <algorithm>

#include "util/diag.h"

namespace plr::perfmodel {

double
modeled_time_s(const HardwareModel& hw, const TrafficProfile& profile)
{
    PLR_REQUIRE(profile.efficiency > 0 && profile.occupancy > 0,
                "profile factors must be positive");

    const double mem_scale = profile.efficiency * profile.occupancy;
    const double dram_time =
        (profile.dram_read_bytes + profile.dram_write_bytes) /
        (hw.dram_bandwidth() * mem_scale);
    // L2 reads overlap with the DRAM stream and are not limited by the
    // resident-warp count the way DRAM latency hiding is, so only the
    // code's efficiency scales them.
    const double l2_time =
        profile.l2_read_bytes / (hw.l2_bandwidth() * profile.efficiency);
    const double compute_time =
        profile.compute_ops /
        (hw.achieved_compute_rate * profile.compute_scale);
    // Serial work proceeds at one lane's rate: the achieved rate divided
    // by the device's parallel width.
    const double serial_time =
        profile.serial_ops /
        (hw.achieved_compute_rate / static_cast<double>(hw.spec.total_cores()));

    // Roofline with a small contention tax: work that is not the
    // bottleneck still issues instructions and occupies queues, so it is
    // not entirely free.
    const double bottleneck = std::max({dram_time, l2_time, compute_time});
    const double contention =
        0.08 * (dram_time + l2_time + compute_time - bottleneck);
    return profile.kernel_launches * profile.launch_overhead_s + bottleneck +
           contention + serial_time;
}

double
modeled_throughput(const HardwareModel& hw, const TrafficProfile& profile,
                   std::size_t n)
{
    return static_cast<double>(n) / modeled_time_s(hw, profile);
}

}  // namespace plr::perfmodel
