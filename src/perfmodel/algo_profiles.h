#ifndef PLR_PERFMODEL_ALGO_PROFILES_H_
#define PLR_PERFMODEL_ALGO_PROFILES_H_

/**
 * @file
 * Per-algorithm traffic/operation profiles.
 *
 * Each profile builder encodes the *mechanisms* the paper identifies for
 * its code: how many bytes move, whether re-reads hit in L2, how much
 * arithmetic runs per element, register pressure, and fixed overheads.
 * The DRAM byte counts are validated against the execution simulator's
 * transaction counters at small sizes (tests/perfmodel_test.cpp); the
 * remaining constants are calibrated to the paper's reported ratios and
 * documented in hardware_model.h and EXPERIMENTS.md.
 */

#include <cstddef>
#include <optional>

#include "core/plan.h"
#include "core/signature.h"
#include "perfmodel/cost_model.h"

namespace plr::perfmodel {

/** The seven codes of the evaluation (Section 5). */
enum class Algo {
    kMemcpy,
    kPlr,
    kCub,
    kSam,
    kScan,
    kAlg3,
    kRec,
};

/** Display name as used in the paper's figures. */
const char* to_string(Algo algo);

/** Whether the code supports this recurrence at all. */
bool algo_supports(Algo algo, const Signature& sig);

/**
 * Largest input (in 32-bit words) the code supports on the modeled GPU:
 * all codes cap sequences at 4 GB = 2^30 words; Scan's O(k^2) pair
 * encoding, Alg3's 2 GB limit, and Rec's 1 GB limit shrink that further
 * (Section 6.2).
 */
std::size_t algo_max_elements(Algo algo, const Signature& sig,
                              const HardwareModel& hw);

/**
 * Build the traffic profile of one run.
 *
 * @param plr_opts optimization toggles; only meaningful for Algo::kPlr
 *        (Figure 10's on/off comparison)
 */
TrafficProfile make_profile(Algo algo, const Signature& sig, std::size_t n,
                            const HardwareModel& hw,
                            const Optimizations& plr_opts = Optimizations{});

/** Convenience: modeled throughput in words/s (0 if unsupported size). */
double algo_throughput(Algo algo, const Signature& sig, std::size_t n,
                       const HardwareModel& hw,
                       const Optimizations& plr_opts = Optimizations{});

/**
 * Smallest power-of-two size at which @p a overtakes @p b on @p sig
 * (scanning 2^14..2^30), or 0 when it never does within the sizes both
 * support. Used for claims like "PLR starts outperforming Rec at one
 * million entries" (Section 6.5).
 */
std::size_t crossover_size(Algo a, Algo b, const Signature& sig,
                           const HardwareModel& hw);

}  // namespace plr::perfmodel

#endif  // PLR_PERFMODEL_ALGO_PROFILES_H_
