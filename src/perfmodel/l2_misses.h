#ifndef PLR_PERFMODEL_L2_MISSES_H_
#define PLR_PERFMODEL_L2_MISSES_H_

/**
 * @file
 * L2 read-miss accounting (the paper's Table 3).
 *
 * The paper converts nvprof's L2 read-miss counts into megabytes at the
 * 32-byte block size. For working sets far beyond the 2 MB L2, misses
 * are essentially cold misses on whatever each code streams from DRAM:
 * PLR/CUB/SAM read the data once (256 MB at n = 2^26); Scan reads pairs
 * (2/6/12x); Alg3 and Rec read the data twice plus their auxiliary
 * buffers. These audits are validated against the gpusim L2 model at
 * cache-exceeding sizes in tests/perfmodel_test.cpp.
 */

#include <cstddef>

#include "core/signature.h"
#include "perfmodel/algo_profiles.h"

namespace plr::perfmodel {

/** Modeled L2 read misses in bytes for one run of @p algo. */
double l2_read_miss_bytes(Algo algo, const Signature& sig, std::size_t n,
                          const HardwareModel& hw);

}  // namespace plr::perfmodel

#endif  // PLR_PERFMODEL_L2_MISSES_H_
