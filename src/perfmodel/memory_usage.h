#ifndef PLR_PERFMODEL_MEMORY_USAGE_H_
#define PLR_PERFMODEL_MEMORY_USAGE_H_

/**
 * @file
 * GPU memory-usage accounting (the paper's Table 2).
 *
 * Table 2 is an allocation ledger: the input/output arrays every code
 * shares, the CUDA context/runtime overhead that even the memory-copy
 * program pays (109.5 MB on the paper's system), and each code's own
 * auxiliary buffers. We reproduce the ledger from each code's buffer
 * inventory; the context overhead is taken from the paper's memcpy row
 * (it is a property of the driver stack, not of the algorithms).
 */

#include <cstddef>

#include "core/signature.h"
#include "perfmodel/algo_profiles.h"

namespace plr::perfmodel {

/** Breakdown of one code's device-memory footprint in bytes. */
struct MemoryUsage {
    /** Input + output data arrays. */
    double data_bytes = 0;
    /** CUDA context/runtime overhead (constant across codes). */
    double context_bytes = 0;
    /** Code-specific auxiliary allocations (carries, flags, buffers). */
    double auxiliary_bytes = 0;

    double total_bytes() const
    {
        return data_bytes + context_bytes + auxiliary_bytes;
    }
    double total_mb() const { return total_bytes() / (1024.0 * 1024.0); }
};

/**
 * Memory usage of @p algo computing @p sig on @p n words, mirroring the
 * Table-2 measurement setup (n = 67,108,864).
 */
MemoryUsage memory_usage(Algo algo, const Signature& sig, std::size_t n,
                         const HardwareModel& hw);

}  // namespace plr::perfmodel

#endif  // PLR_PERFMODEL_MEMORY_USAGE_H_
