#include "perfmodel/memory_usage.h"

#include <cmath>

#include "util/diag.h"

namespace plr::perfmodel {

namespace {

constexpr double kMb = 1024.0 * 1024.0;
/** Context/runtime overhead measured for every code incl. memcpy. */
constexpr double kContextBytes = 109.5 * kMb;
constexpr double kWord = 4.0;

}  // namespace

MemoryUsage
memory_usage(Algo algo, const Signature& sig, std::size_t n,
             const HardwareModel& hw)
{
    PLR_REQUIRE(algo_supports(algo, sig),
                to_string(algo) << " does not support " << sig.to_string());
    const double dn = static_cast<double>(n);
    const double k = static_cast<double>(sig.order());

    MemoryUsage usage;
    usage.context_bytes = kContextBytes;
    usage.data_bytes = 2.0 * dn * kWord;  // input + output arrays

    switch (algo) {
      case Algo::kMemcpy:
        break;
      case Algo::kPlr: {
        // Module/kernel code plus carries, flags, and factor arrays.
        PlannerLimits limits;
        limits.resident_blocks = hw.spec.max_resident_blocks();
        const KernelPlan plan = make_plan(sig, n, limits);
        const double chunks = static_cast<double>(plan.num_chunks());
        usage.auxiliary_bytes = 1.9 * kMb                      // code
                                + chunks * 2.0 * k * kWord     // carries
                                + chunks * 2.0 * kWord         // flags
                                + k * static_cast<double>(plan.m) * kWord;
        break;
      }
      case Algo::kCub:
        // One code base, temp storage for the decoupled look-back.
        usage.auxiliary_bytes =
            2.0 * kMb + (dn / 4096.0) * 2.0 * (k + 2.0) * kWord;
        break;
      case Algo::kSam:
        usage.auxiliary_bytes =
            1.0 * kMb + (dn / 4096.0) * 2.0 * (k + 2.0) * kWord;
        break;
      case Algo::kScan: {
        // Input and output both become (k x k matrix, k vector) pairs.
        const double pw = k * k + k;
        usage.data_bytes = 2.0 * dn * pw * kWord;
        usage.auxiliary_bytes =
            2.0 * kMb + (dn / 1024.0) * 2.0 * pw * kWord;  // chain state
        break;
      }
      case Algo::kAlg3: {
        // n-word intermediate plus per-32-column boundary buffers in
        // both directions (grows ~16 MB per order at n = 2^26).
        const double side = std::sqrt(dn);
        usage.auxiliary_bytes = 2.3 * kMb + dn * kWord +
                                2.0 * side * (side / 32.0) * k * kWord;
        break;
      }
      case Algo::kRec:
        // Local + global tile-carry buffers (~16.8 MB per order).
        usage.auxiliary_bytes = 0.2 * kMb + 2.0 * (dn / 32.0) * k * kWord;
        break;
    }
    return usage;
}

}  // namespace plr::perfmodel
