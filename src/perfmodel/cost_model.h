#ifndef PLR_PERFMODEL_COST_MODEL_H_
#define PLR_PERFMODEL_COST_MODEL_H_

/**
 * @file
 * Cost accounting: a per-run traffic/operation profile and its modeled
 * execution time.
 *
 * The model is a bottleneck (roofline-style) model: a kernel's time is
 * its fixed launch/pipeline overhead plus the maximum of its DRAM time,
 * its on-chip (L2) time, and its compute time, divided by the efficiency
 * and occupancy factors of the code. Serial phases (e.g. Rec's serial
 * carry combination) add on top. This reproduces the paper's shapes
 * because the evaluated codes differ precisely in these inputs: bytes
 * moved (2n vs re-reads vs O(k^2) blow-up), where the bytes are served
 * from (DRAM vs L2), per-element arithmetic, register pressure, and
 * fixed overheads.
 */

#include <cstddef>

#include "perfmodel/hardware_model.h"

namespace plr::perfmodel {

/** Mechanistic inputs of one kernel execution. */
struct TrafficProfile {
    /** Bytes read from / written to DRAM. */
    double dram_read_bytes = 0;
    double dram_write_bytes = 0;
    /** Additional reads served by the L2 cache (factor arrays, re-reads
     *  of data still resident on chip). */
    double l2_read_bytes = 0;
    /** Scalar multiply-add-equivalent operations. */
    double compute_ops = 0;
    /** Operations executed serially (no parallelism across the device). */
    double serial_ops = 0;
    /** Kernel launches (each pays the fixed overhead once). */
    double kernel_launches = 1;
    /** Fixed overhead per launch in seconds (code-specific). */
    double launch_overhead_s = 6e-6;
    /** Achieved-bandwidth efficiency of this code (1.0 = streaming). */
    double efficiency = 1.0;
    /**
     * Occupancy factor (register pressure). Scales the *memory* times
     * only: fewer resident warps means less latency hiding on loads and
     * stores, while the arithmetic pipelines stay busy on the warps that
     * remain.
     */
    double occupancy = 1.0;
    /** Scale on the achieved compute rate (per-code instruction mix). */
    double compute_scale = 1.0;
};

/** Modeled wall-clock time of the profile in seconds. */
double modeled_time_s(const HardwareModel& hw, const TrafficProfile& profile);

/** Throughput in words (elements) per second for an n-element run. */
double modeled_throughput(const HardwareModel& hw,
                          const TrafficProfile& profile, std::size_t n);

}  // namespace plr::perfmodel

#endif  // PLR_PERFMODEL_COST_MODEL_H_
