#include "perfmodel/l2_misses.h"

#include "util/diag.h"

namespace plr::perfmodel {

namespace {
constexpr double kWord = 4.0;
constexpr double kMb = 1024.0 * 1024.0;
}  // namespace

double
l2_read_miss_bytes(Algo algo, const Signature& sig, std::size_t n,
                   const HardwareModel& hw)
{
    PLR_REQUIRE(algo_supports(algo, sig),
                to_string(algo) << " does not support " << sig.to_string());
    const double dn = static_cast<double>(n);
    const double k = static_cast<double>(sig.order());
    const double data = dn * kWord;
    const bool fits_l2 = data <= static_cast<double>(hw.l2_capacity());

    switch (algo) {
      case Algo::kMemcpy:
        // The paper could not measure memcpy (it bypasses the L2).
        return 0.0;
      case Algo::kPlr:
        // Cold misses on the input plus carry/flag and uncached factor
        // traffic (a fraction of a megabyte).
        return data + 0.2 * kMb * k;
      case Algo::kCub: {
        const double passes =
            sig.classify() == SignatureClass::kHigherOrderPrefixSum ? k : 1.0;
        // Later passes re-read data just written; beyond the L2 those
        // reads miss again.
        return (fits_l2 ? data : passes * data) + 0.1 * kMb;
      }
      case Algo::kSam:
        return data + 0.3 * kMb;
      case Algo::kScan: {
        const double pw = k * k + k;
        return dn * pw * kWord + 0.3 * kMb * pw / 2.0;
      }
      case Algo::kAlg3: {
        // Reads the data twice (causal + anticausal) plus boundary and
        // runtime buffers that grow with the order.
        const double second = fits_l2 ? 0.0 : data;
        return data + second + (38.6 + 40.7 * (k - 1.0)) * kMb;
      }
      case Algo::kRec: {
        // Fix-up pass re-reads the input; the tile carries are written
        // and read back (2 * n/32 * k words).
        const double second = fits_l2 ? 0.0 : data;
        const double carries = 2.0 * (dn / 32.0) * k * kWord;
        return data + second + carries + 0.1 * kMb;
      }
    }
    PLR_PANIC("unreachable");
}

}  // namespace plr::perfmodel
