#include "perfmodel/algo_profiles.h"

#include <algorithm>
#include <cmath>

#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "util/diag.h"
#include "util/ring.h"

namespace plr::perfmodel {

namespace {

constexpr double kWord = 4.0;  // bytes per 32-bit element

bool
is_power_of_two(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Carry/flag side traffic of a look-back pipeline (bytes, both ways). */
double
chain_overhead_bytes(std::size_t chunks, std::size_t state_words)
{
    // Per chunk: local + global state (stores and one read by a later
    // chunk) plus two flags, all moving 32-byte sectors.
    const double sectors =
        2.0 * (2.0 * ((state_words * kWord + 31) / 32) + 2.0);
    return static_cast<double>(chunks) * sectors * 32.0;
}

/** Resolved factor-list behavior used by the PLR profile. */
struct ListCost {
    double eff_len = 0;     // offsets that do any work
    double period = 0;      // storage period
    double cached = 0;      // leading elements in shared memory
    bool constant = false;  // no loads at all
    double op_cost = 2;     // mult+add = 2, conditional add = 1
    double density = 1.0;   // fraction of nonzero factors (conditional adds
                            // only execute where the factor is 1)
};

template <typename Ring>
std::vector<ListCost>
resolve_lists(const Signature& sig, const KernelPlan& plan)
{
    const auto factors = CorrectionFactors<Ring>::generate(
        sig.recursive_part(), plan.m, plan.opts.flush_denormals);
    const auto props = analyze_factors(factors);
    std::vector<ListCost> lists(sig.order());
    for (std::size_t j = 1; j <= sig.order(); ++j) {
        const auto& lp = props.lists[j - 1];
        ListCost& lc = lists[j - 1];
        lc.eff_len = plan.opts.zero_tail_suppress
                         ? static_cast<double>(std::max<std::size_t>(
                               lp.effective_length, 1))
                         : static_cast<double>(plan.m);
        lc.period = plan.opts.periodic_compress
                        ? static_cast<double>(lp.period)
                        : static_cast<double>(plan.m);
        lc.constant = plan.opts.constant_fold && lp.all_equal;
        lc.cached = plan.opts.shared_factor_cache
                        ? static_cast<double>(std::min<std::size_t>(
                              plan.opts.shared_cache_elems, plan.m))
                        : 0.0;
        const bool conditional =
            plan.opts.conditional_add && lp.all_zero_one;
        lc.op_cost = conditional ? 1.0 : 2.0;
        if (conditional) {
            auto list = factors.list(j);
            std::size_t nonzero = 0;
            const std::size_t limit = static_cast<std::size_t>(lc.eff_len);
            for (std::size_t o = 0; o < limit && o < list.size(); ++o)
                if (!Ring::is_zero(list[o]))
                    ++nonzero;
            lc.density = limit > 0 ? static_cast<double>(nonzero) /
                                         static_cast<double>(limit)
                                   : 0.0;
        }
    }
    return lists;
}

/** PLR: single pass, hierarchical Phase 1 + pipelined Phase 2. */
TrafficProfile
plr_profile(const Signature& sig, std::size_t n, const HardwareModel& hw,
            const Optimizations& opts)
{
    PlannerLimits limits;
    limits.resident_blocks = hw.spec.max_resident_blocks();
    const KernelPlan plan = make_plan(sig, n, limits, opts);
    const std::size_t k = sig.order();
    const double m = static_cast<double>(plan.m);
    const double chunks = static_cast<double>(plan.num_chunks());
    const double dn = static_cast<double>(n);

    const std::vector<ListCost> lists =
        plan.is_integer ? resolve_lists<IntRing>(sig, plan)
                        : resolve_lists<FloatRing>(sig, plan);

    TrafficProfile profile;
    profile.dram_read_bytes = dn * kWord;
    profile.dram_write_bytes = dn * kWord;
    const double state_words = static_cast<double>(k);
    profile.dram_read_bytes += chain_overhead_bytes(
                                   plan.num_chunks(),
                                   static_cast<std::size_t>(state_words)) /
                               2;
    profile.dram_write_bytes += chain_overhead_bytes(
                                    plan.num_chunks(),
                                    static_cast<std::size_t>(state_words)) /
                                2;

    // Map operation (eq. 2).
    const double p_taps = static_cast<double>(sig.a().size());
    const bool has_map = !sig.is_pure_recursive();
    if (has_map) {
        profile.compute_ops += dn * p_taps * 2.0;
        // Boundary taps re-read a few neighbor inputs per chunk.
        profile.dram_read_bytes += chunks * (p_taps - 1) * 32.0;
    }

    // Shared-memory cache fill: every block reads the cached prefix of
    // each factor array once (served by L2, the arrays are small).
    for (const ListCost& lc : lists) {
        if (!lc.constant && lc.cached > 0) {
            const double fill =
                std::min({lc.cached, lc.period, lc.eff_len});
            profile.l2_read_bytes += chunks * fill * kWord;
        }
    }

    // Phase 1: merge levels with doubling span. Per level, half the
    // elements are corrected; per correction, each carry whose factor has
    // not decayed costs one fetch (shared or L2) and 1-2 ops.
    for (double s = 1; s < m; s *= 2) {
        for (const ListCost& lc : lists) {
            const double active = std::min(lc.eff_len, s) / s;  // fraction
            profile.compute_ops +=
                (dn / 2.0) * active * lc.op_cost * lc.density;
            if (!lc.constant) {
                const double span_len = std::min(s, lc.period);
                const double uncached =
                    std::max(0.0, std::min(span_len, lc.eff_len) - lc.cached);
                profile.l2_read_bytes += (dn / 2.0) * (uncached / s) * kWord;
            }
        }
    }
    // Phase 2: every element corrected with k factors at offsets [0, m).
    for (const ListCost& lc : lists) {
        const double active = std::min(lc.eff_len, m) / m;
        profile.compute_ops += dn * active * lc.op_cost * lc.density;
        if (!lc.constant) {
            const double stored = std::min(m, lc.period);
            const double uncached =
                std::max(0.0, std::min(stored, lc.eff_len) - lc.cached);
            profile.l2_read_bytes += dn * (uncached / m) * kWord;
        }
    }
    // Look-back carry correction: O(c k^2) per chunk, c small.
    profile.compute_ops += chunks * 2.0 * k * k * 2.0;

    profile.occupancy =
        plan.registers_per_thread >= 64 ? hw.occupancy_64_regs : 1.0;

    // Calibrated per-code efficiency (see EXPERIMENTS.md):
    //  - 0.97 baseline: PLR's untuned m/x heuristics leave a little
    //    bandwidth unused (Section 3 notes the heuristics are crude);
    //  - FIR taps cost a consistent ~17% (Figure 9);
    //  - non-power-of-two tuple sizes miss vectorization (Section 6.1.2).
    profile.efficiency = 0.97;
    if (sig.fir_taps() >= 1) {
        // The map operation costs a consistent ~17% regardless of the
        // order (Figure 9); it slows both the memory pipeline (extra
        // boundary loads) and the arithmetic (FIR taps per element).
        profile.efficiency *= 0.833;
        profile.compute_scale *= 0.833;
    }
    const std::size_t tuple = sig.tuple_size();
    if (tuple >= 3)
        profile.efficiency *= is_power_of_two(tuple) ? 0.89 : 0.875;

    profile.kernel_launches = 1;
    profile.launch_overhead_s = 8e-6;  // long-chunk pipeline ramp-up
    return profile;
}

/** CUB: single-pass scan; k full passes for order-k prefix sums. */
TrafficProfile
cub_profile(const Signature& sig, std::size_t n, const HardwareModel&)
{
    const auto cls = sig.classify();
    const double passes =
        cls == SignatureClass::kHigherOrderPrefixSum
            ? static_cast<double>(sig.order())
            : 1.0;
    const double s = cls == SignatureClass::kTuplePrefixSum
                         ? static_cast<double>(sig.tuple_size())
                         : 1.0;
    const double dn = static_cast<double>(n);
    const std::size_t chunks = (n + 4095) / 4096;

    TrafficProfile profile;
    profile.dram_read_bytes = passes * dn * kWord;
    profile.dram_write_bytes = passes * dn * kWord;
    profile.dram_read_bytes +=
        passes * chain_overhead_bytes(chunks, static_cast<std::size_t>(s)) / 2;
    profile.dram_write_bytes +=
        passes * chain_overhead_bytes(chunks, static_cast<std::size_t>(s)) / 2;
    profile.compute_ops = passes * dn * 2.0;
    // Vector-type scans lose efficiency as the tuple widens; CUB uses one
    // code base for every tuple size (Section 6.1.2).
    if (s >= 2)
        profile.efficiency = 0.743 / (1.0 + 0.062 * (s - 2.0));
    profile.kernel_launches = passes;
    profile.launch_overhead_s = 6e-6;
    return profile;
}

/** SAM: single pass; repeats computation (not I/O); auto-tuned x. */
TrafficProfile
sam_profile(const Signature& sig, std::size_t n, const HardwareModel&)
{
    const auto cls = sig.classify();
    const double k = static_cast<double>(sig.order());
    const double s = cls == SignatureClass::kTuplePrefixSum
                         ? static_cast<double>(sig.tuple_size())
                         : 1.0;
    const double dn = static_cast<double>(n);
    const std::size_t chunks = (n + 4095) / 4096;

    TrafficProfile profile;
    profile.dram_read_bytes =
        dn * kWord + chain_overhead_bytes(chunks, sig.order()) / 2;
    profile.dram_write_bytes =
        dn * kWord + chain_overhead_bytes(chunks, sig.order()) / 2;
    const double iterations =
        cls == SignatureClass::kHigherOrderPrefixSum ? k : 1.0;
    profile.compute_ops = dn * iterations + dn * 2.0 * k;
    // Repeated in-register computation and wider carry states cost
    // bandwidth headroom as the order/tuple grows (Section 6.1.3).
    if (cls == SignatureClass::kHigherOrderPrefixSum && k >= 2)
        profile.efficiency = 1.0 / (1.0 + 0.13 * k);
    else if (cls == SignatureClass::kTuplePrefixSum && s >= 2)
        profile.efficiency = 0.743 / (1.0 + 0.062 * (s - 2.0));
    // The install-time auto-tuner gives SAM the lowest ramp-up cost of
    // the single-pass codes (Sections 6.1.1-6.1.3).
    profile.kernel_launches = 1;
    profile.launch_overhead_s = 2.5e-6;
    return profile;
}

/** Scan: k x k matrix + k-vector pairs through a generic scan. */
TrafficProfile
scan_profile(const Signature& sig, std::size_t n, const HardwareModel&)
{
    const double k = static_cast<double>(sig.order());
    const double pw = k * k + k;
    const double dn = static_cast<double>(n);

    TrafficProfile profile;
    profile.dram_read_bytes = dn * pw * kWord;
    profile.dram_write_bytes = dn * pw * kWord;
    if (!sig.is_pure_recursive()) {
        // Map pass (PLR's map code) over the raw values.
        profile.dram_read_bytes += dn * kWord;
        profile.dram_write_bytes += dn * kWord;
        profile.kernel_launches += 1;
        profile.compute_ops +=
            dn * static_cast<double>(sig.a().size()) * 2.0;
    }
    // Two local sweeps of (A2*A1, A2*v1 + v2) per element.
    profile.compute_ops += 2.0 * dn * (k * k * k + k * k + k) * 2.0;
    profile.efficiency = 0.90;
    // The k x k pair state inflates register pressure (Section 6.1.2).
    profile.occupancy = sig.order() >= 2 ? 0.80 : 1.0;
    profile.launch_overhead_s = 6e-6;
    return profile;
}

/** Alg3: both horizontal directions, re-reading the data. */
TrafficProfile
alg3_profile(const Signature& sig, std::size_t n, const HardwareModel& hw)
{
    const double k = static_cast<double>(sig.order());
    const double dn = static_cast<double>(n);
    const double data_bytes = dn * kWord;

    TrafficProfile profile;
    profile.dram_read_bytes = data_bytes;   // causal pass
    profile.dram_write_bytes = 2.0 * data_bytes;  // intermediate + output
    // Anticausal pass re-reads the intermediate: from L2 while it fits,
    // from DRAM beyond (the Section 6.5 observation).
    if (data_bytes <= static_cast<double>(hw.l2_capacity()))
        profile.l2_read_bytes += data_bytes;
    else
        profile.dram_read_bytes += data_bytes;
    profile.compute_ops = 2.0 * dn * (2.0 + 2.0 * k);
    profile.efficiency = 0.85 / (1.0 + 0.02 * (k - 1.0));
    profile.kernel_launches = 2;
    profile.launch_overhead_s = 5e-6;
    return profile;
}

/** Rec: tiled filters; fix-up pass re-reads the input; serial combine. */
TrafficProfile
rec_profile(const Signature& sig, std::size_t n, const HardwareModel& hw)
{
    const double k = static_cast<double>(sig.order());
    const double dn = static_cast<double>(n);
    const double data_bytes = dn * kWord;
    const double carry_bytes = 2.0 * (dn / 32.0) * k * kWord;

    TrafficProfile profile;
    profile.dram_read_bytes = data_bytes + carry_bytes;
    profile.dram_write_bytes = data_bytes + carry_bytes;
    // Fix-up pass re-reads the input: L2 while it fits, DRAM beyond —
    // this is why PLR starts outperforming Rec at one million entries
    // (Section 6.5).
    if (data_bytes <= static_cast<double>(hw.l2_capacity()))
        profile.l2_read_bytes += data_bytes;
    else
        profile.dram_read_bytes += data_bytes;
    profile.compute_ops = 2.0 * dn * (1.0 + 2.0 * k) + dn * 2.0 * k;
    // The serial carry combination contributes a per-row serial chain;
    // rows run in parallel, so only the per-row tile count serializes.
    const double rows = std::sqrt(dn);
    profile.serial_ops = (rows / 32.0) * k * k * 2.0;
    profile.efficiency = 0.78 / (1.0 + 0.015 * (k - 1.0));
    profile.kernel_launches = 3;
    profile.launch_overhead_s = 1.5e-6;
    return profile;
}

TrafficProfile
memcpy_profile(std::size_t n)
{
    TrafficProfile profile;
    profile.dram_read_bytes = static_cast<double>(n) * kWord;
    profile.dram_write_bytes = static_cast<double>(n) * kWord;
    profile.efficiency = 1.0;
    // The cheapest possible kernel: its ramp-up is the floor every other
    // code's overhead sits on, keeping memcpy an upper bound at every
    // size (Figure 1 shows no code above it anywhere).
    profile.launch_overhead_s = 2.5e-6;
    return profile;
}

}  // namespace

const char*
to_string(Algo algo)
{
    switch (algo) {
      case Algo::kMemcpy: return "memcpy";
      case Algo::kPlr: return "PLR";
      case Algo::kCub: return "CUB";
      case Algo::kSam: return "SAM";
      case Algo::kScan: return "Scan";
      case Algo::kAlg3: return "Alg3";
      case Algo::kRec: return "Rec";
    }
    return "?";
}

bool
algo_supports(Algo algo, const Signature& sig)
{
    switch (algo) {
      case Algo::kMemcpy:
        return true;
      case Algo::kPlr:
      case Algo::kScan:
        return sig.order() >= 1;
      case Algo::kCub:
      case Algo::kSam:
        switch (sig.classify()) {
          case SignatureClass::kPrefixSum:
          case SignatureClass::kTuplePrefixSum:
          case SignatureClass::kHigherOrderPrefixSum:
            return true;
          default:
            return false;
        }
      case Algo::kAlg3:
      case Algo::kRec:
        // Neither supports more than one non-recursive coefficient
        // (Section 6.2.2).
        return sig.order() >= 1 && sig.a().size() == 1;
    }
    return false;
}

std::size_t
algo_max_elements(Algo algo, const Signature& sig, const HardwareModel& hw)
{
    const std::size_t four_gb_words = std::size_t{1} << 30;
    switch (algo) {
      case Algo::kMemcpy:
      case Algo::kPlr:
      case Algo::kCub:
      case Algo::kSam:
        return four_gb_words;
      case Algo::kScan: {
        // Input and output pair arrays must fit in device memory.
        const std::size_t pw = sig.order() * sig.order() + sig.order();
        const std::size_t per_elem = 2 * pw * 4 + 8;
        std::size_t max_n = hw.spec.dram_bytes / per_elem;
        // Round down to a power of two as the sweeps use.
        std::size_t pow2 = 1;
        while (pow2 * 2 <= max_n && pow2 * 2 <= four_gb_words)
            pow2 *= 2;
        return pow2;
      }
      case Algo::kAlg3:
        return std::size_t{1} << 29;  // 2 GB of 32-bit words
      case Algo::kRec:
        return std::size_t{1} << 28;  // 1 GB
    }
    return 0;
}

TrafficProfile
make_profile(Algo algo, const Signature& sig, std::size_t n,
             const HardwareModel& hw, const Optimizations& plr_opts)
{
    PLR_REQUIRE(algo_supports(algo, sig),
                to_string(algo) << " does not support " << sig.to_string());
    switch (algo) {
      case Algo::kMemcpy: return memcpy_profile(n);
      case Algo::kPlr: return plr_profile(sig, n, hw, plr_opts);
      case Algo::kCub: return cub_profile(sig, n, hw);
      case Algo::kSam: return sam_profile(sig, n, hw);
      case Algo::kScan: return scan_profile(sig, n, hw);
      case Algo::kAlg3: return alg3_profile(sig, n, hw);
      case Algo::kRec: return rec_profile(sig, n, hw);
    }
    PLR_PANIC("unreachable");
}

double
algo_throughput(Algo algo, const Signature& sig, std::size_t n,
                const HardwareModel& hw, const Optimizations& plr_opts)
{
    if (n > algo_max_elements(algo, sig, hw))
        return 0.0;
    return modeled_throughput(hw, make_profile(algo, sig, n, hw, plr_opts),
                              n);
}

std::size_t
crossover_size(Algo a, Algo b, const Signature& sig, const HardwareModel& hw)
{
    for (int e = 14; e <= 30; ++e) {
        const std::size_t n = std::size_t{1} << e;
        const double ta = algo_throughput(a, sig, n, hw);
        const double tb = algo_throughput(b, sig, n, hw);
        if (ta == 0.0 || tb == 0.0)
            break;  // one of the codes no longer supports this size
        if (ta > tb)
            return n;
    }
    return 0;
}

}  // namespace plr::perfmodel
