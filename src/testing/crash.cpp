#include "testing/crash.h"

#include <algorithm>
#include <sstream>
#include <type_traits>

#include "kernels/serial.h"
#include "kernels/stream.h"
#include "util/compare.h"
#include "util/diag.h"
#include "util/rng.h"

namespace plr::testing {

const char*
to_string(CheckpointTamper tamper)
{
    switch (tamper) {
      case CheckpointTamper::kTruncate: return "truncate";
      case CheckpointTamper::kBitFlip: return "bitflip";
    }
    return "unknown";
}

CrashPlan
make_crash_plan(std::uint64_t seed, std::uint64_t num_segments)
{
    PLR_REQUIRE(num_segments >= 1, "a crash plan needs at least one segment");
    CrashPlan plan;
    plan.seed = seed;
    // The kill point walks the boundaries directly with the seed so that
    // consecutive seeds cover every segment boundary; the rest of the
    // plan draws from the mixed generator.
    plan.kill_after_segments = 1 + seed % num_segments;
    Rng rng(seed ^ 0xc8a5'7ed1'0b5c'9f3dull);
    plan.mid_write = (rng.next_u64() & 1) != 0;
    plan.tamper = (rng.next_u64() & 1) != 0 ? CheckpointTamper::kBitFlip
                                            : CheckpointTamper::kTruncate;
    return plan;
}

std::vector<std::uint8_t>
tamper_checkpoint(std::span<const std::uint8_t> bytes, CheckpointTamper tamper,
                  std::uint64_t seed)
{
    PLR_REQUIRE(!bytes.empty(), "cannot tamper an empty checkpoint");
    Rng rng(seed ^ 0x5d31'a9c4'77e2'6b08ull);
    std::vector<std::uint8_t> damaged(bytes.begin(), bytes.end());
    switch (tamper) {
      case CheckpointTamper::kTruncate: {
        // Strict prefix: a torn write persisted only the first part.
        const auto keep = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
        damaged.resize(keep);
        break;
      }
      case CheckpointTamper::kBitFlip: {
        const auto bit = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(bytes.size()) * 8 - 1));
        damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        break;
      }
    }
    return damaged;
}

template <typename Ring>
CrashReport
crash_and_resume(const Signature& sig, const kernels::KernelInfo* kernel,
                 std::span<const typename Ring::value_type> input,
                 std::uint64_t crash_seed, const CrashTrialOptions& options)
{
    using V = typename Ring::value_type;
    PLR_REQUIRE(options.segment_len >= 1, "segment length must be positive");
    PLR_REQUIRE(options.checkpoint_every >= 1,
                "checkpoint period must be positive");
    const std::size_t n = input.size();
    const std::uint64_t num_segments =
        (n + options.segment_len - 1) / options.segment_len;
    PLR_REQUIRE(num_segments >= 1, "a crash trial needs a non-empty input");

    CrashReport report;
    report.plan = make_crash_plan(crash_seed, num_segments);

    // First life: feed segments, retaining every completed checkpoint
    // write (a real deployment would rotate files; bytes stand in for
    // fsync'd files).
    kernels::StreamSession<Ring> session(sig, kernel, options.run);
    std::vector<V> produced;
    produced.reserve(n);
    std::vector<std::vector<std::uint8_t>> durable;
    for (std::uint64_t s = 0; s < report.plan.kill_after_segments; ++s) {
        const std::size_t base = static_cast<std::size_t>(s) *
                                 options.segment_len;
        const std::size_t len = std::min(options.segment_len, n - base);
        const auto out = session.feed(input.subspan(base, len));
        produced.insert(produced.end(), out.begin(), out.end());
        const bool due = (s + 1) % options.checkpoint_every == 0;
        if (due && s + 1 < report.plan.kill_after_segments)
            durable.push_back(
                kernels::serialize_checkpoint(session.checkpoint()));
    }
    // The kill point: a mid-write crash leaves a damaged newest file; a
    // clean kill at a period boundary leaves an intact one.
    const bool due_at_kill =
        report.plan.kill_after_segments % options.checkpoint_every == 0;
    if (report.plan.mid_write) {
        const auto bytes =
            kernels::serialize_checkpoint(session.checkpoint());
        durable.push_back(
            tamper_checkpoint(bytes, report.plan.tamper, crash_seed));
    } else if (due_at_kill) {
        durable.push_back(kernels::serialize_checkpoint(session.checkpoint()));
    }
    report.checkpoints_written =
        durable.size() - (report.plan.mid_write ? 1 : 0);

    // Recovery: newest checkpoint first. The damaged file MUST be
    // rejected with a typed error; every intact file MUST load.
    std::optional<kernels::Checkpoint> good;
    std::size_t idx = durable.size();
    while (idx-- > 0) {
        const bool is_tampered =
            report.plan.mid_write && idx + 1 == durable.size();
        try {
            auto ckpt = kernels::parse_checkpoint(durable[idx]);
            kernels::validate_checkpoint_for(ckpt, sig,
                                             kernels::domain_of<Ring>());
            if (is_tampered) {
                std::ostringstream msg;
                msg << "tampered checkpoint (" << to_string(report.plan.tamper)
                    << ", seed " << crash_seed
                    << ") was accepted by the loader";
                report.failure = msg.str();
                return report;
            }
            good = std::move(ckpt);
            break;
        } catch (const kernels::CheckpointError& e) {
            if (!is_tampered) {
                report.failure =
                    std::string("intact checkpoint rejected: ") + e.what();
                return report;
            }
            report.rejected_kind = e.kind();
        }
    }

    // Second life: resume from the newest good state (or the stream
    // start) and replay the rest of the input.
    const std::uint64_t pos = good.has_value() ? good->elements : 0;
    PLR_ASSERT(pos <= produced.size(),
               "checkpoint position " << pos << " beyond produced prefix");
    report.resumed_elements = pos;
    kernels::StreamSession<Ring> resumed =
        good.has_value()
            ? kernels::StreamSession<Ring>::resume_from(*good, sig, kernel,
                                                        options.run)
            : kernels::StreamSession<Ring>(sig, kernel, options.run);
    std::vector<V> stitched(produced.begin(),
                            produced.begin() +
                                static_cast<std::ptrdiff_t>(pos));
    for (std::size_t base = static_cast<std::size_t>(pos); base < n;
         base += options.segment_len) {
        const std::size_t len = std::min(options.segment_len, n - base);
        const auto out = resumed.feed(input.subspan(base, len));
        stitched.insert(stitched.end(), out.begin(), out.end());
    }

    // The stitched stream must match the one-shot serial reference:
    // exactly in the int ring, within the conformance gates for floats.
    const auto expected = kernels::serial_recurrence<Ring>(sig, input);
    ValidationResult v;
    if constexpr (std::is_same_v<Ring, IntRing>)
        v = validate_exact(expected, stitched);
    else
        v = validate_ulp(expected, stitched, options.max_ulps,
                         options.float_tolerance);
    if (!v.ok) {
        std::ostringstream msg;
        msg << "stitched stream diverged from the serial reference after "
               "resuming at element "
            << pos << ": " << v.describe();
        report.failure = msg.str();
    }
    return report;
}

template CrashReport
crash_and_resume<IntRing>(const Signature&, const kernels::KernelInfo*,
                          std::span<const std::int32_t>, std::uint64_t,
                          const CrashTrialOptions&);
template CrashReport
crash_and_resume<FloatRing>(const Signature&, const kernels::KernelInfo*,
                            std::span<const float>, std::uint64_t,
                            const CrashTrialOptions&);
template CrashReport
crash_and_resume<TropicalRing>(const Signature&, const kernels::KernelInfo*,
                               std::span<const float>, std::uint64_t,
                               const CrashTrialOptions&);

}  // namespace plr::testing
