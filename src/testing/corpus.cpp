#include "testing/corpus.h"

#include <algorithm>
#include <sstream>

#include "dsp/filter_design.h"
#include "dsp/signal.h"

namespace plr::testing {

namespace {

/** Expand the denominator prod_i (1 - p_i u) into feedback coefficients. */
std::vector<double>
feedback_from_poles(const std::vector<double>& poles)
{
    std::vector<double> denom = {1.0};
    for (double pole : poles) {
        std::vector<double> next(denom.size() + 1, 0.0);
        for (std::size_t j = 0; j < denom.size(); ++j) {
            next[j] += denom[j];
            next[j + 1] -= pole * denom[j];
        }
        denom = std::move(next);
    }
    std::vector<double> b(denom.size() - 1);
    for (std::size_t j = 1; j < denom.size(); ++j)
        b[j - 1] = -denom[j];
    if (b.back() == 0.0)
        b.back() = 0.01;  // keep the order as drawn
    return b;
}

/** splitmix64 step — derives independent child seeds from one seed. */
std::uint64_t
mix_seed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t z = seed + salt * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

std::vector<CorpusEntry>
table1_corpus()
{
    std::vector<CorpusEntry> corpus;
    auto add = [&](const char* name, Signature sig, Domain domain,
                   bool stable) {
        corpus.push_back(
            {std::string("table1/") + name, std::move(sig), domain, stable});
    };
    add("prefix-sum", dsp::prefix_sum(), Domain::kInt, false);
    add("2-tuple-prefix-sum", dsp::tuple_prefix_sum(2), Domain::kInt, false);
    add("3-tuple-prefix-sum", dsp::tuple_prefix_sum(3), Domain::kInt, false);
    add("2nd-order-prefix-sum", dsp::higher_order_prefix_sum(2), Domain::kInt,
        false);
    add("3rd-order-prefix-sum", dsp::higher_order_prefix_sum(3), Domain::kInt,
        false);
    add("1-stage-lowpass", dsp::lowpass(0.8, 1), Domain::kFloat, true);
    add("2-stage-lowpass", dsp::lowpass(0.8, 2), Domain::kFloat, true);
    add("3-stage-lowpass", dsp::lowpass(0.8, 3), Domain::kFloat, true);
    add("1-stage-highpass", dsp::highpass(0.8, 1), Domain::kFloat, true);
    add("2-stage-highpass", dsp::highpass(0.8, 2), Domain::kFloat, true);
    add("3-stage-highpass", dsp::highpass(0.8, 3), Domain::kFloat, true);
    // Float-domain variants of a few integral rows: integral signatures
    // are legal over float data, and this is the only way the prefix-sum
    // family kernels' float instantiations get differential coverage.
    add("prefix-sum@float", dsp::prefix_sum(), Domain::kFloat, false);
    add("2-tuple-prefix-sum@float", dsp::tuple_prefix_sum(2), Domain::kFloat,
        false);
    add("2nd-order-prefix-sum@float", dsp::higher_order_prefix_sum(2),
        Domain::kFloat, false);
    return corpus;
}

Signature
random_int_signature(Rng& rng)
{
    const std::size_t p = static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 4));
    std::vector<double> a(p + 1), b(k);
    do {
        for (auto& c : a)
            c = static_cast<double>(rng.uniform_int(-3, 3));
        a.back() = static_cast<double>(rng.uniform_int(1, 3));
    } while (a[0] == 0.0 && a.size() == 1);
    for (auto& c : b)
        c = static_cast<double>(rng.uniform_int(-3, 3));
    b.back() = static_cast<double>(rng.uniform_int(1, 3));
    return Signature(std::move(a), std::move(b));
}

Signature
random_stable_filter(Rng& rng)
{
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 3));
    std::vector<double> poles(k);
    for (auto& pole : poles)
        pole = rng.uniform_double(-0.95, 0.95);
    std::vector<double> a = {rng.uniform_double(0.1, 1.0)};
    if (rng.uniform_int(0, 1))
        a.push_back(rng.uniform_double(-1.0, 1.0));
    return Signature(std::move(a), feedback_from_poles(poles));
}

Signature
random_unstable_filter(Rng& rng)
{
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 2));
    std::vector<double> poles(k);
    for (auto& pole : poles) {
        const double magnitude = rng.uniform_double(1.001, 1.05);
        pole = rng.uniform_int(0, 1) ? magnitude : -magnitude;
    }
    std::vector<double> a = {rng.uniform_double(0.1, 1.0)};
    return Signature(std::move(a), feedback_from_poles(poles));
}

Signature
near_denormal_decay_filter(Rng& rng)
{
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 2));
    std::vector<double> poles(k);
    for (auto& pole : poles) {
        const double magnitude = rng.uniform_double(0.002, 0.02);
        pole = rng.uniform_int(0, 1) ? magnitude : -magnitude;
    }
    std::vector<double> a = {rng.uniform_double(0.5, 1.0)};
    return Signature(std::move(a), feedback_from_poles(poles));
}

Signature
periodic_factor_signature(Rng& rng)
{
    const std::size_t s = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const bool negated = s == 1 ? true : rng.uniform_int(0, 1) != 0;
    std::vector<double> b(s, 0.0);
    b.back() = negated ? -1.0 : 1.0;
    std::vector<double> a = {1.0};
    if (rng.uniform_int(0, 1))
        a.push_back(static_cast<double>(rng.uniform_int(-2, 2)));
    return Signature(std::move(a), std::move(b));
}

Signature
random_tropical_signature(Rng& rng)
{
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 3));
    std::vector<double> b(k);
    for (auto& decay : b)
        decay = -rng.uniform_double(0.05, 2.0);
    std::vector<double> a = {0.0};
    if (rng.uniform_int(0, 1))
        a.push_back(-rng.uniform_double(0.1, 1.0));
    return Signature::max_plus(std::move(a), std::move(b));
}

std::vector<CorpusEntry>
generated_corpus(std::uint64_t seed, std::size_t per_generator)
{
    struct Generator {
        const char* kind;
        Signature (*make)(Rng&);
        Domain domain;
        bool stable;
    };
    const Generator generators[] = {
        {"int", random_int_signature, Domain::kInt, false},
        {"stable", random_stable_filter, Domain::kFloat, true},
        {"unstable", random_unstable_filter, Domain::kFloat, false},
        {"denormal", near_denormal_decay_filter, Domain::kFloat, true},
        {"periodic", periodic_factor_signature, Domain::kInt, false},
        {"tropical", random_tropical_signature, Domain::kTropical, false},
    };

    std::vector<CorpusEntry> corpus;
    std::uint64_t salt = 1;
    for (const Generator& gen : generators) {
        for (std::size_t i = 0; i < per_generator; ++i) {
            const std::uint64_t child = mix_seed(seed, salt++);
            Rng rng(child);
            std::ostringstream name;
            name << "gen/" << gen.kind << "/" << std::hex << child;
            corpus.push_back(
                {name.str(), gen.make(rng), gen.domain, gen.stable});
        }
    }
    return corpus;
}

std::vector<CorpusEntry>
full_corpus(std::uint64_t seed, std::size_t per_generator)
{
    std::vector<CorpusEntry> corpus = table1_corpus();
    auto generated = generated_corpus(seed, per_generator);
    corpus.insert(corpus.end(), std::make_move_iterator(generated.begin()),
                  std::make_move_iterator(generated.end()));
    return corpus;
}

std::vector<CorpusEntry>
fault_corpus(std::uint64_t seed)
{
    std::vector<CorpusEntry> corpus;
    corpus.push_back(
        {"fault/prefix-sum-int", Signature({1.0}, {1.0}), Domain::kInt,
         false});
    corpus.push_back(
        {"fault/prefix-sum-float", Signature({1.0}, {1.0}), Domain::kFloat,
         false});
    corpus.push_back(
        {"fault/tuple2-int", Signature({1.0}, {0.0, 1.0}), Domain::kInt,
         false});
    corpus.push_back(
        {"fault/order3-int", Signature({1.0}, {1.0, -2.0, 1.0}),
         Domain::kInt, false});
    Rng rng(seed);
    corpus.push_back({"fault/near-denormal", near_denormal_decay_filter(rng),
                      Domain::kFloat, true});
    corpus.push_back({"fault/stable-lowpass", random_stable_filter(rng),
                      Domain::kFloat, true});
    return corpus;
}

std::vector<std::uint64_t>
default_fault_seeds(std::size_t count)
{
    // splitmix64 stream from a fixed base so the schedule is stable
    // across platforms and sessions (seed 0 is "faults off", never used).
    std::vector<std::uint64_t> seeds;
    std::uint64_t state = 0xFA171A7EDull;
    while (seeds.size() < count) {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        if (z != 0)
            seeds.push_back(z);
    }
    return seeds;
}

std::vector<std::size_t>
conformance_sizes(std::size_t chunk, std::size_t order)
{
    if (chunk == 0)
        chunk = 64;
    std::vector<std::size_t> sizes = {0, 1};
    if (order > 1)
        sizes.push_back(order - 1);  // n < k: outputs see only real history
    sizes.push_back(order);
    sizes.push_back(order + 1);
    if (chunk > 1)
        sizes.push_back(chunk - 1);
    sizes.push_back(chunk);      // n exactly one chunk
    sizes.push_back(chunk + 1);  // partial trailing chunk
    sizes.push_back(2 * chunk + 17);
    sizes.push_back(5 * chunk + 3);  // several chunks, non-multiple
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    return sizes;
}

std::vector<std::int32_t>
conformance_input_int(std::size_t n, std::uint64_t seed)
{
    return dsp::random_ints(n, seed);
}

std::vector<float>
conformance_input_float(Domain domain, std::size_t n, std::uint64_t seed)
{
    if (domain == Domain::kTropical)
        return dsp::random_floats(n, seed, -5.0f, 5.0f);
    return dsp::random_floats(n, seed);
}

}  // namespace plr::testing
