#ifndef PLR_TESTING_ORACLE_H_
#define PLR_TESTING_ORACLE_H_

/**
 * @file
 * The differential conformance oracle (docs/TESTING.md).
 *
 * Runs any registered kernel against the serial reference over the
 * signature corpus and an input-size schedule that includes every
 * degenerate shape (n = 0, n = 1, n < k, n exactly one chunk, partial
 * trailing chunks). Integer results must match bit-for-bit (wrap-around
 * arithmetic is a ring homomorphism); float results are held to a
 * ULP-aware gate with the paper's 1e-3 discrepancy bound as fallback.
 *
 * On top of the differential check, metamorphic properties of the linear
 * operator are verified — properties that hold even where no reference
 * value is obvious:
 *
 *  - homogeneity      K(c*x) == c*K(x)   (exact in the int ring; c = 2 is
 *                     an exact scaling in floats; c acts additively in
 *                     the max-plus semiring)
 *  - superposition    K(x + y) == K(x) + K(y)   (+ is max in max-plus)
 *  - chunk-boundary   the same kernel with a different chunk size /
 *    invariance       thread count computes the same sequence
 *  - impulse decay    a stable filter's impulse response keeps decaying
 *                     (catches zero-tail/denormal-flush bugs)
 *
 * Every failure is reported as a one-line reproducer string that
 * examples/conformance_tool.cpp can replay and shrink (see repro.h).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/signature.h"
#include "kernels/registry.h"
#include "testing/corpus.h"

namespace plr::testing {

/** The individual conformance checks. */
enum class Check {
    kDifferential,
    kChunkInvariance,
    kHomogeneity,
    kSuperposition,
    kImpulseDecay,
    /**
     * Streaming durability: run the kernel segment-at-a-time with
     * periodic checkpoints, kill it at a seed-chosen point (possibly
     * tearing the in-flight checkpoint write), recover from the newest
     * checkpoint that verifies, and require the stitched output to
     * match the one-shot serial reference (testing/crash.h,
     * docs/STREAMING.md). Enabled by OracleOptions::checkpoint_every.
     */
    kCheckpointResume,
    /**
     * Cross-request fused batching (kernels/batched.h, docs/SERVER.md):
     * derive a multi-tenant segment layout from
     * OracleOptions::batch_seed, interleave the tenants' streams into
     * one fused array, launch it once through batched_segments_cpu with
     * per-segment carry seeds, and require every tenant's stitched
     * output to match a one-shot serial run of that tenant's stream
     * alone (bit-identical for ints, ULP-gated for floats). Proves
     * carry isolation between tenants and seeded session resume inside
     * fused launches. Enabled by OracleOptions::batch_seed.
     */
    kBatchedSegments,
    /**
     * Bound dominance against the plan-time static analyzer
     * (docs/STATIC_ANALYSIS.md): the observed wide-precision output must
     * stay inside the proven growth envelope; an int result under a
     * proven-safe verdict must equal the unwrapped wide value exactly; a
     * float result must diverge from the serial reference by no more
     * than the a-priori forward-error bound whenever one is available;
     * and a proven-overflow verdict must carry a non-vacuous witness.
     */
    kBoundDominance,
};

/** Stable lowercase name used in reproducer strings. */
const char* to_string(Check c);

/** Parse a check name; throws FatalError on unknown names. */
Check parse_check(const std::string& name);

/** Oracle tuning. */
struct OracleOptions {
    /** Paper tolerance: fallback discrepancy bound for float results. */
    double float_tolerance = 1e-3;
    /** Primary float gate, in units in the last place. */
    std::uint64_t max_ulps = 512;
    /** Run the metamorphic checks in addition to the differential one. */
    bool metamorphic = true;
    /** Base chunk size handed to chunk-sensitive kernels. */
    std::size_t chunk = 64;
    /** Base thread count for CPU backends (0 = hardware concurrency). */
    std::size_t threads = 0;
    /**
     * Input-size cap for non-stable float recurrences. Their outputs
     * grow, so relative float error accumulates with n (and truly
     * unstable signatures eventually overflow); past a couple hundred
     * elements the honest implementations drift apart by more than the
     * paper's 1e-3, which says nothing about correctness.
     */
    std::size_t unstable_max_n = 256;
    /** Seed the per-case input seeds are derived from. */
    std::uint64_t input_seed = 0xD1FFC0DEull;
    /**
     * Fault-injection seed passed through to the simulated-GPU kernels
     * (0 = faults off); the fault-matrix job sweeps this over 16 seeds.
     */
    std::uint64_t fault_seed = 0;
    /** Spin-watchdog limit for GPU kernels (0 = device default). */
    std::uint64_t spin_watchdog = 0;
    /** Run the happens-before race detector on GPU kernels; a violating
        launch fails the case with a replayable reproducer (race= token). */
    bool race_detect = false;
    /** Run the look-back protocol invariant checker (ditto). */
    bool invariants = false;
    /** Arm SDC bit-flip injection on GPU kernels (with fault_seed;
        docs/FAULTS.md). Reproducer lines carry an sdc= token. */
    bool sdc = false;
    /** Run the ABFT verify-and-repair pass on each GPU result; detected
        corruption is repaired or fails the case with a typed report —
        never a silent differential mismatch. */
    bool verify = false;
    /**
     * Enable the checkpoint-resume check with this checkpoint period in
     * segments (0 = off). Segments are OracleOptions::chunk elements
     * long. Reproducer lines carry it as the ckpt= token.
     */
    std::size_t checkpoint_every = 0;
    /** Crash-plan seed for the checkpoint-resume check (crash= token);
        the checkpoint matrix sweeps it so kill points cover every
        segment boundary. */
    std::uint64_t crash_seed = 0;
    /**
     * Enable the batched-segments check with this layout seed (0 =
     * off): it decides the tenant count, segment lengths (including
     * empty ones), and the tenant interleaving. Reproducer lines carry
     * it as the batch= token.
     */
    std::uint64_t batch_seed = 0;
    /** Explicit size schedule; empty = conformance_sizes(chunk, order). */
    std::vector<std::size_t> sizes;
    /**
     * Append each failure's reproducer line to this file; empty = use
     * $PLR_REPRO_LOG when set (how CI collects the artifact).
     */
    std::string repro_log;
};

/** One failing conformance case, fully replayable. */
struct ConformanceFailure {
    std::string kernel;
    std::string entry;
    Domain domain = Domain::kInt;
    Signature sig;
    Check check = Check::kDifferential;
    std::size_t n = 0;
    kernels::RunOptions run;
    std::uint64_t input_seed = 0;
    std::string detail;

    /** The one-line reproducer string (format in docs/TESTING.md). */
    std::string reproducer() const;
};

/** Aggregate outcome of a conformance run. */
struct ConformanceReport {
    std::size_t kernels_checked = 0;
    std::size_t cases_run = 0;
    std::size_t cases_skipped = 0;
    std::vector<ConformanceFailure> failures;

    bool ok() const { return failures.empty(); }
    /** Human-readable one-paragraph summary plus reproducer lines. */
    std::string summary() const;
};

/**
 * Evaluate one (kernel, signature, check, n) case. Returns the failure,
 * or nullopt when the case passes. This is the primitive both the full
 * sweep and the reproducer replay/shrink loop are built on.
 */
std::optional<ConformanceFailure> run_case(
    const kernels::KernelInfo& kernel, const std::string& entry_name,
    const Signature& sig, Domain domain, Check check, std::size_t n,
    const kernels::RunOptions& run, std::uint64_t input_seed,
    const OracleOptions& opts = {});

/**
 * Run the full differential + metamorphic sweep of @p kernels over
 * @p corpus. Reference entries (KernelInfo::is_reference) are used as the
 * oracle, not as subjects. Failures are also appended to the reproducer
 * log when one is configured.
 */
ConformanceReport run_conformance(
    const std::vector<kernels::KernelInfo>& kernels,
    const std::vector<CorpusEntry>& corpus, const OracleOptions& opts = {});

}  // namespace plr::testing

#endif  // PLR_TESTING_ORACLE_H_
