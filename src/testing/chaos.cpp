#include "testing/chaos.h"

#include <algorithm>

#include "server/error.h"
#include "util/rng.h"

namespace plr::testing {

namespace {

/** Distinct stream constants so each decision has its own Rng stream
    (the crash.cpp idiom: seed ^ purpose-constant). */
constexpr std::uint64_t kFaultStream = 0x7a3d'91c6'e5f0'2b84ull;
constexpr std::uint64_t kCutStream = 0x1f66'0ac2'9d38'57ebull;
constexpr std::uint64_t kLorisStream = 0xb420'73fe'618c'a95dull;
constexpr std::uint64_t kGarbageStream = 0x93e8'5b01'c7d4'2f6aull;
constexpr std::uint64_t kFloodStream = 0x2c5f'ed83'0b97'416dull;
constexpr std::uint64_t kJitterStream = 0x60d9'3af7'84e1'bc25ull;

Rng
stream_rng(std::uint64_t seed, std::uint64_t stream, std::uint64_t index)
{
    // splitmix64-seeded xoshiro: mixing the index in multiplicatively
    // keeps neighboring indices decorrelated.
    return Rng(seed ^ stream ^ (index * 0x9e37'79b9'7f4a'7c15ull));
}

}  // namespace

const char*
to_string(ChaosFault fault)
{
    switch (fault) {
      case ChaosFault::kNone: return "none";
      case ChaosFault::kDisconnectMidFrame: return "disconnect";
      case ChaosFault::kSlowLoris: return "slow-loris";
      case ChaosFault::kGarbageFlood: return "garbage-flood";
    }
    return "unknown";
}

ChaosFault
ChaosPlan::fault_for(std::uint64_t request_index) const
{
    Rng rng = stream_rng(seed, kFaultStream, request_index);
    if (rng.uniform_double() >= fault_rate)
        return ChaosFault::kNone;
    switch (rng.uniform_int(0, 2)) {
      case 0: return ChaosFault::kDisconnectMidFrame;
      case 1: return ChaosFault::kSlowLoris;
      default: return ChaosFault::kGarbageFlood;
    }
}

std::size_t
ChaosPlan::cut_point(std::uint64_t request_index,
                     std::size_t total_bytes) const
{
    if (total_bytes <= 1)
        return 1;
    Rng rng = stream_rng(seed, kCutStream, request_index);
    return static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(total_bytes) - 1));
}

std::vector<std::size_t>
ChaosPlan::loris_chunks(std::uint64_t request_index,
                        std::size_t total_bytes) const
{
    Rng rng = stream_rng(seed, kLorisStream, request_index);
    std::vector<std::size_t> chunks;
    std::size_t remaining = total_bytes;
    while (remaining > 0) {
        const std::size_t take = std::min<std::size_t>(
            remaining, static_cast<std::size_t>(rng.uniform_int(1, 8)));
        chunks.push_back(take);
        remaining -= take;
    }
    return chunks;
}

std::vector<std::uint8_t>
ChaosPlan::garbage_frame(std::uint64_t request_index) const
{
    Rng rng = stream_rng(seed, kGarbageStream, request_index);
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(1, 512));
    std::vector<std::uint8_t> frame(len);
    for (auto& b : frame)
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Half the floods masquerade as requests: the right magic with a
    // garbage body exercises the deep validators, not just the magic
    // check.
    if (len >= 4 && rng.uniform_double() < 0.5) {
        frame[0] = 'P';
        frame[1] = 'L';
        frame[2] = 'R';
        frame[3] = 'Q';
    }
    return frame;
}

std::size_t
ChaosPlan::flood_count(std::uint64_t request_index) const
{
    Rng rng = stream_rng(seed, kFloodStream, request_index);
    return static_cast<std::size_t>(rng.uniform_int(1, 4));
}

ChaosPlan
make_chaos_plan(std::uint64_t seed, double fault_rate)
{
    ChaosPlan plan;
    plan.seed = seed;
    plan.fault_rate = fault_rate;
    return plan;
}

std::uint64_t
backoff_ms(const RetryPolicy& policy, std::size_t attempt,
           std::uint64_t seed, std::uint64_t retry_after_hint_ms)
{
    // Capped exponential: base * 2^(attempt-1), saturating at cap.
    std::uint64_t backoff = policy.base_ms;
    for (std::size_t i = 1; i < attempt && backoff < policy.cap_ms; ++i)
        backoff *= 2;
    backoff = std::min(backoff, policy.cap_ms);
    // Deterministic jitter in [0, backoff/2]: decorrelates a retrying
    // herd without losing replayability.
    Rng rng = stream_rng(seed, kJitterStream, attempt);
    const std::uint64_t jitter =
        backoff > 1 ? rng.next_u64() % (backoff / 2 + 1) : 0;
    // The server's hint floors the result: never retry earlier than
    // the server asked.
    return std::max(retry_after_hint_ms, backoff + jitter);
}

bool
retryable_status(std::uint32_t status)
{
    using plr::server::ServerErrorKind;
    using plr::server::status_of;
    return status == status_of(ServerErrorKind::kOverloaded) ||
           status == status_of(ServerErrorKind::kRetryAfter) ||
           status == status_of(ServerErrorKind::kDeadlineExceeded);
}

}  // namespace plr::testing
