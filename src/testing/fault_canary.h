#ifndef PLR_TESTING_FAULT_CANARY_H_
#define PLR_TESTING_FAULT_CANARY_H_

/**
 * @file
 * The fault harness's own canary: a look-back kernel with a deliberate
 * protocol bug.
 *
 * "wedge_canary" is a prefix-sum kernel built on LookbackChain that is
 * correct under benign execution — but when the device carries a
 * FaultPlan, every chunk flips a deterministic coin
 * (FaultPlan::coin(kWedgeCanarySalt, chunk, kWedgeCanaryProbability)) and
 * a hit makes the chunk die without publishing either its local or its
 * global carry, exactly the protocol break a crashed block would cause.
 * Every successor then wedges, the watchdog trips, and the forensic dump
 * must name the dead chunk (ForensicDump::suspect_chunk). Because the
 * coin is keyed on the fault seed and the chunk index alone, tests can
 * predict the victim for any seed (see tests/fault_injection_test.cpp).
 */

#include <cstdint>

#include "kernels/registry.h"

namespace plr::testing {

/** Salt for the victim-selection coin (tests replicate the draw). */
inline constexpr std::uint64_t kWedgeCanarySalt = 0x57ed6eull;

/** Per-chunk probability that the canary chunk dies unpublished. */
inline constexpr double kWedgeCanaryProbability = 0.2;

/** Look-back window the canary's chain uses. */
inline constexpr std::size_t kWedgeCanaryWindow = 8;

/**
 * The sabotaged look-back kernel ("wedge_canary"): prefix-sum family,
 * int and float domains. Correct with RunOptions::fault_seed == 0.
 */
kernels::KernelInfo wedge_canary_kernel();

/**
 * Lowest chunk that dies under @p fault_seed with @p num_chunks chunks
 * (BlockForensics::kNone when every coin misses). A wedge needs the
 * victim to have at least one successor chunk.
 */
std::size_t wedge_canary_victim(std::uint64_t fault_seed,
                                std::size_t num_chunks);

}  // namespace plr::testing

#endif  // PLR_TESTING_FAULT_CANARY_H_
