#ifndef PLR_TESTING_REPRO_H_
#define PLR_TESTING_REPRO_H_

/**
 * @file
 * One-line reproducer strings for conformance failures, with replay and
 * input shrinking (docs/TESTING.md).
 *
 * Format (single line, space-separated key=value tokens):
 *
 *   plr-repro:v1 kernel=plr_sim domain=int check=differential
 *     a=1,2 b=2,-1 n=1000 chunk=64 threads=0 seed=3735928559
 *
 * Coefficient lists are comma-separated and printed with enough digits
 * to round-trip doubles exactly; `domain=tropical` marks max-plus
 * signatures. The input is regenerated from (seed, n), so the tuple is
 * the complete failing case.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "core/signature.h"
#include "kernels/registry.h"
#include "testing/oracle.h"

namespace plr::testing {

/** A parsed reproducer: everything needed to re-run one case. */
struct ReproCase {
    std::string kernel;
    Domain domain = Domain::kInt;
    Check check = Check::kDifferential;
    std::vector<double> a;
    std::vector<double> b;
    std::size_t n = 0;
    kernels::RunOptions run;
    std::uint64_t input_seed = 0;

    /** Rebuild the signature (max_plus for the tropical domain). */
    Signature signature() const;
};

/** Encode a failure as its reproducer line. */
std::string encode_reproducer(const ConformanceFailure& failure);

/** Parse a reproducer line; throws FatalError on malformed input. */
ReproCase parse_reproducer(const std::string& line);

/**
 * Re-run the case against @p kernels (must contain repro.kernel).
 * Returns the failure, or nullopt when the case now passes.
 */
std::optional<ConformanceFailure> replay(
    const ReproCase& repro, const std::vector<kernels::KernelInfo>& kernels,
    const OracleOptions& opts = {});

/**
 * Bisect n down to a minimal failing input size: repeatedly replays the
 * case at smaller n until the smallest n that still fails (with the
 * next-smaller probe passing) is found. Requires the original case to
 * fail. @p replays, when given, receives the number of replay runs.
 */
ReproCase shrink(const ReproCase& repro,
                 const std::vector<kernels::KernelInfo>& kernels,
                 const OracleOptions& opts = {},
                 std::size_t* replays = nullptr);

}  // namespace plr::testing

#endif  // PLR_TESTING_REPRO_H_
