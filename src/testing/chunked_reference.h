#ifndef PLR_TESTING_CHUNKED_REFERENCE_H_
#define PLR_TESTING_CHUNKED_REFERENCE_H_

/**
 * @file
 * A second, independent implementation of the paper's chunk-and-correct
 * algorithm, written directly against core/correction_factors.h with no
 * simulator, no threads and no optimizations: split the input into
 * chunks, run each chunk's recurrence with zero history, then fix the
 * chunks up left-to-right with the n-nacci correction factors.
 *
 * Two registry entries are built on it:
 *
 *  - "chunked_ref": the honest evaluator — a cross-check implementation
 *    that shares no code path with the kernels under test;
 *  - "broken_factor": the same evaluator with ONE mutated correction
 *    factor (F_1[7] bumped by the ring's one). The conformance harness
 *    must catch it and emit a replayable, shrinkable reproducer — this is
 *    the harness's own canary (docs/TESTING.md).
 */

#include <vector>

#include "kernels/registry.h"

namespace plr::testing {

/** The honest chunked evaluator as a registry entry ("chunked_ref"). */
kernels::KernelInfo chunked_reference_kernel();

/** The sabotaged evaluator ("broken_factor"); int and float domains. */
kernels::KernelInfo broken_factor_kernel();

/**
 * The kernel set the conformance suite runs: the production registry
 * plus the chunked cross-check, plus the canary when asked.
 */
std::vector<kernels::KernelInfo> conformance_kernels(
    bool include_broken = false);

}  // namespace plr::testing

#endif  // PLR_TESTING_CHUNKED_REFERENCE_H_
