#include "testing/repro.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/diag.h"

namespace plr::testing {

namespace {

constexpr const char* kMagic = "plr-repro:v1";

std::string
format_coefficients(const std::vector<double>& values)
{
    std::string out;
    char buf[64];
    for (std::size_t i = 0; i < values.size(); ++i) {
        // %.17g round-trips IEEE doubles exactly.
        std::snprintf(buf, sizeof buf, "%.17g", values[i]);
        if (i)
            out += ',';
        out += buf;
    }
    return out;
}

std::vector<double>
parse_coefficients(const std::string& text)
{
    std::vector<double> values;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const char* start = text.c_str() + pos;
        char* end = nullptr;
        const double v = std::strtod(start, &end);
        PLR_REQUIRE(end != start,
                    "malformed coefficient list '" << text << "'");
        values.push_back(v);
        pos = static_cast<std::size_t>(end - text.c_str());
        if (pos < text.size()) {
            PLR_REQUIRE(text[pos] == ',',
                        "malformed coefficient list '" << text << "'");
            ++pos;
        }
    }
    return values;
}

Domain
parse_domain(const std::string& name)
{
    for (Domain d : {Domain::kInt, Domain::kFloat, Domain::kTropical})
        if (name == kernels::to_string(d))
            return d;
    PLR_FATAL("unknown domain '" << name << "' in reproducer");
}

std::uint64_t
parse_u64(const std::string& value, const char* key)
{
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
    PLR_REQUIRE(end && *end == '\0',
                "malformed " << key << " value '" << value << "'");
    return v;
}

}  // namespace

Signature
ReproCase::signature() const
{
    if (domain == Domain::kTropical)
        return Signature::max_plus(a, b);
    return Signature(a, b);
}

std::string
encode_reproducer(const ConformanceFailure& failure)
{
    std::ostringstream os;
    os << kMagic << " kernel=" << failure.kernel
       << " domain=" << kernels::to_string(failure.domain)
       << " check=" << to_string(failure.check)
       << " a=" << format_coefficients(failure.sig.a())
       << " b=" << format_coefficients(failure.sig.b()) << " n=" << failure.n
       << " chunk=" << failure.run.chunk << " threads=" << failure.run.threads
       << " seed=" << failure.input_seed;
    if (failure.run.fault_seed != 0)
        os << " fault=" << failure.run.fault_seed;
    if (failure.run.spin_watchdog != 0)
        os << " watchdog=" << failure.run.spin_watchdog;
    // race= is a bitmask: 1 = race detector, 2 = invariant checker. A
    // failing analyzed schedule replays with the same detectors on.
    const unsigned race_mask = (failure.run.race_detect ? 1u : 0u) |
                               (failure.run.invariants ? 2u : 0u);
    if (race_mask != 0)
        os << " race=" << race_mask;
    // sdc= is a bitmask: 1 = SDC bit-flip injection, 2 = ABFT verify
    // pass. A failing corrupted run replays with the same arming.
    const unsigned sdc_mask = (failure.run.sdc ? 1u : 0u) |
                              (failure.run.verify ? 2u : 0u);
    if (sdc_mask != 0)
        os << " sdc=" << sdc_mask;
    // ckpt= / crash= replay a streaming crash-resume trial: checkpoint
    // period in segments and the deterministic crash-plan seed.
    if (failure.run.checkpoint_every != 0)
        os << " ckpt=" << failure.run.checkpoint_every;
    if (failure.run.crash_seed != 0)
        os << " crash=" << failure.run.crash_seed;
    // batch= replays a fused multi-tenant batching trial: the seed
    // determines the tenant count, segment layout, and interleaving.
    if (failure.run.batch_seed != 0)
        os << " batch=" << failure.run.batch_seed;
    return os.str();
}

std::string
ConformanceFailure::reproducer() const
{
    return encode_reproducer(*this);
}

ReproCase
parse_reproducer(const std::string& line)
{
    std::istringstream is(line);
    std::string token;
    PLR_REQUIRE(is >> token && token == kMagic,
                "not a reproducer line (expected leading '" << kMagic
                                                            << "')");
    std::map<std::string, std::string> fields;
    while (is >> token) {
        const auto eq = token.find('=');
        PLR_REQUIRE(eq != std::string::npos,
                    "malformed reproducer token '" << token << "'");
        fields[token.substr(0, eq)] = token.substr(eq + 1);
    }
    for (const char* key : {"kernel", "domain", "check", "a", "b", "n",
                            "seed"})
        PLR_REQUIRE(fields.count(key),
                    "reproducer is missing the '" << key << "' field");

    ReproCase repro;
    repro.kernel = fields["kernel"];
    repro.domain = parse_domain(fields["domain"]);
    repro.check = parse_check(fields["check"]);
    repro.a = parse_coefficients(fields["a"]);
    repro.b = parse_coefficients(fields["b"]);
    repro.n = parse_u64(fields["n"], "n");
    if (fields.count("chunk"))
        repro.run.chunk = parse_u64(fields["chunk"], "chunk");
    if (fields.count("threads"))
        repro.run.threads = parse_u64(fields["threads"], "threads");
    if (fields.count("fault"))
        repro.run.fault_seed = parse_u64(fields["fault"], "fault");
    if (fields.count("watchdog"))
        repro.run.spin_watchdog = parse_u64(fields["watchdog"], "watchdog");
    if (fields.count("race")) {
        const std::uint64_t mask = parse_u64(fields["race"], "race");
        PLR_REQUIRE(mask >= 1 && mask <= 3,
                    "race mask must be 1, 2 or 3, got " << mask);
        repro.run.race_detect = (mask & 1u) != 0;
        repro.run.invariants = (mask & 2u) != 0;
    }
    if (fields.count("sdc")) {
        const std::uint64_t mask = parse_u64(fields["sdc"], "sdc");
        PLR_REQUIRE(mask >= 1 && mask <= 3,
                    "sdc mask must be 1, 2 or 3, got " << mask);
        repro.run.sdc = (mask & 1u) != 0;
        repro.run.verify = (mask & 2u) != 0;
    }
    if (fields.count("ckpt"))
        repro.run.checkpoint_every =
            static_cast<std::size_t>(parse_u64(fields["ckpt"], "ckpt"));
    if (fields.count("crash"))
        repro.run.crash_seed = parse_u64(fields["crash"], "crash");
    if (fields.count("batch"))
        repro.run.batch_seed = parse_u64(fields["batch"], "batch");
    repro.input_seed = parse_u64(fields["seed"], "seed");
    (void)repro.signature();  // validate the coefficient lists eagerly
    return repro;
}

std::optional<ConformanceFailure>
replay(const ReproCase& repro, const std::vector<kernels::KernelInfo>& kernels,
       const OracleOptions& opts)
{
    const kernels::KernelInfo* kernel = nullptr;
    for (const auto& info : kernels)
        if (info.name == repro.kernel)
            kernel = &info;
    PLR_REQUIRE(kernel, "reproducer names unknown kernel '" << repro.kernel
                                                            << "'");
    const Signature sig = repro.signature();
    PLR_REQUIRE(kernel->supports && kernel->supports(sig, repro.domain),
                "kernel '" << repro.kernel << "' does not support "
                           << sig.to_string() << " in the "
                           << kernels::to_string(repro.domain) << " domain");
    return run_case(*kernel, "replay", sig, repro.domain, repro.check,
                    repro.n, repro.run, repro.input_seed, opts);
}

ReproCase
shrink(const ReproCase& repro,
       const std::vector<kernels::KernelInfo>& kernels,
       const OracleOptions& opts, std::size_t* replays)
{
    std::size_t runs = 0;
    auto fails_at = [&](std::size_t n) {
        ReproCase candidate = repro;
        candidate.n = n;
        ++runs;
        return replay(candidate, kernels, opts).has_value();
    };
    PLR_REQUIRE(fails_at(repro.n),
                "cannot shrink: the case passes at n=" << repro.n);

    // Bisect for the smallest failing n. Failures need not be monotone in
    // n, so this finds a locally minimal failing size (its left probe
    // passes), which in practice pins the first broken chunk boundary.
    std::size_t lo = 0;  // passes (n=0 is the empty case)
    std::size_t hi = repro.n;  // fails
    if (repro.n > 0 && fails_at(0))
        hi = 0;
    while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (fails_at(mid))
            hi = mid;
        else
            lo = mid;
    }
    // Greedy tail: walk down while the immediate predecessor still fails
    // (handles plateaus the bisection jumped over).
    while (hi > 0 && fails_at(hi - 1))
        --hi;

    if (replays)
        *replays = runs;
    ReproCase minimal = repro;
    minimal.n = hi;
    return minimal;
}

}  // namespace plr::testing
