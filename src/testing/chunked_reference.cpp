#include "testing/chunked_reference.h"

#include <algorithm>

#include "core/correction_factors.h"
#include "core/signature.h"
#include "testing/fault_canary.h"
#include "testing/race_canary.h"
#include "util/ring.h"

namespace plr::testing {

namespace {

using kernels::Domain;
using kernels::KernelInfo;
using kernels::RunOptions;

/** Offset of the single mutated factor in the sabotaged variant. */
constexpr std::size_t kSabotagedOffset = 7;

template <typename Ring>
std::vector<typename Ring::value_type>
chunked_eval(const Signature& sig,
             std::span<const typename Ring::value_type> input, std::size_t m,
             bool sabotage)
{
    using V = typename Ring::value_type;
    const std::size_t n = input.size();
    if (n == 0)
        return {};
    m = std::max<std::size_t>(m ? m : 64, 1);
    const std::size_t k = sig.order();

    // Map operation (eq. 2): t[i] = a0*x[i] + ... + a-p*x[i-p].
    std::vector<V> a(sig.a().size());
    for (std::size_t j = 0; j < a.size(); ++j)
        a[j] = Ring::from_coefficient(sig.a()[j]);
    std::vector<V> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        V acc = Ring::zero();
        for (std::size_t j = 0; j < a.size() && j <= i; ++j)
            acc = Ring::mul_add(acc, a[j], input[i - j]);
        y[i] = acc;
    }

    // Per-chunk local recurrence of (1 : b...) with zero history.
    std::vector<V> b(k);
    for (std::size_t j = 0; j < k; ++j)
        b[j] = Ring::from_coefficient(sig.b()[j]);
    for (std::size_t start = 0; start < n; start += m) {
        const std::size_t len = std::min(m, n - start);
        for (std::size_t o = 0; o < len; ++o) {
            V acc = y[start + o];
            for (std::size_t j = 1; j <= std::min(k, o); ++j)
                acc = Ring::mul_add(acc, b[j - 1], y[start + o - j]);
            y[start + o] = acc;
        }
    }

    // Correction factors, with one value mutated in the sabotaged build.
    const auto factors = CorrectionFactors<Ring>::generate(sig, m);
    std::vector<std::vector<V>> lists(k);
    for (std::size_t j = 1; j <= k; ++j) {
        const auto span = factors.list(j);
        lists[j - 1].assign(span.begin(), span.end());
    }
    if (sabotage && !lists.empty()) {
        const std::size_t offset = std::min(kSabotagedOffset, m - 1);
        lists[0][offset] = Ring::add(lists[0][offset], Ring::one());
    }

    // Left-to-right chunk merging: chunk c reads the final (already
    // corrected) trailing values of chunk c-1.
    for (std::size_t start = m; start < n; start += m) {
        const std::size_t len = std::min(m, n - start);
        for (std::size_t j = 1; j <= k && j <= start; ++j) {
            const V carry = y[start - j];
            if (Ring::is_zero(carry))
                continue;
            const auto& list = lists[j - 1];
            for (std::size_t o = 0; o < len; ++o)
                y[start + o] = Ring::mul_add(y[start + o], list[o], carry);
        }
    }
    return y;
}

KernelInfo
make_chunked(const char* name, const char* description, bool sabotage)
{
    KernelInfo info;
    info.name = name;
    info.description = description;
    info.supports = [sabotage](const Signature& sig, Domain domain) {
        if (sig.order() < 1)
            return false;
        switch (domain) {
          case Domain::kInt:
            return sig.is_integral() && !sig.is_max_plus();
          case Domain::kFloat:
            return !sig.is_max_plus();
          case Domain::kTropical:
            // Bumping a tropical factor by one() = 0 can be a no-op, so
            // the canary only claims the ordinary rings.
            return !sabotage && sig.is_max_plus();
        }
        return false;
    };
    info.run_int = [sabotage](const Signature& sig,
                              std::span<const std::int32_t> input,
                              const RunOptions& opts) {
        return chunked_eval<IntRing>(sig, input, opts.chunk, sabotage);
    };
    info.run_float = [sabotage](const Signature& sig,
                                std::span<const float> input,
                                const RunOptions& opts) {
        return sig.is_max_plus()
                   ? chunked_eval<TropicalRing>(sig, input, opts.chunk,
                                                sabotage)
                   : chunked_eval<FloatRing>(sig, input, opts.chunk,
                                             sabotage);
    };
    return info;
}

}  // namespace

KernelInfo
chunked_reference_kernel()
{
    return make_chunked(
        "chunked_ref",
        "independent chunk-and-correct evaluator (no simulator, no threads)",
        /*sabotage=*/false);
}

KernelInfo
broken_factor_kernel()
{
    return make_chunked(
        "broken_factor",
        "chunked evaluator with one mutated correction factor (harness canary)",
        /*sabotage=*/true);
}

std::vector<KernelInfo>
conformance_kernels(bool include_broken)
{
    std::vector<KernelInfo> kernels = kernels::kernel_registry();
    kernels.push_back(chunked_reference_kernel());
    if (include_broken) {
        kernels.push_back(broken_factor_kernel());
        kernels.push_back(wedge_canary_kernel());
        kernels.push_back(race_canary_kernel());
    }
    return kernels;
}

}  // namespace plr::testing
