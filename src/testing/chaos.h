#ifndef PLR_TESTING_CHAOS_H_
#define PLR_TESTING_CHAOS_H_

/**
 * @file
 * Seed-deterministic chaos planning for the serving stack
 * (docs/SERVER.md), modeled on the CrashPlan methodology of crash.h:
 * every fault a trial injects is a pure function of (seed, request
 * index), so a failing 16-seed matrix entry replays exactly from its
 * seed — chaos without flakes.
 *
 * The plan drives socket-level client misbehavior against
 * plr_server / serve_connection (server/transport.h):
 *
 *   - kDisconnectMidFrame: the client cuts the connection after a
 *     seed-chosen strict prefix of the frame (length prefix included)
 *     — the server must answer with a typed truncation, never desync
 *     or wedge;
 *   - kSlowLoris: the frame dribbles in seed-chosen 1..8-byte writes
 *     — short reads at every offset, same bytes, same answer;
 *   - kGarbageFlood: sealed-length garbage frames precede the real
 *     request — each one must come back kBadFrame with the
 *     connection (and every neighbor) intact.
 *
 * Hung-backend chaos is server-side (ServerConfig::fault_seed +
 * spin_watchdog, docs/FAULTS.md) and composes with these.
 *
 * The retry side lives here too: a capped exponential backoff with
 * deterministic jitter that honors the server's kRetryAfter hint —
 * the client policy plr_loadgen applies when chaos (or backpressure)
 * eats a response.
 */

#include <cstdint>
#include <vector>

namespace plr::testing {

/** Client-side fault one request draws. */
enum class ChaosFault {
    /** Send normally. */
    kNone,
    /** Cut the connection after a strict prefix of the frame. */
    kDisconnectMidFrame,
    /** Dribble the frame in tiny writes (always completes). */
    kSlowLoris,
    /** Send garbage frames before the real request. */
    kGarbageFlood,
};

/** Short lowercase name ("none", "disconnect", "slow-loris", ...). */
const char* to_string(ChaosFault fault);

/**
 * Deterministic chaos schedule: which fault (if any) each request
 * index draws, and the fault's shape. Stateless — every method is a
 * pure function of (seed, request_index), so interleaving and retry
 * order cannot change what a trial injects.
 */
struct ChaosPlan {
    std::uint64_t seed = 0;
    /** Fraction of requests that draw a fault (default 10%). */
    double fault_rate = 0.1;

    /** The fault request @p request_index draws. */
    ChaosFault fault_for(std::uint64_t request_index) const;

    /** Mid-frame cut point: a strict prefix length in [1, total-1]
        of the length-prefixed wire bytes (prefix + frame). */
    std::size_t cut_point(std::uint64_t request_index,
                          std::size_t total_bytes) const;

    /** Slow-loris write sizes: a partition of @p total_bytes into
        1..8-byte chunks. */
    std::vector<std::size_t> loris_chunks(std::uint64_t request_index,
                                          std::size_t total_bytes) const;

    /** One sealed-length garbage frame (these bytes are the frame
        body; the transport length prefix is written honestly). */
    std::vector<std::uint8_t> garbage_frame(std::uint64_t request_index)
        const;

    /** How many garbage frames a kGarbageFlood request sends (1..4). */
    std::size_t flood_count(std::uint64_t request_index) const;
};

/** Derive the plan for @p seed (chaos trials use one plan per seed). */
ChaosPlan make_chaos_plan(std::uint64_t seed, double fault_rate = 0.1);

/** Client retry policy: capped exponential backoff, full determinism. */
struct RetryPolicy {
    /** Total attempts (first try included). */
    std::size_t max_attempts = 6;
    /** Backoff of the first retry, milliseconds. */
    std::uint64_t base_ms = 1;
    /** Backoff cap, milliseconds. */
    std::uint64_t cap_ms = 50;
};

/**
 * Delay before retry @p attempt (1-based): capped exponential backoff
 * plus deterministic jitter derived from (@p seed, @p attempt). A
 * nonzero @p retry_after_hint_ms (the server's kRetryAfter hint)
 * floors the delay — the client never retries earlier than the
 * server asked.
 */
std::uint64_t backoff_ms(const RetryPolicy& policy, std::size_t attempt,
                         std::uint64_t seed,
                         std::uint64_t retry_after_hint_ms);

/**
 * Whether a wire status is worth retrying with the same idempotency
 * key: backpressure (kOverloaded, kRetryAfter) and deadline misses
 * (kDeadlineExceeded) are; typed permanent rejections are not.
 */
bool retryable_status(std::uint32_t status);

}  // namespace plr::testing

#endif  // PLR_TESTING_CHAOS_H_
