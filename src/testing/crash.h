#ifndef PLR_TESTING_CRASH_H_
#define PLR_TESTING_CRASH_H_

/**
 * @file
 * Crash-and-resume driver for the streaming checkpoint subsystem
 * (docs/STREAMING.md).
 *
 * One crash trial simulates the full durability story of a streaming
 * run: feed segments and write periodic checkpoints; kill the run at a
 * seed-chosen segment boundary — possibly mid-checkpoint-write, leaving
 * a torn or bit-flipped latest file; recover by walking the retained
 * checkpoints newest-first (every damaged one MUST be rejected with a
 * typed CheckpointError); resume from the newest good state and feed
 * the rest of the input. The stitched pre-crash + resumed output is
 * validated against the one-shot serial reference — exactly for the
 * int ring, ULP-gated for floats. Any tampered checkpoint that loads,
 * or any stitched mismatch, is a silent-divergence failure.
 *
 * The trial is fully determined by (crash seed, input length, segment
 * length, checkpoint period), so a failing trial replays from the
 * `crash=` token of its plr-repro:v1 line.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/signature.h"
#include "kernels/checkpoint.h"
#include "kernels/registry.h"
#include "util/ring.h"

namespace plr::testing {

/** How a mid-write crash damages the checkpoint being written. */
enum class CheckpointTamper {
    /** Keep only a seed-chosen prefix of the bytes (torn write). */
    kTruncate,
    /** Flip one seed-chosen bit (media / DMA corruption). */
    kBitFlip,
};

/** Short lowercase name ("truncate", "bitflip"). */
const char* to_string(CheckpointTamper tamper);

/** Seed-deterministic description of one crash trial. */
struct CrashPlan {
    std::uint64_t seed = 0;
    /** Crash fires after this many segments were fed (1-based, <= S). */
    std::uint64_t kill_after_segments = 1;
    /** Crash strikes while the next checkpoint is being written. */
    bool mid_write = false;
    /** Damage applied to the mid-write checkpoint. */
    CheckpointTamper tamper = CheckpointTamper::kTruncate;
};

/**
 * Derive the deterministic plan for @p seed over a stream of
 * @p num_segments segments. Kill points cover every segment boundary
 * as seeds vary; roughly half the plans tear the in-flight checkpoint.
 */
CrashPlan make_crash_plan(std::uint64_t seed, std::uint64_t num_segments);

/**
 * Apply @p tamper to serialized checkpoint bytes (seed-deterministic).
 * Truncation keeps a strict prefix; a bit flip touches one bit anywhere
 * in the file. The result must never parse.
 */
std::vector<std::uint8_t> tamper_checkpoint(std::span<const std::uint8_t> bytes,
                                            CheckpointTamper tamper,
                                            std::uint64_t seed);

/** Tuning of one crash-resume trial. */
struct CrashTrialOptions {
    /** Elements per stream segment. */
    std::size_t segment_len = 256;
    /** Checkpoint period in segments (>= 1). */
    std::size_t checkpoint_every = 1;
    /** Kernel run options forwarded to the streaming session. */
    kernels::RunOptions run;
    /** Float gates (ignored by the int ring). */
    std::uint64_t max_ulps = 512;
    double float_tolerance = 1e-3;
};

/** Outcome of one crash-resume trial. */
struct CrashReport {
    CrashPlan plan;
    /** Checkpoints durably written before the crash (intact ones). */
    std::size_t checkpoints_written = 0;
    /** Element position the run resumed from (0 = stream start). */
    std::uint64_t resumed_elements = 0;
    /** Error kind the damaged checkpoint was rejected with, if any. */
    std::optional<kernels::CheckpointErrorKind> rejected_kind;
    /**
     * Failure description: a tampered checkpoint that loaded, or a
     * stitched-output divergence from the serial reference. Empty on
     * success — anything here is a durability bug, never a flake.
     */
    std::optional<std::string> failure;

    bool ok() const { return !failure.has_value(); }
};

/**
 * Run one full crash-and-resume trial of @p kernel over @p input.
 * @p kernel may be null (serial reference sessions). Ring must match
 * the value type of @p input; see StreamSession for domain rules.
 */
template <typename Ring>
CrashReport crash_and_resume(const Signature& sig,
                             const kernels::KernelInfo* kernel,
                             std::span<const typename Ring::value_type> input,
                             std::uint64_t crash_seed,
                             const CrashTrialOptions& options);

extern template CrashReport
crash_and_resume<IntRing>(const Signature&, const kernels::KernelInfo*,
                          std::span<const std::int32_t>, std::uint64_t,
                          const CrashTrialOptions&);
extern template CrashReport
crash_and_resume<FloatRing>(const Signature&, const kernels::KernelInfo*,
                            std::span<const float>, std::uint64_t,
                            const CrashTrialOptions&);
extern template CrashReport
crash_and_resume<TropicalRing>(const Signature&, const kernels::KernelInfo*,
                               std::span<const float>, std::uint64_t,
                               const CrashTrialOptions&);

}  // namespace plr::testing

#endif  // PLR_TESTING_CRASH_H_
