#include "testing/fault_canary.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "gpusim/device.h"
#include "kernels/lookback_chain.h"
#include "util/ring.h"

namespace plr::testing {

namespace {

using kernels::Domain;
using kernels::KernelInfo;
using kernels::RunOptions;

/**
 * Single-pass prefix sum over a LookbackChain, except that chunks whose
 * victim coin hits die before publishing anything: no local carry, no
 * global carry, no output. With zero or one chunk, or with no fault plan
 * at all, the kernel is a correct decoupled-look-back prefix sum.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
run_wedge_canary(const Signature&,
                 std::span<const typename Ring::value_type> input,
                 const RunOptions& opts)
{
    using V = typename Ring::value_type;
    if (input.empty())
        return {};

    const std::size_t n = input.size();
    const std::size_t chunk = opts.chunk ? opts.chunk : 64;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;

    gpusim::Device device;
    std::shared_ptr<gpusim::FaultPlan> plan;
    if (opts.fault_seed != 0) {
        plan = std::make_shared<gpusim::FaultPlan>(opts.fault_seed);
        device.set_fault_plan(plan);
    }
    if (opts.spin_watchdog != 0)
        device.set_spin_watchdog_limit(opts.spin_watchdog);

    auto in = device.alloc<V>(n, "wedge_canary.in");
    auto out = device.alloc<V>(n, "wedge_canary.out");
    device.upload(in, input);

    kernels::LookbackChain<V> chain(device, num_chunks, 1,
                                    kWedgeCanaryWindow, "wedge_canary");

    auto body = [&](gpusim::BlockContext& ctx) {
        const std::size_t chunk_id = ctx.block_index();
        ctx.note_chunk(chunk_id);

        // The deliberate protocol break: a victim chunk dies here, before
        // either of its publications — the one single-chunk fault that
        // wedges every successor (a dropped *global* alone heals, because
        // later chunks anchor on a later global within the window).
        if (plan != nullptr &&
            plan->coin(kWedgeCanarySalt, chunk_id, kWedgeCanaryProbability))
            return;

        const std::size_t begin = chunk_id * chunk;
        const std::size_t end = std::min(n, begin + chunk);

        std::vector<V> sums(end - begin);
        V running = Ring::zero();
        for (std::size_t i = begin; i < end; ++i) {
            running = Ring::add(running, ctx.ld(in, i));
            sums[i - begin] = running;
        }

        std::vector<V> carry(1, Ring::zero());
        if (chunk_id > 0) {
            chain.publish_local(ctx, chunk_id, {running});
            carry = chain.wait_and_resolve(
                ctx, chunk_id,
                [](std::vector<V> acc, const std::vector<V>& local) {
                    acc[0] = Ring::add(acc[0], local[0]);
                    return acc;
                });
        }
        chain.publish_global(ctx, chunk_id,
                             {Ring::add(carry[0], running)});

        for (std::size_t i = begin; i < end; ++i)
            ctx.st(out, i, Ring::add(carry[0], sums[i - begin]));
    };

    device.launch(num_chunks, body);

    std::vector<V> result = device.download(out);
    chain.free(device);
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

}  // namespace

KernelInfo
wedge_canary_kernel()
{
    KernelInfo info;
    info.name = "wedge_canary";
    info.description =
        "deliberately protocol-broken look-back prefix sum: chunks chosen "
        "by the fault seed die without publishing (fault-harness canary)";
    info.supports = [](const Signature& sig, Domain domain) {
        if (domain == Domain::kTropical || sig.is_max_plus())
            return false;
        return sig.a() == std::vector<double>{1.0} &&
               sig.b() == std::vector<double>{1.0};
    };
    info.run_int = run_wedge_canary<IntRing>;
    info.run_float = run_wedge_canary<FloatRing>;
    return info;
}

std::size_t
wedge_canary_victim(std::uint64_t fault_seed, std::size_t num_chunks)
{
    if (fault_seed == 0)
        return gpusim::BlockForensics::kNone;
    const gpusim::FaultPlan plan(fault_seed);
    for (std::size_t q = 0; q < num_chunks; ++q) {
        if (plan.coin(kWedgeCanarySalt, q, kWedgeCanaryProbability))
            return q;
    }
    return gpusim::BlockForensics::kNone;
}

}  // namespace plr::testing
