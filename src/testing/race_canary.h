#ifndef PLR_TESTING_RACE_CANARY_H_
#define PLR_TESTING_RACE_CANARY_H_

/**
 * @file
 * The race detector's own canary: a look-back kernel with a deliberate
 * synchronization bug (docs/ANALYSIS.md).
 *
 * "race_canary" is a single-window decoupled look-back prefix sum written
 * directly against the BlockContext primitives (not LookbackChain, whose
 * publish/resolve helpers are correct by construction) so it can sabotage
 * its own synchronization. It is correct under benign execution — but when
 * the device carries a FaultPlan, the lowest chunk in [1, num_chunks - 2]
 * whose deterministic coin (FaultPlan::coin(kRaceCanarySalt, chunk,
 * kRaceCanaryProbability)) hits becomes the victim of one of two seeded
 * bugs, chosen by a second coin on the same seed:
 *
 *  - kDroppedFence: the victim publishes its carries but skips the
 *    __threadfence() before both flag releases. The release clock then
 *    fails to cover the carry writes, so the successor's look-back read
 *    races with the victim's publish ("publish-local"/"publish-global"
 *    vs "look-back" provenance), and the invariant checker flags the
 *    unfenced carry at the release itself.
 *
 *  - kEarlyCarryRead: the victim reads its predecessor's global carry
 *    without acquiring the flag first (site "early-carry-read") — the
 *    classic missing-poll bug. The invariant checker reports the
 *    unacquired carry read deterministically; the race detector
 *    additionally reports the read/write race whenever the predecessor's
 *    publish has already executed.
 *
 * Outputs stay correct in the dropped-fence mode (the simulator's memory
 * is sequentially consistent; only the *proof* of ordering is missing),
 * which is exactly why the happens-before analysis is needed: no
 * differential check can see this bug. Because the coins are keyed on the
 * fault seed and chunk index alone, tests predict the victim and mode for
 * any seed (see tests/race_matrix_test.cpp).
 */

#include <cstdint>

#include "kernels/registry.h"

namespace plr::testing {

/** Salt for the victim-selection coin (tests replicate the draw). */
inline constexpr std::uint64_t kRaceCanarySalt = 0x9aceull;

/** Salt for the bug-mode coin, drawn once on the victim chunk. */
inline constexpr std::uint64_t kRaceCanaryModeSalt = 0x9acefull;

/** Per-chunk probability that a chunk becomes the victim. */
inline constexpr double kRaceCanaryProbability = 0.25;

/** The two seeded synchronization bugs. */
enum class RaceCanaryMode {
    kDroppedFence,    ///< publish without the fence before the releases
    kEarlyCarryRead,  ///< read the predecessor's carry without acquiring
};

/**
 * The sabotaged look-back kernel ("race_canary"): prefix-sum family, int
 * and float domains. Correct with RunOptions::fault_seed == 0; honors
 * RunOptions::race_detect / invariants on its own device.
 */
kernels::KernelInfo race_canary_kernel();

/**
 * Lowest chunk in [1, num_chunks - 2] selected as victim under
 * @p fault_seed (BlockForensics::kNone when every coin misses, the seed
 * is 0, or there are fewer than 3 chunks). The range guarantees the
 * victim has both a predecessor to read early and a successor to race
 * with.
 */
std::size_t race_canary_victim(std::uint64_t fault_seed,
                               std::size_t num_chunks);

/** The bug mode @p victim suffers under @p fault_seed. */
RaceCanaryMode race_canary_mode(std::uint64_t fault_seed,
                                std::size_t victim);

}  // namespace plr::testing

#endif  // PLR_TESTING_RACE_CANARY_H_
