#ifndef PLR_TESTING_CORPUS_H_
#define PLR_TESTING_CORPUS_H_

/**
 * @file
 * The shared signature corpus for the differential conformance harness
 * (docs/TESTING.md).
 *
 * One module owns every signature the test suite exercises: the eleven
 * Table 1 recurrences regenerated from first principles, plus seeded
 * generators for the signature families that historically lived as
 * copy-pasted helpers in individual test files — random integer
 * signatures, random stable filters — and the families that stress
 * specific Section-3.1 optimizations: unstable (growing) filters,
 * near-denormal decay (flush-to-zero + zero-tail suppression), periodic
 * factor lists (periodic compression), and tropical (max-plus)
 * signatures.
 *
 * All generators are deterministic in their seed; a corpus entry's
 * signature is fully reproducible from (generator, seed).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/signature.h"
#include "kernels/registry.h"
#include "util/rng.h"

namespace plr::testing {

using kernels::Domain;

/** One corpus member: a signature plus the domain it is evaluated in. */
struct CorpusEntry {
    /** Stable human-readable id, e.g. "table1/2-stage-lowpass". */
    std::string name;
    Signature sig;
    Domain domain = Domain::kInt;
    /**
     * True when the impulse response decays (all poles strictly inside
     * the unit circle); gates the impulse-decay metamorphic check and
     * lifts the input-size cap applied to growing recurrences.
     */
    bool stable = false;
};

/** The eleven recurrences of Table 1 plus float-domain variants of the
 * integral prefix-sum rows (so the prefix-family kernels' float paths are
 * exercised too). */
std::vector<CorpusEntry> table1_corpus();

// ------------------------------------------------------------------
// Raw signature generators (shared with the legacy fuzz tests).

/** Random integer signature: p in 0..3, k in 1..4, coefficients in -3..3. */
Signature random_int_signature(Rng& rng);

/** Random *stable* float filter: k in 1..3 real poles inside (-0.95, 0.95). */
Signature random_stable_filter(Rng& rng);

/** Random *unstable* filter: poles of magnitude in (1.0, 1.05) — outputs
 * grow, so the harness caps n for entries built from this. */
Signature random_unstable_filter(Rng& rng);

/** Stable filter with poles of magnitude in (0.002, 0.02): the impulse
 * response reaches the denormal range within a few dozen steps,
 * exercising denormal flushing and zero-tail suppression. */
Signature near_denormal_decay_filter(Rng& rng);

/** Integral signature with periodic correction-factor lists, (1: 0,..,0,±1)
 * — exercises the periodic-compression optimization. */
Signature periodic_factor_signature(Rng& rng);

/** Max-plus signature: decaying running maximum of order 1..3. */
Signature random_tropical_signature(Rng& rng);

// ------------------------------------------------------------------
// Corpus assembly.

/** @p per_generator seeded entries from each of the six generators. */
std::vector<CorpusEntry> generated_corpus(std::uint64_t seed,
                                          std::size_t per_generator);

/** Table 1 + generated entries; the harness's default corpus. */
std::vector<CorpusEntry> full_corpus(std::uint64_t seed = 0x51C0,
                                     std::size_t per_generator = 2);

/**
 * Compact corpus for fault-injection sweeps: the look-back-heavy shapes
 * (prefix-sum family all four look-back kernels run, a higher-order
 * integral signature, and the Section-3.1 pathological payloads — a
 * near-denormal decay filter whose carries reach the denormal range and
 * whose factor tails decay to all-zero). Deterministic in @p seed.
 */
std::vector<CorpusEntry> fault_corpus(std::uint64_t seed = 0xFA17);

/** Deterministic fault-seed schedule (the CI fault matrix uses 16). */
std::vector<std::uint64_t> default_fault_seeds(std::size_t count);

/**
 * The input-size schedule for one kernel/signature pair: degenerate sizes
 * (0, 1, around the order k), sizes around one chunk (chunk-1, chunk,
 * chunk+1), and larger non-multiples of the chunk size. Sorted, deduped.
 */
std::vector<std::size_t> conformance_sizes(std::size_t chunk,
                                           std::size_t order);

// ------------------------------------------------------------------
// Input synthesis (shared by the oracle and the reproducer replay, so a
// (seed, n) pair always regenerates the same data).

/** Deterministic int32 conformance input (uniform in [-100, 100]). */
std::vector<std::int32_t> conformance_input_int(std::size_t n,
                                                std::uint64_t seed);

/** Deterministic float conformance input for @p domain. */
std::vector<float> conformance_input_float(Domain domain, std::size_t n,
                                           std::uint64_t seed);

}  // namespace plr::testing

#endif  // PLR_TESTING_CORPUS_H_
