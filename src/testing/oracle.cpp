#include "testing/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/static/analyzer.h"
#include "dsp/filter_design.h"
#include "dsp/signal.h"
#include "gpusim/device.h"
#include "kernels/batched.h"
#include "kernels/serial.h"
#include "kernels/stream_state.h"
#include "testing/crash.h"
#include "util/compare.h"
#include "util/diag.h"
#include "util/env.h"
#include "util/ring.h"

namespace plr::testing {

namespace {

/** splitmix64 step for deriving secondary input seeds. */
std::uint64_t
derive_seed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t z = seed + salt * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** The perturbed configuration the chunk-invariance check compares with. */
kernels::RunOptions
variant_options(const kernels::RunOptions& base)
{
    kernels::RunOptions variant = base;
    variant.chunk = base.chunk ? base.chunk * 2 : 128;
    variant.threads = base.threads ? base.threads + 3 : 3;
    return variant;
}

std::string
failure_detail(const char* what, const ValidationResult& v)
{
    std::ostringstream os;
    os << what << ": " << v.describe();
    return os.str();
}

/** Float gate: tight in ULPs, with the paper's tolerance as fallback. */
ValidationResult
validate_float(std::span<const float> expected, std::span<const float> actual,
               const OracleOptions& opts)
{
    return validate_ulp(expected, actual, opts.max_ulps,
                        opts.float_tolerance);
}

/** The static report the bound-dominance check compares against. */
static_analysis::StaticReport
dominance_report(const Signature& sig, static_analysis::ValueDomain domain,
                 std::size_t n, const kernels::RunOptions& run)
{
    static_analysis::AnalysisOptions opts;
    opts.n = n;
    opts.chunk = run.chunk != 0 ? run.chunk : 64;
    return static_analysis::analyze(sig, domain, opts);
}

/** Wide (double) serial evaluation of the full signature — the exact
 * mathematical values every dominance claim is about. */
std::vector<double>
wide_serial(const Signature& sig, std::span<const float> xf,
            std::span<const std::int32_t> xi)
{
    const std::size_t n = xf.empty() ? xi.size() : xf.size();
    const std::size_t k = sig.order();
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < sig.a().size() && j <= i; ++j)
            acc += sig.a()[j] * (xf.empty()
                                     ? static_cast<double>(xi[i - j])
                                     : static_cast<double>(xf[i - j]));
        for (std::size_t j = 1; j <= k && j <= i; ++j)
            acc += sig.b()[j - 1] * y[i - j];
        y[i] = acc;
    }
    return y;
}

/** The checkpoint-resume trial shared by the int and float checks. */
template <typename Ring>
std::optional<std::string>
check_crash_resume(const kernels::KernelInfo& kernel, const Signature& sig,
                   std::span<const typename Ring::value_type> x,
                   const kernels::RunOptions& run, const OracleOptions& opts)
{
    if (x.empty())
        return std::nullopt;
    CrashTrialOptions trial;
    // Two chunks per segment: segments must span a chunk boundary so the
    // kernel's own inter-chunk carry correction runs inside the stream
    // (a segment of exactly one chunk would never exercise it).
    trial.segment_len = 2 * (run.chunk != 0 ? run.chunk : 64);
    trial.checkpoint_every =
        run.checkpoint_every != 0 ? run.checkpoint_every : 1;
    trial.run = run;
    trial.max_ulps = opts.max_ulps;
    trial.float_tolerance = opts.float_tolerance;
    const CrashReport report =
        crash_and_resume<Ring>(sig, &kernel, x, run.crash_seed, trial);
    return report.failure;
}

/**
 * The fused multi-tenant batching trial shared by the int and float
 * checks (docs/SERVER.md): the input is dealt out as a seeded sequence
 * of per-tenant requests (uneven lengths, empty keep-alives, 1..4
 * tenants), each round fuses at most one pending request per tenant
 * into a single cross-request launch with per-segment carry seeds, and
 * every tenant's stitched output must match a one-shot serial run of
 * that tenant's stream alone. Rounds alternate between the host and
 * the simulated-GPU fused primitives, so the two interoperate on the
 * same carry stream.
 */
template <typename Ring>
std::optional<std::string>
check_batched_segments(const Signature& sig,
                       std::span<const typename Ring::value_type> x,
                       const kernels::RunOptions& run,
                       const OracleOptions& opts)
{
    using V = typename Ring::value_type;
    namespace k = kernels;
    if (x.empty())
        return std::nullopt;

    std::uint64_t state = run.batch_seed != 0 ? run.batch_seed : 1;
    auto next = [&state]() {
        state = derive_seed(state, 0xba7c4ed);
        return state;
    };

    // Deal the input into an ordered request sequence.
    const std::size_t tenants = 1 + next() % 4;
    const std::size_t max_len =
        std::max<std::size_t>(std::size_t{1}, run.chunk != 0 ? run.chunk : 64);
    struct Request {
        std::size_t tenant;
        std::span<const V> data;
        bool done = false;
    };
    std::vector<Request> requests;
    std::size_t pos = 0;
    while (pos < x.size()) {
        const std::size_t tenant = next() % tenants;
        if (next() % 5 == 0)  // an empty keep-alive request
            requests.push_back({tenant, x.subspan(pos, 0), false});
        const std::size_t len =
            std::min(x.size() - pos, 1 + next() % max_len);
        requests.push_back({tenant, x.subspan(pos, len), false});
        pos += len;
    }

    // Each tenant's ground truth: its stream evaluated alone, one shot.
    std::vector<std::vector<V>> tenant_stream(tenants);
    for (const Request& r : requests)
        tenant_stream[r.tenant].insert(tenant_stream[r.tenant].end(),
                                       r.data.begin(), r.data.end());
    std::vector<std::vector<V>> expected(tenants);
    for (std::size_t t = 0; t < tenants; ++t)
        expected[t] = k::serial_recurrence<Ring>(sig, tenant_stream[t]);

    // Round-by-round fused launches: at most one request per tenant per
    // round (a session's later requests wait for its carry to advance).
    std::vector<k::StreamState<Ring>> carry(tenants,
                                            k::StreamState<Ring>::fresh(sig));
    std::vector<std::vector<V>> actual(tenants);
    gpusim::Device device;
    std::size_t consumed = 0;
    std::size_t round = 0;
    while (consumed < requests.size()) {
        std::vector<std::size_t> picked;
        std::vector<bool> tenant_in_round(tenants, false);
        for (std::size_t r = 0; r < requests.size(); ++r) {
            if (requests[r].done || tenant_in_round[requests[r].tenant])
                continue;
            tenant_in_round[requests[r].tenant] = true;
            picked.push_back(r);
        }
        std::vector<V> fused;
        std::vector<k::CrossSegment> segments;
        std::vector<k::SegmentSeed<Ring>> seeds;
        for (std::size_t r : picked) {
            segments.push_back({fused.size(), requests[r].data.size()});
            fused.insert(fused.end(), requests[r].data.begin(),
                         requests[r].data.end());
            const auto& st = carry[requests[r].tenant];
            seeds.push_back({st.y_tail, st.x_tail});
        }
        std::vector<V> out;
        if (round % 2 == 0) {
            out.assign(fused.size(), V{});
            k::batched_segments_cpu<Ring>(sig, fused, segments, seeds, out,
                                          run.threads);
        } else {
            out = k::batched_segments_recurrence<Ring>(device, sig, fused,
                                                       segments, seeds);
        }
        for (std::size_t i = 0; i < picked.size(); ++i) {
            Request& req = requests[picked[i]];
            req.done = true;
            ++consumed;
            const auto slice = std::span<const V>(out).subspan(
                segments[i].offset, segments[i].length);
            actual[req.tenant].insert(actual[req.tenant].end(), slice.begin(),
                                      slice.end());
            carry[req.tenant].advance(req.data, slice);
        }
        ++round;
    }

    for (std::size_t t = 0; t < tenants; ++t) {
        ValidationResult v;
        if constexpr (std::is_same_v<Ring, IntRing>) {
            v = validate_exact(expected[t], actual[t]);
        } else {
            v = validate_float(expected[t], actual[t], opts);
        }
        if (!v.ok) {
            std::ostringstream os;
            os << "fused batch diverges from tenant " << t << "'s solo "
               << "stream (" << tenants << " tenants, " << requests.size()
               << " requests): " << v.describe();
            return os.str();
        }
    }
    return std::nullopt;
}

std::optional<std::string>
check_int(const kernels::KernelInfo& kernel, const Signature& sig,
          Check check, std::size_t n, const kernels::RunOptions& run,
          std::uint64_t input_seed, const OracleOptions& opts)
{
    // Integer-ring checks are all exact.
    const auto x = conformance_input_int(n, input_seed);
    switch (check) {
      case Check::kDifferential: {
        const auto got = kernel.run_int(sig, x, run);
        const auto want = kernels::serial_recurrence<IntRing>(sig, x);
        const auto v = validate_exact(want, got);
        if (!v.ok)
            return failure_detail("differs from serial reference", v);
        return std::nullopt;
      }
      case Check::kChunkInvariance: {
        const auto base = kernel.run_int(sig, x, run);
        const auto other = kernel.run_int(sig, x, variant_options(run));
        const auto v = validate_exact(base, other);
        if (!v.ok)
            return failure_detail("result depends on the chunking", v);
        return std::nullopt;
      }
      case Check::kHomogeneity: {
        const std::int32_t c = 3;
        std::vector<std::int32_t> scaled(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            scaled[i] = IntRing::mul(c, x[i]);
        const auto lhs = kernel.run_int(sig, scaled, run);
        auto rhs = kernel.run_int(sig, x, run);
        for (auto& v : rhs)
            v = IntRing::mul(c, v);
        const auto v = validate_exact(rhs, lhs);
        if (!v.ok)
            return failure_detail("homogeneity K(3x) != 3K(x)", v);
        return std::nullopt;
      }
      case Check::kSuperposition: {
        const auto y =
            conformance_input_int(n, derive_seed(input_seed, 0x5eed));
        std::vector<std::int32_t> sum(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            sum[i] = IntRing::add(x[i], y[i]);
        const auto lhs = kernel.run_int(sig, sum, run);
        auto rhs = kernel.run_int(sig, x, run);
        const auto ky = kernel.run_int(sig, y, run);
        for (std::size_t i = 0; i < rhs.size(); ++i)
            rhs[i] = IntRing::add(rhs[i], ky[i]);
        const auto v = validate_exact(rhs, lhs);
        if (!v.ok)
            return failure_detail("superposition K(x+y) != K(x)+K(y)", v);
        return std::nullopt;
      }
      case Check::kImpulseDecay:
        return std::nullopt;  // a float-filter property
      case Check::kCheckpointResume:
        return check_crash_resume<IntRing>(kernel, sig, x, run, opts);
      case Check::kBatchedSegments:
        return check_batched_segments<IntRing>(sig, x, run, opts);
      case Check::kBoundDominance: {
        namespace sa = static_analysis;
        const sa::StaticReport report =
            dominance_report(sig, sa::ValueDomain::kInt32, n, run);
        const sa::PathReport* serial = report.find(sa::PathKind::kSerial);
        if (serial == nullptr)
            return std::nullopt;
        const sa::RangeReport& range = serial->range;
        if (range.verdict == sa::OverflowVerdict::kProvenOverflow) {
            // A proven verdict must be constructive: the recorded witness
            // evaluation has to genuinely exceed the range limit.
            if (range.witness_index == sa::kNoIndex ||
                !(std::fabs(range.witness_value) > sa::kInt32RangeLimit)) {
                std::ostringstream os;
                os << "vacuous proven-overflow verdict: witness value "
                   << range.witness_value << " does not exceed the int32 "
                   << "range limit";
                return os.str();
            }
            return std::nullopt;
        }
        if (range.verdict != sa::OverflowVerdict::kProvenSafe)
            return std::nullopt;  // no whole-envelope claim to validate
        const std::vector<double> wide = wide_serial(sig, {}, x);
        const double envelope = range.final_bound * (1.0 + 1e-9);
        for (std::size_t t = 0; t < wide.size(); ++t) {
            if (!(std::fabs(wide[t]) <= envelope)) {
                std::ostringstream os;
                os << "observed wide value " << wide[t] << " at index " << t
                   << " exceeds the proven envelope " << range.final_bound;
                return os.str();
            }
        }
        const auto got = kernel.run_int(sig, x, run);
        for (std::size_t t = 0; t < got.size(); ++t) {
            const auto want = static_cast<std::int32_t>(std::llround(wide[t]));
            if (got[t] != want) {
                std::ostringstream os;
                os << "proven-safe int result wraps: got " << got[t]
                   << " at index " << t << ", unwrapped value " << want;
                return os.str();
            }
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
}

std::optional<std::string>
check_float(const kernels::KernelInfo& kernel, const Signature& sig,
            Domain domain, Check check, std::size_t n,
            const kernels::RunOptions& run, std::uint64_t input_seed,
            const OracleOptions& opts)
{
    const bool tropical = domain == Domain::kTropical;
    const auto x = conformance_input_float(domain, n, input_seed);
    switch (check) {
      case Check::kDifferential: {
        const auto got = kernel.run_float(sig, x, run);
        const auto want =
            tropical ? kernels::serial_recurrence<TropicalRing>(sig, x)
                     : kernels::serial_recurrence<FloatRing>(sig, x);
        const auto v = validate_float(want, got, opts);
        if (!v.ok)
            return failure_detail("differs from serial reference", v);
        return std::nullopt;
      }
      case Check::kChunkInvariance: {
        const auto base = kernel.run_float(sig, x, run);
        const auto other = kernel.run_float(sig, x, variant_options(run));
        const auto v = validate_float(base, other, opts);
        if (!v.ok)
            return failure_detail("result depends on the chunking", v);
        return std::nullopt;
      }
      case Check::kHomogeneity: {
        // Ordinary ring: scaling by 2 is exact in IEEE floats, so the
        // property survives rounding. Max-plus: scalars act additively.
        std::vector<float> scaled(x.size());
        std::vector<float> rhs;
        if (tropical) {
            const float shift = 8.0f;
            for (std::size_t i = 0; i < x.size(); ++i)
                scaled[i] = x[i] + shift;
            rhs = kernel.run_float(sig, x, run);
            for (auto& v : rhs)
                v = TropicalRing::mul(shift, v);
        } else {
            const float c = 2.0f;
            for (std::size_t i = 0; i < x.size(); ++i)
                scaled[i] = c * x[i];
            rhs = kernel.run_float(sig, x, run);
            for (auto& v : rhs)
                v *= c;
        }
        const auto lhs = kernel.run_float(sig, scaled, run);
        const auto v = validate_float(rhs, lhs, opts);
        if (!v.ok)
            return failure_detail("homogeneity K(c*x) != c*K(x)", v);
        return std::nullopt;
      }
      case Check::kSuperposition: {
        const auto y = conformance_input_float(
            domain, n, derive_seed(input_seed, 0x5eed));
        std::vector<float> sum(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            sum[i] = tropical ? std::max(x[i], y[i]) : x[i] + y[i];
        const auto lhs = kernel.run_float(sig, sum, run);
        auto rhs = kernel.run_float(sig, x, run);
        const auto ky = kernel.run_float(sig, y, run);
        for (std::size_t i = 0; i < rhs.size(); ++i)
            rhs[i] = tropical ? std::max(rhs[i], ky[i]) : rhs[i] + ky[i];
        const auto v = validate_float(rhs, lhs, opts);
        if (!v.ok)
            return failure_detail("superposition violated", v);
        return std::nullopt;
      }
      case Check::kImpulseDecay: {
        if (tropical || n < 128)
            return std::nullopt;
        const auto impulse = dsp::impulse(n);
        const auto out = kernel.run_float(sig, impulse, run);
        double head = 0.0, tail = 0.0;
        for (std::size_t i = 0; i < n / 2; ++i)
            head = std::max(head, std::fabs(static_cast<double>(out[i])));
        for (std::size_t i = (3 * n) / 4; i < n; ++i)
            tail = std::max(tail, std::fabs(static_cast<double>(out[i])));
        const double rho = dsp::spectral_radius(sig);
        const double bound =
            head * std::pow(std::min(rho, 0.999), static_cast<double>(n) / 4) *
                1e3 +
            1e-6;
        if (!(tail <= bound)) {
            std::ostringstream os;
            os << "impulse response fails to decay: tail max " << tail
               << " > bound " << bound << " (spectral radius " << rho << ")";
            return os.str();
        }
        return std::nullopt;
      }
      case Check::kCheckpointResume:
        return tropical
                   ? check_crash_resume<TropicalRing>(kernel, sig, x, run,
                                                      opts)
                   : check_crash_resume<FloatRing>(kernel, sig, x, run, opts);
      case Check::kBatchedSegments:
        return tropical
                   ? check_batched_segments<TropicalRing>(sig, x, run, opts)
                   : check_batched_segments<FloatRing>(sig, x, run, opts);
      case Check::kBoundDominance: {
        namespace sa = static_analysis;
        if (tropical)
            return std::nullopt;  // max-plus envelopes are unanalyzed
        const sa::StaticReport report =
            dominance_report(sig, sa::ValueDomain::kFloat32, n, run);
        const sa::PathReport* serial = report.find(sa::PathKind::kSerial);
        if (serial == nullptr)
            return std::nullopt;
        const sa::RangeReport& range = serial->range;
        if (range.verdict == sa::OverflowVerdict::kProvenOverflow) {
            if (range.witness_index == sa::kNoIndex ||
                !(std::fabs(range.witness_value) > sa::kFloat32RangeLimit)) {
                std::ostringstream os;
                os << "vacuous proven-overflow verdict: witness value "
                   << range.witness_value << " does not exceed the float "
                   << "range limit";
                return os.str();
            }
            return std::nullopt;
        }
        if (range.verdict != sa::OverflowVerdict::kProvenSafe)
            return std::nullopt;
        const std::vector<double> wide = wide_serial(sig, x, {});
        const double envelope = range.final_bound * (1.0 + 1e-9);
        for (std::size_t t = 0; t < wide.size(); ++t) {
            if (!(std::fabs(wide[t]) <= envelope)) {
                std::ostringstream os;
                os << "observed wide value " << wide[t] << " at index " << t
                   << " exceeds the proven envelope " << range.final_bound;
                return os.str();
            }
        }
        if (!serial->error.available)
            return std::nullopt;  // no a-priori error bound to enforce
        const auto got = kernel.run_float(sig, x, run);
        const auto want = kernels::serial_recurrence<FloatRing>(sig, x);
        double max_diff = 0.0;
        for (std::size_t t = 0; t < got.size(); ++t) {
            if (!std::isfinite(got[t])) {
                std::ostringstream os;
                os << "proven-safe signature produced non-finite value at "
                   << "index " << t;
                return os.str();
            }
            max_diff = std::max(
                max_diff, std::fabs(static_cast<double>(got[t]) -
                                    static_cast<double>(want[t])));
        }
        if (!(max_diff <= serial->error.abs_bound)) {
            std::ostringstream os;
            os << "observed divergence " << max_diff
               << " exceeds the a-priori forward-error bound "
               << serial->error.abs_bound;
            return os.str();
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
}

}  // namespace

const char*
to_string(Check c)
{
    switch (c) {
      case Check::kDifferential: return "differential";
      case Check::kChunkInvariance: return "chunk-invariance";
      case Check::kHomogeneity: return "homogeneity";
      case Check::kSuperposition: return "superposition";
      case Check::kImpulseDecay: return "impulse-decay";
      case Check::kCheckpointResume: return "checkpoint-resume";
      case Check::kBatchedSegments: return "batched-segments";
      case Check::kBoundDominance: return "bound-dominance";
    }
    return "unknown";
}

Check
parse_check(const std::string& name)
{
    for (Check c : {Check::kDifferential, Check::kChunkInvariance,
                    Check::kHomogeneity, Check::kSuperposition,
                    Check::kImpulseDecay, Check::kCheckpointResume,
                    Check::kBatchedSegments, Check::kBoundDominance})
        if (name == to_string(c))
            return c;
    // Reached from user-supplied reproducer lines, so fatal, not panic.
    PLR_FATAL("unknown conformance check '" << name << "'");
}

std::string
ConformanceReport::summary() const
{
    std::ostringstream os;
    os << cases_run << " cases over " << kernels_checked << " kernels ("
       << cases_skipped << " unsupported combinations skipped): "
       << (ok() ? "all passed" : std::to_string(failures.size()) + " FAILED");
    for (const ConformanceFailure& f : failures)
        os << "\n  " << f.reproducer() << "\n    " << f.detail;
    return os.str();
}

std::optional<ConformanceFailure>
run_case(const kernels::KernelInfo& kernel, const std::string& entry_name,
         const Signature& sig, Domain domain, Check check, std::size_t n,
         const kernels::RunOptions& run, std::uint64_t input_seed,
         const OracleOptions& opts)
{
    std::optional<std::string> detail;
    try {
        if (domain == Domain::kInt)
            detail = check_int(kernel, sig, check, n, run, input_seed, opts);
        else
            detail = check_float(kernel, sig, domain, check, n, run,
                                 input_seed, opts);
    } catch (const PanicError& error) {
        // A kernel-protocol failure (including a watchdog LaunchError) is a
        // reportable, replayable conformance failure — it must not abort
        // the rest of the sweep. FatalError (a harness usage error) still
        // propagates.
        detail = std::string("kernel raised: ") + error.what();
    }
    if (!detail)
        return std::nullopt;
    return ConformanceFailure{kernel.name, entry_name, domain,   sig,
                              check,       n,          run,      input_seed,
                              *detail};
}

ConformanceReport
run_conformance(const std::vector<kernels::KernelInfo>& kernels,
                const std::vector<CorpusEntry>& corpus,
                const OracleOptions& opts)
{
    ConformanceReport report;
    for (const kernels::KernelInfo& kernel : kernels) {
        if (kernel.is_reference)
            continue;
        ++report.kernels_checked;
        for (const CorpusEntry& entry : corpus) {
            if (!kernel.supports || !kernel.supports(entry.sig, entry.domain)) {
                ++report.cases_skipped;
                continue;
            }
            auto sizes = opts.sizes.empty()
                             ? conformance_sizes(opts.chunk,
                                                 entry.sig.order())
                             : opts.sizes;
            // Growing float recurrences accumulate relative error (and
            // eventually overflow); cap their sizes so the 1e-3 gate
            // stays meaningful.
            if (!entry.stable && entry.domain != Domain::kInt) {
                std::erase_if(sizes, [&](std::size_t n) {
                    return n > opts.unstable_max_n;
                });
            }
            kernels::RunOptions run;
            run.chunk = opts.chunk;
            run.threads = opts.threads;
            run.fault_seed = opts.fault_seed;
            run.spin_watchdog = opts.spin_watchdog;
            run.race_detect = opts.race_detect;
            run.invariants = opts.invariants;
            run.sdc = opts.sdc;
            run.verify = opts.verify;
            run.checkpoint_every = opts.checkpoint_every;
            run.crash_seed = opts.crash_seed;
            run.batch_seed = opts.batch_seed;
            for (std::size_t n : sizes) {
                const std::uint64_t input_seed = derive_seed(
                    opts.input_seed, n * 2654435761u + entry.sig.order());
                std::vector<Check> checks = {Check::kDifferential};
                if (opts.metamorphic && n > 0) {
                    if (kernel.chunk_sensitive)
                        checks.push_back(Check::kChunkInvariance);
                    // Homogeneity holds bit-exactly in every ring (the
                    // float scalar is 2, an exponent shift). Float
                    // superposition is only meaningful for bounded
                    // outputs: growing recurrences amplify the x-vs-x+y
                    // rounding difference past any fixed gate. Integer
                    // and max-plus superposition are exact.
                    checks.push_back(Check::kHomogeneity);
                    if (entry.domain != Domain::kFloat || entry.stable)
                        checks.push_back(Check::kSuperposition);
                    if (entry.stable && entry.domain == Domain::kFloat &&
                        n >= 128)
                        checks.push_back(Check::kImpulseDecay);
                    // Bound dominance validates the plan-time static
                    // analyzer against this very run: proven envelopes
                    // must contain the observed wide values, and a-priori
                    // float error bounds must dominate the observed
                    // divergence (docs/STATIC_ANALYSIS.md).
                    if (entry.domain != Domain::kTropical)
                        checks.push_back(Check::kBoundDominance);
                }
                // Streaming durability is opt-in (it multiplies runtime
                // by the segment count) and needs a non-empty stream.
                if (opts.checkpoint_every > 0 && n > 0)
                    checks.push_back(Check::kCheckpointResume);
                // Fused batching is opt-in too (it replays the stream
                // round-by-round) and needs a non-empty input.
                if (opts.batch_seed != 0 && n > 0)
                    checks.push_back(Check::kBatchedSegments);
                for (Check check : checks) {
                    ++report.cases_run;
                    auto failure = run_case(kernel, entry.name, entry.sig,
                                            entry.domain, check, n, run,
                                            input_seed, opts);
                    if (failure)
                        report.failures.push_back(std::move(*failure));
                }
            }
        }
    }

    std::string log_path = opts.repro_log;
    if (log_path.empty())
        log_path = env::string_or("PLR_REPRO_LOG");
    if (!log_path.empty() && !report.failures.empty()) {
        std::ofstream log(log_path, std::ios::app);
        for (const ConformanceFailure& f : report.failures)
            log << f.reproducer() << "\n";
    }
    return report;
}

}  // namespace plr::testing
