#include "testing/race_canary.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "gpusim/device.h"
#include "util/ring.h"

namespace plr::testing {

namespace {

using kernels::Domain;
using kernels::KernelInfo;
using kernels::RunOptions;

/**
 * Single-window decoupled look-back prefix sum: chunk c publishes its
 * local aggregate, waits on chunk c-1's inclusive (global) flag, and
 * publishes its own inclusive state. The victim chunk (if any) drops its
 * fences or skips the acquire, per race_canary_mode. One chunk per block,
 * so chunk index == block index and the victim's epochs are untouched by
 * unrelated fences.
 */
template <typename Ring>
std::vector<typename Ring::value_type>
run_race_canary(const Signature&,
                std::span<const typename Ring::value_type> input,
                const RunOptions& opts)
{
    using V = typename Ring::value_type;
    if (input.empty())
        return {};

    const std::size_t n = input.size();
    const std::size_t chunk = opts.chunk ? opts.chunk : 64;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;

    gpusim::Device device;
    if (opts.fault_seed != 0)
        device.set_fault_plan(
            std::make_shared<gpusim::FaultPlan>(opts.fault_seed));
    if (opts.spin_watchdog != 0)
        device.set_spin_watchdog_limit(opts.spin_watchdog);
    if (opts.race_detect || opts.invariants) {
        analysis::AnalysisConfig config;
        config.race_detect = opts.race_detect;
        config.invariants = opts.invariants;
        device.enable_analysis(config);
    }

    auto in = device.alloc<V>(n, "race_canary.in");
    auto out = device.alloc<V>(n, "race_canary.out");
    auto local_state = device.alloc<V>(num_chunks, "race_canary.local");
    auto global_state = device.alloc<V>(num_chunks, "race_canary.global");
    auto local_flags =
        device.alloc<std::uint32_t>(num_chunks, "race_canary.local_flags");
    auto global_flags =
        device.alloc<std::uint32_t>(num_chunks, "race_canary.global_flags");
    device.upload(in, input);

    analysis::ProtocolSpec spec;
    spec.label = "race_canary";
    spec.num_chunks = num_chunks;
    spec.width = 1;
    spec.value_bytes = sizeof(V);
    spec.local_flags = local_flags.alloc_id;
    spec.global_flags = global_flags.alloc_id;
    spec.local_state = local_state.alloc_id;
    spec.global_state = global_state.alloc_id;
    gpusim::ProtocolGuard protocol_guard(device, std::move(spec));

    const std::size_t victim =
        race_canary_victim(opts.fault_seed, num_chunks);
    const RaceCanaryMode mode = race_canary_mode(opts.fault_seed, victim);

    auto body = [&](gpusim::BlockContext& ctx) {
        const std::size_t chunk_id = ctx.block_index();
        ctx.note_chunk(chunk_id);
        const bool drop_fence =
            chunk_id == victim && mode == RaceCanaryMode::kDroppedFence;
        const bool early_read =
            chunk_id == victim && mode == RaceCanaryMode::kEarlyCarryRead;

        const std::size_t begin = chunk_id * chunk;
        const std::size_t end = std::min(n, begin + chunk);

        std::vector<V> sums(end - begin);
        V running = Ring::zero();
        for (std::size_t i = begin; i < end; ++i) {
            running = Ring::add(running, ctx.ld(in, i));
            sums[i - begin] = running;
        }

        ctx.note_site("publish-local");
        ctx.st(local_state, chunk_id, running);
        if (!drop_fence)
            ctx.threadfence();
        ctx.st_release(local_flags, chunk_id, 1);
        ctx.note_site(nullptr);

        V carry = Ring::zero();
        if (chunk_id > 0) {
            if (early_read) {
                // The seeded bug: no acquire of the predecessor's flag, so
                // there is no happens-before edge covering this read — it
                // may even observe the pre-publish zero.
                ctx.note_site("early-carry-read");
                carry = ctx.ld(global_state, chunk_id - 1);
                ctx.note_site(nullptr);
            } else {
                ctx.note_site("look-back");
                while (ctx.ld_acquire(global_flags, chunk_id - 1) == 0) {
                    ctx.note_wait(chunk_id - 1, "look-back");
                    ctx.spin_wait();
                }
                ctx.note_progress();
                carry = ctx.ld(global_state, chunk_id - 1);
                ctx.note_site(nullptr);
            }
        }

        ctx.note_site("publish-global");
        ctx.st(global_state, chunk_id, Ring::add(carry, running));
        if (!drop_fence)
            ctx.threadfence();
        ctx.st_release(global_flags, chunk_id, 1);
        ctx.note_site(nullptr);

        for (std::size_t i = begin; i < end; ++i)
            ctx.st(out, i, Ring::add(carry, sums[i - begin]));
    };

    device.launch(num_chunks, body);

    std::vector<V> result = device.download(out);
    device.memory().free(local_state);
    device.memory().free(global_state);
    device.memory().free(local_flags);
    device.memory().free(global_flags);
    device.memory().free(in);
    device.memory().free(out);
    return result;
}

}  // namespace

KernelInfo
race_canary_kernel()
{
    KernelInfo info;
    info.name = "race_canary";
    info.description =
        "deliberately synchronization-broken look-back prefix sum: the "
        "fault seed picks a chunk that drops its fences or reads a carry "
        "unacquired (race-detector canary)";
    info.supports = [](const Signature& sig, Domain domain) {
        if (domain == Domain::kTropical || sig.is_max_plus())
            return false;
        return sig.a() == std::vector<double>{1.0} &&
               sig.b() == std::vector<double>{1.0};
    };
    info.run_int = run_race_canary<IntRing>;
    info.run_float = run_race_canary<FloatRing>;
    return info;
}

std::size_t
race_canary_victim(std::uint64_t fault_seed, std::size_t num_chunks)
{
    if (fault_seed == 0 || num_chunks < 3)
        return gpusim::BlockForensics::kNone;
    const gpusim::FaultPlan plan(fault_seed);
    for (std::size_t q = 1; q + 1 < num_chunks; ++q) {
        if (plan.coin(kRaceCanarySalt, q, kRaceCanaryProbability))
            return q;
    }
    return gpusim::BlockForensics::kNone;
}

RaceCanaryMode
race_canary_mode(std::uint64_t fault_seed, std::size_t victim)
{
    if (fault_seed == 0 || victim == gpusim::BlockForensics::kNone)
        return RaceCanaryMode::kDroppedFence;
    const gpusim::FaultPlan plan(fault_seed);
    return plan.coin(kRaceCanaryModeSalt, victim, 0.5)
               ? RaceCanaryMode::kEarlyCarryRead
               : RaceCanaryMode::kDroppedFence;
}

}  // namespace plr::testing
