#ifndef PLR_CORE_CODEGEN_H_
#define PLR_CORE_CODEGEN_H_

/**
 * @file
 * The PLR domain-specific compiler (paper Section 3): translates a
 * recurrence signature into a self-contained CUDA source file.
 *
 * The emitted program follows the paper's eight code sections:
 *   1. constant factor arrays (correction factors, possibly specialized),
 *   2. kernel prologue: atomic chunk-id counter + chunk load,
 *   3. the map operation (eq. 2) eliminating the non-recursive taps,
 *   4. Phase 1: unrolled shuffle merges up to warp width, then
 *      shared-memory merges across warps,
 *   5. local-carry publication behind a fence and flag,
 *   6. variable look-back and carry correction,
 *   7. result store,
 *   8. one kernel per per-thread element count x plus a main() that picks
 *      a kernel, times it, and validates against the serial code.
 *
 * The Section-3.1 optimizations specialize the factor accesses: constant
 * folding, 0/1 conditional adds, periodic compression, shared-memory
 * caching of the first 1024 factors, decayed-tail suppression, and
 * shifted-list sharing.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "core/factor_analysis.h"
#include "core/plan.h"
#include "core/signature.h"

namespace plr {

/** Options controlling CUDA emission. */
struct CodegenOptions {
    /** Section-3.1 optimization toggles. */
    Optimizations opts;
    /**
     * Per-thread element counts to emit kernels for; empty = the
     * defaults {1, 3, 5, 7, 9[, 11]} up to the type's cap.
     */
    std::vector<std::size_t> x_values;
    /** Threads per block. */
    std::size_t block_threads = 1024;
    /** Emit the testing main() (timing + validation), Section 3 item 8. */
    bool emit_main = true;
};

/** Result of code generation. */
struct GeneratedCode {
    /** The complete CUDA translation unit. */
    std::string source;
    /** x values kernels were emitted for. */
    std::vector<std::size_t> x_values;
    /** Elements emitted per factor array (after compression/decay). */
    std::vector<std::size_t> factor_array_elems;
    /** Factor-set analysis the specializations were derived from. */
    FactorSetProperties factor_properties;
    /** True when the code uses exact int32 arithmetic. */
    bool is_integer = false;
};

/**
 * Translate @p sig into CUDA. Runs the same planning and factor analysis
 * as the simulator kernel, so the emitted specializations match the
 * modeled ones.
 */
GeneratedCode generate_cuda(const Signature& sig,
                            const CodegenOptions& options = CodegenOptions{});

}  // namespace plr

#endif  // PLR_CORE_CODEGEN_H_
