#include "core/codegen_cpp.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "analysis/static/bounds.h"
#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "util/code_writer.h"
#include "util/diag.h"
#include "util/ring.h"

namespace plr {

namespace {

std::string
literal(double v, bool is_integer)
{
    if (is_integer)
        return std::to_string(static_cast<long long>(std::llround(v)));
    std::ostringstream os;
    os << std::setprecision(17) << v;
    std::string s = os.str();
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos)
        s += ".0";
    return s;
}

/** Short scientific rendering for verdict comments. */
std::string
bound_text(double v)
{
    std::ostringstream os;
    os << std::setprecision(3) << v;
    return os.str();
}

}  // namespace

GeneratedCppCode
generate_cpp(const Signature& sig, const CppCodegenOptions& options)
{
    PLR_REQUIRE(sig.order() >= 1,
                "the C++ backend needs a recurrence of order >= 1");
    PLR_REQUIRE(!sig.is_max_plus(),
                "the C++ backend emits ring arithmetic; max-plus signatures "
                "run through the library API");
    const bool is_int = sig.is_integral();
    const std::size_t k = sig.order();

    Optimizations opts = options.opts;
    if (is_int) {
        opts.flush_denormals = false;
        opts.zero_tail_suppress = false;
    }

    // Generation-time factor analysis on a prototype list: constant and
    // 0/1 specializations hold for any length because the generating
    // recurrence reproduces the observed fixed point / value set, and a
    // period verified over the prototype (which spans period + order
    // elements) repeats a full recurrence state, so it holds forever.
    constexpr std::size_t kPrototype = 4096;
    // Largest period stored as a literal array; longer periods fall
    // back to the runtime factor table.
    constexpr std::size_t kMaxPeriodLiteral = 64;
    std::vector<bool> constant(k, false), conditional(k, false);
    std::vector<bool> const_zero(k, false), const_one(k, false);
    std::vector<bool> periodic(k, false);
    std::vector<std::size_t> period_len(k, 0);
    std::vector<std::size_t> eff_len(k, kPrototype);
    std::vector<std::string> const_value(k);
    std::vector<std::string> period_values(k);
    GeneratedCppCode out;
    out.is_integer = is_int;
    auto analyze = [&](auto ring_tag) {
        using Ring = decltype(ring_tag);
        const auto factors = CorrectionFactors<Ring>::generate(
            sig.recursive_part(), kPrototype, opts.flush_denormals);
        const auto props = analyze_factors(factors);
        for (std::size_t j = 1; j <= k; ++j) {
            constant[j - 1] =
                opts.constant_fold && props.lists[j - 1].all_equal;
            conditional[j - 1] =
                opts.conditional_add && props.lists[j - 1].all_zero_one;
            const_zero[j - 1] =
                constant[j - 1] && Ring::is_zero(factors.factor(j, 0));
            const_one[j - 1] =
                constant[j - 1] && Ring::is_one(factors.factor(j, 0));
            // Specialization priority: constant > conditional > periodic.
            // Period compression is exact-ring-only: float lists are
            // subject to flushing/rounding, never provably periodic.
            periodic[j - 1] = Ring::is_exact && opts.periodic_compress &&
                              !constant[j - 1] && !conditional[j - 1] &&
                              props.lists[j - 1].period >= 1 &&
                              props.lists[j - 1].period <= kMaxPeriodLiteral;
            eff_len[j - 1] = props.lists[j - 1].effective_length;
            if (periodic[j - 1]) {
                period_len[j - 1] = props.lists[j - 1].period;
                std::ostringstream vals;
                for (std::size_t o = 0; o < period_len[j - 1]; ++o)
                    vals << (o ? ", " : "")
                         << std::to_string(factors.factor(j, o));
                period_values[j - 1] = vals.str();
            }
            if constexpr (Ring::is_exact)
                const_value[j - 1] = std::to_string(factors.factor(j, 0));
            else
                const_value[j - 1] =
                    literal(static_cast<double>(factors.factor(j, 0)),
                            false) +
                    "f";
            out.constant_lists += constant[j - 1] ? 1 : 0;
            out.conditional_lists +=
                (!constant[j - 1] && conditional[j - 1]) ? 1 : 0;
            out.periodic_lists += periodic[j - 1] ? 1 : 0;
            out.elided_lists += const_zero[j - 1] ? 1 : 0;
            out.elided_multiplies += const_one[j - 1] ? 1 : 0;
        }
    };
    if (is_int)
        analyze(IntRing{});
    else
        analyze(FloatRing{});

    // Plan-time static analysis (docs/STATIC_ANALYSIS.md): the overflow
    // verdict under the conformance input model and the truncation bound
    // of decayed-tail suppression, both from the analyzer's numeric core.
    // Suppression with a truncation bound that cannot be proven below the
    // float unit roundoff is disabled rather than emitted unsoundly.
    namespace sa = static_analysis;
    const double input_bound =
        is_int ? sa::kConformanceIntInputBound : sa::kConformanceFloatInputBound;
    const double range_limit =
        is_int ? sa::kInt32RangeLimit : sa::kFloat32RangeLimit;
    const sa::EnvelopeScan scan = sa::scan_envelope(
        sig.a(), sig.b(), input_bound, kPrototype, range_limit);
    if (scan.first_may_exceed == sa::kNoIndex) {
        out.range_verdict = scan.complete ? "proven-safe" : "unknown";
    } else {
        const std::size_t witness = scan.first_must_exceed != sa::kNoIndex
                                        ? scan.first_must_exceed
                                        : scan.first_may_exceed;
        out.overflow_witness = witness;
        const sa::WitnessEval eval = sa::evaluate_witness(
            sig.a(), sig.b(), input_bound, scan.signs, witness, range_limit);
        out.range_verdict =
            eval.evaluated && eval.exceeds ? "proven-overflow" : "may-overflow";
    }
    if (!is_int && opts.zero_tail_suppress) {
        double tail_mass = 0.0;
        for (std::size_t j = 1; j <= k; ++j)
            tail_mass +=
                sa::factor_tail_abs_sum(sig.b(), j, eff_len[j - 1], kPrototype);
        out.truncation_rel_bound = tail_mass;
        if (tail_mass > sa::kFloat32UnitRoundoff) {
            opts.zero_tail_suppress = false;
            out.suppression_disabled = true;
        }
    }

    CodeWriter w;
    const char* val_t = is_int ? "int" : "float";

    w.line("// Generated by PLR (Parallelized Linear Recurrences), C++");
    w.line("// backend. Signature: " + sig.to_string());
    w.line("// Build: g++ -std=c++17 -O2 -pthread <this file>");
    w.line("//");
    w.line("// Static analysis (docs/STATIC_ANALYSIS.md), input model |x| <= " +
           literal(input_bound, true) + ", n = " + std::to_string(kPrototype) +
           ":");
    {
        std::string range_line = "//   range: " + out.range_verdict;
        if (out.overflow_witness != sa::kNoIndex)
            range_line += " (witness index " +
                          std::to_string(out.overflow_witness) + ", envelope " +
                          bound_text(scan.bound_at_crossing) + ")";
        else
            range_line += " (envelope <= " + bound_text(scan.final_bound) + ")";
        w.line(range_line);
    }
    if (is_int) {
        w.line("//   corrections: exact int ring; suppression drops literal "
               "zeros only");
    } else if (out.suppression_disabled) {
        w.line("//   decayed-tail suppression: DISABLED (relative truncation "
               "bound " + bound_text(out.truncation_rel_bound) +
               " above unit roundoff)");
    } else if (opts.zero_tail_suppress) {
        w.line("//   decayed-tail suppression: relative truncation bound <= " +
               (out.truncation_rel_bound == 0.0
                    ? std::string("0 (exact)")
                    : bound_text(out.truncation_rel_bound)));
    }
    w.line();
    w.line("#include <cmath>");
    w.line("#include <cstdint>");
    w.line("#include <cstdio>");
    w.line("#include <cstdlib>");
    w.line("#include <thread>");
    w.line("#include <vector>");
    w.line();
    w.line("typedef " + std::string(val_t) + " val_t;");
    w.line("#define PLR_ORDER " + std::to_string(k));
    w.line();
    if (is_int) {
        w.line("// Exact two's-complement arithmetic (mod 2^32), matching");
        w.line("// the GPU and allowing bit-exact validation.");
        w.line("static inline val_t plr_add(val_t a, val_t b)");
        w.line("{ return (val_t)((uint32_t)a + (uint32_t)b); }");
        w.line("static inline val_t plr_mul(val_t a, val_t b)");
        w.line("{ return (val_t)((uint32_t)a * (uint32_t)b); }");
    } else {
        w.line("static inline val_t plr_add(val_t a, val_t b) { return a + "
               "b; }");
        w.line("static inline val_t plr_mul(val_t a, val_t b) { return a * "
               "b; }");
    }
    w.line();

    // Coefficients.
    {
        std::ostringstream a_init, b_init;
        for (std::size_t j = 0; j < sig.a().size(); ++j)
            a_init << (j ? ", " : "") << literal(sig.a()[j], is_int)
                   << (is_int ? "" : "f");
        for (std::size_t j = 0; j < k; ++j)
            b_init << (j ? ", " : "") << literal(sig.b()[j], is_int)
                   << (is_int ? "" : "f");
        w.line("static const val_t plr_a[" +
               std::to_string(sig.a().size()) + "] = {" + a_init.str() +
               "};");
        w.line("static const val_t plr_b[PLR_ORDER] = {" + b_init.str() +
               "};");
    }
    w.line();

    // Factor tables, computed once at startup (Section 2.1).
    w.line("// Correction factors: the (b...)-nacci sequences, computed at");
    w.line("// startup with the recurrence (0 : b...); list j is seeded");
    w.line("// with the unit vector marking carry j.");
    w.line("static std::vector<val_t> plr_factor[PLR_ORDER];");
    w.line("static size_t plr_eff[PLR_ORDER];");
    w.open("static void plr_compute_factors(size_t m)");
    w.dedent();
    w.open("{");
    w.open("for (size_t j = 1; j <= PLR_ORDER; j++) {");
    w.line("std::vector<val_t> hist(PLR_ORDER, (val_t)0);");
    w.line("hist[j - 1] = (val_t)1;");
    w.line("std::vector<val_t>& f = plr_factor[j - 1];");
    w.line("f.assign(m, (val_t)0);");
    w.open("for (size_t t = 0; t < m; t++) {");
    w.line("val_t acc = (val_t)0;");
    w.line("for (size_t i = 1; i <= PLR_ORDER; i++)");
    w.line("    acc = plr_add(acc, plr_mul(plr_b[i - 1], hist[i - 1]));");
    if (opts.flush_denormals)
        w.line("if (std::fabs((double)acc) < 1.17549435e-38) acc = 0.0f;");
    w.line("f[t] = acc;");
    w.line("for (size_t i = PLR_ORDER; i-- > 1;) hist[i] = hist[i - 1];");
    w.line("hist[0] = acc;");
    w.close();
    if (opts.zero_tail_suppress) {
        w.line("// Decayed-tail suppression: corrections beyond the last");
        w.line("// nonzero factor are skipped (Section 3.1).");
        w.line("size_t eff = m;");
        w.line("while (eff > 0 && f[eff - 1] == (val_t)0) eff--;");
        w.line("plr_eff[j - 1] = eff;");
    } else {
        w.line("plr_eff[j - 1] = m;");
    }
    w.close();
    w.close();
    w.line();

    // Serial reference.
    w.open("static void plr_serial(const val_t* x, val_t* y, size_t n)");
    w.dedent();
    w.open("{");
    w.open("for (size_t i = 0; i < n; i++) {");
    w.line("val_t acc = (val_t)0;");
    w.line("for (size_t j = 0; j < " + std::to_string(sig.a().size()) +
           " && j <= i; j++)");
    w.line("    acc = plr_add(acc, plr_mul(plr_a[j], x[i - j]));");
    w.line("for (size_t j = 1; j <= PLR_ORDER && j <= i; j++)");
    w.line("    acc = plr_add(acc, plr_mul(plr_b[j - 1], y[i - j]));");
    w.line("y[i] = acc;");
    w.close();
    w.close();
    w.line();

    // Compressed periodic factor lists (Section 3.1): one period as a
    // literal array, indexed mod its length.
    {
        bool any_periodic = false;
        for (std::size_t j = 1; j <= k; ++j)
            any_periodic = any_periodic || periodic[j - 1];
        if (any_periodic) {
            w.line("// Periodic factor lists stored compressed: the");
            w.line("// generating recurrence repeats a full state inside");
            w.line("// the analysis window, so one period is exact.");
            for (std::size_t j = 1; j <= k; ++j)
                if (periodic[j - 1])
                    w.line("static const val_t plr_period_" +
                           std::to_string(j - 1) + "[" +
                           std::to_string(period_len[j - 1]) + "] = {" +
                           period_values[j - 1] + "};");
            w.line();
        }
    }

    // Correction helper with the generation-time specializations.
    w.line("// One correction term per carry; factor lists that are");
    w.line("// constant, 0/1, or periodic were specialized when this file");
    w.line("// was generated.");
    w.open("static inline val_t plr_correct(val_t acc, size_t o, const "
           "val_t* carry)");
    w.dedent();
    w.open("{");
    w.line("(void)o;");
    for (std::size_t j = 1; j <= k; ++j) {
        const std::string J = std::to_string(j - 1);
        std::string stmt;
        if (const_zero[j - 1]) {
            stmt = "// constant-folded list " + std::to_string(j) +
                   " elided: all factors zero.";
            w.line(stmt);
            continue;
        } else if (const_one[j - 1]) {
            stmt = "acc = plr_add(acc, carry[" + J +
                   "]);  // constant-folded list " + std::to_string(j) +
                   " (factor one: multiply elided)";
        } else if (constant[j - 1]) {
            stmt = "acc = plr_add(acc, plr_mul((val_t)" +
                   const_value[j - 1] + ", carry[" + J + "]));"
                   "  // constant-folded list " + std::to_string(j);
        } else if (conditional[j - 1]) {
            stmt = "if (plr_factor[" + J + "][o]) acc = plr_add(acc, carry[" +
                   J + "]);  // 0/1 list " + std::to_string(j);
        } else if (periodic[j - 1]) {
            stmt = "acc = plr_add(acc, plr_mul(plr_period_" + J + "[o % " +
                   std::to_string(period_len[j - 1]) + "], carry[" + J +
                   "]));  // periodic list " + std::to_string(j) +
                   " (period " + std::to_string(period_len[j - 1]) + ")";
        } else {
            stmt = "acc = plr_add(acc, plr_mul(plr_factor[" + J +
                   "][o], carry[" + J + "]));";
        }
        if (opts.zero_tail_suppress && !constant[j - 1] && !periodic[j - 1])
            stmt = "if (o < plr_eff[" + J + "]) { " + stmt + " }";
        w.line(stmt);
    }
    w.line("return acc;");
    w.close();
    w.line();

    // Phase-B bulk correction: one contiguous loop per carry instead of
    // a per-element call, so the host compiler can auto-vectorize each
    // specialization (broadcast adds for constants, masked adds for 0/1
    // lists, modular indexing for periodic lists).
    w.line("// Phase-B chunk correction: per-carry contiguous loops (the");
    w.line("// specializations of plr_correct, in vectorizable form).");
    w.open("static void plr_correct_chunk(val_t* y, size_t len, const "
           "val_t* carry)");
    w.dedent();
    w.open("{");
    w.line("(void)y; (void)len; (void)carry;");
    for (std::size_t j = 1; j <= k; ++j) {
        const std::string J = std::to_string(j - 1);
        const std::string lim =
            opts.zero_tail_suppress
                ? "(len < plr_eff[" + J + "] ? len : plr_eff[" + J + "])"
                : "len";
        if (const_zero[j - 1]) {
            w.line("// constant-folded list " + std::to_string(j) +
                   " elided: all factors zero.");
        } else if (const_one[j - 1]) {
            w.line("{ const val_t c = carry[" + J + "]; for (size_t o = 0; "
                   "o < len; o++) y[o] = plr_add(y[o], c); }  // "
                   "constant-folded list " + std::to_string(j) +
                   " (factor one)");
        } else if (constant[j - 1]) {
            w.line("{ const val_t c = plr_mul((val_t)" + const_value[j - 1] +
                   ", carry[" + J + "]); for (size_t o = 0; o < len; o++) "
                   "y[o] = plr_add(y[o], c); }  // constant-folded list " +
                   std::to_string(j));
        } else if (conditional[j - 1]) {
            w.line("{ const val_t c = carry[" + J + "]; const size_t lim = " +
                   lim + "; for (size_t o = 0; o < lim; o++) if "
                   "(plr_factor[" + J + "][o]) y[o] = plr_add(y[o], c); }  "
                   "// 0/1 list " + std::to_string(j));
        } else if (periodic[j - 1]) {
            w.line("{ const val_t c = carry[" + J + "]; for (size_t o = 0; "
                   "o < len; o++) y[o] = plr_add(y[o], plr_mul(plr_period_" +
                   J + "[o % " + std::to_string(period_len[j - 1]) +
                   "], c)); }  // periodic list " + std::to_string(j) +
                   " (period " + std::to_string(period_len[j - 1]) + ")");
        } else {
            w.line("{ const val_t c = carry[" + J + "]; const size_t lim = " +
                   lim + "; for (size_t o = 0; o < lim; o++) y[o] = "
                   "plr_add(y[o], plr_mul(plr_factor[" + J + "][o], c)); }");
        }
    }
    w.close();
    w.line();

    // Parallel two-phase implementation.
    w.line("// Two-phase parallel evaluation (paper Section 2, CPU");
    w.line("// mapping): per-thread serial chunks, a sequential O(T*k^2)");
    w.line("// carry fix-up, then parallel correction with the factors.");
    w.open("static void plr_parallel(const val_t* x, val_t* y, size_t n, "
           "size_t threads)");
    w.dedent();
    w.open("{");
    w.line("if (threads < 2 || n < threads * 4 * PLR_ORDER || n < 1024) { "
           "plr_serial(x, y, n); return; }");
    w.line("const size_t chunk = (n + threads - 1) / threads;");
    w.line("const size_t chunks = (n + chunk - 1) / chunk;");
    w.line("plr_compute_factors(chunk);");
    if (!sig.is_pure_recursive()) {
        w.line("// Map operation (eq. 2), embarrassingly parallel.");
        w.line("std::vector<val_t> t(n);");
        w.open("{");
        w.line("std::vector<std::thread> ws;");
        w.open("for (size_t c = 0; c < chunks; c++)");
        w.open("ws.emplace_back([&, c]() {");
        w.line("const size_t base = c * chunk;");
        w.line("const size_t len = base + chunk <= n ? chunk : n - base;");
        w.open("for (size_t i = base; i < base + len; i++) {");
        w.line("val_t acc = (val_t)0;");
        w.line("for (size_t j = 0; j < " + std::to_string(sig.a().size()) +
               " && j <= i; j++)");
        w.line("    acc = plr_add(acc, plr_mul(plr_a[j], x[i - j]));");
        w.line("t[i] = acc;");
        w.close();
        w.close("});");
        w.dedent();
        w.line("for (auto& worker : ws) worker.join();");
        w.close();
        w.line("const val_t* stage = t.data();");
    } else {
        w.line("const val_t* stage = x;");
    }
    w.line("// Phase A: independent serial recurrences per chunk.");
    w.open("{");
    w.line("std::vector<std::thread> ws;");
    w.open("for (size_t c = 0; c < chunks; c++)");
    w.open("ws.emplace_back([&, c]() {");
    w.line("const size_t base = c * chunk;");
    w.line("const size_t len = base + chunk <= n ? chunk : n - base;");
    w.open("for (size_t i = 0; i < len; i++) {");
    w.line("val_t acc = stage[base + i];");
    w.line("for (size_t j = 1; j <= PLR_ORDER && j <= i; j++)");
    w.line("    acc = plr_add(acc, plr_mul(plr_b[j - 1], y[base + i - j]));");
    w.line("y[base + i] = acc;");
    w.close();
    w.close("});");
    w.dedent();
    w.line("for (auto& worker : ws) worker.join();");
    w.close();
    w.line("// Sequential carry fix-up across chunk boundaries.");
    w.line("std::vector<std::vector<val_t>> carries(chunks);");
    w.line("std::vector<val_t> carry(PLR_ORDER, (val_t)0);");
    w.open("for (size_t c = 1; c < chunks; c++) {");
    w.line("const size_t pbase = (c - 1) * chunk;");
    w.line("const size_t plen = pbase + chunk <= n ? chunk : n - pbase;");
    w.line("std::vector<val_t> next(PLR_ORDER, (val_t)0);");
    w.line("for (size_t j = 1; j <= PLR_ORDER && j <= plen; j++)");
    w.line("    next[j - 1] = plr_correct(y[pbase + plen - j], plen - j, "
           "carry.data());");
    w.line("carry = next;");
    w.line("carries[c] = carry;");
    w.close();
    w.line("// Phase B: parallel correction of every chunk.");
    w.open("{");
    w.line("std::vector<std::thread> ws;");
    w.open("for (size_t c = 1; c < chunks; c++)");
    w.open("ws.emplace_back([&, c]() {");
    w.line("const size_t base = c * chunk;");
    w.line("const size_t len = base + chunk <= n ? chunk : n - base;");
    w.line("plr_correct_chunk(y + base, len, carries[c].data());");
    w.close("});");
    w.dedent();
    w.line("for (auto& worker : ws) worker.join();");
    w.close();
    w.close();
    w.line();

    if (options.emit_main) {
        w.open("int main(int argc, char* argv[])");
        w.dedent();
        w.open("{");
        w.line("const size_t n = argc > 1 ? (size_t)atoll(argv[1]) : "
               "(size_t)1 << 20;");
        w.line("size_t threads = argc > 2 ? (size_t)atoll(argv[2]) : " +
               (options.threads == 0
                    ? std::string("std::thread::hardware_concurrency()")
                    : std::to_string(options.threads)) +
               ";");
        w.line("if (threads == 0) threads = 1;");
        w.line("std::vector<val_t> x(n), ref(n), par(n);");
        if (is_int)
            w.line("for (size_t i = 0; i < n; i++) x[i] = (val_t)((int)(i % "
                   "199) - 99);");
        else
            w.line("for (size_t i = 0; i < n; i++) x[i] = (val_t)(((int)(i "
                   "% 199) - 99) / 99.0f);");
        w.line("plr_serial(x.data(), ref.data(), n);");
        w.line("plr_parallel(x.data(), par.data(), n, threads);");
        w.line("size_t bad = 0;");
        if (is_int) {
            w.line("for (size_t i = 0; i < n; i++) if (par[i] != ref[i]) "
                   "bad++;");
        } else {
            w.line("for (size_t i = 0; i < n; i++) { const double d = "
                   "std::fabs((double)par[i] - (double)ref[i]) / "
                   "(std::fabs((double)ref[i]) > 1.0 ? "
                   "std::fabs((double)ref[i]) : 1.0); if (d > 1e-3) bad++; }");
        }
        w.line("printf(\"n=%zu threads=%zu %s\\n\", n, threads, bad ? "
               "\"MISMATCH\" : \"ok\");");
        w.line("return bad ? 1 : 0;");
        w.close();
    }

    out.source = w.str();
    return out;
}

}  // namespace plr
