#include "core/codegen.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/correction_factors.h"
#include "util/code_writer.h"
#include "util/diag.h"
#include "util/ring.h"

namespace plr {

namespace {

/** Per-list emission strategy resolved from analysis + options. */
struct ListEmission {
    bool constant = false;        // single literal, no array
    bool conditional = false;     // 0/1 factors: conditional add
    bool shifted_alias = false;   // served by list 1 shifted
    std::size_t array_elems = 0;  // elements actually emitted
    std::size_t cache_elems = 0;  // elements buffered in shared memory
    std::size_t eff_len = 0;      // guard bound for decayed tails
    std::size_t period = 0;       // modulo for periodic access
    bool has_array() const { return !constant && !shifted_alias; }
};

std::string
format_value(double v, bool is_integer)
{
    if (is_integer)
        return std::to_string(static_cast<long long>(std::llround(v)));
    std::ostringstream os;
    os << std::setprecision(9) << v;
    std::string s = os.str();
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos)
        s += ".0";
    return s + "f";
}

template <typename Ring>
std::string
format_ring_value(typename Ring::value_type v)
{
    if constexpr (Ring::is_exact) {
        return std::to_string(v);
    } else {
        std::ostringstream os;
        os << std::setprecision(9) << v;
        std::string s = os.str();
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos)
            s += ".0";
        return s + "f";
    }
}

/** Emit the section-1 factor array / accessor macro for one list. */
template <typename Ring>
void
emit_factor_list(CodeWriter& w, const CorrectionFactors<Ring>& factors,
                 std::size_t j, const ListEmission& em, const char* val_t)
{
    const std::string name = "plr_factor_" + std::to_string(j);
    auto list = factors.list(j);

    if (em.constant) {
        w.line("// List " + std::to_string(j) +
               ": all factors equal; folded into a constant (Section 3.1).");
        w.line("#define PLR_FACTOR_" + std::to_string(j) + "(o) ((" +
               std::string(val_t) + ")" + format_ring_value<Ring>(list[0]) +
               ")");
        return;
    }
    if (em.shifted_alias) {
        w.line("// List " + std::to_string(j) +
               " equals list 1 shifted by one position; its array is");
        w.line("// suppressed (Section 3.1 future-work optimization).");
        w.line("#define PLR_FACTOR_" + std::to_string(j) +
               "(o) ((o) == 0 ? (" + std::string(val_t) + ")" +
               format_ring_value<Ring>(list[0]) + " : PLR_FACTOR_1((o) - 1))");
        return;
    }

    if (em.period < factors.length())
        w.line("// List " + std::to_string(j) + ": periodic with period " +
               std::to_string(em.period) +
               "; only the first repetition is stored (Section 3.1).");
    if (em.eff_len < factors.length())
        w.line("// List " + std::to_string(j) + ": decays to zero after " +
               std::to_string(em.eff_len) +
               " elements (denormals flushed, Section 3.1).");

    std::ostringstream init;
    for (std::size_t o = 0; o < em.array_elems; ++o) {
        if (o)
            init << (o % 8 == 0 ? ",\n    " : ", ");
        init << format_ring_value<Ring>(list[o]);
    }
    w.line("__device__ const " + std::string(val_t) + " " + name + "[" +
           std::to_string(em.array_elems) + "] = {");
    w.raw("    " + init.str() + "\n");
    w.line("};");

    const std::string idx =
        em.period < factors.length()
            ? "((o) % " + std::to_string(em.period) + ")"
            : "(o)";
    if (em.cache_elems > 0) {
        // The cache array is declared inside each kernel; the macro is
        // only expanded there.
        w.line("#define PLR_FACTOR_" + std::to_string(j) + "(o) (" + idx +
               " < " + std::to_string(em.cache_elems) + " ? " + name +
               "_cache[" + idx + "] : " + name + "[" + idx + "])");
    } else {
        w.line("#define PLR_FACTOR_" + std::to_string(j) + "(o) (" + name +
               "[" + idx + "])");
    }
}

/** One correction statement: acc += F_j[offset] * carry (specialized). */
std::string
correction_stmt(std::size_t j, const ListEmission& em,
                const std::string& offset, const std::string& carry,
                std::size_t m)
{
    std::string stmt;
    if (em.conditional)
        stmt = "if (PLR_FACTOR_" + std::to_string(j) + "(" + offset +
               ")) acc += " + carry + ";";
    else
        stmt = "acc += PLR_FACTOR_" + std::to_string(j) + "(" + offset +
               ") * " + carry + ";";
    if (em.eff_len < m)
        stmt = "if ((o) < " + std::to_string(em.eff_len) + ") { " + stmt +
               " }  // zero tail suppressed";
    return stmt;
}

}  // namespace

GeneratedCode
generate_cuda(const Signature& sig, const CodegenOptions& options)
{
    PLR_REQUIRE(sig.order() >= 1,
                "PLR generates code for recurrences of order >= 1; the last "
                "recursive coefficient must not be zero");
    const bool is_int = sig.is_integral();
    const std::size_t k = sig.order();
    const std::size_t threads = options.block_threads;
    const std::size_t x_cap = is_int ? 11 : 9;
    PLR_REQUIRE(k <= x_cap,
                "recurrence order " << k << " exceeds the supported cap");

    // Kernels keep each thread's x values in registers, so the carries a
    // merge needs (the last k values of the preceding thread chunk) must
    // fit in one thread: x >= k.
    std::vector<std::size_t> xs = options.x_values;
    if (xs.empty()) {
        for (std::size_t x = 1; x <= x_cap; x += 2)
            if (x >= k)
                xs.push_back(x);
        if (xs.empty() || xs.front() > k)
            xs.insert(xs.begin(), k);
    }
    for (std::size_t x : xs)
        PLR_REQUIRE(x >= k && x <= x_cap,
                    "per-thread element count " << x << " outside [" << k
                                                << ", " << x_cap << "]");
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    const std::size_t m_max = threads * xs.back();

    Optimizations opts = options.opts;
    if (is_int) {
        opts.flush_denormals = false;
        opts.zero_tail_suppress = false;
    }

    GeneratedCode out;
    out.is_integer = is_int;
    out.x_values = xs;

    std::vector<ListEmission> emissions(k);
    CodeWriter w;
    const char* val_t = is_int ? "int" : "float";

    // ---------------------------------------------------------- header
    w.line("// Generated by PLR (Parallelized Linear Recurrences).");
    w.line("// Signature: " + sig.to_string());
    w.line("// Recurrence order k = " + std::to_string(k) +
           ", feed-forward taps p = " + std::to_string(sig.fir_taps()) + ".");
    w.line("// Requires compute capability >= 3.0; sequences up to 4 GB.");
    w.line();
    w.line("#include <cmath>");
    w.line("#include <cstdio>");
    w.line("#include <cstdlib>");
    w.line("#include <cuda_runtime.h>");
    w.line();
    w.line("typedef " + std::string(val_t) + " val_t;");
    w.line("#define PLR_WARP 32");
    w.line("#define PLR_THREADS " + std::to_string(threads));
    w.line("#define PLR_ORDER " + std::to_string(k));
    w.line("#define PLR_WINDOW 32  // maximum look-back distance");
    w.line();

    // --------------------------------------------- section 1: factors
    w.line("// ---- Section 1: precomputed correction factors (the n-nacci");
    w.line("// sequences of the recurrence (0: b...), Section 2.1). One");
    w.line("// array per carry; the longest list contains all shorter ones.");
    auto resolve_and_emit = [&](auto ring_tag) {
        using Ring = decltype(ring_tag);
        const auto factors = CorrectionFactors<Ring>::generate(
            sig.recursive_part(), m_max, opts.flush_denormals);
        const auto props = analyze_factors(factors);
        out.factor_properties = props;
        for (std::size_t j = 1; j <= k; ++j) {
            ListEmission& em = emissions[j - 1];
            const auto& lp = props.lists[j - 1];
            em.constant = opts.constant_fold && lp.all_equal;
            em.conditional = opts.conditional_add && lp.all_zero_one;
            em.period = opts.periodic_compress ? lp.period : m_max;
            em.eff_len =
                opts.zero_tail_suppress ? std::max<std::size_t>(
                                              lp.effective_length, 1)
                                        : m_max;
            em.array_elems = std::min(em.period, m_max);
            if (opts.zero_tail_suppress)
                em.array_elems = std::min(em.array_elems, em.eff_len);
            em.cache_elems =
                opts.shared_factor_cache
                    ? std::min<std::size_t>(em.array_elems,
                                            opts.shared_cache_elems)
                    : 0;
            em.shifted_alias = j == k && k > 1 &&
                               opts.suppress_shifted_list &&
                               props.last_is_shift_of_first &&
                               !emissions[0].constant &&
                               emissions[0].period == m_max &&
                               em.period == m_max;
            emit_factor_list<Ring>(w, factors, j, em, val_t);
            out.factor_array_elems.push_back(em.has_array() ? em.array_elems
                                                            : 0);
        }
    };
    if (is_int)
        resolve_and_emit(IntRing{});
    else
        resolve_and_emit(FloatRing{});
    w.line();
    w.line("__device__ unsigned int plr_chunk_counter = 0;");
    w.line();

    // ------------------------------------------------- kernels per x
    for (std::size_t x : xs) {
        const std::size_t m = threads * x;
        const std::string X = std::to_string(x);
        w.line("// ---- Kernel for x = " + X +
               " values per thread (chunk size m = " + std::to_string(m) +
               ").");
        w.line("__global__ void plr_kernel_x" + X);
        w.open("    (const val_t* __restrict__ in, val_t* __restrict__ out,"
               " size_t n,");
        w.line(" volatile val_t* lcarry, volatile val_t* gcarry,");
        w.line(" volatile unsigned int* lflag, volatile unsigned int* gflag)");
        w.dedent();
        w.open("{");
        w.line("const int lane = threadIdx.x % PLR_WARP;");
        w.line("const int warp = threadIdx.x / PLR_WARP;");
        w.line("__shared__ unsigned int chunk_s;");
        w.line("__shared__ val_t warp_carry[PLR_THREADS / PLR_WARP]"
               "[PLR_ORDER];");
        w.line("__shared__ val_t carry_s[PLR_ORDER];");
        for (std::size_t j = 1; j <= k; ++j) {
            if (emissions[j - 1].has_array() &&
                emissions[j - 1].cache_elems > 0)
                w.line("__shared__ val_t plr_factor_" + std::to_string(j) +
                       "_cache[" +
                       std::to_string(emissions[j - 1].cache_elems) + "];");
        }
        w.line();
        w.line("// -- Section 2: grab a chunk id and load its values; fill");
        w.line("// the shared-memory factor caches (Section 3.1).");
        w.line("if (threadIdx.x == 0) chunk_s = "
               "atomicAdd(&plr_chunk_counter, 1);");
        for (std::size_t j = 1; j <= k; ++j) {
            const ListEmission& em = emissions[j - 1];
            if (em.has_array() && em.cache_elems > 0) {
                w.line("for (int i = threadIdx.x; i < " +
                       std::to_string(em.cache_elems) +
                       "; i += PLR_THREADS) plr_factor_" + std::to_string(j) +
                       "_cache[i] = plr_factor_" + std::to_string(j) + "[i];");
            }
        }
        w.line("__syncthreads();");
        w.line("const size_t chunk = chunk_s;");
        w.line("const size_t base = chunk * (size_t)" + std::to_string(m) +
               ";");
        w.line("val_t r[" + X + "];");
        w.open("for (int i = 0; i < " + X + "; i++) {");
        w.line("const size_t gi = base + (size_t)threadIdx.x * " + X +
               " + i;");
        w.line("r[i] = gi < n ? in[gi] : (val_t)0;");
        w.close();
        w.line();

        // Section 3: map operation.
        if (!sig.is_pure_recursive()) {
            w.line("// -- Section 3: map operation (eq. 2) eliminating the");
            w.line("// non-recursive coefficients; boundary taps re-read");
            w.line("// neighbor inputs from global memory.");
            w.open("{");
            w.line("val_t t[" + X + "];");
            w.open("for (int i = 0; i < " + X + "; i++) {");
            w.line("const size_t gi = base + (size_t)threadIdx.x * " + X +
                   " + i;");
            w.line("val_t acc = (val_t)" + format_value(sig.a()[0], is_int) +
                   " * r[i];");
            for (std::size_t tap = 1; tap < sig.a().size(); ++tap) {
                const std::string T = std::to_string(tap);
                w.line("if (gi >= " + T + ") acc += (val_t)" +
                       format_value(sig.a()[tap], is_int) + " * (i >= " + T +
                       " ? r[i - " + T + "] : in[gi - " + T + "]);");
            }
            w.line("t[i] = acc;");
            w.close();
            w.line("for (int i = 0; i < " + X + "; i++) r[i] = t[i];");
            w.close();
            w.line();
        }

        // Section 4: Phase 1.
        w.line("// -- Section 4: Phase 1 — hierarchical pairwise merging");
        w.line("// (Section 2.1). Each thread first solves its own x-value");
        w.line("// chunk serially, then thread chunks merge: within warps");
        w.line("// via shuffles, across warps via shared memory.");
        w.open("for (int i = 1; i < " + X + "; i++) {");
        w.line("val_t acc = r[i];");
        for (std::size_t j = 1; j <= k; ++j)
            w.line("if (i >= " + std::to_string(j) + ") acc += (val_t)" +
                   format_value(sig.b()[j - 1], is_int) + " * r[i - " +
                   std::to_string(j) + "];");
        w.line("r[i] = acc;");
        w.close();
        w.line();
        w.open("for (int span = 1; span < PLR_WARP; span <<= 1) {");
        w.line("// Fetch the last k values of the preceding thread chunk.");
        w.line("const int delta = (lane & (span - 1)) + 1;");
        for (std::size_t j = 1; j <= k; ++j)
            w.line("const val_t c" + std::to_string(j) +
                   " = __shfl_up_sync(~0u, r[" + X + " - " +
                   std::to_string(j) + "], delta);");
        w.open("if ((lane & (2 * span - 1)) >= span) {");
        w.line("const int pos = (lane & (span - 1)) * " + X + ";");
        w.open("for (int i = 0; i < " + X + "; i++) {");
        w.line("const int o = pos + i;");
        w.line("val_t acc = r[i];");
        for (std::size_t j = 1; j <= k; ++j)
            w.line(correction_stmt(j, emissions[j - 1], "o",
                                   "c" + std::to_string(j), m));
        w.line("r[i] = acc;");
        w.close();
        w.close();
        w.close();
        w.line();
        w.line("// Cross-warp merges (thread-block level, shared memory).");
        w.line("if (lane == PLR_WARP - 1)");
        w.line("    for (int j = 0; j < PLR_ORDER; j++)");
        w.line("        warp_carry[warp][j] = r[" + X + " - 1 - j];");
        w.line("__syncthreads();");
        w.open("for (int tspan = PLR_WARP; tspan < PLR_THREADS; tspan <<= 1) "
               "{");
        w.open("if ((threadIdx.x & (2 * tspan - 1)) >= tspan) {");
        w.line("const int src_warp = ((threadIdx.x & ~(2 * tspan - 1)) + "
               "tspan) / PLR_WARP - 1;");
        w.line("const int pos = (threadIdx.x & (tspan - 1)) * " + X + ";");
        w.open("for (int i = 0; i < " + X + "; i++) {");
        w.line("const int o = pos + i;");
        w.line("val_t acc = r[i];");
        for (std::size_t j = 1; j <= k; ++j)
            w.line(correction_stmt(j, emissions[j - 1], "o",
                                   "warp_carry[src_warp][" +
                                       std::to_string(j - 1) + "]", m));
        w.line("r[i] = acc;");
        w.close();
        w.close();
        w.line("__syncthreads();");
        w.line("if (lane == PLR_WARP - 1)");
        w.line("    for (int j = 0; j < PLR_ORDER; j++)");
        w.line("        warp_carry[warp][j] = r[" + X + " - 1 - j];");
        w.line("__syncthreads();");
        w.close();
        w.line();

        // Section 5: local carries.
        w.line("// -- Section 5: publish the local carries behind a fence.");
        w.open("if (threadIdx.x == PLR_THREADS - 1) {");
        w.line("for (int j = 0; j < PLR_ORDER; j++)");
        w.line("    lcarry[chunk * PLR_ORDER + j] = r[" + X + " - 1 - j];");
        w.line("__threadfence();");
        w.line("lflag[chunk] = 1;");
        w.close();
        w.line();

        // Section 6: look-back.
        w.line("// -- Section 6: variable look-back (Section 2.2): take the");
        w.line("// most recent global carries within the window plus all");
        w.line("// later local carries and advance them (O(c*k^2) work).");
        w.open("if (chunk > 0 && threadIdx.x == 0) {");
        w.line("val_t carry[PLR_ORDER];");
        w.line("long g;");
        w.open("for (;;) {");
        w.line("const long lo = chunk > PLR_WINDOW ? (long)(chunk - "
               "PLR_WINDOW) : 0;");
        w.line("g = -1;");
        w.line("for (long q = (long)chunk - 1; q >= lo; q--)");
        w.line("    if (gflag[q]) { g = q; break; }");
        w.open("if (g >= 0) {");
        w.line("bool ready = true;");
        w.line("for (long q = g + 1; q < (long)chunk; q++)");
        w.line("    if (!lflag[q]) { ready = false; break; }");
        w.line("if (ready) break;");
        w.close();
        w.close();
        w.line("for (int j = 0; j < PLR_ORDER; j++)");
        w.line("    carry[j] = gcarry[g * PLR_ORDER + j];");
        w.open("for (long q = g + 1; q < (long)chunk; q++) {");
        w.line("val_t next[PLR_ORDER];");
        w.open("for (int j = 1; j <= PLR_ORDER; j++) {");
        w.line("val_t acc = lcarry[q * PLR_ORDER + (j - 1)];");
        w.line("const int o = " + std::to_string(m) + " - j;");
        for (std::size_t j = 1; j <= k; ++j)
            w.line(correction_stmt(j, emissions[j - 1], "o",
                                   "carry[" + std::to_string(j - 1) + "]", m));
        w.line("next[j - 1] = acc;");
        w.close();
        w.line("for (int j = 0; j < PLR_ORDER; j++) carry[j] = next[j];");
        w.close();
        w.line("for (int j = 0; j < PLR_ORDER; j++) carry_s[j] = carry[j];");
        w.close();
        w.line("else if (threadIdx.x == 0)");
        w.line("    for (int j = 0; j < PLR_ORDER; j++) carry_s[j] = "
               "(val_t)0;");
        w.line("__syncthreads();");
        w.line();
        w.line("// Publish this chunk's global carries as soon as possible.");
        w.open("if (threadIdx.x == PLR_THREADS - 1) {");
        w.open("for (int j = 1; j <= PLR_ORDER; j++) {");
        w.line("val_t acc = r[" + X + " - j];");
        w.line("const int o = " + std::to_string(m) + " - j;");
        for (std::size_t j = 1; j <= k; ++j)
            w.line(correction_stmt(j, emissions[j - 1], "o",
                                   "carry_s[" + std::to_string(j - 1) + "]",
                                   m));
        w.line("gcarry[chunk * PLR_ORDER + (j - 1)] = acc;");
        w.close();
        w.line("__threadfence();");
        w.line("gflag[chunk] = 1;");
        w.close();
        w.line();

        // Section 7: final correction + store.
        w.line("// -- Section 7: correct all values and store the result.");
        w.open("for (int i = 0; i < " + X + "; i++) {");
        w.line("const size_t gi = base + (size_t)threadIdx.x * " + X +
               " + i;");
        w.line("if (gi >= n) break;");
        w.line("const int o = threadIdx.x * " + X + " + i;");
        w.line("val_t acc = r[i];");
        w.open("if (chunk > 0) {");
        for (std::size_t j = 1; j <= k; ++j)
            w.line(correction_stmt(j, emissions[j - 1], "o",
                                   "carry_s[" + std::to_string(j - 1) + "]",
                                   m));
        w.close();
        w.line("out[gi] = acc;");
        w.close();
        w.close();
        w.line();
    }

    // ----------------------------------------------------- section 8
    if (options.emit_main) {
        w.line("// ---- Section 8: test driver — picks a kernel by input");
        w.line("// size, measures the runtime, and validates the output");
        w.line("// against the serial code (exact for integers, 1e-3 for");
        w.line("// floats).");
        w.open("static void plr_serial(const val_t* x, val_t* y, size_t n)");
        w.dedent();
        w.open("{");
        w.open("for (size_t i = 0; i < n; i++) {");
        w.line("val_t acc = (val_t)0;");
        for (std::size_t tap = 0; tap < sig.a().size(); ++tap)
            w.line("if (i >= " + std::to_string(tap) + ") acc += (val_t)" +
                   format_value(sig.a()[tap], is_int) + " * x[i - " +
                   std::to_string(tap) + "];");
        for (std::size_t j = 1; j <= k; ++j)
            w.line("if (i >= " + std::to_string(j) + ") acc += (val_t)" +
                   format_value(sig.b()[j - 1], is_int) + " * y[i - " +
                   std::to_string(j) + "];");
        w.line("y[i] = acc;");
        w.close();
        w.close();
        w.line();
        w.open("int main(int argc, char* argv[])");
        w.dedent();
        w.open("{");
        w.line("const size_t n = argc > 1 ? (size_t)atoll(argv[1]) : "
               "(size_t)1 << 24;");
        w.line("if (n < 1 || n > ((size_t)1 << 30)) { fprintf(stderr, "
               "\"bad n\\n\"); return 1; }");
        w.line("val_t* hin = (val_t*)malloc(n * sizeof(val_t));");
        w.line("val_t* hout = (val_t*)malloc(n * sizeof(val_t));");
        w.line("val_t* href = (val_t*)malloc(n * sizeof(val_t));");
        w.line("for (size_t i = 0; i < n; i++) hin[i] = (val_t)((int)(i % "
               "199) - 99);");
        w.line("plr_serial(hin, href, n);");
        w.line("val_t *din, *dout, *dlc, *dgc;");
        w.line("unsigned int *dlf, *dgf;");
        w.line("cudaMalloc(&din, n * sizeof(val_t));");
        w.line("cudaMalloc(&dout, n * sizeof(val_t));");
        w.line("const size_t max_chunks = n / (PLR_THREADS * " +
               std::to_string(xs.front()) + ") + 1;");
        w.line("cudaMalloc(&dlc, max_chunks * PLR_ORDER * sizeof(val_t));");
        w.line("cudaMalloc(&dgc, max_chunks * PLR_ORDER * sizeof(val_t));");
        w.line("cudaMalloc(&dlf, max_chunks * sizeof(unsigned int));");
        w.line("cudaMalloc(&dgf, max_chunks * sizeof(unsigned int));");
        w.line("cudaMemcpy(din, hin, n * sizeof(val_t), "
               "cudaMemcpyHostToDevice);");
        w.line("cudaMemset(dlf, 0, max_chunks * sizeof(unsigned int));");
        w.line("cudaMemset(dgf, 0, max_chunks * sizeof(unsigned int));");
        w.line("int dev_sms = 0;");
        w.line("cudaDeviceGetAttribute(&dev_sms, "
               "cudaDevAttrMultiProcessorCount, 0);");
        w.line("const size_t T = (size_t)dev_sms * 2;  // resident blocks");
        w.line("size_t x = n / (PLR_THREADS * T) + 1;  // Section 3 "
               "heuristic");
        w.line("if (x > " + std::to_string(x_cap) + ") x = " +
               std::to_string(x_cap) + ";");
        w.line("cudaEvent_t ev0, ev1;");
        w.line("cudaEventCreate(&ev0); cudaEventCreate(&ev1);");
        w.line("cudaEventRecord(ev0);");
        w.line("size_t chunks;");
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const std::size_t x = xs[i];
            const std::size_t m = threads * x;
            std::string stmt;
            if (i + 1 < xs.size())
                stmt = "if (x <= " + std::to_string(x) + ") ";
            stmt += "{ chunks = (n + " + std::to_string(m) + " - 1) / " +
                    std::to_string(m) + "; plr_kernel_x" + std::to_string(x) +
                    "<<<chunks, PLR_THREADS>>>(din, dout, n, dlc, dgc, dlf, "
                    "dgf); }";
            if (i + 1 < xs.size())
                stmt += " else";
            w.line(stmt);
        }
        w.line("cudaEventRecord(ev1);");
        w.line("cudaEventSynchronize(ev1);");
        w.line("float ms = 0;");
        w.line("cudaEventElapsedTime(&ms, ev0, ev1);");
        w.line("cudaMemcpy(hout, dout, n * sizeof(val_t), "
               "cudaMemcpyDeviceToHost);");
        w.line("size_t bad = 0;");
        if (is_int) {
            w.line("for (size_t i = 0; i < n; i++) if (hout[i] != href[i]) "
                   "bad++;");
        } else {
            w.line("for (size_t i = 0; i < n; i++) { const double d = "
                   "fabs((double)hout[i] - (double)href[i]) / fmax(1.0, "
                   "fabs((double)href[i])); if (d > 1e-3) bad++; }");
        }
        w.line("printf(\"n=%zu time=%.3f ms throughput=%.3f Gelem/s %s\\n\","
               " n, ms, n / ms / 1e6, bad ? \"MISMATCH\" : \"ok\");");
        w.line("return bad ? 1 : 0;");
        w.close();
    }

    out.source = w.str();
    return out;
}

}  // namespace plr
