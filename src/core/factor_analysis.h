#ifndef PLR_CORE_FACTOR_ANALYSIS_H_
#define PLR_CORE_FACTOR_ANALYSIS_H_

/**
 * @file
 * Analysis of correction-factor lists (paper Section 3.1).
 *
 * PLR inspects the precomputed factor lists and specializes the emitted
 * code: constant lists become literal constants, 0/1 lists become
 * conditional adds, periodic lists are stored compressed, and decayed
 * (all-zero) tails let later warps skip Phase 1 entirely. This header
 * computes the properties those optimizations key on.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/correction_factors.h"

namespace plr {

/** Properties of a single correction-factor list. */
struct FactorListProperties {
    /** All elements identical: replace array accesses by one constant. */
    bool all_equal = false;
    /** Every element is 0 or 1: use a conditional add, no multiply. */
    bool all_zero_one = false;
    /**
     * Smallest period p such that f[o+p] == f[o] for all o; equals the list
     * length when aperiodic. Periodic lists are emitted compressed.
     */
    std::size_t period = 0;
    /**
     * Smallest L such that f[o] == 0 for all o >= L (after denormal
     * flushing for floats). Equals the list length when the tail is
     * nonzero. Warps whose factors are all zero skip Phase 1.
     */
    std::size_t effective_length = 0;
};

/** Properties of the full k-list factor set. */
struct FactorSetProperties {
    std::vector<FactorListProperties> lists;  // index j-1 for carry j

    /**
     * True when list k equals list 1 shifted right by one and scaled by
     * b-k (exactly the "same values except shifted" observation of
     * Section 3.1 when b-k == 1); enables suppressing one of the two
     * arrays (listed as future work in the paper, implemented here).
     */
    bool last_is_shift_of_first = false;

    /** Largest effective length over all lists (Phase-1 work bound). */
    std::size_t max_effective_length = 0;
};

namespace detail {

template <typename Ring>
FactorListProperties
analyze_factor_list(std::span<const typename Ring::value_type> f)
{
    FactorListProperties props;
    props.period = f.size();
    props.effective_length = f.size();
    if (f.empty())
        return props;

    props.all_equal = true;
    props.all_zero_one = true;
    for (auto v : f) {
        if (!(v == f[0]))
            props.all_equal = false;
        if (!Ring::is_zero(v) && !Ring::is_one(v))
            props.all_zero_one = false;
    }

    for (std::size_t p = 1; p < f.size(); ++p) {
        bool periodic = true;
        for (std::size_t o = 0; o + p < f.size(); ++o) {
            if (!(f[o + p] == f[o])) {
                periodic = false;
                break;
            }
        }
        if (periodic) {
            props.period = p;
            break;
        }
    }

    while (props.effective_length > 0 &&
           Ring::is_zero(f[props.effective_length - 1]))
        --props.effective_length;

    return props;
}

}  // namespace detail

/** Analyze every list of a factor set. */
template <typename Ring>
FactorSetProperties
analyze_factors(const CorrectionFactors<Ring>& factors)
{
    FactorSetProperties props;
    const std::size_t k = factors.order();
    props.lists.reserve(k);
    for (std::size_t j = 1; j <= k; ++j) {
        props.lists.push_back(
            detail::analyze_factor_list<Ring>(factors.list(j)));
        props.max_effective_length = std::max(
            props.max_effective_length, props.lists.back().effective_length);
    }

    if (k > 1) {
        // F_k[o] == b_k * F_1[o-1] with F_1[-1] == 1 always holds; the
        // paper's shift observation is the b_k == 1 case. We only claim the
        // plain shift here and verify it numerically.
        auto first = factors.list(1);
        auto last = factors.list(k);
        bool shift = Ring::is_one(last[0]);
        for (std::size_t o = 1; shift && o < factors.length(); ++o)
            if (!(last[o] == first[o - 1]))
                shift = false;
        props.last_is_shift_of_first = shift;
    }
    return props;
}

}  // namespace plr

#endif  // PLR_CORE_FACTOR_ANALYSIS_H_
