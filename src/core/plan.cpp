#include "core/plan.h"

#include "util/diag.h"

namespace plr {

Optimizations
Optimizations::all_off()
{
    Optimizations off;
    off.shared_factor_cache = false;
    off.constant_fold = false;
    off.conditional_add = false;
    off.periodic_compress = false;
    off.zero_tail_suppress = false;
    off.flush_denormals = false;
    off.suppress_shifted_list = false;
    return off;
}

KernelPlan
make_plan(const Signature& sig, std::size_t n, const PlannerLimits& limits,
          const Optimizations& opts)
{
    PLR_REQUIRE(n >= 1, "input must not be empty");
    PLR_REQUIRE(sig.order() >= 1,
                "PLR requires a recurrence of order >= 1 (map operations "
                "are embarrassingly parallel and need no plan)");
    // Sequences are limited to 4 GB, i.e. 2^30 32-bit words (Section 3).
    PLR_REQUIRE(n <= (std::size_t{1} << 30),
                "PLR supports sequences of at most 2^30 words, got " << n);

    KernelPlan plan(sig, n);
    plan.is_integer = sig.is_integral();
    plan.block_threads = limits.max_block_threads;
    plan.pipeline_depth = 32;

    // x: smallest integer with x * block_threads * T > n, capped at 9
    // (float) or 11 (integer) values per thread.
    const std::size_t cap = plan.is_integer ? 11 : 9;
    const std::size_t wave = plan.block_threads * limits.resident_blocks;
    std::size_t x = n / wave + 1;  // smallest x with x * wave > n
    if (x > cap)
        x = cap;
    plan.x = x;
    plan.m = plan.x * plan.block_threads;

    // Register heuristic: 32 for float signatures and for integer
    // signatures containing only zeros and ones, 64 for complex integer
    // signatures (Section 3).
    if (!plan.is_integer || sig.coefficients_are_zero_one())
        plan.registers_per_thread = 32;
    else
        plan.registers_per_thread = 64;

    plan.opts = opts;
    if (plan.is_integer) {
        // Denormal flushing is a float-only concept.
        plan.opts.flush_denormals = false;
        plan.opts.zero_tail_suppress = false;
    }
    return plan;
}

KernelPlan
make_plan_with_chunk(const Signature& sig, std::size_t n, std::size_t m,
                     std::size_t block_threads, const Optimizations& opts)
{
    PLR_REQUIRE(n >= 1, "input must not be empty");
    // m need not be a power of two: Phase 1's pairwise merging handles a
    // partial final chunk at every level (and the production m = 1024*x is
    // generally not a power of two).
    PLR_REQUIRE(m >= 1, "chunk size must be positive");
    PLR_REQUIRE(block_threads >= 1 && m % block_threads == 0,
                "chunk size " << m << " must be a multiple of block_threads "
                              << block_threads);

    KernelPlan plan(sig, n);
    plan.is_integer = sig.is_integral();
    plan.block_threads = block_threads;
    plan.m = m;
    plan.x = m / block_threads;
    plan.registers_per_thread =
        (!plan.is_integer || sig.coefficients_are_zero_one()) ? 32 : 64;
    plan.opts = opts;
    if (plan.is_integer) {
        plan.opts.flush_denormals = false;
        plan.opts.zero_tail_suppress = false;
    }
    return plan;
}

}  // namespace plr
