#ifndef PLR_CORE_SIGNATURE_H_
#define PLR_CORE_SIGNATURE_H_

/**
 * @file
 * The PLR signature DSL (paper Section 1).
 *
 * An order-k homogeneous linear recurrence with constant coefficients,
 *
 *   y[i] = a0*x[i] + a-1*x[i-1] + ... + a-p*x[i-p]
 *        + b-1*y[i-1] + b-2*y[i-2] + ... + b-k*y[i-k],
 *
 * is written as the signature `(a0, a-1, ..., a-p : b-1, b-2, ..., b-k)`.
 * The aj are the non-recursion (feed-forward / FIR) coefficients and the bj
 * the recursion (feedback) coefficients. Values before the sequence start
 * are zero.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "util/diag.h"

namespace plr {

/**
 * Parse failure for the textual signature DSL. Derives from FatalError
 * (existing catch sites keep working) and additionally carries the
 * 1-based column in the original text handed to Signature::parse where
 * parsing stopped, so tools can point at the offending character.
 */
class SignatureParseError : public FatalError {
  public:
    SignatureParseError(const std::string& what, std::size_t column)
        : FatalError(what), column_(column)
    {
    }

    /** 1-based offending column in the original signature text. */
    std::size_t column() const { return column_; }

  private:
    std::size_t column_;
};

/** Broad shape classes used by the planner and code generator. */
enum class SignatureClass {
    /** (1: 1) — the standard prefix sum. */
    kPrefixSum,
    /** (1: 0,...,0,1) — prefix sum over s-tuples. */
    kTuplePrefixSum,
    /** (1: C(k,1), -C(k,2), ...) — k-th order prefix sum (iterated sums). */
    kHigherOrderPrefixSum,
    /** Any other signature with integral coefficients. */
    kGeneralInteger,
    /** Signature with at least one non-integral coefficient. */
    kGeneralReal,
};

/** Returns a human-readable name for a signature class. */
const char* to_string(SignatureClass c);

/**
 * A parsed, validated recurrence signature.
 *
 * Coefficients are stored as doubles; integer recurrences are those whose
 * coefficients are all integral (exactly representable), in which case the
 * kernels may run in the exact int32 ring.
 */
class Signature {
  public:
    /**
     * Construct from coefficient lists. Trailing zeros are trimmed (the
     * paper requires a-p != 0 and b-k != 0 for the effective p and k).
     *
     * @param a feed-forward coefficients a0..a-p (must not be all zero)
     * @param b feedback coefficients b-1..b-k (may be empty only if
     *          allow_fir is true)
     * @param allow_fir permit a pure map operation (b empty); the PLR
     *          kernel itself requires order >= 1, but the map stage (eq. 2)
     *          is expressible as an order-0 signature
     */
    Signature(std::vector<double> a, std::vector<double> b,
              bool allow_fir = false);

    /**
     * Parse the textual signature format, e.g. "(1: 2, -1)" or "1:2,-1".
     * Whitespace is insignificant; parentheses are optional.
     */
    static Signature parse(const std::string& text, bool allow_fir = false);

    /**
     * Construct a signature over the max-plus (tropical) semiring, where
     * coefficients combine with max and apply with +. In that domain the
     * multiplicative identity is 0 and "absent" is -infinity, so the
     * ordinary zero-trimming and all-zero checks do not apply; e.g.
     * max_plus({0}, {-d}) is the decaying running maximum
     * y[i] = max(x[i], y[i-1] - d). Evaluate with TropicalRing.
     * (Supporting operators other than addition is future work in the
     * paper's Section 7.)
     */
    static Signature max_plus(std::vector<double> a, std::vector<double> b);

    /** True for signatures built with max_plus(). */
    bool is_max_plus() const { return max_plus_; }

    /** Feed-forward coefficients a0..a-p. */
    const std::vector<double>& a() const { return a_; }

    /** Feedback coefficients b-1..b-k. */
    const std::vector<double>& b() const { return b_; }

    /** Recurrence order k (number of feedback taps). */
    std::size_t order() const { return b_.size(); }

    /** Number of feed-forward taps beyond a0 (the paper's p). */
    std::size_t fir_taps() const { return a_.empty() ? 0 : a_.size() - 1; }

    /** True when every coefficient is integral. */
    bool is_integral() const;

    /** True when the feed-forward part is exactly {1} (no map op needed). */
    bool is_pure_recursive() const;

    /** True when every coefficient is 0 or 1 (planner register heuristic). */
    bool coefficients_are_zero_one() const;

    /** Shape classification used for optimization selection. */
    SignatureClass classify() const;

    /** Tuple size s for kTuplePrefixSum signatures; 0 otherwise. */
    std::size_t tuple_size() const;

    /**
     * The recurrence with the feed-forward part eliminated: (1 : b...).
     * This is the "type (3)" recurrence the two-phase algorithm computes
     * after the map operation.
     */
    Signature recursive_part() const;

    /**
     * The map operation (a0..a-p : ), i.e. equation (2) of the paper —
     * a pure FIR filter producing the intermediate sequence t.
     */
    Signature map_part() const;

    /**
     * The correction-factor generator (0 : b...): same feedback, zero
     * feed-forward (Section 2.1).
     */
    std::vector<double> factor_recurrence() const { return b_; }

    /** Render in the paper's notation, e.g. "(1: 2, -1)". */
    std::string to_string(int precision = -1) const;

    bool operator==(const Signature& other) const;

  private:
    std::vector<double> a_;
    std::vector<double> b_;
    bool max_plus_ = false;
};

}  // namespace plr

#endif  // PLR_CORE_SIGNATURE_H_
