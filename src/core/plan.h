#ifndef PLR_CORE_PLAN_H_
#define PLR_CORE_PLAN_H_

/**
 * @file
 * Kernel planning: the Section-3 heuristics that pick the chunk size m,
 * the per-thread element count x, and the register budget, plus the
 * Section-3.1 optimization toggles.
 */

#include <cstddef>

#include "core/signature.h"

namespace plr {

/** Hardware parameters the planner needs (a slice of the device spec). */
struct PlannerLimits {
    /** Thread blocks the GPU can process simultaneously (the paper's T). */
    std::size_t resident_blocks = 48;
    /** Maximum threads per block. */
    std::size_t max_block_threads = 1024;
    /** Warp width. */
    std::size_t warp_size = 32;
};

/** Section-3.1 optimization toggles (all on by default, as in PLR). */
struct Optimizations {
    /** Cache the first shared_cache_elems factors of each list on chip. */
    bool shared_factor_cache = true;
    /** Elements of each factor list buffered in shared memory. */
    std::size_t shared_cache_elems = 1024;
    /** Replace an all-equal factor list by a literal constant. */
    bool constant_fold = true;
    /** Use conditional adds when all factors are 0/1. */
    bool conditional_add = true;
    /** Store only the first repetition of periodic factor lists. */
    bool periodic_compress = true;
    /** Skip Phase-1 work where factors have decayed to zero. */
    bool zero_tail_suppress = true;
    /** Flush denormal factors to zero (float recurrences, Section 3.1). */
    bool flush_denormals = true;
    /**
     * Share list k with list 1 when they are shifted copies (future-work
     * optimization from Section 3.1, implemented here).
     */
    bool suppress_shifted_list = true;

    /** The "optimizations off" configuration of Figure 10. */
    static Optimizations all_off();
};

/** A fully resolved execution plan for one recurrence and input size. */
struct KernelPlan {
    KernelPlan(Signature sig, std::size_t input_n)
        : signature(std::move(sig)), n(input_n)
    {
    }

    Signature signature;
    /** Input length in elements. */
    std::size_t n = 0;
    /** Values processed per thread (the paper's x). */
    std::size_t x = 1;
    /** Threads per block. */
    std::size_t block_threads = 1024;
    /** Phase-1 terminal chunk size, m = x * block_threads. */
    std::size_t m = 1024;
    /** Register allocation per thread (32 or 64, Section 3). */
    std::size_t registers_per_thread = 32;
    /** Maximum look-back distance c (Section 2.2). */
    std::size_t pipeline_depth = 32;
    /** True when the plan runs in the exact int32 ring. */
    bool is_integer = true;
    Optimizations opts;

    /** Number of chunks, ceil(n / m). */
    std::size_t num_chunks() const { return (n + m - 1) / m; }
};

/**
 * Build a plan with the paper's heuristics: x is the smallest integer with
 * x * block_threads * T > n, capped at 9 (float) or 11 (integer); 32
 * registers per thread for float signatures and integer signatures whose
 * coefficients are all zeros/ones, 64 otherwise.
 */
KernelPlan make_plan(const Signature& sig, std::size_t n,
                     const PlannerLimits& limits = PlannerLimits{},
                     const Optimizations& opts = Optimizations{});

/**
 * Build a plan with an explicit chunk size; used by tests and small-input
 * simulator runs where the production m = 1024x would exceed n.
 */
KernelPlan make_plan_with_chunk(const Signature& sig, std::size_t n,
                                std::size_t m, std::size_t block_threads,
                                const Optimizations& opts = Optimizations{});

}  // namespace plr

#endif  // PLR_CORE_PLAN_H_
