#ifndef PLR_CORE_CODEGEN_CPP_H_
#define PLR_CORE_CODEGEN_CPP_H_

/**
 * @file
 * The PLR compiler's C++ backend: translates a signature into a
 * standalone multithreaded C++17 program.
 *
 * The paper observes that the algorithm and parallelization approach
 * "apply equally to CPUs" and could live inside a general C/C++ compiler
 * (Section 7); this backend realizes that: the emitted translation unit
 * precomputes the correction factors with the n-nacci recurrence at
 * startup, runs the two-phase chunked algorithm on std::thread, applies
 * the factor specializations (constant folding and 0/1 conditional adds
 * are decided at generation time; decayed-tail suppression at startup
 * after denormal flushing), and validates against the serial code.
 *
 * Unlike the CUDA backend, the emitted program is compilable and
 * runnable here — the test suite builds it with the host compiler and
 * checks its output end to end.
 */

#include <string>

#include "core/plan.h"
#include "core/signature.h"

namespace plr {

/** Options for C++ emission. */
struct CppCodegenOptions {
    /** Section-3.1 optimization toggles (subset meaningful on CPU). */
    Optimizations opts;
    /** Worker threads the program uses (0 = hardware concurrency). */
    std::size_t threads = 0;
    /** Emit a main() with input synthesis, timing, and validation. */
    bool emit_main = true;
};

/** Result of C++ code generation. */
struct GeneratedCppCode {
    std::string source;
    bool is_integer = false;
    /** Factor lists folded to literal constants at generation time. */
    std::size_t constant_lists = 0;
    /** Factor lists emitted as conditional adds (0/1 factors). */
    std::size_t conditional_lists = 0;
    /** Factor lists emitted as a compressed literal period, indexed
     * mod the period length (integer signatures only). */
    std::size_t periodic_lists = 0;
    /** Constant lists whose factor is zero: the correction term is
     * elided entirely. */
    std::size_t elided_lists = 0;
    /** Constant lists whose factor is one: the multiply is elided and
     * the carry added directly. */
    std::size_t elided_multiplies = 0;
    /** Plan-time overflow verdict under the conformance input model
     * ("proven-safe" / "may-overflow" / "proven-overflow" / "unknown",
     * docs/STATIC_ANALYSIS.md), recorded in the generated header. */
    std::string range_verdict = "unknown";
    /** Earliest output index whose growth envelope crosses the range
     * limit (SIZE_MAX when the envelope never crosses). */
    std::size_t overflow_witness = static_cast<std::size_t>(-1);
    /** Proven relative bound of decayed-tail suppression (0 when the
     * dropped factors are exactly the semiring zero). */
    double truncation_rel_bound = 0.0;
    /** Suppression was requested but its truncation bound could not be
     * proven below the float unit roundoff, so it was disabled. */
    bool suppression_disabled = false;
};

/** Translate @p sig into a standalone C++ program. */
GeneratedCppCode generate_cpp(const Signature& sig,
                              const CppCodegenOptions& options =
                                  CppCodegenOptions{});

}  // namespace plr

#endif  // PLR_CORE_CODEGEN_CPP_H_
