#ifndef PLR_CORE_CORRECTION_FACTORS_H_
#define PLR_CORE_CORRECTION_FACTORS_H_

/**
 * @file
 * Correction-factor generation (paper Section 2.1).
 *
 * For the recurrence (1 : b-1..b-k), merging two adjacent chunks requires
 * adding, to the element at offset o of the second chunk, the terms
 * F_j[o] * w[last-(j-1)] for each carry j in 1..k, where w[last-(j-1)] are
 * the up-to-k trailing values of the first chunk. The factor sequences F_j
 * are the (b-1..b-k)-nacci numbers: each is seeded with the k-element unit
 * vector whose 1 sits at the position of the corresponding carry, then
 * extended with the recurrence (0 : b-1..b-k).
 *
 * Example, signature (1: 2, -1) (second-order prefix sum):
 *   F_1 (carry = last element):        seed 0,1 -> 2, 3, 4, 5, ...
 *   F_2 (carry = second-to-last):      seed 1,0 -> -1, -2, -3, -4, ...
 */

#include <cstddef>
#include <span>
#include <vector>

#include "core/signature.h"
#include "util/diag.h"

namespace plr {

/**
 * Precomputed correction-factor lists for one recurrence and chunk size.
 *
 * @tparam Ring arithmetic policy (IntRing or FloatRing from util/ring.h)
 */
template <typename Ring>
class CorrectionFactors {
  public:
    using value_type = typename Ring::value_type;

    /**
     * Generate the k factor lists of length m for the recursive part of
     * @p sig.
     *
     * @param sig the recurrence; only its feedback coefficients are used
     * @param m number of factors per list (the Phase-1 terminal chunk size;
     *          Phase 2 needs no more than this many)
     * @param flush_denormals apply Ring::flush_denormal while generating,
     *          accelerating the decay of stable IIR impulse responses
     *          (Section 3.1); only meaningful for the float ring
     */
    static CorrectionFactors
    generate(const Signature& sig, std::size_t m, bool flush_denormals = false)
    {
        const std::size_t k = sig.order();
        PLR_REQUIRE(k >= 1, "correction factors need a recurrence of order >= 1");
        PLR_REQUIRE(m >= 1, "chunk size must be positive");

        std::vector<value_type> b(k);
        for (std::size_t i = 0; i < k; ++i)
            b[i] = Ring::from_coefficient(sig.b()[i]);

        CorrectionFactors result;
        result.order_ = k;
        result.length_ = m;
        result.lists_.resize(k);
        for (std::size_t j = 1; j <= k; ++j) {
            auto& list = result.lists_[j - 1];
            list.resize(m);
            // history[h] holds the value at index t-1-h while computing f[t];
            // initialized with the unit-vector seed: value at index -i is
            // 1 when i == j, else 0 (i counted backwards from the chunk end).
            std::vector<value_type> history(k, Ring::zero());
            history[j - 1] = Ring::one();
            for (std::size_t t = 0; t < m; ++t) {
                value_type acc = Ring::zero();
                for (std::size_t i = 1; i <= k; ++i)
                    acc = Ring::mul_add(acc, b[i - 1], history[i - 1]);
                if (flush_denormals)
                    acc = Ring::flush_denormal(acc);
                list[t] = acc;
                // Shift the history window forward by one position.
                for (std::size_t i = k; i-- > 1;)
                    history[i] = history[i - 1];
                history[0] = acc;
            }
        }
        return result;
    }

    /** Recurrence order k (number of lists). */
    std::size_t order() const { return order_; }

    /** Factors per list (the m the lists were generated for). */
    std::size_t length() const { return length_; }

    /**
     * The factor list for carry j (1-based; j=1 corrects with the last
     * element of the preceding chunk, j=2 with the second-to-last, ...).
     */
    std::span<const value_type> list(std::size_t carry_j) const
    {
        PLR_ASSERT(carry_j >= 1 && carry_j <= order_,
                   "carry index " << carry_j << " out of range");
        return lists_[carry_j - 1];
    }

    /** Single factor F_j[offset]. */
    value_type factor(std::size_t carry_j, std::size_t offset) const
    {
        PLR_ASSERT(offset < length_, "factor offset " << offset << " >= m");
        return list(carry_j)[offset];
    }

  private:
    std::size_t order_ = 0;
    std::size_t length_ = 0;
    std::vector<std::vector<value_type>> lists_;
};

}  // namespace plr

#endif  // PLR_CORE_CORRECTION_FACTORS_H_
