#include "core/signature.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/diag.h"

namespace plr {

namespace {

bool
is_integral_value(double v)
{
    return std::nearbyint(v) == v && std::fabs(v) < 9.0e15;
}

void
trim_trailing_zeros(std::vector<double>& v)
{
    while (!v.empty() && v.back() == 0.0)
        v.pop_back();
}

/** Binomial coefficient C(n, r) as a double (small n only). */
double
binomial(std::size_t n, std::size_t r)
{
    double result = 1.0;
    for (std::size_t i = 0; i < r; ++i)
        result = result * static_cast<double>(n - i) / static_cast<double>(i + 1);
    return std::nearbyint(result);
}

/** Throw a SignatureParseError pointing at @p pos (0-based) in @p text. */
[[noreturn]] void
parse_fail(const std::string& text, std::size_t pos, const std::string& why)
{
    std::ostringstream os;
    os << "signature '" << text << "' is malformed at column " << pos + 1
       << ": " << why;
    throw SignatureParseError(os.str(), pos + 1);
}

/** The token starting at @p pos, for error messages (capped length). */
std::string
token_at(const std::string& text, std::size_t pos, std::size_t end)
{
    std::size_t stop = pos;
    while (stop < end && text[stop] != ',' &&
           !std::isspace(static_cast<unsigned char>(text[stop])))
        ++stop;
    constexpr std::size_t kMaxShown = 16;
    std::string token = text.substr(pos, std::min(stop - pos, kMaxShown));
    if (stop - pos > kMaxShown)
        token += "...";
    return token;
}

/**
 * Parse the comma-separated coefficients in text[begin, end), reporting
 * errors against the full original @p text. The grammar is strict:
 * coefficients separated by single commas, no leading/trailing/doubled
 * commas, every token a finite number.
 */
std::vector<double>
parse_coefficient_list(const std::string& text, std::size_t begin,
                       std::size_t end, const char* side, bool allow_empty)
{
    std::vector<double> values;
    std::size_t pos = begin;
    const auto skip_ws = [&] {
        while (pos < end &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    };

    skip_ws();
    if (pos >= end) {
        if (!allow_empty)
            parse_fail(text, pos,
                       std::string("empty ") + side + " coefficient list");
        return values;
    }
    for (;;) {
        skip_ws();
        if (pos >= end)
            parse_fail(text, pos,
                       std::string("dangling ',' at the end of the ") + side +
                           " coefficient list");
        if (text[pos] == ',')
            parse_fail(text, pos, "expected a coefficient before ','");
        const std::size_t token_pos = pos;
        const char* start = text.c_str() + pos;
        char* parsed_end = nullptr;
        const double v = std::strtod(start, &parsed_end);
        if (parsed_end == start)
            parse_fail(text, pos,
                       "'" + token_at(text, pos, end) + "' is not a number");
        pos = static_cast<std::size_t>(parsed_end - text.c_str());
        if (!std::isfinite(v))
            parse_fail(text, token_pos,
                       "non-finite coefficient '" +
                           token_at(text, token_pos, end) +
                           "' (nan/inf are not valid)");
        values.push_back(v);
        skip_ws();
        if (pos >= end)
            break;
        if (text[pos] != ',')
            parse_fail(text, pos,
                       std::string("unexpected '") + text[pos] +
                           "' (expected ',' or the end of the list)");
        ++pos;  // consume the comma; the loop now demands a coefficient
    }
    return values;
}

}  // namespace

const char*
to_string(SignatureClass c)
{
    switch (c) {
      case SignatureClass::kPrefixSum: return "prefix-sum";
      case SignatureClass::kTuplePrefixSum: return "tuple-prefix-sum";
      case SignatureClass::kHigherOrderPrefixSum: return "higher-order-prefix-sum";
      case SignatureClass::kGeneralInteger: return "general-integer";
      case SignatureClass::kGeneralReal: return "general-real";
    }
    return "unknown";
}

Signature::Signature(std::vector<double> a, std::vector<double> b,
                     bool allow_fir)
    : a_(std::move(a)), b_(std::move(b))
{
    trim_trailing_zeros(a_);
    trim_trailing_zeros(b_);
    PLR_REQUIRE(!a_.empty(),
                "signature rejected: all feed-forward coefficients are zero, "
                "the output would be identically zero");
    PLR_REQUIRE(allow_fir || !b_.empty(),
                "signature rejected: all feedback coefficients are zero; "
                "this is a map operation, not a recurrence");
    for (double c : a_)
        PLR_REQUIRE(std::isfinite(c), "non-finite feed-forward coefficient");
    for (double c : b_)
        PLR_REQUIRE(std::isfinite(c), "non-finite feedback coefficient");
}

Signature
Signature::max_plus(std::vector<double> a, std::vector<double> b)
{
    const double neg_inf = -std::numeric_limits<double>::infinity();
    PLR_REQUIRE(!a.empty() && a.back() != neg_inf,
                "max-plus signature needs a present trailing feed-forward "
                "coefficient");
    PLR_REQUIRE(!b.empty() && b.back() != neg_inf,
                "max-plus signature needs a present trailing feedback "
                "coefficient");
    for (double c : a)
        PLR_REQUIRE(!std::isnan(c) && c < std::numeric_limits<double>::infinity(),
                    "bad max-plus coefficient");
    for (double c : b)
        PLR_REQUIRE(!std::isnan(c) && c < std::numeric_limits<double>::infinity(),
                    "bad max-plus coefficient");

    Signature sig({1.0}, {1.0});  // placeholder; fields replaced below
    sig.a_ = std::move(a);
    sig.b_ = std::move(b);
    sig.max_plus_ = true;
    return sig;
}

Signature
Signature::parse(const std::string& text, bool allow_fir)
{
    // Columns in parse errors are 1-based positions in @p text itself, so
    // the body is located by index rather than substring-ed out.
    const std::size_t first = text.find_first_not_of(" \t\n");
    if (first == std::string::npos)
        parse_fail(text, 0, "empty signature");
    std::size_t begin = first;
    std::size_t end = text.find_last_not_of(" \t\n") + 1;
    // Strip optional outer parentheses.
    if (text[begin] == '(' && text[end - 1] == ')') {
        ++begin;
        --end;
    } else if (text[begin] == '(') {
        parse_fail(text, begin, "'(' is never closed");
    } else if (text[end - 1] == ')') {
        parse_fail(text, end - 1, "')' was never opened");
    }

    const std::size_t colon = text.find(':', begin);
    if (colon == std::string::npos || colon >= end)
        parse_fail(text, end, "missing the ':' separator");
    const std::size_t second = text.find(':', colon + 1);
    if (second != std::string::npos && second < end)
        parse_fail(text, second, "more than one ':' separator");

    return Signature(
        parse_coefficient_list(text, begin, colon, "feed-forward",
                               /*allow_empty=*/false),
        parse_coefficient_list(text, colon + 1, end, "feedback", allow_fir),
        allow_fir);
}

bool
Signature::is_integral() const
{
    if (max_plus_)
        return false;  // tropical recurrences run in the float domain
    for (double c : a_)
        if (!is_integral_value(c))
            return false;
    for (double c : b_)
        if (!is_integral_value(c))
            return false;
    return true;
}

bool
Signature::is_pure_recursive() const
{
    // The multiplicative identity is 1 in ordinary rings and 0 in the
    // max-plus semiring.
    return a_.size() == 1 && a_[0] == (max_plus_ ? 0.0 : 1.0);
}

bool
Signature::coefficients_are_zero_one() const
{
    for (double c : a_)
        if (c != 0.0 && c != 1.0)
            return false;
    for (double c : b_)
        if (c != 0.0 && c != 1.0)
            return false;
    return true;
}

SignatureClass
Signature::classify() const
{
    if (max_plus_ || !is_integral())
        return SignatureClass::kGeneralReal;
    if (is_pure_recursive()) {
        if (b_.size() == 1 && b_[0] == 1.0)
            return SignatureClass::kPrefixSum;
        if (tuple_size() > 0)
            return SignatureClass::kTuplePrefixSum;
        // k-th order prefix sum: b_j = (-1)^(j+1) * C(k, j).
        const std::size_t k = b_.size();
        bool higher_order = k >= 2;
        for (std::size_t j = 1; higher_order && j <= k; ++j) {
            const double expect = (j % 2 == 1 ? 1.0 : -1.0) * binomial(k, j);
            if (b_[j - 1] != expect)
                higher_order = false;
        }
        if (higher_order)
            return SignatureClass::kHigherOrderPrefixSum;
    }
    return SignatureClass::kGeneralInteger;
}

std::size_t
Signature::tuple_size() const
{
    if (!is_pure_recursive() || b_.size() < 2)
        return 0;
    for (std::size_t j = 0; j + 1 < b_.size(); ++j)
        if (b_[j] != 0.0)
            return 0;
    return b_.back() == 1.0 ? b_.size() : 0;
}

Signature
Signature::recursive_part() const
{
    if (max_plus_)
        return max_plus({0.0}, b_);
    return Signature({1.0}, b_);
}

Signature
Signature::map_part() const
{
    if (max_plus_) {
        Signature sig = *this;
        sig.b_.clear();
        return sig;
    }
    return Signature(a_, {}, /*allow_fir=*/true);
}

std::string
Signature::to_string(int precision) const
{
    std::ostringstream os;
    if (precision >= 0)
        os.precision(precision);
    if (max_plus_)
        os << "max+";
    os << "(";
    for (std::size_t i = 0; i < a_.size(); ++i)
        os << (i ? ", " : "") << a_[i];
    os << ":";
    for (std::size_t i = 0; i < b_.size(); ++i)
        os << (i ? ", " : " ") << b_[i];
    os << ")";
    return os.str();
}

bool
Signature::operator==(const Signature& other) const
{
    return a_ == other.a_ && b_ == other.b_ && max_plus_ == other.max_plus_;
}

}  // namespace plr
