#include "core/signature.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/diag.h"

namespace plr {

namespace {

bool
is_integral_value(double v)
{
    return std::nearbyint(v) == v && std::fabs(v) < 9.0e15;
}

void
trim_trailing_zeros(std::vector<double>& v)
{
    while (!v.empty() && v.back() == 0.0)
        v.pop_back();
}

/** Binomial coefficient C(n, r) as a double (small n only). */
double
binomial(std::size_t n, std::size_t r)
{
    double result = 1.0;
    for (std::size_t i = 0; i < r; ++i)
        result = result * static_cast<double>(n - i) / static_cast<double>(i + 1);
    return std::nearbyint(result);
}

std::vector<double>
parse_coefficient_list(const std::string& text)
{
    std::vector<double> values;
    std::size_t pos = 0;
    while (pos < text.size()) {
        while (pos < text.size() && (std::isspace(static_cast<unsigned char>(text[pos])) || text[pos] == ','))
            ++pos;
        if (pos >= text.size())
            break;
        const char* start = text.c_str() + pos;
        char* end = nullptr;
        const double v = std::strtod(start, &end);
        PLR_REQUIRE(end != start, "malformed coefficient list: '" << text << "'");
        values.push_back(v);
        pos = static_cast<std::size_t>(end - text.c_str());
    }
    return values;
}

}  // namespace

const char*
to_string(SignatureClass c)
{
    switch (c) {
      case SignatureClass::kPrefixSum: return "prefix-sum";
      case SignatureClass::kTuplePrefixSum: return "tuple-prefix-sum";
      case SignatureClass::kHigherOrderPrefixSum: return "higher-order-prefix-sum";
      case SignatureClass::kGeneralInteger: return "general-integer";
      case SignatureClass::kGeneralReal: return "general-real";
    }
    return "unknown";
}

Signature::Signature(std::vector<double> a, std::vector<double> b,
                     bool allow_fir)
    : a_(std::move(a)), b_(std::move(b))
{
    trim_trailing_zeros(a_);
    trim_trailing_zeros(b_);
    PLR_REQUIRE(!a_.empty(),
                "signature rejected: all feed-forward coefficients are zero, "
                "the output would be identically zero");
    PLR_REQUIRE(allow_fir || !b_.empty(),
                "signature rejected: all feedback coefficients are zero; "
                "this is a map operation, not a recurrence");
    for (double c : a_)
        PLR_REQUIRE(std::isfinite(c), "non-finite feed-forward coefficient");
    for (double c : b_)
        PLR_REQUIRE(std::isfinite(c), "non-finite feedback coefficient");
}

Signature
Signature::max_plus(std::vector<double> a, std::vector<double> b)
{
    const double neg_inf = -std::numeric_limits<double>::infinity();
    PLR_REQUIRE(!a.empty() && a.back() != neg_inf,
                "max-plus signature needs a present trailing feed-forward "
                "coefficient");
    PLR_REQUIRE(!b.empty() && b.back() != neg_inf,
                "max-plus signature needs a present trailing feedback "
                "coefficient");
    for (double c : a)
        PLR_REQUIRE(!std::isnan(c) && c < std::numeric_limits<double>::infinity(),
                    "bad max-plus coefficient");
    for (double c : b)
        PLR_REQUIRE(!std::isnan(c) && c < std::numeric_limits<double>::infinity(),
                    "bad max-plus coefficient");

    Signature sig({1.0}, {1.0});  // placeholder; fields replaced below
    sig.a_ = std::move(a);
    sig.b_ = std::move(b);
    sig.max_plus_ = true;
    return sig;
}

Signature
Signature::parse(const std::string& text, bool allow_fir)
{
    std::string body = text;
    // Strip optional outer parentheses.
    auto first = body.find_first_not_of(" \t\n");
    auto last = body.find_last_not_of(" \t\n");
    PLR_REQUIRE(first != std::string::npos, "empty signature");
    body = body.substr(first, last - first + 1);
    if (!body.empty() && body.front() == '(' && body.back() == ')')
        body = body.substr(1, body.size() - 2);

    const auto colon = body.find(':');
    PLR_REQUIRE(colon != std::string::npos,
                "signature '" << text << "' is missing the ':' separator");
    PLR_REQUIRE(body.find(':', colon + 1) == std::string::npos,
                "signature '" << text << "' has more than one ':'");

    return Signature(parse_coefficient_list(body.substr(0, colon)),
                     parse_coefficient_list(body.substr(colon + 1)),
                     allow_fir);
}

bool
Signature::is_integral() const
{
    if (max_plus_)
        return false;  // tropical recurrences run in the float domain
    for (double c : a_)
        if (!is_integral_value(c))
            return false;
    for (double c : b_)
        if (!is_integral_value(c))
            return false;
    return true;
}

bool
Signature::is_pure_recursive() const
{
    // The multiplicative identity is 1 in ordinary rings and 0 in the
    // max-plus semiring.
    return a_.size() == 1 && a_[0] == (max_plus_ ? 0.0 : 1.0);
}

bool
Signature::coefficients_are_zero_one() const
{
    for (double c : a_)
        if (c != 0.0 && c != 1.0)
            return false;
    for (double c : b_)
        if (c != 0.0 && c != 1.0)
            return false;
    return true;
}

SignatureClass
Signature::classify() const
{
    if (max_plus_ || !is_integral())
        return SignatureClass::kGeneralReal;
    if (is_pure_recursive()) {
        if (b_.size() == 1 && b_[0] == 1.0)
            return SignatureClass::kPrefixSum;
        if (tuple_size() > 0)
            return SignatureClass::kTuplePrefixSum;
        // k-th order prefix sum: b_j = (-1)^(j+1) * C(k, j).
        const std::size_t k = b_.size();
        bool higher_order = k >= 2;
        for (std::size_t j = 1; higher_order && j <= k; ++j) {
            const double expect = (j % 2 == 1 ? 1.0 : -1.0) * binomial(k, j);
            if (b_[j - 1] != expect)
                higher_order = false;
        }
        if (higher_order)
            return SignatureClass::kHigherOrderPrefixSum;
    }
    return SignatureClass::kGeneralInteger;
}

std::size_t
Signature::tuple_size() const
{
    if (!is_pure_recursive() || b_.size() < 2)
        return 0;
    for (std::size_t j = 0; j + 1 < b_.size(); ++j)
        if (b_[j] != 0.0)
            return 0;
    return b_.back() == 1.0 ? b_.size() : 0;
}

Signature
Signature::recursive_part() const
{
    if (max_plus_)
        return max_plus({0.0}, b_);
    return Signature({1.0}, b_);
}

Signature
Signature::map_part() const
{
    if (max_plus_) {
        Signature sig = *this;
        sig.b_.clear();
        return sig;
    }
    return Signature(a_, {}, /*allow_fir=*/true);
}

std::string
Signature::to_string(int precision) const
{
    std::ostringstream os;
    if (precision >= 0)
        os.precision(precision);
    if (max_plus_)
        os << "max+";
    os << "(";
    for (std::size_t i = 0; i < a_.size(); ++i)
        os << (i ? ", " : "") << a_[i];
    os << ":";
    for (std::size_t i = 0; i < b_.size(); ++i)
        os << (i ? ", " : " ") << b_[i];
    os << ")";
    return os.str();
}

bool
Signature::operator==(const Signature& other) const
{
    return a_ == other.a_ && b_ == other.b_ && max_plus_ == other.max_plus_;
}

}  // namespace plr
