#ifndef PLR_ANALYSIS_STATIC_REPORT_H_
#define PLR_ANALYSIS_STATIC_REPORT_H_

/**
 * @file
 * Typed verdicts of the plan-time static analyzer
 * (docs/STATIC_ANALYSIS.md): per execution path, an overflow/range
 * verdict from interval analysis of the growth envelope, an a priori
 * float forward-error bound, and a legality proof. The whole report is
 * JSON-serializable (schema `plr-static:v1`) so `conformance_tool
 * analyze` can export it and CI can diff verdicts against a committed
 * baseline.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/static/bounds.h"
#include "util/json.h"

namespace plr::static_analysis {

/** Schema tag stamped into exported reports. */
inline constexpr const char* kReportSchema = "plr-static:v1";

/** The domain a signature is analyzed in (kernels::Domain mirror; the
 * analyzer cannot depend on the kernel registry). */
enum class ValueDomain {
    kInt32,
    kFloat32,
    kMaxPlus,
};

const char* to_string(ValueDomain d);
ValueDomain parse_value_domain(const std::string& name);

/** Value-range verdict of the interval analysis. */
enum class OverflowVerdict {
    /** The envelope stays below the range limit at every index < n. */
    kProvenSafe,
    /** The envelope crosses the limit but no witness input was
     * confirmed (interval slop, or the envelope saturated double). */
    kMayOverflow,
    /** A concrete in-model input provably exceeds the limit (witness
     * evaluated in double and re-checkable). */
    kProvenOverflow,
    /** The analysis could not decide (budget exhausted on a
     * non-contracting recurrence, or the domain is unanalyzed). */
    kUnknown,
};

const char* to_string(OverflowVerdict v);
OverflowVerdict parse_overflow_verdict(const std::string& name);

/** Legality verdict for one execution path. */
enum class Legality {
    /** The path applies and its preconditions are proven. */
    kProven,
    /** The path does not apply to this shape; the implementation falls
     * back to a correct slower path (not an error). */
    kFallback,
    /** Applying the path would be unsound (e.g. log-space with a
     * non-decay coefficient). */
    kRejected,
    /** Not analyzed; callers must treat the path conservatively. */
    kUnknown,
};

const char* to_string(Legality l);
Legality parse_legality(const std::string& name);

/** The execution paths the analyzer reasons about. */
enum class PathKind {
    kSerial,
    kChunkedTwoPhase,
    kSimdDirect,
    kSimdLogSpace,
    kSuperpositionResume,
};

const char* to_string(PathKind p);
PathKind parse_path_kind(const std::string& name);

/** Range analysis of one path (int32 wrap / float32 overflow). */
struct RangeReport {
    OverflowVerdict verdict = OverflowVerdict::kUnknown;
    /** First output index whose envelope crosses the limit. */
    std::size_t witness_index = kNoIndex;
    /** Envelope value at the crossing (0 when there is none). */
    double bound_at_witness = 0.0;
    /** Envelope at index n-1: the proven max |y[t]| over the model. */
    double final_bound = 0.0;
    /** Wide evaluation of the synthesized witness input (kProvenOverflow
     * only): |value| exceeds the limit, re-checkable by anyone. */
    double witness_value = 0.0;
    std::string note;
};

/** A priori float forward-error bound for one path. */
struct ErrorReport {
    /** False when the domain has no error model (int is exact, tropical
     * is unanalyzed) or the gamma model saturated. */
    bool available = false;
    /** Predicted max_t |path(y)[t] - serial_float(y)[t]|, absolute. */
    double abs_bound = 0.0;
    /** abs_bound relative to the magnitude envelope. */
    double rel_bound = 0.0;
    /** abs_bound in units of one ULP at the magnitude envelope. */
    double ulp_bound = 0.0;
    /** The magnitude envelope X * C[n] the bound scales with. */
    double magnitude_bound = 0.0;
    std::string note;
};

/** Everything the analyzer proved about one execution path. */
struct PathReport {
    PathKind path = PathKind::kSerial;
    Legality legality = Legality::kUnknown;
    std::string legality_reason;
    RangeReport range;
    ErrorReport error;
    /** kSimdLogSpace only: the kernel's heuristic block length and the
     * proven maximum it must stay under. */
    std::size_t log_block_heuristic = 0;
    std::size_t log_block_proven_max = 0;
    /** kSuperpositionResume / decay suppression: per-element truncation
     * error bound of suppressing decayed factor tails, and whether the
     * suppression is exact (zero tail mass). */
    double truncation_bound = 0.0;
    bool truncation_exact = false;
};

/** The full static report for one (signature, domain, n, chunk). */
struct StaticReport {
    std::string signature;
    ValueDomain domain = ValueDomain::kInt32;
    std::size_t order = 0;
    std::size_t fir_taps = 0;
    std::size_t n = 0;
    std::size_t chunk = 0;
    double input_bound = 0.0;
    std::vector<PathReport> paths;

    /** The report for @p path; nullptr when not analyzed. */
    const PathReport* find(PathKind path) const;

    /** Serialize as a `plr-static:v1` JSON object. */
    json::Value to_json() const;

    /** Parse a report previously emitted by to_json; throws FatalError
     * on malformed documents (used by the CI baseline gate). */
    static StaticReport from_json(const json::Value& value);
};

}  // namespace plr::static_analysis

#endif  // PLR_ANALYSIS_STATIC_REPORT_H_
