#ifndef PLR_ANALYSIS_STATIC_BOUNDS_H_
#define PLR_ANALYSIS_STATIC_BOUNDS_H_

/**
 * @file
 * The numeric core of the plan-time static analyzer (docs/STATIC_ANALYSIS.md):
 * interval growth envelopes, float forward-error bounds, log-space block
 * budgets, and decayed-tail truncation bounds, all derived from a signature's
 * coefficients alone — no kernel runs.
 *
 * Everything here is header-only on purpose: `codegen_cpp` (in plr_core)
 * consults these bounds while emitting specializations, and the full analyzer
 * (plr_static_analysis) links plr_core — a .cpp here would make the two
 * libraries circular.
 *
 * The central object is the *growth envelope*. A linear recurrence is a
 * convolution y[t] = sum_d h[d] * x[t-d] with h the impulse response of the
 * full signature, so over the input model |x[u]| <= X the exact worst case is
 *
 *     max |y[t]|  =  X * C[t],      C[t] = sum_{d<=t} |h[d]|,
 *
 * attained by the sign-matched input x[u] = X * sgn(h[t-u]). The envelope is
 * therefore *tight*, not just sound: when it crosses a range limit the
 * crossing input is constructible and `evaluate_witness` checks it in double
 * precision, turning an interval verdict into a constructive existence proof.
 * h is computed in double with outward rounding slop (an interval, not a
 * point), so "proven" verdicts survive the analyzer's own rounding.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace plr::static_analysis {

/** "No index": witness / crossing positions that do not exist. */
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/** Impulse-response terms the envelope scan will compute before giving
 * up undecided (a few milliseconds of double arithmetic). */
inline constexpr std::size_t kDefaultAnalysisBudget = std::size_t{1} << 22;

/** Unit roundoff of IEEE binary32 (the rings evaluate in float). */
inline constexpr double kFloat32UnitRoundoff = 0x1.0p-24;

/** Conformance input magnitudes (testing/corpus.h input synthesis). */
inline constexpr double kConformanceIntInputBound = 100.0;
inline constexpr double kConformanceFloatInputBound = 1.0;

/** Range limit for the exact int32 ring: |y| above this wraps. */
inline constexpr double kInt32RangeLimit = 2147483647.0;

/** Range limit used for float verdicts: FLT_MAX with two binades of
 * headroom so envelope-safe values cannot round across the real limit. */
inline constexpr double kFloat32RangeLimit =
    static_cast<double>(std::numeric_limits<float>::max()) / 4.0;

/**
 * Relative slop applied outward to the envelope after @p steps terms of
 * order-@p k impulse response accumulated in double: each term is a chain
 * of at most (k+2)*steps roundings, and the constant 16 absorbs the
 * accumulation itself. Deliberately generous — the slop only widens the
 * may-overflow band, never a "proven" claim.
 */
inline double
envelope_slop(std::size_t steps, std::size_t k)
{
    return static_cast<double>(steps + 16) * static_cast<double>(k + 2) *
           std::numeric_limits<double>::epsilon();
}

/** Result of one growth-envelope scan against a range limit. */
struct EnvelopeScan {
    /** Interval around sum_{d<analyzed} |h[d]| (outward-rounded). */
    double abs_sum_lo = 0.0;
    double abs_sum_hi = 0.0;
    /** Impulse-response terms accumulated before stopping. */
    std::size_t analyzed = 0;
    /**
     * True when the envelope covers every index < n: either the scan ran
     * to n, or the tail beyond `analyzed` was bounded rigorously via the
     * coefficient 1-norm (possible only when sum|b_j| < 1).
     */
    bool complete = false;
    /** First t where input_bound * C_hi[t] > limit (kNoIndex: never). */
    std::size_t first_may_exceed = kNoIndex;
    /** First t where input_bound * C_lo[t] > limit — the witness
     * candidate index (kNoIndex: never). */
    std::size_t first_must_exceed = kNoIndex;
    /** input_bound * C_hi at first_may_exceed (0 when no crossing). */
    double bound_at_crossing = 0.0;
    /** input_bound * C_hi at the last analyzed index (may be +inf). */
    double final_bound = 0.0;
    /** sgn(h[d]) for d <= the crossing index; drives witness synthesis.
     * Kept only while a crossing is still being searched for. */
    std::vector<std::int8_t> signs;
};

/**
 * Scan the growth envelope of the signature (a : b) against @p limit for
 * inputs bounded by @p input_bound, over output indices [0, n).
 *
 * Stops early once a must-exceed crossing is found (the verdict is
 * decided), once the envelope saturates double range, or after @p budget
 * terms. When n exceeds the budget and the recurrence is a contraction
 * (sum|b_j| < 1) the tail is folded in analytically and the scan still
 * reports complete coverage.
 */
inline EnvelopeScan
scan_envelope(const std::vector<double>& a, const std::vector<double>& b,
              double input_bound, std::size_t n, double limit,
              std::size_t budget = kDefaultAnalysisBudget)
{
    EnvelopeScan scan;
    const std::size_t k = b.size();
    const std::size_t steps = n < budget ? n : budget;
    std::vector<double> hist(k, 0.0);  // hist[j-1] = h[t-j]
    double abs_sum = 0.0;
    double window_max = 0.0;  // max |h| over the trailing k-window
    std::size_t t = 0;
    for (; t < steps; ++t) {
        double h = t < a.size() ? a[t] : 0.0;
        for (std::size_t j = 1; j <= k && j <= t; ++j)
            h += b[j - 1] * hist[j - 1];
        abs_sum += std::fabs(h);
        if (!std::isfinite(abs_sum)) {
            // Envelope saturated double range: everything past here
            // certainly exceeds any finite limit, but the witness math
            // is gone; report the saturation index as a may-crossing.
            scan.abs_sum_hi = std::numeric_limits<double>::infinity();
            scan.abs_sum_lo = 0.0;  // lower edge unknown past saturation
            if (scan.first_may_exceed == kNoIndex) {
                scan.first_may_exceed = t;
                scan.bound_at_crossing =
                    std::numeric_limits<double>::infinity();
            }
            scan.final_bound = std::numeric_limits<double>::infinity();
            scan.analyzed = t + 1;
            return scan;
        }
        const double slop = envelope_slop(t, k);
        const double hi = input_bound * abs_sum * (1.0 + slop);
        const double lo = input_bound * abs_sum * (1.0 - slop);
        if (scan.first_must_exceed == kNoIndex)
            scan.signs.push_back(h > 0.0 ? 1 : (h < 0.0 ? -1 : 0));
        if (scan.first_may_exceed == kNoIndex && hi > limit) {
            scan.first_may_exceed = t;
            scan.bound_at_crossing = hi;
        }
        if (scan.first_must_exceed == kNoIndex && lo > limit) {
            scan.first_must_exceed = t;
            // Verdict decided; the envelope past the crossing is moot.
            scan.abs_sum_lo = abs_sum * (1.0 - slop);
            scan.abs_sum_hi = abs_sum * (1.0 + slop);
            scan.final_bound = hi;
            scan.analyzed = t + 1;
            return scan;
        }
        for (std::size_t j = k; j-- > 1;)
            hist[j] = hist[j - 1];
        if (k > 0)
            hist[0] = h;
        window_max = 0.0;
        for (double w : hist)
            window_max = std::fmax(window_max, std::fabs(w));
    }
    scan.analyzed = t;
    const double slop = envelope_slop(t, k);
    scan.abs_sum_lo = abs_sum * (1.0 - slop);
    scan.abs_sum_hi = abs_sum * (1.0 + slop);
    scan.complete = t >= n;
    if (!scan.complete) {
        // Rigorous tail for contractions: grouping the remaining impulse
        // response in k-blocks, block i is bounded by window_max * rho^i,
        // so the tail mass is at most k * window_max * rho / (1 - rho).
        double rho = 0.0;
        for (double c : b)
            rho += std::fabs(c);
        if (rho < 1.0) {
            const double tail = static_cast<double>(k > 0 ? k : 1) *
                                window_max * rho / (1.0 - rho);
            scan.abs_sum_hi = (abs_sum + tail) * (1.0 + slop);
            scan.complete = true;
        }
    }
    scan.final_bound = input_bound * scan.abs_sum_hi;
    if (scan.first_may_exceed == kNoIndex && scan.final_bound > limit) {
        scan.first_may_exceed = scan.analyzed > 0 ? scan.analyzed - 1 : 0;
        scan.bound_at_crossing = scan.final_bound;
    }
    return scan;
}

/** Outcome of evaluating a synthesized witness input in double. */
struct WitnessEval {
    bool evaluated = false;
    /** Wide (double) serial value of y at the witness index. */
    double value = 0.0;
    /** True when the value exceeds the limit beyond evaluation slop,
     * i.e. the overflow is constructively proven. */
    bool exceeds = false;
};

/**
 * Build the sign-matched witness input x[u] = input_bound * sgn(h[t-u])
 * for the crossing index @p witness (using the signs collected by
 * scan_envelope) and evaluate y[witness] with the full signature (a : b)
 * serially in double. Linearity makes this input the exact maximizer of
 * y[witness] over the model, so a crossing envelope should reproduce
 * here; `exceeds` demands strict exceedance beyond the evaluation's own
 * rounding slop, making a kProvenOverflow verdict self-checking.
 */
inline WitnessEval
evaluate_witness(const std::vector<double>& a, const std::vector<double>& b,
                 double input_bound, const std::vector<std::int8_t>& signs,
                 std::size_t witness, double limit)
{
    WitnessEval eval;
    if (witness == kNoIndex || witness >= signs.size())
        return eval;
    const std::size_t n = witness + 1;
    const std::size_t k = b.size();
    std::vector<double> x(n), y(n);
    for (std::size_t u = 0; u < n; ++u)
        x[u] = input_bound * static_cast<double>(signs[witness - u]);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < a.size() && j <= i; ++j)
            acc += a[j] * x[i - j];
        for (std::size_t j = 1; j <= k && j <= i; ++j)
            acc += b[j - 1] * y[i - j];
        y[i] = acc;
    }
    eval.evaluated = true;
    eval.value = y[witness];
    const double slop =
        envelope_slop(n, k + (a.empty() ? 0 : a.size() - 1));
    eval.exceeds = std::isfinite(eval.value)
                       ? std::fabs(eval.value) * (1.0 - slop) > limit
                       : true;
    return eval;
}

/**
 * The standard forward-error constant gamma_m = m*u / (1 - m*u) for a
 * chain of m roundings at unit roundoff u; +inf once m*u reaches 1/2
 * (the first-order model stops being meaningful there).
 */
inline double
gamma_bound(double ops, double unit_roundoff)
{
    const double mu = ops * unit_roundoff;
    if (!(mu >= 0.0) || mu >= 0.5)
        return std::numeric_limits<double>::infinity();
    return mu / (1.0 - mu);
}

/**
 * Extra rounding-chain multiplier granted to parallel evaluation orders:
 * chunked two-phase, SIMD reassociation, and the log-space ladder each
 * re-order the same multiply-adds, so their chains are a small constant
 * times the serial chain, not asymptotically longer.
 */
inline constexpr double kPathOpsSlack = 4.0;

/**
 * A priori bound on max_t |kernel(y)[t] - serial_float(y)[t]| for any of
 * the analyzed float evaluation orders: both sides are backward-stable
 * with rounding chains of at most kPathOpsSlack*(k+p+3)*n float ops, and
 * every perturbation is amplified by at most the magnitude envelope
 * @p magnitude_bound = X * C[n]. The absolute floor term absorbs
 * denormal flushing differences (at most a denormal per op). Returns
 * +inf when the gamma model saturates — callers report kUnknown.
 */
inline double
float_divergence_bound(std::size_t k, std::size_t p, std::size_t n,
                       double magnitude_bound)
{
    if (n == 0)
        return 0.0;
    const double chain = kPathOpsSlack * static_cast<double>(k + p + 3) *
                         static_cast<double>(n);
    const double g = gamma_bound(chain, kFloat32UnitRoundoff);
    if (!std::isfinite(g) || !std::isfinite(magnitude_bound))
        return std::numeric_limits<double>::infinity();
    return 2.0 * g * magnitude_bound +
           1e-25 * static_cast<double>(n + 1);
}

/**
 * The SIMD backend's heuristic Heinsen block length, replicated exactly
 * (kernels/simd/simd_scan.cpp): largest L with b^-L <= 2^20, clamped to
 * [8, 4096] and rounded down to a multiple of 8.
 */
inline std::size_t
heinsen_heuristic_block_length(double b)
{
    const float bf = static_cast<float>(b);
    if (!(bf > 0.0f && bf < 1.0f))
        return 8;
    constexpr double kMaxExponentBits = 20.0;
    const double bits_per_step = -std::log2(static_cast<double>(bf));
    const double raw = kMaxExponentBits / bits_per_step;
    std::size_t len =
        raw < 8.0 ? 8 : (raw > 4096.0 ? 4096 : static_cast<std::size_t>(raw));
    return len & ~std::size_t{7};
}

/**
 * Proven maximum log-space block length for decay coefficient @p b in
 * (0, 1): the scaled partial sums sum_{u<L} a0*x[u]*b^-u are bounded by
 * X*|a0|*b^-(L-1)/(1-b), so the largest L keeping them under the float
 * range limit is
 *
 *     L_max = 1 + floor( log(limit*(1-b) / (X*max(|a0|,1))) / log(1/b) ).
 *
 * This is the analyzer's replacement for the heuristic exponent budget:
 * the heuristic's 2^20 excursion is legal iff its block length is <= this
 * proven maximum (in practice smaller by ~17 binades of margin). Returns
 * 0 when no positive length is safe or b is not a decay coefficient.
 */
inline std::size_t
log_space_proven_max_block(double b, double a0_abs, double input_bound)
{
    const float bf = static_cast<float>(b);
    if (!(bf > 0.0f && bf < 1.0f))
        return 0;
    const double scale = input_bound * std::fmax(a0_abs, 1.0);
    const double headroom = kFloat32RangeLimit * (1.0 - b) / scale;
    if (!(headroom > 1.0))
        return 0;
    const double raw = 1.0 + std::log(headroom) / std::log(1.0 / b);
    if (raw >= 1e18)
        return static_cast<std::size_t>(-2);  // effectively unbounded
    return static_cast<std::size_t>(raw);
}

/**
 * Unflushed tail mass of correction-factor list @p carry_j beyond offset
 * @p effective_length: sum_{o in [eff, m)} |F_j[o]| computed in double
 * with no denormal flushing. Suppressing the tail (Section 3.1) changes
 * each corrected element by at most carry_bound times this mass; the
 * suppression is *exactly* sound when the mass is zero (always true in
 * the int ring, where decayed tails are literally zero).
 */
inline double
factor_tail_abs_sum(const std::vector<double>& b, std::size_t carry_j,
                    std::size_t effective_length, std::size_t m)
{
    const std::size_t k = b.size();
    if (carry_j < 1 || carry_j > k || effective_length >= m)
        return 0.0;
    std::vector<double> hist(k, 0.0);
    hist[carry_j - 1] = 1.0;
    double tail = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
        double f = 0.0;
        for (std::size_t i = 1; i <= k; ++i)
            f += b[i - 1] * hist[i - 1];
        if (t >= effective_length)
            tail += std::fabs(f);
        for (std::size_t i = k; i-- > 1;)
            hist[i] = hist[i - 1];
        hist[0] = f;
    }
    const double slop = envelope_slop(m, k);
    return tail * (1.0 + slop);
}

}  // namespace plr::static_analysis

#endif  // PLR_ANALYSIS_STATIC_BOUNDS_H_
