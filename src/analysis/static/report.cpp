#include "analysis/static/report.h"

#include <cmath>
#include <limits>

#include "util/diag.h"

namespace plr::static_analysis {

namespace {

/** JSON-safe wrapper: +/-inf serialize as the string "inf"/"-inf". */
json::Value
number_or_inf(double v)
{
    if (std::isfinite(v))
        return json::Value(v);
    return json::Value(v > 0 ? "inf" : "-inf");
}

double
parse_number_or_inf(const json::Value& v)
{
    if (v.is_number())
        return v.as_double();
    const std::string& s = v.as_string();
    if (s == "inf")
        return std::numeric_limits<double>::infinity();
    if (s == "-inf")
        return -std::numeric_limits<double>::infinity();
    PLR_FATAL("static report: '" << s << "' is not a number");
}

/** kNoIndex serializes as null (JSON has no 2^64-1). */
json::Value
index_or_null(std::size_t i)
{
    if (i == kNoIndex)
        return json::Value(nullptr);
    return json::Value(static_cast<std::uint64_t>(i));
}

std::size_t
parse_index_or_null(const json::Value& v)
{
    if (v.is_null())
        return kNoIndex;
    return static_cast<std::size_t>(v.as_uint64());
}

}  // namespace

const char*
to_string(ValueDomain d)
{
    switch (d) {
      case ValueDomain::kInt32: return "int";
      case ValueDomain::kFloat32: return "float";
      case ValueDomain::kMaxPlus: return "tropical";
    }
    return "unknown";
}

ValueDomain
parse_value_domain(const std::string& name)
{
    for (ValueDomain d : {ValueDomain::kInt32, ValueDomain::kFloat32,
                          ValueDomain::kMaxPlus})
        if (name == to_string(d))
            return d;
    PLR_FATAL("unknown analysis domain '" << name << "'");
}

const char*
to_string(OverflowVerdict v)
{
    switch (v) {
      case OverflowVerdict::kProvenSafe: return "proven-safe";
      case OverflowVerdict::kMayOverflow: return "may-overflow";
      case OverflowVerdict::kProvenOverflow: return "proven-overflow";
      case OverflowVerdict::kUnknown: return "unknown";
    }
    return "unknown";
}

OverflowVerdict
parse_overflow_verdict(const std::string& name)
{
    for (OverflowVerdict v :
         {OverflowVerdict::kProvenSafe, OverflowVerdict::kMayOverflow,
          OverflowVerdict::kProvenOverflow, OverflowVerdict::kUnknown})
        if (name == to_string(v))
            return v;
    PLR_FATAL("unknown overflow verdict '" << name << "'");
}

const char*
to_string(Legality l)
{
    switch (l) {
      case Legality::kProven: return "proven";
      case Legality::kFallback: return "fallback";
      case Legality::kRejected: return "rejected";
      case Legality::kUnknown: return "unknown";
    }
    return "unknown";
}

Legality
parse_legality(const std::string& name)
{
    for (Legality l : {Legality::kProven, Legality::kFallback,
                       Legality::kRejected, Legality::kUnknown})
        if (name == to_string(l))
            return l;
    PLR_FATAL("unknown legality verdict '" << name << "'");
}

const char*
to_string(PathKind p)
{
    switch (p) {
      case PathKind::kSerial: return "serial";
      case PathKind::kChunkedTwoPhase: return "chunked";
      case PathKind::kSimdDirect: return "simd-direct";
      case PathKind::kSimdLogSpace: return "simd-log";
      case PathKind::kSuperpositionResume: return "superposition-resume";
    }
    return "unknown";
}

PathKind
parse_path_kind(const std::string& name)
{
    for (PathKind p :
         {PathKind::kSerial, PathKind::kChunkedTwoPhase, PathKind::kSimdDirect,
          PathKind::kSimdLogSpace, PathKind::kSuperpositionResume})
        if (name == to_string(p))
            return p;
    PLR_FATAL("unknown execution path '" << name << "'");
}

const PathReport*
StaticReport::find(PathKind path) const
{
    for (const PathReport& p : paths)
        if (p.path == path)
            return &p;
    return nullptr;
}

json::Value
StaticReport::to_json() const
{
    json::Value doc = json::Value::object();
    doc.set("schema", kReportSchema);
    doc.set("signature", signature);
    doc.set("domain", to_string(domain));
    doc.set("order", static_cast<std::uint64_t>(order));
    doc.set("fir_taps", static_cast<std::uint64_t>(fir_taps));
    doc.set("n", static_cast<std::uint64_t>(n));
    doc.set("chunk", static_cast<std::uint64_t>(chunk));
    doc.set("input_bound", input_bound);
    json::Value path_array = json::Value::array();
    for (const PathReport& p : paths) {
        json::Value node = json::Value::object();
        node.set("path", to_string(p.path));
        node.set("legality", to_string(p.legality));
        if (!p.legality_reason.empty())
            node.set("legality_reason", p.legality_reason);

        json::Value range = json::Value::object();
        range.set("verdict", to_string(p.range.verdict));
        range.set("witness_index", index_or_null(p.range.witness_index));
        range.set("bound_at_witness", number_or_inf(p.range.bound_at_witness));
        range.set("final_bound", number_or_inf(p.range.final_bound));
        range.set("witness_value", number_or_inf(p.range.witness_value));
        if (!p.range.note.empty())
            range.set("note", p.range.note);
        node.set("range", range);

        json::Value error = json::Value::object();
        error.set("available", p.error.available);
        error.set("abs_bound", number_or_inf(p.error.abs_bound));
        error.set("rel_bound", number_or_inf(p.error.rel_bound));
        error.set("ulp_bound", number_or_inf(p.error.ulp_bound));
        error.set("magnitude_bound", number_or_inf(p.error.magnitude_bound));
        if (!p.error.note.empty())
            error.set("note", p.error.note);
        node.set("error", error);

        if (p.path == PathKind::kSimdLogSpace) {
            node.set("log_block_heuristic",
                     static_cast<std::uint64_t>(p.log_block_heuristic));
            node.set("log_block_proven_max",
                     static_cast<std::uint64_t>(p.log_block_proven_max));
        }
        if (p.path == PathKind::kSuperpositionResume) {
            node.set("truncation_bound", number_or_inf(p.truncation_bound));
            node.set("truncation_exact", p.truncation_exact);
        }
        path_array.push_back(node);
    }
    doc.set("paths", path_array);
    return doc;
}

StaticReport
StaticReport::from_json(const json::Value& value)
{
    PLR_REQUIRE(value.is_object(), "static report: not a JSON object");
    PLR_REQUIRE(value.at("schema").as_string() == kReportSchema,
                "static report: unknown schema '"
                    << value.at("schema").as_string() << "'");
    StaticReport report;
    report.signature = value.at("signature").as_string();
    report.domain = parse_value_domain(value.at("domain").as_string());
    report.order = static_cast<std::size_t>(value.at("order").as_uint64());
    report.fir_taps =
        static_cast<std::size_t>(value.at("fir_taps").as_uint64());
    report.n = static_cast<std::size_t>(value.at("n").as_uint64());
    report.chunk = static_cast<std::size_t>(value.at("chunk").as_uint64());
    report.input_bound = value.at("input_bound").as_double();
    for (const json::Value& node : value.at("paths").items()) {
        PathReport p;
        p.path = parse_path_kind(node.at("path").as_string());
        p.legality = parse_legality(node.at("legality").as_string());
        if (const json::Value* reason = node.find("legality_reason"))
            p.legality_reason = reason->as_string();
        const json::Value& range = node.at("range");
        p.range.verdict =
            parse_overflow_verdict(range.at("verdict").as_string());
        p.range.witness_index =
            parse_index_or_null(range.at("witness_index"));
        p.range.bound_at_witness =
            parse_number_or_inf(range.at("bound_at_witness"));
        p.range.final_bound = parse_number_or_inf(range.at("final_bound"));
        p.range.witness_value =
            parse_number_or_inf(range.at("witness_value"));
        if (const json::Value* note = range.find("note"))
            p.range.note = note->as_string();
        const json::Value& error = node.at("error");
        p.error.available = error.at("available").as_bool();
        p.error.abs_bound = parse_number_or_inf(error.at("abs_bound"));
        p.error.rel_bound = parse_number_or_inf(error.at("rel_bound"));
        p.error.ulp_bound = parse_number_or_inf(error.at("ulp_bound"));
        p.error.magnitude_bound =
            parse_number_or_inf(error.at("magnitude_bound"));
        if (const json::Value* note = error.find("note"))
            p.error.note = note->as_string();
        if (const json::Value* v = node.find("log_block_heuristic"))
            p.log_block_heuristic = static_cast<std::size_t>(v->as_uint64());
        if (const json::Value* v = node.find("log_block_proven_max"))
            p.log_block_proven_max = static_cast<std::size_t>(v->as_uint64());
        if (const json::Value* v = node.find("truncation_bound"))
            p.truncation_bound = parse_number_or_inf(*v);
        if (const json::Value* v = node.find("truncation_exact"))
            p.truncation_exact = v->as_bool();
        report.paths.push_back(std::move(p));
    }
    return report;
}

}  // namespace plr::static_analysis
