#ifndef PLR_ANALYSIS_STATIC_ANALYZER_H_
#define PLR_ANALYSIS_STATIC_ANALYZER_H_

/**
 * @file
 * The plan-time static analyzer (docs/STATIC_ANALYSIS.md): an abstract
 * interpretation over Signature + plan parameters that derives, per
 * execution path, a value-range/overflow verdict (interval analysis of
 * the growth envelope, with a constructive witness for proven
 * overflows), an a priori float forward-error bound, and a legality
 * proof — all before any kernel runs.
 *
 * Two entry points:
 *
 *  - analyze(): the full report, O(n) double arithmetic. Consumed by
 *    the differential oracle (Check::kBoundDominance), `conformance_tool
 *    analyze`, and the CI verdict baseline.
 *  - choose_simd_path(): the O(k) path-selection slice consumed by
 *    cpu_simd's PathPlan on every run. Pure (no environment reads) and
 *    conservative: anything outside the analyzed shapes degrades to the
 *    scalar path.
 */

#include <cstddef>

#include "analysis/static/report.h"
#include "core/signature.h"

namespace plr::static_analysis {

/** Tuning for one analyze() call. */
struct AnalysisOptions {
    /** Output length the verdicts cover (indices [0, n)). */
    std::size_t n = 4096;
    /** Chunk size assumed for the chunked two-phase path. */
    std::size_t chunk = 64;
    /**
     * Max |x[u]| of the input model; 0 = the conformance default for
     * the domain (100 for int, 1 for float/tropical inputs).
     */
    double input_bound = 0.0;
    /** Impulse-response budget for the envelope scan. */
    std::size_t budget = kDefaultAnalysisBudget;
};

/** The conformance input-model bound for @p domain (corpus.h). */
double default_input_bound(ValueDomain domain);

/**
 * Analyze @p sig in @p domain: one PathReport per execution path
 * (serial, chunked two-phase, SIMD direct, SIMD log-space,
 * superposition resume). Order 0 (pure FIR map) signatures are
 * analyzed for the serial path only.
 */
StaticReport analyze(const Signature& sig, ValueDomain domain,
                     const AnalysisOptions& opts = {});

/** The vectorizable Phase-1 shapes (kernels/simd/simd_scan.h). */
enum class SimdShape {
    kScalar,
    kPrefix,
    kFirstOrder,
    kFirstOrderLog,
    kTuple,
};

const char* to_string(SimdShape s);

/** Requested first-order strategy (kernels::FirstOrderPath mirror,
 * with the environment default already resolved by the caller). */
enum class FirstOrderMode {
    kAuto,
    kDirect,
    kLog,
};

/** The analyzer's path decision for one (signature, domain). */
struct SimdPathDecision {
    SimdShape shape = SimdShape::kScalar;
    /** Single-tap map fused into the scan call. */
    bool fuse_map = false;
    /** Tuple size for kTuple (the signature order). */
    std::size_t tuple = 0;
    /** Legality of the log-space path for this signature (kProven when
     * shape == kFirstOrderLog; explains the rejection otherwise). */
    Legality log_legality = Legality::kUnknown;
};

/**
 * Decide the SIMD Phase-1 path for @p sig. This is the legality slice
 * of the full analysis: the log-space path is only chosen when its
 * preconditions (float domain, order 1, decay coefficient in (0, 1))
 * are proven, and unsupported shapes — including max-plus signatures
 * and non-finite coefficients — fall back to kScalar conservatively.
 * Bit-compatible with the vector table's historical classification.
 */
SimdPathDecision choose_simd_path(const Signature& sig, ValueDomain domain,
                                  FirstOrderMode mode);

}  // namespace plr::static_analysis

#endif  // PLR_ANALYSIS_STATIC_ANALYZER_H_
