#include "analysis/static/analyzer.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "core/correction_factors.h"
#include "core/factor_analysis.h"
#include "util/diag.h"
#include "util/ring.h"

namespace plr::static_analysis {

namespace {

/** IntRing::from_coefficient semantics (llround, wrap to 32 bits). */
std::int32_t
int_coeff(double c)
{
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(static_cast<std::int64_t>(std::llround(c))));
}

bool
has_nonfinite_coefficient(const Signature& sig)
{
    for (double c : sig.a())
        if (!std::isfinite(c))
            return true;
    for (double c : sig.b())
        if (!std::isfinite(c))
            return true;
    return false;
}

/**
 * Interval range analysis against @p limit. Shared by every legal path:
 * the exact mathematical values do not depend on evaluation order, so
 * one envelope decides all of them.
 */
RangeReport
range_analysis(const Signature& sig, double input_bound, std::size_t n,
               double limit, std::size_t budget)
{
    RangeReport r;
    if (n == 0) {
        r.verdict = OverflowVerdict::kProvenSafe;
        r.note = "empty output";
        return r;
    }
    const EnvelopeScan scan =
        scan_envelope(sig.a(), sig.b(), input_bound, n, limit, budget);
    r.final_bound = scan.final_bound;
    if (scan.first_may_exceed == kNoIndex) {
        if (scan.complete) {
            r.verdict = OverflowVerdict::kProvenSafe;
        } else {
            r.verdict = OverflowVerdict::kUnknown;
            r.note = "analysis budget exhausted before the envelope was "
                     "decided";
        }
        return r;
    }
    // The envelope crosses the limit. Synthesize the sign-matched witness
    // input at the earliest crossing and evaluate it in double: linearity
    // makes that input the exact maximizer, so a real crossing reproduces
    // constructively.
    const std::size_t candidate = scan.first_must_exceed != kNoIndex
                                      ? scan.first_must_exceed
                                      : scan.first_may_exceed;
    r.witness_index = candidate;
    r.bound_at_witness = scan.bound_at_crossing != 0.0
                             ? scan.bound_at_crossing
                             : scan.final_bound;
    const WitnessEval eval = evaluate_witness(
        sig.a(), sig.b(), input_bound, scan.signs, candidate, limit);
    if (eval.evaluated)
        r.witness_value = eval.value;
    if (eval.evaluated && eval.exceeds) {
        r.verdict = OverflowVerdict::kProvenOverflow;
    } else {
        r.verdict = OverflowVerdict::kMayOverflow;
        r.note = eval.evaluated
                     ? "witness evaluation did not confirm the crossing "
                       "(interval slop)"
                     : "no witness constructible within the analysis budget";
    }
    return r;
}

/** Float forward-error model; available exactly when the magnitude
 * envelope is proven in range (range verdict kProvenSafe). */
ErrorReport
error_analysis(ValueDomain domain, const Signature& sig, std::size_t n,
               const RangeReport& range)
{
    ErrorReport e;
    if (domain == ValueDomain::kInt32) {
        e.note = "int ring is exact (wrap-around is a ring homomorphism)";
        return e;
    }
    if (domain == ValueDomain::kMaxPlus) {
        e.note = "max-plus error propagation unanalyzed; callers fall back "
                 "to the dynamic gates";
        return e;
    }
    if (range.verdict != OverflowVerdict::kProvenSafe) {
        e.note = "magnitude envelope not proven in range; no finite error "
                 "bound";
        return e;
    }
    const double magnitude = range.final_bound;
    const double bound =
        float_divergence_bound(sig.order(), sig.fir_taps(), n, magnitude);
    if (!std::isfinite(bound)) {
        e.note = "gamma model saturated (rounding chain too long)";
        return e;
    }
    e.available = true;
    e.abs_bound = bound;
    e.magnitude_bound = magnitude;
    e.rel_bound = magnitude > 0.0 ? bound / magnitude : 0.0;
    const double ulp =
        magnitude > 0.0
            ? std::ldexp(1.0, std::ilogb(std::fmax(magnitude, 1e-38)) - 23)
            : std::ldexp(1.0, -149);
    e.ulp_bound = ulp > 0.0 ? bound / ulp : 0.0;
    return e;
}

/** Per-element truncation bound of decayed-tail suppression: the carry
 * magnitude times the unflushed tail mass the kernel drops. */
void
truncation_analysis(const Signature& sig, ValueDomain domain,
                    std::size_t chunk, const RangeReport& range,
                    PathReport* path)
{
    const std::size_t k = sig.order();
    if (k == 0 || chunk == 0)
        return;
    if (domain != ValueDomain::kFloat32) {
        // Beyond the effective length the factors are exactly the
        // semiring zero (no flushing is involved), so suppression drops
        // literal zero terms.
        path->truncation_bound = 0.0;
        path->truncation_exact = true;
        return;
    }
    const auto factors = CorrectionFactors<FloatRing>::generate(
        sig.recursive_part(), chunk, /*flush_denormals=*/true);
    const auto props = analyze_factors(factors);
    double tail_mass = 0.0;
    for (std::size_t j = 1; j <= k; ++j)
        tail_mass += factor_tail_abs_sum(
            sig.b(), j, props.lists[j - 1].effective_length, chunk);
    if (tail_mass == 0.0) {
        path->truncation_bound = 0.0;
        path->truncation_exact = true;
        return;
    }
    if (range.verdict != OverflowVerdict::kProvenSafe) {
        path->truncation_bound = std::numeric_limits<double>::infinity();
        path->truncation_exact = false;
        return;
    }
    path->truncation_bound = range.final_bound * tail_mass;
    path->truncation_exact = false;
}

}  // namespace

double
default_input_bound(ValueDomain domain)
{
    switch (domain) {
      case ValueDomain::kInt32: return kConformanceIntInputBound;
      case ValueDomain::kFloat32: return kConformanceFloatInputBound;
      case ValueDomain::kMaxPlus: return 5.0;
    }
    return 1.0;
}

const char*
to_string(SimdShape s)
{
    switch (s) {
      case SimdShape::kScalar: return "scalar";
      case SimdShape::kPrefix: return "prefix";
      case SimdShape::kFirstOrder: return "first_order";
      case SimdShape::kFirstOrderLog: return "first_order_log";
      case SimdShape::kTuple: return "tuple";
    }
    return "unknown";
}

SimdPathDecision
choose_simd_path(const Signature& sig, ValueDomain domain,
                 FirstOrderMode mode)
{
    SimdPathDecision dec;
    if (sig.is_max_plus() || domain == ValueDomain::kMaxPlus) {
        dec.log_legality = Legality::kRejected;
        return dec;
    }
    const std::size_t k = sig.order();
    if (k == 0 || has_nonfinite_coefficient(sig)) {
        // Conservative fallback: shapes the analysis cannot model run
        // through the scalar path.
        dec.log_legality = Legality::kRejected;
        return dec;
    }
    const bool is_int = domain == ValueDomain::kInt32;
    const bool single_tap = sig.a().size() == 1;
    if (k == 1) {
        dec.fuse_map = single_tap;
        bool b1_one, a0_one;
        if (is_int) {
            b1_one = int_coeff(sig.b()[0]) == 1;
            a0_one = !single_tap || int_coeff(sig.a()[0]) == 1;
        } else {
            b1_one = static_cast<float>(sig.b()[0]) == 1.0f;
            a0_one = !single_tap || static_cast<float>(sig.a()[0]) == 1.0f;
        }
        if (b1_one && a0_one) {
            dec.shape = SimdShape::kPrefix;
            dec.log_legality = Legality::kFallback;
            return dec;
        }
        if (is_int) {
            dec.shape = SimdShape::kFirstOrder;
            dec.log_legality = Legality::kRejected;  // exact ring: direct only
            return dec;
        }
        const float bf = static_cast<float>(sig.b()[0]);
        const bool decay = bf > 0.0f && bf < 1.0f;
        if (!decay) {
            dec.shape = SimdShape::kFirstOrder;
            dec.log_legality = Legality::kRejected;  // needs b in (0, 1)
            return dec;
        }
        // Ladder feasibility with the unit input model: the heuristic
        // block must stay under the proven maximum, else the b^-u scale
        // itself leaves the float range and the log path is unsound for
        // any input. The input-magnitude-aware verdict is in analyze().
        const std::size_t heuristic =
            heinsen_heuristic_block_length(sig.b()[0]);
        const std::size_t proven =
            log_space_proven_max_block(sig.b()[0], 1.0, 1.0);
        dec.log_legality =
            heuristic <= proven ? Legality::kProven : Legality::kRejected;
        dec.shape = (mode != FirstOrderMode::kDirect &&
                     dec.log_legality == Legality::kProven)
                        ? SimdShape::kFirstOrderLog
                        : SimdShape::kFirstOrder;
        return dec;
    }
    // Tuple prefix sum (1: 0,..,0,1): s = k interleaved prefix sums.
    bool tuple;
    if (is_int) {
        tuple = int_coeff(sig.b()[k - 1]) == 1;
        for (std::size_t j = 0; j + 1 < k && tuple; ++j)
            tuple = int_coeff(sig.b()[j]) == 0;
    } else {
        tuple = static_cast<float>(sig.b()[k - 1]) == 1.0f;
        for (std::size_t j = 0; j + 1 < k && tuple; ++j)
            tuple = static_cast<float>(sig.b()[j]) == 0.0f;
    }
    if (tuple) {
        dec.shape = SimdShape::kTuple;
        dec.tuple = k;
    }
    dec.log_legality = Legality::kRejected;  // order-k > 1
    return dec;
}

StaticReport
analyze(const Signature& sig, ValueDomain domain, const AnalysisOptions& opts)
{
    StaticReport report;
    report.signature = sig.to_string();
    report.domain = domain;
    report.order = sig.order();
    report.fir_taps = sig.fir_taps();
    report.n = opts.n;
    report.chunk = opts.chunk;
    report.input_bound =
        opts.input_bound > 0.0 ? opts.input_bound : default_input_bound(domain);

    const std::size_t k = sig.order();
    const double limit = domain == ValueDomain::kInt32 ? kInt32RangeLimit
                                                       : kFloat32RangeLimit;

    RangeReport range;
    if (domain == ValueDomain::kMaxPlus) {
        range.verdict = OverflowVerdict::kUnknown;
        range.note = "max-plus growth envelope unanalyzed; callers fall "
                     "back to the dynamic gates";
    } else if (has_nonfinite_coefficient(sig)) {
        range.verdict = OverflowVerdict::kUnknown;
        range.note = "non-finite coefficient";
    } else {
        range = range_analysis(sig, report.input_bound, opts.n, limit,
                               opts.budget);
    }
    const ErrorReport error = error_analysis(domain, sig, opts.n, range);

    // ---- serial ----------------------------------------------------
    {
        PathReport p;
        p.path = PathKind::kSerial;
        p.legality = Legality::kProven;
        p.legality_reason = "definitional reference order";
        p.range = range;
        p.error = error;
        report.paths.push_back(std::move(p));
    }
    if (k == 0)
        return report;  // pure FIR map: only the serial path applies

    // ---- chunked two-phase -----------------------------------------
    {
        PathReport p;
        p.path = PathKind::kChunkedTwoPhase;
        p.legality = Legality::kProven;
        p.legality_reason =
            "correction machinery uses only semiring axioms "
            "(associativity, distributivity, superposition); max-plus "
            "idempotency makes re-applied corrections harmless";
        p.range = range;
        p.error = error;
        report.paths.push_back(std::move(p));
    }

    // ---- SIMD direct ------------------------------------------------
    {
        PathReport p;
        p.path = PathKind::kSimdDirect;
        const SimdPathDecision dec =
            choose_simd_path(sig, domain, FirstOrderMode::kDirect);
        if (domain == ValueDomain::kMaxPlus) {
            p.legality = Legality::kRejected;
            p.legality_reason = "no max-plus vector table";
        } else if (dec.shape == SimdShape::kScalar) {
            p.legality = Legality::kFallback;
            p.legality_reason =
                "no vector lowering for this shape; scalar path";
        } else {
            p.legality = Legality::kProven;
            p.legality_reason =
                std::string("vectorizable shape: ") + to_string(dec.shape);
        }
        p.range = range;
        p.error = error;
        report.paths.push_back(std::move(p));
    }

    // ---- SIMD log-space ---------------------------------------------
    {
        PathReport p;
        p.path = PathKind::kSimdLogSpace;
        p.range = range;
        p.error = error;
        if (domain != ValueDomain::kFloat32) {
            p.legality = Legality::kRejected;
            p.legality_reason =
                domain == ValueDomain::kInt32
                    ? "exact int ring; log-space reassociation is float-only"
                    : "log-space needs the float ring";
        } else if (k != 1) {
            p.legality = Legality::kRejected;
            p.legality_reason = "first-order recurrences only";
        } else {
            const double b1 = sig.b()[0];
            const float bf = static_cast<float>(b1);
            if (!(bf > 0.0f && bf < 1.0f)) {
                p.legality = Legality::kRejected;
                p.legality_reason =
                    "requires a positive decay coefficient in (0, 1)";
            } else {
                double coeff_mass = 0.0;
                for (double c : sig.a())
                    coeff_mass += std::fabs(c);
                p.log_block_heuristic = heinsen_heuristic_block_length(b1);
                p.log_block_proven_max = log_space_proven_max_block(
                    b1, coeff_mass, report.input_bound);
                if (p.log_block_heuristic <= p.log_block_proven_max) {
                    p.legality = Legality::kProven;
                    std::ostringstream os;
                    os << "heuristic block " << p.log_block_heuristic
                       << " <= proven maximum " << p.log_block_proven_max;
                    p.legality_reason = os.str();
                } else {
                    p.legality = Legality::kRejected;
                    std::ostringstream os;
                    os << "heuristic block " << p.log_block_heuristic
                       << " exceeds proven maximum "
                       << p.log_block_proven_max
                       << ": the b^-u scale leaves the float range";
                    p.legality_reason = os.str();
                }
            }
        }
        report.paths.push_back(std::move(p));
    }

    // ---- superposition resume ---------------------------------------
    {
        PathReport p;
        p.path = PathKind::kSuperpositionResume;
        p.legality = Legality::kProven;
        p.legality_reason =
            "correction is mul_add-only (tropical-safe); decayed-tail "
            "suppression bounded below";
        p.range = range;
        p.error = error;
        truncation_analysis(sig, domain, opts.chunk, range, &p);
        report.paths.push_back(std::move(p));
    }
    return report;
}

}  // namespace plr::static_analysis
