#include "analysis/shadow_memory.h"

namespace plr::analysis {

std::pair<std::uint64_t, std::uint64_t>
ShadowMemory::word_span(std::uint64_t offset, std::size_t bytes)
{
    if (bytes == 0)
        return {1, 0};  // empty span: first > last
    return {offset / kWordBytes, (offset + bytes - 1) / kWordBytes};
}

ShadowMemory::AllocShadow&
ShadowMemory::shadow_for(std::size_t alloc_id)
{
    AllocShadow& shadow = allocs_[alloc_id];
    if (shadow.words.empty() && alloc_id < ledger_->size()) {
        const std::size_t bytes = (*ledger_)[alloc_id].bytes;
        shadow.words.resize((bytes + kWordBytes - 1) / kWordBytes);
    }
    return shadow;
}

AccessRecord
ShadowMemory::make_record(const AccessContext& ctx, std::size_t alloc_id,
                          std::uint64_t offset, std::size_t bytes,
                          AccessKind kind, std::uint32_t epoch) const
{
    AccessRecord record;
    record.block = ctx.block;
    record.chunk = ctx.chunk;
    if (ctx.site != nullptr)
        record.site = ctx.site;
    if (alloc_id < ledger_->size())
        record.buffer = (*ledger_)[alloc_id].label;
    record.alloc_id = alloc_id;
    record.offset = offset;
    record.bytes = bytes;
    record.kind = kind;
    record.epoch = epoch;
    return record;
}

AccessRecord
ShadowMemory::record_from_word(const WordAccess& access, std::size_t alloc_id,
                               std::uint64_t word, AccessKind kind) const
{
    AccessContext ctx;
    ctx.block = access.block;
    ctx.chunk = access.chunk;
    ctx.site = access.site;
    return make_record(ctx, alloc_id, word * kWordBytes, kWordBytes, kind,
                       access.clock);
}

bool
ShadowMemory::check_uaf(const AccessContext& ctx, std::size_t alloc_id,
                        std::uint64_t offset, std::size_t bytes,
                        AccessKind kind, std::vector<RaceViolation>* out)
{
    if (alloc_id >= ledger_->size() || !(*ledger_)[alloc_id].freed)
        return false;
    AllocShadow& shadow = shadow_for(alloc_id);
    if (shadow.uaf_reported || out == nullptr)
        return true;
    shadow.uaf_reported = true;  // one finding per freed allocation

    RaceViolation violation;
    AccessContext host;  // the free happened on the host thread
    violation.first =
        make_record(host, alloc_id, 0, (*ledger_)[alloc_id].bytes,
                    AccessKind::kFree, 0);
    violation.second = make_record(ctx, alloc_id, offset, bytes, kind, 0);
    violation.what = "use-after-free";
    out->push_back(std::move(violation));
    return true;
}

void
ShadowMemory::on_read(const AccessContext& ctx, const VectorClock& vc,
                      std::size_t alloc_id, std::uint64_t offset,
                      std::size_t bytes, std::vector<RaceViolation>* out)
{
    check_uaf(ctx, alloc_id, offset, bytes, AccessKind::kRead, out);
    AllocShadow& shadow = shadow_for(alloc_id);
    const auto [first, last] = word_span(offset, bytes);
    const auto b = static_cast<std::uint32_t>(ctx.block);
    const std::uint32_t epoch = vc.get(ctx.block);
    bool reported = false;

    for (std::uint64_t w = first;
         w <= last && w < shadow.words.size(); ++w) {
        ShadowWord& word = shadow.words[w];

        // Write-read race: the last writer is unordered with this read.
        if (out != nullptr && !reported && word.write.valid() &&
            word.write.block != b &&
            !vc.covers(word.write.block, word.write.clock)) {
            RaceViolation violation;
            violation.first = record_from_word(word.write, alloc_id, w,
                                               AccessKind::kWrite);
            violation.second = make_record(ctx, alloc_id, offset, bytes,
                                           AccessKind::kRead, epoch);
            violation.what = "write-read race";
            out->push_back(std::move(violation));
            reported = true;
        }

        // Remember the read (FastTrack: single epoch until two unordered
        // readers force promotion to a per-block read vector).
        const WordAccess reader{b, epoch, ctx.chunk, ctx.site};
        if (word.read_vec != nullptr) {
            (*word.read_vec)[ctx.block] = reader;
        } else if (!word.read.valid() || word.read.block == b ||
                   vc.covers(word.read.block, word.read.clock)) {
            word.read = reader;
        } else {
            word.read_vec =
                std::make_unique<std::vector<WordAccess>>(vc.size());
            if (word.read.block < word.read_vec->size())
                (*word.read_vec)[word.read.block] = word.read;
            if (ctx.block < word.read_vec->size())
                (*word.read_vec)[ctx.block] = reader;
            word.read = WordAccess{};
        }
    }
}

void
ShadowMemory::on_write(const AccessContext& ctx, const VectorClock& vc,
                       std::size_t alloc_id, std::uint64_t offset,
                       std::size_t bytes, std::vector<RaceViolation>* out)
{
    check_uaf(ctx, alloc_id, offset, bytes, AccessKind::kWrite, out);
    AllocShadow& shadow = shadow_for(alloc_id);
    const auto [first, last] = word_span(offset, bytes);
    const auto b = static_cast<std::uint32_t>(ctx.block);
    const std::uint32_t epoch = vc.get(ctx.block);
    bool reported = false;

    for (std::uint64_t w = first;
         w <= last && w < shadow.words.size(); ++w) {
        ShadowWord& word = shadow.words[w];

        if (out != nullptr && !reported) {
            const WordAccess* racing = nullptr;
            AccessKind racing_kind = AccessKind::kWrite;
            // Write-write race against the last writer.
            if (word.write.valid() && word.write.block != b &&
                !vc.covers(word.write.block, word.write.clock)) {
                racing = &word.write;
            } else if (word.read_vec != nullptr) {
                // Read-write race against any remembered reader.
                for (const WordAccess& read : *word.read_vec) {
                    if (read.valid() && read.block != b &&
                        !vc.covers(read.block, read.clock)) {
                        racing = &read;
                        racing_kind = AccessKind::kRead;
                        break;
                    }
                }
            } else if (word.read.valid() && word.read.block != b &&
                       !vc.covers(word.read.block, word.read.clock)) {
                racing = &word.read;
                racing_kind = AccessKind::kRead;
            }
            if (racing != nullptr) {
                RaceViolation violation;
                violation.first =
                    record_from_word(*racing, alloc_id, w, racing_kind);
                violation.second = make_record(ctx, alloc_id, offset, bytes,
                                               AccessKind::kWrite, epoch);
                violation.what = racing_kind == AccessKind::kWrite
                                     ? "write-write race"
                                     : "read-write race";
                out->push_back(std::move(violation));
                reported = true;
            }
        }

        word.write = WordAccess{b, epoch, ctx.chunk, ctx.site};
        word.read = WordAccess{};
        word.read_vec.reset();
    }
}

const WordAccess*
ShadowMemory::write_info(std::size_t alloc_id, std::uint64_t word) const
{
    auto it = allocs_.find(alloc_id);
    if (it == allocs_.end() || word >= it->second.words.size())
        return nullptr;
    const WordAccess& write = it->second.words[word].write;
    return write.valid() ? &write : nullptr;
}

}  // namespace plr::analysis
