#ifndef PLR_ANALYSIS_SHADOW_MEMORY_H_
#define PLR_ANALYSIS_SHADOW_MEMORY_H_

/**
 * @file
 * Word-granular shadow state for every MemoryPool allocation, in the
 * FastTrack style: each 4-byte word remembers its last write epoch and
 * either the single last read epoch or (after concurrent readers) one
 * read epoch per block. The detector compares those epochs against the
 * accessing block's vector clock; an uncovered epoch is a race.
 *
 * The shadow also flags use-after-free: the MemoryPool keeps freed ranges
 * addressable (like a real GPU heap, where a dangling pointer still
 * dereferences), so the *analysis* layer — not the pool — reports accesses
 * through freed allocations.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/race_report.h"
#include "analysis/vector_clock.h"
#include "gpusim/memory.h"

namespace plr::analysis {

/** Provenance of an in-flight access, supplied by the BlockContext. */
struct AccessContext {
    std::size_t block = kNone;
    std::size_t chunk = kNone;
    const char* site = nullptr;  ///< static string; may be null
};

/** Last recorded access to one shadow word by one block. */
struct WordAccess {
    std::uint32_t block = kNoBlock;
    std::uint32_t clock = 0;
    std::size_t chunk = kNone;
    const char* site = nullptr;

    static constexpr std::uint32_t kNoBlock = ~0u;

    bool valid() const { return block != kNoBlock; }
};

class ShadowMemory {
  public:
    static constexpr std::size_t kWordBytes = 4;

    /**
     * @param ledger the owning MemoryPool's allocation ledger; must outlive
     *        this object and not grow during a launch (kernels cannot
     *        allocate through a BlockContext).
     */
    explicit ShadowMemory(const std::vector<gpusim::AllocationRecord>* ledger)
        : ledger_(ledger)
    {
    }

    /**
     * Word-index range [first, last] covered by the byte range
     * [offset, offset + bytes). bytes == 0 yields an empty span encoded as
     * first > last.
     */
    static std::pair<std::uint64_t, std::uint64_t>
    word_span(std::uint64_t offset, std::size_t bytes);

    /**
     * Record a read/write and append any race (or use-after-free) found to
     * @p out. @p out == nullptr disables race reporting but still updates
     * the shadow, so the invariant checker can run with the detector off.
     * At most one violation is appended per call (an N-word access over a
     * racy region reads as one finding, not N).
     */
    void on_read(const AccessContext& ctx, const VectorClock& vc,
                 std::size_t alloc_id, std::uint64_t offset, std::size_t bytes,
                 std::vector<RaceViolation>* out);
    void on_write(const AccessContext& ctx, const VectorClock& vc,
                  std::size_t alloc_id, std::uint64_t offset,
                  std::size_t bytes, std::vector<RaceViolation>* out);

    /**
     * Last write to @p word of @p alloc_id this launch, or nullptr when the
     * word is still untouched. Used by the invariant checker's fence-
     * coverage rule.
     */
    const WordAccess* write_info(std::size_t alloc_id,
                                 std::uint64_t word) const;

  private:
    struct ShadowWord {
        WordAccess write;
        /** Valid while read_vec is null; one remembered reader. */
        WordAccess read;
        /** Per-block read epochs, promoted on concurrent readers. */
        std::unique_ptr<std::vector<WordAccess>> read_vec;
    };

    struct AllocShadow {
        std::vector<ShadowWord> words;
        bool uaf_reported = false;
    };

    AllocShadow& shadow_for(std::size_t alloc_id);
    bool check_uaf(const AccessContext& ctx, std::size_t alloc_id,
                   std::uint64_t offset, std::size_t bytes, AccessKind kind,
                   std::vector<RaceViolation>* out);
    AccessRecord make_record(const AccessContext& ctx, std::size_t alloc_id,
                             std::uint64_t offset, std::size_t bytes,
                             AccessKind kind, std::uint32_t epoch) const;
    AccessRecord record_from_word(const WordAccess& access,
                                  std::size_t alloc_id, std::uint64_t word,
                                  AccessKind kind) const;

    const std::vector<gpusim::AllocationRecord>* ledger_;
    std::unordered_map<std::size_t, AllocShadow> allocs_;
};

}  // namespace plr::analysis

#endif  // PLR_ANALYSIS_SHADOW_MEMORY_H_
