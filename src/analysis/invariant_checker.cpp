#include "analysis/invariant_checker.h"

#include <sstream>
#include <utility>

namespace plr::analysis {

InvariantChecker::InvariantChecker(
    std::vector<ProtocolSpec> protocols, std::size_t num_blocks,
    const std::vector<gpusim::AllocationRecord>* ledger,
    const ShadowMemory* shadow)
    : acquired_(num_blocks), ledger_(ledger), shadow_(shadow)
{
    for (ProtocolSpec& spec : protocols) {
        const std::size_t index = protocols_.size();
        ProtoState state;
        state.spec = std::move(spec);
        state.local_flags.resize(state.spec.num_chunks);
        state.global_flags.resize(state.spec.num_chunks);
        bindings_[state.spec.local_flags] = {index, Role::kLocalFlags};
        bindings_[state.spec.global_flags] = {index, Role::kGlobalFlags};
        bindings_[state.spec.local_state] = {index, Role::kLocalState};
        bindings_[state.spec.global_state] = {index, Role::kGlobalState};
        protocols_.push_back(std::move(state));
    }
}

bool
InvariantChecker::is_flags(Role role)
{
    return role == Role::kLocalFlags || role == Role::kGlobalFlags;
}

bool
InvariantChecker::tracks(std::size_t alloc_id) const
{
    return bindings_.count(alloc_id) != 0;
}

const InvariantChecker::Binding*
InvariantChecker::binding_for(std::size_t alloc_id) const
{
    auto it = bindings_.find(alloc_id);
    return it == bindings_.end() ? nullptr : &it->second;
}

std::size_t
InvariantChecker::chunk_bytes(const ProtoState& proto) const
{
    return proto.spec.width * proto.spec.value_bytes;
}

AccessRecord
InvariantChecker::make_record(const AccessContext& ctx, std::size_t alloc_id,
                              std::uint64_t offset, std::size_t bytes,
                              AccessKind kind) const
{
    AccessRecord record;
    record.block = ctx.block;
    record.chunk = ctx.chunk;
    if (ctx.site != nullptr)
        record.site = ctx.site;
    if (alloc_id < ledger_->size())
        record.buffer = (*ledger_)[alloc_id].label;
    record.alloc_id = alloc_id;
    record.offset = offset;
    record.bytes = bytes;
    record.kind = kind;
    return record;
}

void
InvariantChecker::add(std::vector<InvariantViolation>* out,
                      const ProtoState& proto, std::string rule,
                      std::size_t chunk, AccessRecord at, std::string detail)
{
    if (out == nullptr)
        return;
    InvariantViolation violation;
    violation.protocol = proto.spec.label;
    violation.rule = std::move(rule);
    violation.chunk = chunk;
    violation.at = std::move(at);
    violation.detail = std::move(detail);
    out->push_back(std::move(violation));
}

std::uint64_t
InvariantChecker::flag_key(std::size_t proto, Role role, std::uint64_t chunk)
{
    const std::uint64_t kind = role == Role::kGlobalFlags ? 1 : 0;
    return (static_cast<std::uint64_t>(proto) << 33) | (kind << 32) | chunk;
}

void
InvariantChecker::on_release(const AccessContext& ctx, std::size_t alloc_id,
                             std::uint64_t word, std::uint32_t value,
                             const VectorClock& fence_vc,
                             std::vector<InvariantViolation>* out)
{
    const Binding* binding = binding_for(alloc_id);
    if (binding == nullptr)
        return;
    ProtoState& proto = protocols_[binding->proto];
    if (!is_flags(binding->role) || word >= proto.spec.num_chunks)
        return;
    const bool global = binding->role == Role::kGlobalFlags;
    FlagState& flag =
        global ? proto.global_flags[word] : proto.local_flags[word];
    const AccessRecord at = make_record(ctx, alloc_id, word * 4, 4,
                                        AccessKind::kRelease);

    if (value == 0) {
        add(out, proto, "flag-monotonic", word, at,
            "flag released back to 0 (flags are 0 -> nonzero monotonic)");
    } else if (value < flag.value) {
        std::ostringstream os;
        os << "flag value decreased from " << flag.value << " to " << value;
        add(out, proto, "flag-monotonic", word, at, os.str());
    }
    if (flag.publishes != 0) {
        std::ostringstream os;
        os << (global ? "global" : "local") << " flag already published by "
           << "block " << flag.publisher << " (exactly-once rule)";
        add(out, proto, "publish-once", word, at, os.str());
    }

    // Fence coverage: every carry word of this chunk that has been written
    // must have been written by the publishing block at or before its last
    // __threadfence — otherwise the release publishes a clock that does not
    // cover the carry, and an acquiring reader still races with it.
    // Unwritten words are legal (a trailing chunk publishes a partial carry).
    const std::size_t state_alloc =
        global ? proto.spec.global_state : proto.spec.local_state;
    const std::size_t cb = chunk_bytes(proto);
    const auto [first, last] =
        ShadowMemory::word_span(word * cb, cb);
    for (std::uint64_t w = first; w <= last; ++w) {
        const WordAccess* write = shadow_->write_info(state_alloc, w);
        if (write == nullptr)
            continue;
        if (write->block != ctx.block) {
            std::ostringstream os;
            os << "carry word " << w << " was written by block "
               << write->block << ", not the publisher";
            add(out, proto, "foreign-carry", word, at, os.str());
            break;
        }
        if (write->clock > fence_vc.get(ctx.block)) {
            std::ostringstream os;
            os << "carry word " << w << " written at epoch " << write->clock
               << " but the publisher's last fence only covers epoch "
               << fence_vc.get(ctx.block)
               << " (missing __threadfence before release)";
            add(out, proto, "unfenced-carry", word, at, os.str());
            break;
        }
    }

    flag.value = value;
    flag.publishes++;
    if (flag.publisher == kNone)
        flag.publisher = ctx.block;
}

void
InvariantChecker::on_acquire(const AccessContext& ctx, std::size_t alloc_id,
                             std::uint64_t word, std::uint32_t observed)
{
    const Binding* binding = binding_for(alloc_id);
    if (binding == nullptr || !is_flags(binding->role) || observed == 0 ||
        ctx.block >= acquired_.size())
        return;
    acquired_[ctx.block].insert(flag_key(binding->proto, binding->role, word));
}

void
InvariantChecker::on_write(const AccessContext& ctx, std::size_t alloc_id,
                           std::uint64_t offset, std::size_t bytes,
                           std::vector<InvariantViolation>* out)
{
    const Binding* binding = binding_for(alloc_id);
    if (binding == nullptr || bytes == 0)
        return;
    ProtoState& proto = protocols_[binding->proto];

    if (is_flags(binding->role)) {
        add(out, proto, "plain-flag-store", offset / 4,
            make_record(ctx, alloc_id, offset, bytes, AccessKind::kWrite),
            "flag words must be published with st_release, not plain stores");
        return;
    }

    // Carry stores are only legal before the owning flag is released.
    const bool global = binding->role == Role::kGlobalState;
    const std::size_t cb = chunk_bytes(proto);
    for (std::size_t c = offset / cb; c <= (offset + bytes - 1) / cb; ++c) {
        if (c >= proto.spec.num_chunks)
            break;
        const FlagState& flag =
            global ? proto.global_flags[c] : proto.local_flags[c];
        if (flag.publishes != 0) {
            std::ostringstream os;
            os << "carry for chunk " << c << " written after its "
               << (global ? "global" : "local") << " flag was released";
            add(out, proto, "carry-after-publish", c,
                make_record(ctx, alloc_id, offset, bytes, AccessKind::kWrite),
                os.str());
            break;
        }
    }
}

void
InvariantChecker::on_read(const AccessContext& ctx, std::size_t alloc_id,
                          std::uint64_t offset, std::size_t bytes,
                          std::vector<InvariantViolation>* out)
{
    const Binding* binding = binding_for(alloc_id);
    if (binding == nullptr || is_flags(binding->role) || bytes == 0 ||
        ctx.block >= acquired_.size())
        return;
    ProtoState& proto = protocols_[binding->proto];
    const bool global = binding->role == Role::kGlobalState;
    const Role flag_role = global ? Role::kGlobalFlags : Role::kLocalFlags;
    const std::size_t cb = chunk_bytes(proto);

    for (std::size_t c = offset / cb; c <= (offset + bytes - 1) / cb; ++c) {
        if (c >= proto.spec.num_chunks)
            break;
        if (acquired_[ctx.block].count(
                flag_key(binding->proto, flag_role, c)) != 0)
            continue;
        // Re-reading a carry this block wrote itself needs no flag. A slot
        // nobody wrote yet is NOT exempt: reading it unacquired is exactly
        // the early-read bug, merely scheduled before the writer.
        const auto [first, last] = ShadowMemory::word_span(c * cb, cb);
        bool own = false;
        bool foreign = false;
        for (std::uint64_t w = first; w <= last && !foreign; ++w) {
            const WordAccess* write = shadow_->write_info(alloc_id, w);
            if (write == nullptr)
                continue;
            if (write->block == ctx.block)
                own = true;
            else
                foreign = true;
        }
        if (own && !foreign)
            continue;
        std::ostringstream os;
        os << "block " << ctx.block << " read the "
           << (global ? "global" : "local") << " carry of chunk " << c
           << " without acquiring its flag";
        add(out, proto, "unacquired-carry-read", c,
            make_record(ctx, alloc_id, offset, bytes, AccessKind::kRead),
            os.str());
        break;
    }
}

}  // namespace plr::analysis
