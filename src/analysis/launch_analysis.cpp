#include "analysis/launch_analysis.h"

#include <functional>
#include <utility>

namespace plr::analysis {

namespace {

/** FNV-1a over a small tuple, for violation dedup keys. */
std::uint64_t
mix(std::initializer_list<std::uint64_t> values)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t v : values) {
        h ^= v;
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
hash_string(const std::string& s)
{
    return std::hash<std::string>{}(s);
}

}  // namespace

LaunchAnalysis::LaunchAnalysis(
    const AnalysisConfig& config,
    const std::vector<gpusim::AllocationRecord>* ledger,
    std::size_t num_blocks, std::vector<ProtocolSpec> protocols)
    : config_(config),
      blocks_(num_blocks),
      shadow_(ledger),
      checker_(std::move(protocols), num_blocks, ledger, &shadow_)
{
    for (std::size_t b = 0; b < num_blocks; ++b) {
        blocks_[b].vc = VectorClock(num_blocks);
        blocks_[b].vc.set(b, 1);
        // The initial fence snapshot covers nothing the block has done:
        // a release before any __threadfence publishes no writes.
        blocks_[b].fence = VectorClock(num_blocks);
    }
}

std::uint64_t
LaunchAnalysis::sync_key(std::size_t alloc_id, std::uint64_t word)
{
    return (static_cast<std::uint64_t>(alloc_id) << 40) | word;
}

void
LaunchAnalysis::add_races(std::vector<RaceViolation>&& found)
{
    for (RaceViolation& violation : found) {
        const std::uint64_t key =
            mix({hash_string(violation.what), violation.first.block,
                 violation.second.block, violation.first.alloc_id});
        if (!seen_races_.insert(key).second)
            continue;
        if (report_.races.size() >= config_.max_violations) {
            report_.dropped++;
            continue;
        }
        report_.races.push_back(std::move(violation));
    }
}

void
LaunchAnalysis::add_invariants(std::vector<InvariantViolation>&& found)
{
    for (InvariantViolation& violation : found) {
        const std::uint64_t key =
            mix({hash_string(violation.rule), hash_string(violation.protocol),
                 violation.chunk, violation.at.block});
        if (!seen_invariants_.insert(key).second)
            continue;
        if (report_.invariants.size() >= config_.max_violations) {
            report_.dropped++;
            continue;
        }
        report_.invariants.push_back(std::move(violation));
    }
}

void
LaunchAnalysis::on_read(const AccessContext& ctx, std::size_t alloc_id,
                        std::uint64_t offset, std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RaceViolation> races;
    shadow_.on_read(ctx, blocks_[ctx.block].vc, alloc_id, offset, bytes,
                    config_.race_detect ? &races : nullptr);
    add_races(std::move(races));
    if (config_.invariants && checker_.tracks(alloc_id)) {
        std::vector<InvariantViolation> found;
        checker_.on_read(ctx, alloc_id, offset, bytes, &found);
        add_invariants(std::move(found));
    }
}

void
LaunchAnalysis::on_write(const AccessContext& ctx, std::size_t alloc_id,
                         std::uint64_t offset, std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RaceViolation> races;
    shadow_.on_write(ctx, blocks_[ctx.block].vc, alloc_id, offset, bytes,
                     config_.race_detect ? &races : nullptr);
    add_races(std::move(races));
    if (config_.invariants && checker_.tracks(alloc_id)) {
        std::vector<InvariantViolation> found;
        checker_.on_write(ctx, alloc_id, offset, bytes, &found);
        add_invariants(std::move(found));
    }
}

void
LaunchAnalysis::on_atomic_rmw(const AccessContext& ctx, std::size_t alloc_id,
                              std::uint64_t word)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // memory_order_acq_rel on the word: join the accumulated clock, then
    // publish the joined result. No shadow traffic — atomics cannot race.
    // The epoch advance afterwards keeps the block's *later* accesses out
    // of the clock it just published: only accesses sequenced before the
    // RMW happen-before a subsequent RMW by another block.
    BlockState& block = blocks_[ctx.block];
    VectorClock& sync = sync_clocks_[sync_key(alloc_id, word)];
    block.vc.join(sync);
    sync.join(block.vc);
    block.vc.advance(ctx.block);
}

void
LaunchAnalysis::on_acquire(const AccessContext& ctx, std::size_t alloc_id,
                           std::uint64_t word, std::uint32_t observed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (observed != 0) {
        auto it = sync_clocks_.find(sync_key(alloc_id, word));
        if (it != sync_clocks_.end())
            blocks_[ctx.block].vc.join(it->second);
        if (config_.invariants)
            checker_.on_acquire(ctx, alloc_id, word, observed);
    }
}

void
LaunchAnalysis::on_release(const AccessContext& ctx, std::size_t alloc_id,
                           std::uint64_t word, std::uint32_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    BlockState& block = blocks_[ctx.block];
    // A release publishes the clock as of the block's last __threadfence —
    // NOT its current clock. Writes issued after that fence are left
    // uncovered, which is exactly how a missing fence becomes a visible
    // race on the reader side.
    sync_clocks_[sync_key(alloc_id, word)].join(block.fence);
    if (config_.invariants && checker_.tracks(alloc_id)) {
        std::vector<InvariantViolation> found;
        checker_.on_release(ctx, alloc_id, word, value, block.fence, &found);
        add_invariants(std::move(found));
    }
}

void
LaunchAnalysis::on_fence(std::size_t block)
{
    std::lock_guard<std::mutex> lock(mutex_);
    BlockState& state = blocks_[block];
    state.fence = state.vc;
    state.vc.advance(block);
}

}  // namespace plr::analysis
