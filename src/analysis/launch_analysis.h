#ifndef PLR_ANALYSIS_LAUNCH_ANALYSIS_H_
#define PLR_ANALYSIS_LAUNCH_ANALYSIS_H_

/**
 * @file
 * Per-launch analysis coordinator: owns the block vector clocks, the
 * shadow memory and the invariant checker, and exposes the hook surface
 * the simulated Device calls from its memory accessors.
 *
 * Happens-before model (docs/ANALYSIS.md):
 *  - launch/join are barriers: all state resets at launch, and the host
 *    joins every block, so only intra-launch accesses can race;
 *  - __threadfence snapshots the block's clock and advances its own
 *    component — the snapshot is what a later st_release publishes, so a
 *    store issued *after* the last fence is not covered by the release
 *    (modelling the CUDA fence-then-flag idiom: a dropped fence is a bug
 *    the detector must see);
 *  - ld_acquire that observes a nonzero flag joins the clock the matching
 *    st_release published; observing 0 creates no edge;
 *  - atomic read-modify-writes are acquire+release on their word.
 */

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/invariant_checker.h"
#include "analysis/race_report.h"
#include "analysis/shadow_memory.h"
#include "analysis/vector_clock.h"

namespace plr::analysis {

class LaunchAnalysis {
  public:
    /**
     * @param ledger the owning MemoryPool's ledger (must outlive this and
     *        not grow during the launch)
     */
    LaunchAnalysis(const AnalysisConfig& config,
                   const std::vector<gpusim::AllocationRecord>* ledger,
                   std::size_t num_blocks,
                   std::vector<ProtocolSpec> protocols);

    // Hook surface; thread-safe (one mutex — the simulator is a model,
    // not a performance path).
    void on_read(const AccessContext& ctx, std::size_t alloc_id,
                 std::uint64_t offset, std::size_t bytes);
    void on_write(const AccessContext& ctx, std::size_t alloc_id,
                  std::uint64_t offset, std::size_t bytes);
    void on_atomic_rmw(const AccessContext& ctx, std::size_t alloc_id,
                       std::uint64_t word);
    void on_acquire(const AccessContext& ctx, std::size_t alloc_id,
                    std::uint64_t word, std::uint32_t observed);
    void on_release(const AccessContext& ctx, std::size_t alloc_id,
                    std::uint64_t word, std::uint32_t value);
    void on_fence(std::size_t block);

    /** Stable once the launch's blocks are joined. */
    const RaceReport& report() const { return report_; }
    bool clean() const { return report_.clean(); }
    const AnalysisConfig& config() const { return config_; }

  private:
    struct BlockState {
        VectorClock vc;     ///< current clock; own component starts at 1
        VectorClock fence;  ///< clock as of the last fence (own starts at 0)
    };

    /** Sync-variable key for (alloc_id, word). */
    static std::uint64_t sync_key(std::size_t alloc_id, std::uint64_t word);
    void add_races(std::vector<RaceViolation>&& found);
    void add_invariants(std::vector<InvariantViolation>&& found);

    AnalysisConfig config_;
    mutable std::mutex mutex_;
    std::vector<BlockState> blocks_;
    ShadowMemory shadow_;
    InvariantChecker checker_;
    /** Release clock last published through each sync word. */
    std::unordered_map<std::uint64_t, VectorClock> sync_clocks_;
    RaceReport report_;
    std::unordered_set<std::uint64_t> seen_races_;
    std::unordered_set<std::uint64_t> seen_invariants_;
};

}  // namespace plr::analysis

#endif  // PLR_ANALYSIS_LAUNCH_ANALYSIS_H_
