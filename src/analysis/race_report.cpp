#include "analysis/race_report.h"

#include <sstream>

namespace plr::analysis {

const char*
to_string(AccessKind kind)
{
    switch (kind) {
      case AccessKind::kRead:    return "read";
      case AccessKind::kWrite:   return "write";
      case AccessKind::kAcquire: return "acquire";
      case AccessKind::kRelease: return "release";
      case AccessKind::kAtomic:  return "atomic";
      case AccessKind::kFree:    return "free";
    }
    return "?";
}

std::string
AccessRecord::describe() const
{
    std::ostringstream os;
    if (block == kNone)
        os << "host";
    else
        os << "block " << block;
    os << " (";
    if (chunk == kNone)
        os << "no chunk";
    else
        os << "chunk " << chunk;
    if (!site.empty())
        os << ", " << site;
    os << ") " << to_string(kind) << " "
       << (buffer.empty() ? "<unknown>" : buffer) << "[" << offset << ".."
       << offset + bytes << ")";
    return os.str();
}

std::string
RaceViolation::describe() const
{
    std::ostringstream os;
    os << what << ":\n    " << first.describe() << "\n    "
       << second.describe();
    return os.str();
}

std::string
InvariantViolation::describe() const
{
    std::ostringstream os;
    os << "[" << protocol << "] " << rule;
    if (chunk != kNone)
        os << " (chunk " << chunk << ")";
    os << ": " << detail << "\n    at " << at.describe();
    return os.str();
}

std::string
RaceReport::format() const
{
    std::ostringstream os;
    os << "=== race report ===\n"
       << "races: " << races.size() << "  invariant violations: "
       << invariants.size();
    if (dropped != 0)
        os << "  (+" << dropped << " dropped past cap)";
    os << "\n";
    for (std::size_t i = 0; i < races.size(); ++i)
        os << "race #" << i << ": " << races[i].describe() << "\n";
    for (std::size_t i = 0; i < invariants.size(); ++i)
        os << "invariant #" << i << ": " << invariants[i].describe() << "\n";
    os << "=== end race report ===";
    return os.str();
}

RaceError::RaceError(const std::string& what, RaceReport report)
    : PanicError(what), report_(std::move(report))
{
}

}  // namespace plr::analysis
