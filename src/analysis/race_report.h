#ifndef PLR_ANALYSIS_RACE_REPORT_H_
#define PLR_ANALYSIS_RACE_REPORT_H_

/**
 * @file
 * Typed findings of the happens-before race detector and the look-back
 * protocol invariant checker, plus the configuration and protocol
 * descriptions the analysis layer consumes. See docs/ANALYSIS.md.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/diag.h"

namespace plr::analysis {

/** Sentinel for "no chunk / no block reported". */
inline constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/** What a recorded access did to the word(s) it touched. */
enum class AccessKind : std::uint8_t {
    kRead,     ///< plain device load (ld / ld_coalesced / ld_bulk)
    kWrite,    ///< plain device store (st / st_coalesced / st_bulk)
    kAcquire,  ///< ld_acquire of a flag word
    kRelease,  ///< st_release of a flag word
    kAtomic,   ///< atomic read-modify-write
    kFree,     ///< host-side MemoryPool::free of the allocation
};

const char* to_string(AccessKind kind);

/**
 * One side of a violation: which block touched which bytes, and what it
 * was doing at the time. Dual provenance in the ForensicDump spirit —
 * block id, chunk id, site, byte range, access kind.
 */
struct AccessRecord {
    std::size_t block = kNone;
    std::size_t chunk = kNone;
    std::string site;    ///< static site note ("look-back", ...; "" if none)
    std::string buffer;  ///< allocation label from the MemoryPool ledger
    std::size_t alloc_id = kNone;
    std::uint64_t offset = 0;  ///< byte offset within the allocation
    std::size_t bytes = 0;     ///< extent of the access (word-granular for
                               ///< the remembered side of a race)
    AccessKind kind = AccessKind::kRead;
    std::uint32_t epoch = 0;  ///< owner-component clock value at the access

    /** "block 3 (chunk 3, look-back) read plr.local_carries[8..12)". */
    std::string describe() const;
};

/** Two accesses to the same word with no happens-before edge between. */
struct RaceViolation {
    AccessRecord first;   ///< the remembered (earlier-observed) access
    AccessRecord second;  ///< the access that exposed the race
    std::string what;     ///< "write-read race", "use-after-free", ...

    std::string describe() const;
};

/** A look-back protocol rule broken at a specific chunk. */
struct InvariantViolation {
    std::string protocol;  ///< protocol label ("plr", "scan.chain", ...)
    std::string rule;      ///< short rule id, e.g. "publish-once"
    std::size_t chunk = kNone;  ///< protocol chunk the rule concerns
    AccessRecord at;            ///< the access that broke the rule
    std::string detail;         ///< human-readable specifics

    std::string describe() const;
};

/** Everything one analyzed launch found. */
struct RaceReport {
    std::vector<RaceViolation> races;
    std::vector<InvariantViolation> invariants;
    /** Violations suppressed once the caps were hit. */
    std::size_t dropped = 0;

    bool
    clean() const
    {
        return races.empty() && invariants.empty();
    }

    /** Multi-line human-readable rendering. */
    std::string format() const;
};

/** Launch failure carrying the full RaceReport. */
class RaceError : public PanicError {
  public:
    RaceError(const std::string& what, RaceReport report);

    const RaceReport& report() const { return report_; }

  private:
    RaceReport report_;
};

/** Per-Device analysis configuration (Device::enable_analysis). */
struct AnalysisConfig {
    /** Run the vector-clock happens-before race detector. */
    bool race_detect = true;
    /** Run the look-back protocol invariant checker. */
    bool invariants = true;
    /** Throw RaceError from Device::launch when the report is not clean. */
    bool fail_on_violation = true;
    /** Cap on reported races and on reported invariant violations. */
    std::size_t max_violations = 16;
};

/**
 * Shape of one look-back protocol instance: which allocations hold its
 * flags and carry state. Registered with the Device by protocol owners
 * (LookbackChain, PlrKernel) so the invariant checker can lint them.
 */
struct ProtocolSpec {
    std::string label;
    std::size_t num_chunks = 0;
    std::size_t width = 0;        ///< carry values per chunk
    std::size_t value_bytes = 0;  ///< sizeof one carry value
    std::size_t local_flags = kNone;   ///< alloc_id, one u32 per chunk
    std::size_t global_flags = kNone;  ///< alloc_id, one u32 per chunk
    std::size_t local_state = kNone;   ///< alloc_id, num_chunks*width values
    std::size_t global_state = kNone;  ///< alloc_id, num_chunks*width values
};

}  // namespace plr::analysis

#endif  // PLR_ANALYSIS_RACE_REPORT_H_
