#ifndef PLR_ANALYSIS_INVARIANT_CHECKER_H_
#define PLR_ANALYSIS_INVARIANT_CHECKER_H_

/**
 * @file
 * Look-back protocol linter. Consumes the same instrumentation stream as
 * the race detector, but checks the *protocol* rather than the memory
 * model: flags transition monotonically (invalid → published) and are
 * published exactly once per chunk, carries are fenced before their flag
 * is released, and no block reads a carry whose flag it has not acquired.
 * See docs/ANALYSIS.md for the full rule list.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/race_report.h"
#include "analysis/shadow_memory.h"
#include "analysis/vector_clock.h"

namespace plr::analysis {

class InvariantChecker {
  public:
    /**
     * @param ledger the MemoryPool ledger (labels for reports)
     * @param shadow the race detector's shadow (fence-coverage rule reads
     *        each carry word's last writer from it); must outlive this
     *        checker and receive every access before the checker does
     */
    InvariantChecker(std::vector<ProtocolSpec> protocols,
                     std::size_t num_blocks,
                     const std::vector<gpusim::AllocationRecord>* ledger,
                     const ShadowMemory* shadow);

    /** True when no registered protocol owns @p alloc_id (fast path). */
    bool tracks(std::size_t alloc_id) const;

    // Hooks; all called under the LaunchAnalysis lock, shadow-first.
    void on_read(const AccessContext& ctx, std::size_t alloc_id,
                 std::uint64_t offset, std::size_t bytes,
                 std::vector<InvariantViolation>* out);
    void on_write(const AccessContext& ctx, std::size_t alloc_id,
                  std::uint64_t offset, std::size_t bytes,
                  std::vector<InvariantViolation>* out);
    void on_acquire(const AccessContext& ctx, std::size_t alloc_id,
                    std::uint64_t word, std::uint32_t observed);
    /**
     * @param fence_vc the publishing block's clock as of its last
     *        __threadfence (the clock the release actually publishes)
     */
    void on_release(const AccessContext& ctx, std::size_t alloc_id,
                    std::uint64_t word, std::uint32_t value,
                    const VectorClock& fence_vc,
                    std::vector<InvariantViolation>* out);

  private:
    enum class Role : std::uint8_t {
        kLocalFlags,
        kGlobalFlags,
        kLocalState,
        kGlobalState,
    };
    static bool is_flags(Role role);

    struct FlagState {
        std::uint32_t value = 0;
        std::size_t publishes = 0;
        std::size_t publisher = kNone;  ///< block of the first publish
    };

    struct Binding {
        std::size_t proto = 0;
        Role role = Role::kLocalFlags;
    };

    struct ProtoState {
        ProtocolSpec spec;
        std::vector<FlagState> local_flags;   ///< per chunk
        std::vector<FlagState> global_flags;  ///< per chunk
    };

    const Binding* binding_for(std::size_t alloc_id) const;
    std::size_t chunk_bytes(const ProtoState& proto) const;
    AccessRecord make_record(const AccessContext& ctx, std::size_t alloc_id,
                             std::uint64_t offset, std::size_t bytes,
                             AccessKind kind) const;
    void add(std::vector<InvariantViolation>* out, const ProtoState& proto,
             std::string rule, std::size_t chunk, AccessRecord at,
             std::string detail);
    /** Key identifying (protocol, flag kind, chunk) in acquired sets. */
    static std::uint64_t flag_key(std::size_t proto, Role role,
                                  std::uint64_t chunk);

    std::vector<ProtoState> protocols_;
    std::unordered_map<std::size_t, Binding> bindings_;
    /** Per block: flag instances it has acquired (observed nonzero). */
    std::vector<std::unordered_set<std::uint64_t>> acquired_;
    const std::vector<gpusim::AllocationRecord>* ledger_;
    const ShadowMemory* shadow_;
};

}  // namespace plr::analysis

#endif  // PLR_ANALYSIS_INVARIANT_CHECKER_H_
