#ifndef PLR_ANALYSIS_VECTOR_CLOCK_H_
#define PLR_ANALYSIS_VECTOR_CLOCK_H_

/**
 * @file
 * Dense vector clocks over block indices, the ordering primitive of the
 * happens-before race detector (docs/ANALYSIS.md).
 *
 * Component b holds the number of "epochs" of block b's execution that the
 * clock's owner has (transitively) synchronized with. A block advances its
 * own component at every release boundary; acquire edges join the published
 * clock into the reader. An access at epoch (b, c) happens-before a later
 * access by another block iff that block's clock covers (b, c).
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace plr::analysis {

/** Dense vector clock; components default to 0. */
class VectorClock {
  public:
    VectorClock() = default;
    explicit VectorClock(std::size_t size) : clocks_(size, 0) {}

    std::size_t size() const { return clocks_.size(); }

    /** Component @p i (0 when beyond the allocated size). */
    std::uint32_t
    get(std::size_t i) const
    {
        return i < clocks_.size() ? clocks_[i] : 0;
    }

    /** Set component @p i, growing the clock as needed. */
    void
    set(std::size_t i, std::uint32_t value)
    {
        if (i >= clocks_.size())
            clocks_.resize(i + 1, 0);
        clocks_[i] = value;
    }

    /** Increment component @p i (a new epoch for block i). */
    void advance(std::size_t i) { set(i, get(i) + 1); }

    /** Component-wise maximum: this := this ⊔ other (an acquire edge). */
    void
    join(const VectorClock& other)
    {
        if (other.clocks_.size() > clocks_.size())
            clocks_.resize(other.clocks_.size(), 0);
        for (std::size_t i = 0; i < other.clocks_.size(); ++i)
            clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }

    /** True when epoch (block @p i, @p epoch) happens-before this clock. */
    bool
    covers(std::size_t i, std::uint32_t epoch) const
    {
        return get(i) >= epoch;
    }

    /** True when every component of @p other is ≤ this (other ⊑ this). */
    bool
    covers(const VectorClock& other) const
    {
        for (std::size_t i = 0; i < other.clocks_.size(); ++i)
            if (other.clocks_[i] > get(i))
                return false;
        return true;
    }

    bool
    operator==(const VectorClock& other) const
    {
        return covers(other) && other.covers(*this);
    }

    /** "[3 0 1]" rendering for reports and test diagnostics. */
    std::string
    to_string() const
    {
        std::ostringstream os;
        os << '[';
        for (std::size_t i = 0; i < clocks_.size(); ++i)
            os << (i ? " " : "") << clocks_[i];
        os << ']';
        return os.str();
    }

  private:
    std::vector<std::uint32_t> clocks_;
};

}  // namespace plr::analysis

#endif  // PLR_ANALYSIS_VECTOR_CLOCK_H_
