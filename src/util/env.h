#ifndef PLR_UTIL_ENV_H_
#define PLR_UTIL_ENV_H_

/**
 * @file
 * Centralized, validated environment-variable parsing.
 *
 * Every $PLR_* knob the library honors is read through these helpers so
 * a malformed value produces one clear FatalError naming the variable,
 * the offending value, and the accepted forms — instead of each call
 * site silently falling back to a default and masking the typo. Unset
 * (or empty) variables always mean "use the default"; only present,
 * malformed values are rejected.
 *
 * Knobs currently routed through this header:
 *
 *   PLR_SIMD             choice: scalar | avx2 | auto
 *   PLR_SIMD_FIRST_ORDER choice: direct | log | auto
 *   PLR_SPIN_WATCHDOG    positive count (spins per wait episode)
 *   PLR_RACE_DETECT      flag: 1/0, true/false, on/off, yes/no
 *   PLR_RACE_LOG         path (free-form)
 *   PLR_FORENSIC_LOG     path (free-form)
 *   PLR_REPRO_LOG        path (free-form)
 *   PLR_CHECKPOINT_ARTIFACT_DIR  path (free-form; docs/STREAMING.md)
 *   PLR_SERVER_DEADLINE_MS       positive count (default request
 *                                deadline, ms; docs/SERVER.md)
 *   PLR_SERVER_REPLAY_CAPACITY   positive count (idempotent replay
 *                                cache entries; docs/SERVER.md)
 *   PLR_SERVER_SESSION_STORE     path (durable session record
 *                                directory; docs/SERVER.md)
 */

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace plr::env {

/** Raw value of @p name; nullopt when unset. Never validates. */
std::optional<std::string> raw(const char* name);

/**
 * Free-form string (paths, log files): the value when set and
 * non-empty, @p fallback otherwise. Paths carry no syntax to validate.
 */
std::string string_or(const char* name, std::string_view fallback = "");

/**
 * Boolean knob. Accepts 1/0, true/false, on/off, yes/no (lowercase).
 * Unset or empty yields @p fallback; anything else throws FatalError.
 */
bool flag_or(const char* name, bool fallback);

/**
 * Positive decimal count. Unset or empty yields @p fallback; a value
 * that is not a plain positive base-10 integer (or that overflows
 * uint64) throws FatalError.
 */
std::uint64_t count_or(const char* name, std::uint64_t fallback);

/**
 * Enumerated knob: the value must be one of @p allowed (include "auto"
 * there when the knob supports it). Unset or empty yields @p fallback.
 * Unknown names throw FatalError listing the accepted spellings.
 */
std::string choice_or(const char* name,
                      std::initializer_list<std::string_view> allowed,
                      std::string_view fallback);

}  // namespace plr::env

#endif  // PLR_UTIL_ENV_H_
