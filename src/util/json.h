#ifndef PLR_UTIL_JSON_H_
#define PLR_UTIL_JSON_H_

/**
 * @file
 * Minimal JSON document model used by the benchmark reporting layer
 * (docs/BENCH.md): an ordered value tree, a serializer, and a strict
 * recursive-descent parser. Self-contained on purpose — the repository
 * takes no third-party JSON dependency, and the bench baselines only need
 * objects/arrays/strings/numbers/bools/null.
 *
 * Objects preserve insertion order so emitted documents are stable and
 * diffs against committed baselines stay readable. Numbers are stored as
 * double plus an exact-uint64 side channel: counter sums (which exceed
 * 2^53 in principle) round-trip bit-exactly through `as_uint64`.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace plr::json {

/** Kind of one JSON value. */
enum class Kind {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
};

/** One node of a JSON document. */
class Value {
  public:
    Value() : kind_(Kind::kNull) {}
    Value(std::nullptr_t) : kind_(Kind::kNull) {}
    Value(bool b) : kind_(Kind::kBool), bool_(b) {}
    Value(double d) : kind_(Kind::kNumber), number_(d) {}
    Value(int i) : Value(static_cast<std::int64_t>(i)) {}
    Value(std::int64_t i)
        : kind_(Kind::kNumber), number_(static_cast<double>(i))
    {
        if (i >= 0) {
            uint_ = static_cast<std::uint64_t>(i);
            has_uint_ = true;
        }
    }
    Value(std::uint64_t u)
        : kind_(Kind::kNumber), number_(static_cast<double>(u)), uint_(u),
          has_uint_(true)
    {
    }
    Value(const char* s) : kind_(Kind::kString), string_(s) {}
    Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

    /** Empty array / object factories. */
    static Value array();
    static Value object();

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_bool() const { return kind_ == Kind::kBool; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_object() const { return kind_ == Kind::kObject; }

    /** Typed accessors; throw FatalError on kind mismatch. */
    bool as_bool() const;
    double as_double() const;
    /** Exact unsigned value; throws unless the number is a whole uint64. */
    std::uint64_t as_uint64() const;
    const std::string& as_string() const;

    // ---- arrays ---------------------------------------------------------
    /** Append to an array (value must be an array). */
    void push_back(Value v);
    /** Array elements; throws unless is_array(). */
    const std::vector<Value>& items() const;
    std::size_t size() const;
    const Value& at(std::size_t i) const;

    // ---- objects --------------------------------------------------------
    /** Insert or overwrite a member (value must be an object). */
    void set(const std::string& key, Value v);
    /** True when the object has @p key. */
    bool has(const std::string& key) const;
    /** Member lookup; throws when missing or not an object. */
    const Value& at(const std::string& key) const;
    /** Member lookup returning nullptr when absent. */
    const Value* find(const std::string& key) const;
    /** Member keys in insertion order; throws unless is_object(). */
    const std::vector<std::string>& keys() const;

    /** Deep structural equality (numbers compared exactly). */
    friend bool operator==(const Value& a, const Value& b);
    friend bool operator!=(const Value& a, const Value& b)
    {
        return !(a == b);
    }

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::uint64_t uint_ = 0;
    bool has_uint_ = false;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::string> keys_;
    std::map<std::string, Value> members_;
};

/**
 * Parse a complete JSON document; throws FatalError with a line:column
 * location on malformed input or trailing garbage.
 */
Value parse(const std::string& text);

/** Read and parse a JSON file; throws FatalError on IO or parse errors. */
Value parse_file(const std::string& path);

/** Write @p value to @p path pretty-printed; throws FatalError on IO. */
void write_file(const std::string& path, const Value& value);

}  // namespace plr::json

#endif  // PLR_UTIL_JSON_H_
