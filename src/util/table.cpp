#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/diag.h"

namespace plr {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    PLR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
TextTable::add_row(std::vector<std::string> cells)
{
    PLR_REQUIRE(cells.size() == headers_.size(),
                "row arity " << cells.size() << " != header arity "
                             << headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << "\n";
    };

    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += std::string(widths[c], '-') + (c + 1 < widths.size() ? "  " : "");
    os << rule << "\n";
    for (const auto& row : rows_)
        print_row(row);
}

std::string
format_fixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
format_pow2(std::size_t n)
{
    if (n != 0 && (n & (n - 1)) == 0) {
        int exp = 0;
        for (std::size_t v = n; v > 1; v >>= 1)
            ++exp;
        return "2^" + std::to_string(exp);
    }
    return std::to_string(n);
}

std::string
format_bytes(double bytes)
{
    const char* units[] = {"B", "KB", "MB", "GB", "TB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    return format_fixed(bytes, unit == 0 ? 0 : 1) + " " + units[unit];
}

}  // namespace plr
