#ifndef PLR_UTIL_THREAD_POOL_H_
#define PLR_UTIL_THREAD_POOL_H_

/**
 * @file
 * A persistent host thread pool for the native CPU backends.
 *
 * The seed implementation of `cpu_parallel_recurrence` spawned fresh
 * `std::thread`s for every parallel region — three spawn/join rounds per
 * call. This pool keeps the workers alive across calls: a parallel region
 * becomes one mutex-guarded dispatch plus condition-variable wakeups, and
 * the calling thread participates in the work instead of only waiting.
 *
 * Scheduling is deliberately work-stealing-free: tasks are claimed off a
 * single atomic-style index under the pool mutex, which is plenty at CPU
 * chunk counts (the backend creates roughly one task per core) and keeps
 * the pool trivially TSan-clean.
 */

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace plr {

/** Persistent pool of worker threads executing indexed parallel-for jobs. */
class ThreadPool {
  public:
    /** Hard cap on worker threads (guards runaway `threads=` requests). */
    static constexpr std::size_t kMaxWorkers = 256;

    /**
     * Start @p workers worker threads (0 = hardware_concurrency() - 1,
     * so pool workers plus the participating caller saturate the cores).
     */
    explicit ThreadPool(std::size_t workers = 0);

    /** Joins all workers. Must not run concurrently with parallel_for. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Current worker-thread count (excludes the participating caller). */
    std::size_t worker_count() const;

    /**
     * Grow the pool so at least @p target workers exist (capped at
     * kMaxWorkers; never shrinks). Lets callers that were asked for an
     * explicit oversubscribed thread count honor it.
     */
    void ensure_workers(std::size_t target);

    /**
     * Run task(0) .. task(count - 1) across the workers and the calling
     * thread; returns when all of them finished. Tasks must be independent.
     * The first exception thrown by a task is rethrown here after the
     * region completes. Concurrent parallel_for calls from different
     * threads serialize; reentrant calls from inside a task deadlock (the
     * backend never nests regions).
     */
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& task);

    /**
     * The process-wide shared pool used by `cpu_parallel_recurrence`.
     * Created on first use with the default worker count.
     */
    static ThreadPool& shared();

  private:
    void worker_loop();
    /** Claim-and-run loop shared by workers and the dispatching caller.
        Expects @p lock held; returns with it held. */
    void drain(std::unique_lock<std::mutex>& lock);

    mutable std::mutex mu_;
    std::condition_variable work_cv_;  // workers: a job has tasks left
    std::condition_variable done_cv_;  // dispatcher: all tasks finished
    std::mutex dispatch_mu_;           // serializes concurrent dispatchers

    const std::function<void(std::size_t)>* task_ = nullptr;
    std::size_t count_ = 0;
    std::size_t next_ = 0;
    std::size_t active_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace plr

#endif  // PLR_UTIL_THREAD_POOL_H_
