#include "util/diag.h"

#include <sstream>

namespace plr {
namespace detail {

namespace {

std::string
format_location(const char* file, int line, const char* kind,
                const std::string& msg)
{
    std::ostringstream os;
    os << kind << " at " << file << ":" << line << ": " << msg;
    return os.str();
}

}  // namespace

void
throw_fatal(const char* file, int line, const std::string& msg)
{
    throw FatalError(format_location(file, line, "fatal", msg));
}

void
throw_panic(const char* file, int line, const std::string& msg)
{
    throw PanicError(format_location(file, line, "panic", msg));
}

}  // namespace detail
}  // namespace plr
