#include "util/code_writer.h"

#include "util/diag.h"

namespace plr {

CodeWriter&
CodeWriter::line(const std::string& text)
{
    if (!text.empty())
        out_ << std::string(static_cast<std::size_t>(level_ * indent_width_),
                            ' ')
             << text;
    out_ << "\n";
    return *this;
}

CodeWriter&
CodeWriter::open(const std::string& text)
{
    line(text);
    ++level_;
    return *this;
}

CodeWriter&
CodeWriter::close(const std::string& text)
{
    dedent();
    line(text);
    return *this;
}

CodeWriter&
CodeWriter::raw(const std::string& text)
{
    out_ << text;
    return *this;
}

CodeWriter&
CodeWriter::dedent()
{
    PLR_ASSERT(level_ > 0, "unbalanced dedent");
    --level_;
    return *this;
}

}  // namespace plr
