#ifndef PLR_UTIL_COMPARE_H_
#define PLR_UTIL_COMPARE_H_

/**
 * @file
 * Result-validation helpers mirroring the paper's methodology (Section 5):
 * integer outputs must match the serial CPU result exactly; float outputs
 * must be within a discrepancy of 1e-3.
 */

#include <cmath>
#include <cstddef>
#include <optional>
#include <span>
#include <string>

namespace plr {

/** Outcome of a sequence validation. */
struct ValidationResult {
    bool ok = true;
    /** Index of the first offending element, if any. */
    std::optional<std::size_t> first_mismatch;
    /** Largest observed discrepancy (floats) or 0/1 mismatch flag (ints). */
    double max_discrepancy = 0.0;

    /** Human-readable summary for test failure messages. */
    std::string describe() const;
};

/** Exact elementwise comparison (integer recurrences). */
ValidationResult validate_exact(std::span<const std::int32_t> expected,
                                std::span<const std::int32_t> actual);

/**
 * Tolerant comparison for float recurrences. The discrepancy metric is
 * |a-b| / max(1, |b|), i.e. absolute for small magnitudes and relative for
 * large ones, checked against the paper's 1e-3 bound by default.
 */
ValidationResult validate_close(std::span<const float> expected,
                                std::span<const float> actual,
                                double tolerance = 1e-3);

}  // namespace plr

#endif  // PLR_UTIL_COMPARE_H_
