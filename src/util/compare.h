#ifndef PLR_UTIL_COMPARE_H_
#define PLR_UTIL_COMPARE_H_

/**
 * @file
 * Result-validation helpers mirroring the paper's methodology (Section 5):
 * integer outputs must match the serial CPU result exactly; float outputs
 * must be within a discrepancy of 1e-3.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace plr {

/** Outcome of a sequence validation. */
struct ValidationResult {
    bool ok = true;
    /** Index of the first offending element, if any. */
    std::optional<std::size_t> first_mismatch;
    /** Largest observed discrepancy (floats) or 0/1 mismatch flag (ints). */
    double max_discrepancy = 0.0;

    /** Human-readable summary for test failure messages. */
    std::string describe() const;
};

/** Exact elementwise comparison (integer recurrences). */
ValidationResult validate_exact(std::span<const std::int32_t> expected,
                                std::span<const std::int32_t> actual);

/**
 * Tolerant comparison for float recurrences. The discrepancy metric is
 * |a-b| / max(1, |b|), i.e. absolute for small magnitudes and relative for
 * large ones, checked against the paper's 1e-3 bound by default.
 */
ValidationResult validate_close(std::span<const float> expected,
                                std::span<const float> actual,
                                double tolerance = 1e-3);

/**
 * Distance between two floats in units in the last place, i.e. the number
 * of representable values strictly between them (0 for bit-equal values;
 * +0 and -0 are adjacent). Non-finite values are infinitely far from
 * everything except a bit-identical copy.
 */
std::uint64_t ulp_distance(float a, float b);

/**
 * ULP-aware comparison: each element pair must be within @p max_ulps units
 * in the last place, or — when @p fallback_tolerance > 0 — within that
 * discrepancy bound (the validate_close metric). The ULP gate keeps
 * small-magnitude elements honest where a relative bound degenerates; the
 * fallback admits the reassociation drift of long float accumulations.
 * max_discrepancy reports the largest observed ULP distance.
 */
ValidationResult validate_ulp(std::span<const float> expected,
                              std::span<const float> actual,
                              std::uint64_t max_ulps,
                              double fallback_tolerance = 0.0);

}  // namespace plr

#endif  // PLR_UTIL_COMPARE_H_
