#ifndef PLR_UTIL_RNG_H_
#define PLR_UTIL_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use an explicit xoshiro256** implementation instead of std::mt19937 so
 * that generated workloads are bit-identical across standard libraries and
 * platforms, which keeps the integer exact-match validation reproducible.
 */

#include <cstdint>

namespace plr {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng {
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Next 32-bit value. */
    std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform_double();

    /** Uniform double in [lo, hi). */
    double uniform_double(double lo, double hi);

    /** Standard normal variate (Box-Muller). */
    double normal();

  private:
    std::uint64_t state_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

}  // namespace plr

#endif  // PLR_UTIL_RNG_H_
