#include "util/thread_pool.h"

#include <algorithm>

namespace plr {

namespace {

std::size_t
default_worker_count()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = default_worker_count();
    workers = std::min(workers, kMaxWorkers);
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

std::size_t
ThreadPool::worker_count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
}

void
ThreadPool::ensure_workers(std::size_t target)
{
    target = std::min(target, kMaxWorkers);
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < target)
        workers_.emplace_back([this]() { worker_loop(); });
}

void
ThreadPool::drain(std::unique_lock<std::mutex>& lock)
{
    while (task_ != nullptr && next_ < count_) {
        const std::size_t index = next_++;
        ++active_;
        const auto* task = task_;
        lock.unlock();
        std::exception_ptr err;
        try {
            (*task)(index);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();
        if (err && !error_)
            error_ = err;
        --active_;
        if (next_ >= count_ && active_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPool::worker_loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        work_cv_.wait(lock, [this]() {
            return stop_ || (task_ != nullptr && next_ < count_);
        });
        if (stop_)
            return;
        drain(lock);
    }
}

void
ThreadPool::parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& task)
{
    if (count == 0)
        return;
    bool inline_run;
    {
        std::lock_guard<std::mutex> lock(mu_);
        inline_run = workers_.empty();
    }
    if (inline_run || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            task(i);
        return;
    }

    std::lock_guard<std::mutex> dispatch(dispatch_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    next_ = 0;
    error_ = nullptr;
    work_cv_.notify_all();
    drain(lock);
    done_cv_.wait(lock,
                  [this]() { return next_ >= count_ && active_ == 0; });
    task_ = nullptr;
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    if (err)
        std::rethrow_exception(err);
}

ThreadPool&
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

}  // namespace plr
