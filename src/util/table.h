#ifndef PLR_UTIL_TABLE_H_
#define PLR_UTIL_TABLE_H_

/**
 * @file
 * Minimal text-table printer used by the benchmark drivers to emit the
 * figure series and tables in the same row/column layout as the paper.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace plr {

/** Column-aligned text table with a header row. */
class TextTable {
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void add_row(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t num_rows() const { return rows_.size(); }

    /** Render with right-aligned numeric-looking cells. */
    void print(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string format_fixed(double value, int precision);

/** Format an element count as a power of two when exact (e.g. "2^20"). */
std::string format_pow2(std::size_t n);

/** Format a byte count as a human-readable string (KB/MB/GB). */
std::string format_bytes(double bytes);

}  // namespace plr

#endif  // PLR_UTIL_TABLE_H_
