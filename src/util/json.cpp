#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/diag.h"

namespace plr::json {

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::kArray;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::kObject;
    return v;
}

bool
Value::as_bool() const
{
    PLR_REQUIRE(is_bool(), "JSON value is not a bool");
    return bool_;
}

double
Value::as_double() const
{
    PLR_REQUIRE(is_number(), "JSON value is not a number");
    return number_;
}

std::uint64_t
Value::as_uint64() const
{
    PLR_REQUIRE(is_number(), "JSON value is not a number");
    if (has_uint_)
        return uint_;
    PLR_REQUIRE(number_ >= 0 && std::floor(number_) == number_,
                "JSON number " << number_ << " is not a whole uint64");
    return static_cast<std::uint64_t>(number_);
}

const std::string&
Value::as_string() const
{
    PLR_REQUIRE(is_string(), "JSON value is not a string");
    return string_;
}

void
Value::push_back(Value v)
{
    PLR_REQUIRE(is_array(), "push_back on a non-array JSON value");
    array_.push_back(std::move(v));
}

const std::vector<Value>&
Value::items() const
{
    PLR_REQUIRE(is_array(), "items() on a non-array JSON value");
    return array_;
}

std::size_t
Value::size() const
{
    PLR_REQUIRE(is_array() || is_object(),
                "size() on a non-container JSON value");
    return is_array() ? array_.size() : keys_.size();
}

const Value&
Value::at(std::size_t i) const
{
    PLR_REQUIRE(is_array(), "index access on a non-array JSON value");
    PLR_REQUIRE(i < array_.size(),
                "JSON array index " << i << " out of range (size "
                                    << array_.size() << ")");
    return array_[i];
}

void
Value::set(const std::string& key, Value v)
{
    PLR_REQUIRE(is_object(), "set() on a non-object JSON value");
    auto [it, inserted] = members_.insert_or_assign(key, std::move(v));
    (void)it;
    if (inserted)
        keys_.push_back(key);
}

bool
Value::has(const std::string& key) const
{
    return is_object() && members_.count(key) != 0;
}

const Value&
Value::at(const std::string& key) const
{
    const Value* v = find(key);
    PLR_REQUIRE(v != nullptr, "JSON object has no member \"" << key << "\"");
    return *v;
}

const Value*
Value::find(const std::string& key) const
{
    if (!is_object())
        return nullptr;
    auto it = members_.find(key);
    return it == members_.end() ? nullptr : &it->second;
}

const std::vector<std::string>&
Value::keys() const
{
    PLR_REQUIRE(is_object(), "keys() on a non-object JSON value");
    return keys_;
}

bool
operator==(const Value& a, const Value& b)
{
    if (a.kind_ != b.kind_)
        return false;
    switch (a.kind_) {
      case Kind::kNull: return true;
      case Kind::kBool: return a.bool_ == b.bool_;
      case Kind::kNumber:
        if (a.has_uint_ && b.has_uint_)
            return a.uint_ == b.uint_;
        return a.number_ == b.number_;
      case Kind::kString: return a.string_ == b.string_;
      case Kind::kArray: return a.array_ == b.array_;
      case Kind::kObject:
        return a.keys_ == b.keys_ && a.members_ == b.members_;
    }
    return false;
}

namespace {

void
append_escaped(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
append_number(std::string& out, double d)
{
    PLR_REQUIRE(std::isfinite(d), "JSON cannot represent " << d);
    if (std::floor(d) == d && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

}  // namespace

void
Value::dump_to(std::string& out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     (static_cast<std::size_t>(depth) + 1),
                                 ' ')
                   : std::string();
    const std::string close_pad =
        indent > 0
            ? std::string(
                  static_cast<std::size_t>(indent) *
                      static_cast<std::size_t>(depth),
                  ' ')
            : std::string();
    const char* nl = indent > 0 ? "\n" : "";
    const char* colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber:
        if (has_uint_) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(uint_));
            out += buf;
        } else {
            append_number(out, number_);
        }
        break;
      case Kind::kString:
        append_escaped(out, string_);
        break;
      case Kind::kArray: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < array_.size(); ++i) {
            out += pad;
            array_[i].dump_to(out, indent, depth + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        break;
      }
      case Kind::kObject: {
        if (keys_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            out += pad;
            append_escaped(out, keys_[i]);
            out += colon;
            members_.at(keys_[i]).dump_to(out, indent, depth + 1);
            if (i + 1 < keys_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

/** Strict recursive-descent parser over the whole input buffer. */
class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value
    parse_document()
    {
        skip_ws();
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string& what) const
    {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        PLR_FATAL("JSON parse error at " << line << ":" << col << ": "
                                         << what);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume_literal(const char* lit)
    {
        const std::size_t len = std::string(lit).size();
        if (text_.compare(pos_, len, lit) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Value
    parse_value()
    {
        switch (peek()) {
          case '{': return parse_object();
          case '[': return parse_array();
          case '"': return Value(parse_string());
          case 't':
            if (consume_literal("true"))
                return Value(true);
            fail("invalid literal");
          case 'f':
            if (consume_literal("false"))
                return Value(false);
            fail("invalid literal");
          case 'n':
            if (consume_literal("null"))
                return Value(nullptr);
            fail("invalid literal");
          default: return parse_number();
        }
    }

    std::string
    parse_string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // The reporter only emits ASCII control escapes; encode the
                // code point as UTF-8 (no surrogate-pair handling needed).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("invalid escape character");
            }
        }
    }

    Value
    parse_number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
            fail("invalid number");
        const std::string token = text_.substr(start, pos_ - start);
        try {
            if (integral && token[0] != '-')
                return Value(
                    static_cast<std::uint64_t>(std::stoull(token)));
            if (integral)
                return Value(static_cast<std::int64_t>(std::stoll(token)));
            return Value(std::stod(token));
        } catch (const std::exception&) {
            fail("number out of range: " + token);
        }
    }

    Value
    parse_array()
    {
        expect('[');
        Value v = Value::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            v.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value
    parse_object()
    {
        expect('{');
        Value v = Value::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            v.set(key, parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

Value
parse(const std::string& text)
{
    return Parser(text).parse_document();
}

Value
parse_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    PLR_REQUIRE(in.good(), "cannot open JSON file " << path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

void
write_file(const std::string& path, const Value& value)
{
    std::ofstream out(path, std::ios::binary);
    PLR_REQUIRE(out.good(), "cannot write JSON file " << path);
    out << value.dump(2) << "\n";
    PLR_REQUIRE(out.good(), "write to " << path << " failed");
}

}  // namespace plr::json
