#ifndef PLR_UTIL_CODE_WRITER_H_
#define PLR_UTIL_CODE_WRITER_H_

/**
 * @file
 * Indentation-aware text emitter used by the CUDA code generator.
 */

#include <sstream>
#include <string>

namespace plr {

/** Builds source text line by line with managed indentation. */
class CodeWriter {
  public:
    /** @param indent_width spaces per indentation level */
    explicit CodeWriter(int indent_width = 4) : indent_width_(indent_width) {}

    /** Append one line at the current indentation (empty = blank line). */
    CodeWriter& line(const std::string& text = std::string());

    /** Append a line and increase indentation (e.g. "if (...) {"). */
    CodeWriter& open(const std::string& text);

    /** Decrease indentation and append a line (e.g. "}"). */
    CodeWriter& close(const std::string& text = "}");

    /** Append raw text verbatim (no indentation handling). */
    CodeWriter& raw(const std::string& text);

    /** Increase the indentation level. */
    CodeWriter& indent() { ++level_; return *this; }

    /** Decrease the indentation level. */
    CodeWriter& dedent();

    /** The accumulated source text. */
    std::string str() const { return out_.str(); }

  private:
    std::ostringstream out_;
    int indent_width_;
    int level_ = 0;
};

}  // namespace plr

#endif  // PLR_UTIL_CODE_WRITER_H_
