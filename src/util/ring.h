#ifndef PLR_UTIL_RING_H_
#define PLR_UTIL_RING_H_

/**
 * @file
 * Arithmetic policies ("rings") for recurrence evaluation.
 *
 * The paper evaluates recurrences on 32-bit integers and 32-bit floats.
 * Integer results are validated for exact equality: this works because all
 * recurrence/correction arithmetic is linear, and two's-complement wrap-around
 * (arithmetic mod 2^32) is a ring homomorphism, so serial and parallel
 * evaluation orders agree bit-for-bit. We therefore perform all integer
 * arithmetic on uint32_t (well-defined wrap in C++), presenting values as
 * int32_t, which matches GPU integer semantics.
 *
 * Float arithmetic is not associative, so parallel evaluation produces small
 * discrepancies; the paper accepts results within 1e-3 (see compare.h).
 */

#include <cmath>
#include <cstdint>
#include <limits>

namespace plr {

/** 32-bit integer ring with two's-complement wrap-around semantics. */
struct IntRing {
    using value_type = std::int32_t;

    /** Integer arithmetic is exact; results must match the serial code. */
    static constexpr bool is_exact = true;

    static constexpr value_type zero() { return 0; }
    static constexpr value_type one() { return 1; }

    static constexpr value_type
    add(value_type a, value_type b)
    {
        return static_cast<value_type>(static_cast<std::uint32_t>(a) +
                                       static_cast<std::uint32_t>(b));
    }

    static constexpr value_type
    sub(value_type a, value_type b)
    {
        return static_cast<value_type>(static_cast<std::uint32_t>(a) -
                                       static_cast<std::uint32_t>(b));
    }

    static constexpr value_type
    mul(value_type a, value_type b)
    {
        return static_cast<value_type>(static_cast<std::uint32_t>(a) *
                                       static_cast<std::uint32_t>(b));
    }

    /** acc + f * v, all mod 2^32. */
    static constexpr value_type
    mul_add(value_type acc, value_type f, value_type v)
    {
        return add(acc, mul(f, v));
    }

    /** Convert a signature coefficient; must be integral for the int ring. */
    static value_type
    from_coefficient(double c)
    {
        return static_cast<value_type>(
            static_cast<std::uint32_t>(static_cast<std::int64_t>(std::llround(c))));
    }

    static constexpr bool is_zero(value_type v) { return v == 0; }
    static constexpr bool is_one(value_type v) { return v == 1; }

    /** No denormals in integer arithmetic; identity. */
    static constexpr value_type flush_denormal(value_type v) { return v; }
};

/** 32-bit IEEE float ring (GPU fast-math style with denormal flushing). */
struct FloatRing {
    using value_type = float;

    /** Float results are validated within a tolerance, not exactly. */
    static constexpr bool is_exact = false;

    static constexpr value_type zero() { return 0.0f; }
    static constexpr value_type one() { return 1.0f; }

    static constexpr value_type add(value_type a, value_type b) { return a + b; }
    static constexpr value_type sub(value_type a, value_type b) { return a - b; }
    static constexpr value_type mul(value_type a, value_type b) { return a * b; }

    static constexpr value_type
    mul_add(value_type acc, value_type f, value_type v)
    {
        return acc + f * v;
    }

    static value_type from_coefficient(double c) { return static_cast<float>(c); }

    static bool is_zero(value_type v) { return v == 0.0f; }
    static bool is_one(value_type v) { return v == 1.0f; }

    /**
     * Flush denormal magnitudes to zero, as PLR does to accelerate the decay
     * of IIR correction factors (Section 3.1).
     */
    static value_type
    flush_denormal(value_type v)
    {
        return std::fabs(v) < 1.17549435e-38f ? 0.0f : v;
    }
};

/**
 * Max-plus (tropical) semiring: "addition" is max, "multiplication" is +.
 *
 * The paper lists supporting operators other than addition as future work
 * (Section 7). The entire correction-factor machinery only relies on
 * semiring axioms (associativity, commutativity of (+), distributivity of
 * (*) over (+)) plus superposition of linear systems, all of which
 * max-plus satisfies; idempotency of max makes re-applied corrections
 * harmless. A recurrence like
 *
 *   y[i] = max(x[i], y[i-1] - d)      — signature (0 : -d) in this ring —
 *
 * is a decaying running maximum (an envelope follower in audio terms).
 */
struct TropicalRing {
    using value_type = float;

    /** Max of floats is exact, but inputs are floats: use tolerances. */
    static constexpr bool is_exact = false;

    /** Additive identity: -infinity. */
    static value_type zero()
    {
        return -std::numeric_limits<float>::infinity();
    }
    /** Multiplicative identity: 0 (adding nothing). */
    static constexpr value_type one() { return 0.0f; }

    /** Semiring (+) = max. */
    static value_type add(value_type a, value_type b) { return a > b ? a : b; }

    /** Semiring (*) = IEEE addition; zero() absorbs. */
    static value_type
    mul(value_type a, value_type b)
    {
        if (is_zero(a) || is_zero(b))
            return zero();
        return a + b;
    }

    /** max(acc, f + v). */
    static value_type
    mul_add(value_type acc, value_type f, value_type v)
    {
        return add(acc, mul(f, v));
    }

    static value_type from_coefficient(double c)
    {
        return static_cast<float>(c);
    }

    static bool is_zero(value_type v)
    {
        return v == -std::numeric_limits<float>::infinity();
    }
    static bool is_one(value_type v) { return v == 0.0f; }

    /** No denormal semantics in the tropical domain. */
    static value_type flush_denormal(value_type v) { return v; }
};

}  // namespace plr

#endif  // PLR_UTIL_RING_H_
