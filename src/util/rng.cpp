#include "util/rng.h"

#include <cmath>

#include "util/diag.h"

namespace plr {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int s)
{
    return (x << s) | (x >> (64 - s));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    PLR_ASSERT(lo <= hi, "invalid range [" << lo << ", " << hi << "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)  // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::uniform_double()
{
    // 53 random mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform_double(double lo, double hi)
{
    return lo + (hi - lo) * uniform_double();
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform_double();
    double u2 = uniform_double();
    while (u1 <= 1e-300) u1 = uniform_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

}  // namespace plr
