#ifndef PLR_UTIL_DIAG_H_
#define PLR_UTIL_DIAG_H_

/**
 * @file
 * Diagnostic helpers: fatal/panic-style error reporting and check macros.
 *
 * Following the gem5 convention, `fatal` is for user-caused conditions
 * (bad signatures, unsupported parameters) and `panic` is for internal
 * invariant violations that indicate a library bug.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace plr {

/** Exception thrown for user-caused errors (invalid input, bad config). */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void throw_fatal(const char* file, int line, const std::string& msg);
[[noreturn]] void throw_panic(const char* file, int line, const std::string& msg);

}  // namespace detail

}  // namespace plr

/** Report a user-caused error; throws plr::FatalError. */
#define PLR_FATAL(msg)                                                        \
    ::plr::detail::throw_fatal(__FILE__, __LINE__,                            \
                               (::std::ostringstream() << msg).str())

/** Report an internal invariant violation; throws plr::PanicError. */
#define PLR_PANIC(msg)                                                        \
    ::plr::detail::throw_panic(__FILE__, __LINE__,                            \
                               (::std::ostringstream() << msg).str())

/** Validate a user-facing precondition. */
#define PLR_REQUIRE(cond, msg)                                                \
    do {                                                                      \
        if (!(cond)) PLR_FATAL(msg);                                          \
    } while (0)

/** Validate an internal invariant. */
#define PLR_ASSERT(cond, msg)                                                 \
    do {                                                                      \
        if (!(cond)) PLR_PANIC("assertion failed: " #cond ": " << msg);       \
    } while (0)

#endif  // PLR_UTIL_DIAG_H_
