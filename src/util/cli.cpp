#include "util/cli.h"

#include <cstdlib>

#include "util/diag.h"

namespace plr {

CliArgs::CliArgs(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        PLR_REQUIRE(!body.empty(), "empty flag '--'");
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool
CliArgs::has(const std::string& name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::get(const std::string& name, const std::string& def) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
}

std::int64_t
CliArgs::get_int(const std::string& name, std::int64_t def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char* end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    PLR_REQUIRE(end && *end == '\0' && !it->second.empty(),
                "flag --" << name << " expects an integer, got '" << it->second
                          << "'");
    return v;
}

double
CliArgs::get_double(const std::string& name, double def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    PLR_REQUIRE(end && *end == '\0' && !it->second.empty(),
                "flag --" << name << " expects a number, got '" << it->second
                          << "'");
    return v;
}

bool
CliArgs::get_bool(const std::string& name, bool def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    const std::string& v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    PLR_FATAL("flag --" << name << " expects a boolean, got '" << v << "'");
}

}  // namespace plr
