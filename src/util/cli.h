#ifndef PLR_UTIL_CLI_H_
#define PLR_UTIL_CLI_H_

/**
 * @file
 * Tiny command-line flag parser shared by the examples and bench drivers.
 * Supports `--flag=value`, `--flag value`, and boolean `--flag` forms.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace plr {

/** Parsed command-line arguments. */
class CliArgs {
  public:
    /** Parse argv; throws FatalError on malformed flags. */
    CliArgs(int argc, const char* const* argv);

    /** True when --name was given (with or without a value). */
    bool has(const std::string& name) const;

    /** String flag with default. */
    std::string get(const std::string& name, const std::string& def) const;

    /** Integer flag with default; throws on non-numeric values. */
    std::int64_t get_int(const std::string& name, std::int64_t def) const;

    /** Double flag with default. */
    double get_double(const std::string& name, double def) const;

    /** Boolean flag: present without value, or =true/=false. */
    bool get_bool(const std::string& name, bool def) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const { return positional_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

}  // namespace plr

#endif  // PLR_UTIL_CLI_H_
