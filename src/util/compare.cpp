#include "util/compare.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

namespace plr {

namespace {

/**
 * Map a float's bit pattern to a monotonically ordered signed scale so
 * that ULP distance is a plain integer difference (the classic
 * lexicographic reinterpretation; negative floats mirror below zero).
 */
std::int64_t
ordered_bits(float v)
{
    const auto bits = std::bit_cast<std::uint32_t>(v);
    if (bits & 0x80000000u)
        return -static_cast<std::int64_t>(bits & 0x7fffffffu);
    return static_cast<std::int64_t>(bits);
}

}  // namespace

std::string
ValidationResult::describe() const
{
    std::ostringstream os;
    if (ok) {
        os << "ok (max discrepancy " << max_discrepancy << ")";
    } else {
        os << "MISMATCH at index "
           << (first_mismatch ? std::to_string(*first_mismatch) : "?")
           << ", max discrepancy " << max_discrepancy;
    }
    return os.str();
}

ValidationResult
validate_exact(std::span<const std::int32_t> expected,
               std::span<const std::int32_t> actual)
{
    ValidationResult result;
    if (expected.size() != actual.size()) {
        result.ok = false;
        result.first_mismatch = std::min(expected.size(), actual.size());
        return result;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (expected[i] != actual[i]) {
            result.ok = false;
            if (!result.first_mismatch)
                result.first_mismatch = i;
            result.max_discrepancy = 1.0;
        }
    }
    return result;
}

ValidationResult
validate_close(std::span<const float> expected, std::span<const float> actual,
               double tolerance)
{
    ValidationResult result;
    if (expected.size() != actual.size()) {
        result.ok = false;
        result.first_mismatch = std::min(expected.size(), actual.size());
        return result;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const double a = actual[i];
        const double b = expected[i];
        const double denom = std::max(1.0, std::fabs(b));
        const double disc = std::fabs(a - b) / denom;
        result.max_discrepancy = std::max(result.max_discrepancy, disc);
        if (!(disc <= tolerance)) {  // NaN-safe: NaN fails
            result.ok = false;
            if (!result.first_mismatch)
                result.first_mismatch = i;
        }
    }
    return result;
}

std::uint64_t
ulp_distance(float a, float b)
{
    if (std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b))
        return 0;
    if (!std::isfinite(a) || !std::isfinite(b))
        return std::numeric_limits<std::uint64_t>::max();
    const std::int64_t ia = ordered_bits(a);
    const std::int64_t ib = ordered_bits(b);
    return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

ValidationResult
validate_ulp(std::span<const float> expected, std::span<const float> actual,
             std::uint64_t max_ulps, double fallback_tolerance)
{
    ValidationResult result;
    if (expected.size() != actual.size()) {
        result.ok = false;
        result.first_mismatch = std::min(expected.size(), actual.size());
        return result;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const std::uint64_t ulps = ulp_distance(expected[i], actual[i]);
        result.max_discrepancy =
            std::max(result.max_discrepancy, static_cast<double>(ulps));
        if (ulps <= max_ulps)
            continue;
        if (fallback_tolerance > 0.0) {
            const double b = expected[i];
            const double denom = std::max(1.0, std::fabs(b));
            const double disc = std::fabs(actual[i] - b) / denom;
            if (disc <= fallback_tolerance)
                continue;
        }
        result.ok = false;
        if (!result.first_mismatch)
            result.first_mismatch = i;
    }
    return result;
}

}  // namespace plr
