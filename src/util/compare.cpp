#include "util/compare.h"

#include <algorithm>
#include <sstream>

namespace plr {

std::string
ValidationResult::describe() const
{
    std::ostringstream os;
    if (ok) {
        os << "ok (max discrepancy " << max_discrepancy << ")";
    } else {
        os << "MISMATCH at index "
           << (first_mismatch ? std::to_string(*first_mismatch) : "?")
           << ", max discrepancy " << max_discrepancy;
    }
    return os.str();
}

ValidationResult
validate_exact(std::span<const std::int32_t> expected,
               std::span<const std::int32_t> actual)
{
    ValidationResult result;
    if (expected.size() != actual.size()) {
        result.ok = false;
        result.first_mismatch = std::min(expected.size(), actual.size());
        return result;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (expected[i] != actual[i]) {
            result.ok = false;
            if (!result.first_mismatch)
                result.first_mismatch = i;
            result.max_discrepancy = 1.0;
        }
    }
    return result;
}

ValidationResult
validate_close(std::span<const float> expected, std::span<const float> actual,
               double tolerance)
{
    ValidationResult result;
    if (expected.size() != actual.size()) {
        result.ok = false;
        result.first_mismatch = std::min(expected.size(), actual.size());
        return result;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const double a = actual[i];
        const double b = expected[i];
        const double denom = std::max(1.0, std::fabs(b));
        const double disc = std::fabs(a - b) / denom;
        result.max_discrepancy = std::max(result.max_discrepancy, disc);
        if (!(disc <= tolerance)) {  // NaN-safe: NaN fails
            result.ok = false;
            if (!result.first_mismatch)
                result.first_mismatch = i;
        }
    }
    return result;
}

}  // namespace plr
