#include "util/env.h"

#include <cstdlib>
#include <sstream>

#include "util/diag.h"

namespace plr::env {

namespace {

/** "name=value" prefix shared by every rejection diagnostic. */
std::string
describe(const char* name, const std::string& value)
{
    return std::string("$") + name + "=\"" + value + "\"";
}

}  // namespace

std::optional<std::string>
raw(const char* name)
{
    const char* value = std::getenv(name);
    if (value == nullptr)
        return std::nullopt;
    return std::string(value);
}

std::string
string_or(const char* name, std::string_view fallback)
{
    const auto value = raw(name);
    if (!value.has_value() || value->empty())
        return std::string(fallback);
    return *value;
}

bool
flag_or(const char* name, bool fallback)
{
    const auto value = raw(name);
    if (!value.has_value() || value->empty())
        return fallback;
    const std::string& v = *value;
    if (v == "1" || v == "true" || v == "on" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "off" || v == "no")
        return false;
    PLR_FATAL(describe(name, v)
              << " is not a boolean; use 1/0, true/false, on/off, or yes/no");
}

std::uint64_t
count_or(const char* name, std::uint64_t fallback)
{
    const auto value = raw(name);
    if (!value.has_value() || value->empty())
        return fallback;
    const std::string& v = *value;
    std::uint64_t parsed = 0;
    bool overflow = false;
    bool digits = !v.empty();
    for (char c : v) {
        if (c < '0' || c > '9') {
            digits = false;
            break;
        }
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (parsed > (UINT64_MAX - digit) / 10) {
            overflow = true;
            break;
        }
        parsed = parsed * 10 + digit;
    }
    if (!digits)
        PLR_FATAL(describe(name, v)
                  << " is not a plain decimal count (digits only)");
    if (overflow)
        PLR_FATAL(describe(name, v) << " overflows a 64-bit count");
    if (parsed == 0)
        PLR_FATAL(describe(name, v) << " must be a positive count");
    return parsed;
}

std::string
choice_or(const char* name,
          std::initializer_list<std::string_view> allowed,
          std::string_view fallback)
{
    const auto value = raw(name);
    if (!value.has_value() || value->empty())
        return std::string(fallback);
    for (std::string_view candidate : allowed)
        if (*value == candidate)
            return *value;
    std::ostringstream accepted;
    const char* sep = "";
    for (std::string_view candidate : allowed) {
        accepted << sep << candidate;
        sep = ", ";
    }
    PLR_FATAL(describe(name, *value)
              << " is not an accepted value; use one of: " << accepted.str());
}

}  // namespace plr::env
