/**
 * @file
 * The PLR compiler as a command-line tool: reads a recurrence in
 * signature format and emits optimized CUDA code, exactly what the
 * paper's proof-of-concept compiler does (Section 3).
 *
 *   ./codegen_tool "(1: 2, -1)"                  # CUDA to stdout
 *   ./codegen_tool "(0.2: 0.8)" --out filter.cu  # write a file
 *   ./codegen_tool "(1: 0, 1)" --no-optimize     # Figure-10 "off" mode
 *   ./codegen_tool "(1: 1)" --summary            # what got specialized
 *   ./codegen_tool "(1: 1)" --backend cpp        # multithreaded C++
 *                                                # (build with g++ -pthread)
 */

#include <fstream>
#include <iostream>

#include "core/codegen.h"
#include "core/codegen_cpp.h"
#include "util/cli.h"
#include "util/diag.h"

int
main(int argc, char** argv)
{
    const plr::CliArgs args(argc, argv);
    if (args.positional().empty()) {
        std::cerr << "usage: codegen_tool \"(a0, ..: b1, ..)\" [--out file] "
                     "[--no-optimize] [--no-main] [--summary]\n";
        return 2;
    }

    try {
        const auto sig = plr::Signature::parse(args.positional()[0]);
        const std::string backend = args.get("backend", "cuda");
        PLR_REQUIRE(backend == "cuda" || backend == "cpp",
                    "--backend must be 'cuda' or 'cpp'");

        if (backend == "cpp") {
            plr::CppCodegenOptions options;
            if (args.get_bool("no-optimize", false))
                options.opts = plr::Optimizations::all_off();
            options.emit_main = !args.get_bool("no-main", false);
            const auto code = plr::generate_cpp(sig, options);
            const std::string out = args.get("out", "");
            if (out.empty()) {
                std::cout << code.source;
            } else {
                std::ofstream file(out);
                PLR_REQUIRE(file.good(), "cannot open '" << out << "'");
                file << code.source;
                std::cout << "wrote " << code.source.size() << " bytes to "
                          << out << "\n";
            }
            return 0;
        }

        plr::CodegenOptions options;
        if (args.get_bool("no-optimize", false))
            options.opts = plr::Optimizations::all_off();
        options.emit_main = !args.get_bool("no-main", false);

        const auto code = plr::generate_cuda(sig, options);

        if (args.get_bool("summary", false)) {
            std::cout << "signature:      " << sig.to_string() << "\n"
                      << "value type:     "
                      << (code.is_integer ? "int32 (exact)" : "float32")
                      << "\n"
                      << "kernels (x):    ";
            for (std::size_t x : code.x_values)
                std::cout << x << " ";
            std::cout << "\nfactor arrays:  ";
            for (std::size_t j = 0; j < code.factor_array_elems.size(); ++j)
                std::cout << "F" << j + 1 << "="
                          << code.factor_array_elems[j] << " ";
            std::cout << "\nsource size:    " << code.source.size()
                      << " bytes\n";
            return 0;
        }

        const std::string out = args.get("out", "");
        if (out.empty()) {
            std::cout << code.source;
        } else {
            std::ofstream file(out);
            PLR_REQUIRE(file.good(), "cannot open '" << out << "'");
            file << code.source;
            std::cout << "wrote " << code.source.size() << " bytes to "
                      << out << "\n";
        }
    } catch (const plr::FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
