/**
 * @file
 * Interactive filter exploration: design a recursive filter from a
 * cutoff specification, inspect its signature, stability, and frequency
 * response, and show what the PLR compiler would specialize for it —
 * the full dsp + core pipeline in one tool.
 *
 *   ./filter_explorer --type lowpass --cutoff 0.05 --stages 2
 *   ./filter_explorer --type highpass --cutoff 0.1
 *   ./filter_explorer --signature "(0.04: 1.6, -0.64)"
 */

#include <iostream>

#include "core/codegen.h"
#include "dsp/filter_design.h"
#include "util/cli.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    const plr::CliArgs args(argc, argv);

    plr::Signature sig = plr::dsp::lowpass(0.8, 1);
    if (args.has("signature")) {
        sig = plr::Signature::parse(args.get("signature", ""));
    } else {
        const std::string type = args.get("type", "lowpass");
        const double cutoff = args.get_double("cutoff", 0.05);
        const std::size_t stages =
            static_cast<std::size_t>(args.get_int("stages", 1));
        const double pole = plr::dsp::pole_from_cutoff(cutoff);
        if (type == "lowpass")
            sig = plr::dsp::lowpass(pole, stages);
        else if (type == "highpass")
            sig = plr::dsp::highpass(pole, stages);
        else {
            std::cerr << "unknown --type '" << type
                      << "' (lowpass|highpass)\n";
            return 2;
        }
    }

    std::cout << "signature:       " << sig.to_string() << "\n";
    std::cout << "order:           " << sig.order() << " (+" << sig.fir_taps()
              << " FIR taps)\n";
    std::cout << "class:           " << plr::to_string(sig.classify())
              << "\n";
    const double radius = plr::dsp::spectral_radius(sig);
    std::cout << "dominant pole:   |p| = " << radius << " ("
              << (plr::dsp::is_stable(sig) ? "stable" : "NOT stable")
              << ")\n\n";

    std::cout << "frequency response (fraction of sample rate):\n";
    plr::TextTable table({"f", "|H|", "dB"});
    for (double f : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        const double mag = plr::dsp::magnitude_response(sig, f);
        table.add_row({plr::format_fixed(f, 2), plr::format_fixed(mag, 4),
                       plr::format_fixed(20.0 * std::log10(mag + 1e-12), 1)});
    }
    table.print(std::cout);

    if (sig.order() >= 1) {
        plr::CodegenOptions options;
        options.block_threads = 1024;
        options.x_values = {std::max<std::size_t>(sig.order(), 2)};
        const auto code = plr::generate_cuda(sig, options);
        std::cout << "\nPLR compiler specializations:\n";
        for (std::size_t j = 0; j < code.factor_array_elems.size(); ++j) {
            std::cout << "  factor list " << j + 1 << ": ";
            if (code.factor_array_elems[j] == 0)
                std::cout << "suppressed (constant or shifted alias)\n";
            else
                std::cout << code.factor_array_elems[j]
                          << " entries emitted (of "
                          << 1024 * options.x_values[0] << ")\n";
        }
        std::cout << "  generated CUDA: " << code.source.size()
                  << " bytes; generated C++ backend available via "
                     "codegen_tool --backend cpp\n";
    }
    return 0;
}
