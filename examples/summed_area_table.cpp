/**
 * @file
 * Summed-area table (integral image) via two batched prefix-sum passes —
 * an application of the "multiple dimensions" extension: a row-direction
 * prefix sum followed by a column-direction prefix sum. Summed-area
 * tables (Hensley et al., cited by the paper) enable O(1) box sums for
 * filtering and feature computation.
 *
 *   ./summed_area_table --rows 256 --cols 256
 */

#include <iostream>

#include "dsp/filter_design.h"
#include "dsp/signal.h"
#include "gpusim/device.h"
#include "kernels/batched.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

/** Sum of the inclusive box (r0..r1, c0..c1) via the SAT identity. */
std::int64_t
box_sum(const std::vector<std::int32_t>& sat, std::size_t cols,
        std::size_t r0, std::size_t c0, std::size_t r1, std::size_t c1)
{
    auto at = [&](std::ptrdiff_t r, std::ptrdiff_t c) -> std::int64_t {
        if (r < 0 || c < 0)
            return 0;
        return sat[static_cast<std::size_t>(r) * cols +
                   static_cast<std::size_t>(c)];
    };
    const auto R0 = static_cast<std::ptrdiff_t>(r0);
    const auto C0 = static_cast<std::ptrdiff_t>(c0);
    const auto R1 = static_cast<std::ptrdiff_t>(r1);
    const auto C1 = static_cast<std::ptrdiff_t>(c1);
    return at(R1, C1) - at(R0 - 1, C1) - at(R1, C0 - 1) + at(R0 - 1, C0 - 1);
}

}  // namespace

int
main(int argc, char** argv)
{
    const plr::CliArgs args(argc, argv);
    const std::size_t rows =
        static_cast<std::size_t>(args.get_int("rows", 256));
    const std::size_t cols =
        static_cast<std::size_t>(args.get_int("cols", 256));

    const auto image = plr::dsp::random_ints(rows * cols, 77, 0, 9);

    // SAT = column prefix sum of the row prefix sum.
    plr::gpusim::Device device;
    const auto sig = plr::dsp::prefix_sum();
    const auto row_sums = plr::kernels::batched_recurrence<plr::IntRing>(
        device, sig, image, rows, cols, plr::kernels::Axis::kRows);
    const auto sat = plr::kernels::batched_recurrence<plr::IntRing>(
        device, sig, row_sums, rows, cols, plr::kernels::Axis::kCols);

    // Verify a set of random boxes against direct summation.
    plr::Rng rng(5);
    std::size_t checked = 0, wrong = 0;
    for (int trial = 0; trial < 100; ++trial) {
        std::size_t r0 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(rows) - 1));
        std::size_t r1 = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(r0),
                            static_cast<std::int64_t>(rows) - 1));
        std::size_t c0 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cols) - 1));
        std::size_t c1 = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(c0),
                            static_cast<std::int64_t>(cols) - 1));
        std::int64_t direct = 0;
        for (std::size_t r = r0; r <= r1; ++r)
            for (std::size_t c = c0; c <= c1; ++c)
                direct += image[r * cols + c];
        if (direct != box_sum(sat, cols, r0, c0, r1, c1))
            ++wrong;
        ++checked;
    }

    std::cout << "summed-area table of a " << rows << "x" << cols
              << " image; " << checked << " random box sums checked, "
              << wrong << " wrong\n";
    std::cout << "total image sum via SAT corner: "
              << sat[rows * cols - 1] << "\n";
    return wrong == 0 ? 0 : 1;
}
