/**
 * @file
 * Streaming recurrence over a file larger than the program's memory
 * budget, with durable crash-resume (docs/STREAMING.md).
 *
 * The filter holds exactly one segment of the input in memory at a
 * time; everything else a resume needs — the last k outputs and last p
 * inputs — lives in a self-verifying checkpoint file refreshed every
 * --checkpoint-every segments. A crashed run (simulated with
 * --crash-after, which hard-kills the process like a power cut) is
 * continued with --resume: the checkpoint is loaded, verified against
 * the requested recurrence, and the stream picks up at the recorded
 * element position. The resumed output is bit-identical to an
 * uninterrupted run for the int domain and ULP-close for floats, so
 * `cmp` on the two output files is the demo's proof.
 *
 * Usage:
 *   stream_filter generate --out data.bin --n 16777216 --domain float
 *   stream_filter run --in data.bin --out y.bin --domain float \
 *       --a 1,0.25 --b 1.5,-0.5625 --kernel cpu_simd \
 *       --segment 65536 --checkpoint ck.plrc [--checkpoint-every 4] \
 *       [--crash-after 100] [--resume]
 *
 * Files hold raw native-endian int32/float words; checkpoints use the
 * endian-stable sealed format of src/kernels/checkpoint.h.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/signature.h"
#include "kernels/checkpoint.h"
#include "kernels/registry.h"
#include "kernels/stream.h"
#include "util/cli.h"
#include "util/diag.h"
#include "util/ring.h"
#include "util/rng.h"

namespace {

using plr::CliArgs;
using plr::FatalError;
using plr::Signature;
using plr::kernels::Checkpoint;
using plr::kernels::CheckpointError;
using plr::kernels::Domain;
using plr::kernels::KernelInfo;
using plr::kernels::RunOptions;
using plr::kernels::StreamSession;

int
usage()
{
    std::cout
        << "usage:\n"
        << "  stream_filter generate --out FILE --n N --domain int|float"
        << " [--seed S]\n"
        << "  stream_filter run --in FILE --out FILE --domain int|float\n"
        << "      --a C,C,... --b C,C,... [--kernel NAME] [--segment N]\n"
        << "      [--checkpoint FILE] [--checkpoint-every SEGMENTS]\n"
        << "      [--crash-after SEGMENTS] [--resume] [--threads N]"
        << " [--chunk N]\n";
    return 2;
}

std::vector<double>
parse_coeffs(const std::string& text)
{
    std::vector<double> coeffs;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        coeffs.push_back(std::stod(item));
    PLR_REQUIRE(!coeffs.empty(), "empty coefficient list");
    return coeffs;
}

Domain
parse_domain(const std::string& name)
{
    if (name == "int")
        return Domain::kInt;
    if (name == "float")
        return Domain::kFloat;
    PLR_FATAL("unknown --domain '" << name << "' (int or float)");
}

template <typename V>
int
generate_file(const std::string& path, std::uint64_t n, std::uint64_t seed)
{
    // Stream the file out in bounded pieces — generation obeys the same
    // memory budget the filter does.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    PLR_REQUIRE(out.good(), "cannot open --out '" << path << "'");
    plr::Rng rng(seed);
    constexpr std::uint64_t kPiece = 1u << 16;
    std::vector<V> piece;
    for (std::uint64_t done = 0; done < n; done += piece.size()) {
        piece.resize(static_cast<std::size_t>(std::min(kPiece, n - done)));
        for (V& v : piece) {
            if constexpr (std::is_same_v<V, std::int32_t>)
                v = static_cast<std::int32_t>(rng.uniform_int(-100, 100));
            else
                v = static_cast<float>(rng.uniform_double(-1.0, 1.0));
        }
        out.write(reinterpret_cast<const char*>(piece.data()),
                  static_cast<std::streamsize>(piece.size() * sizeof(V)));
    }
    PLR_REQUIRE(out.good(), "short write to '" << path << "'");
    std::cout << "wrote " << n << " values (" << n * sizeof(V)
              << " bytes) to " << path << "\n";
    return 0;
}

template <typename Ring>
int
run_stream(const CliArgs& args, const Signature& sig, Domain domain)
{
    using V = typename Ring::value_type;
    const std::string in_path = args.get("in", "");
    const std::string out_path = args.get("out", "");
    PLR_REQUIRE(!in_path.empty() && !out_path.empty(),
                "run needs --in and --out");
    const std::string ckpt_path = args.get("checkpoint", "");
    const auto segment = static_cast<std::size_t>(
        args.get_int("segment", 1 << 16));
    const auto every = static_cast<std::uint64_t>(
        args.get_int("checkpoint-every", 1));
    const auto crash_after =
        static_cast<std::uint64_t>(args.get_int("crash-after", 0));
    PLR_REQUIRE(segment > 0 && every > 0,
                "--segment and --checkpoint-every must be positive");

    const KernelInfo* kernel = nullptr;
    const std::string kernel_name = args.get("kernel", "");
    if (!kernel_name.empty()) {
        kernel = plr::kernels::find_kernel(kernel_name);
        PLR_REQUIRE(kernel != nullptr,
                    "unknown --kernel '" << kernel_name << "'");
    }
    RunOptions run;
    run.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    run.chunk = static_cast<std::size_t>(args.get_int("chunk", 0));

    // Resume: load and verify the checkpoint, then reposition both the
    // input read cursor and the output file at the recorded element.
    std::uint64_t position = 0;
    StreamSession<Ring> session = [&] {
        if (args.get_bool("resume", false)) {
            PLR_REQUIRE(!ckpt_path.empty(), "--resume needs --checkpoint");
            const Checkpoint ckpt =
                plr::kernels::load_checkpoint(ckpt_path);
            position = ckpt.elements;
            std::cout << "resuming from " << ckpt_path << " at element "
                      << position << " (segment " << ckpt.segments << ")\n";
            return StreamSession<Ring>::resume_from(ckpt, sig, kernel, run);
        }
        return StreamSession<Ring>(sig, kernel, run);
    }();

    std::ifstream in(in_path, std::ios::binary);
    PLR_REQUIRE(in.good(), "cannot open --in '" << in_path << "'");
    in.seekg(static_cast<std::streamoff>(position * sizeof(V)));

    // An interrupted run's output file may run past the checkpoint (the
    // elements after the last durable checkpoint are re-derived); cut it
    // back so resumed output appends exactly at the resume position.
    if (position > 0) {
        std::error_code ec;
        std::filesystem::resize_file(out_path, position * sizeof(V), ec);
        PLR_REQUIRE(!ec, "cannot truncate --out '" << out_path << "' to "
                             << position * sizeof(V) << " bytes");
    }
    std::ofstream out(out_path,
                      position > 0 ? std::ios::binary | std::ios::app
                                   : std::ios::binary | std::ios::trunc);
    PLR_REQUIRE(out.good(), "cannot open --out '" << out_path << "'");

    // The memory budget: one segment of input (and its output), plus the
    // session's O(k + p) carry state. The input file can be any size.
    std::vector<V> buffer(segment);
    std::uint64_t segments_fed = 0;
    std::uint64_t elements = position;
    while (in.read(reinterpret_cast<char*>(buffer.data()),
                   static_cast<std::streamsize>(segment * sizeof(V))),
           in.gcount() > 0) {
        const auto got = static_cast<std::size_t>(in.gcount()) / sizeof(V);
        const std::vector<V> y = session.feed(
            std::span<const V>(buffer.data(), got));
        out.write(reinterpret_cast<const char*>(y.data()),
                  static_cast<std::streamsize>(y.size() * sizeof(V)));
        PLR_REQUIRE(out.good(), "short write to '" << out_path << "'");
        elements += got;
        ++segments_fed;
        if (!ckpt_path.empty() && segments_fed % every == 0) {
            out.flush();  // durable state must not outrun durable output
            plr::kernels::save_checkpoint(session.checkpoint(), ckpt_path);
        }
        if (crash_after != 0 && segments_fed >= crash_after) {
            std::cout << "simulated crash after " << segments_fed
                      << " segments (" << elements << " elements)\n";
            // A real crash runs no destructors and flushes nothing.
            std::_Exit(137);
        }
    }
    if (!ckpt_path.empty()) {
        out.flush();
        plr::kernels::save_checkpoint(session.checkpoint(), ckpt_path);
    }
    std::cout << "filtered " << elements - position << " elements ("
              << segments_fed << " segments) via "
              << (kernel != nullptr ? kernel->name : "serial")
              << (position > 0 ? " [resumed]" : "") << " -> " << out_path
              << "\n";
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    const CliArgs args(argc - 1, argv + 1);
    try {
        if (command == "generate") {
            const std::string out = args.get("out", "");
            PLR_REQUIRE(!out.empty(), "generate needs --out");
            const auto n = static_cast<std::uint64_t>(args.get_int("n", 0));
            PLR_REQUIRE(n > 0, "generate needs --n > 0");
            const auto seed =
                static_cast<std::uint64_t>(args.get_int("seed", 42));
            if (parse_domain(args.get("domain", "int")) == Domain::kInt)
                return generate_file<std::int32_t>(out, n, seed);
            return generate_file<float>(out, n, seed);
        }
        if (command == "run") {
            const Domain domain = parse_domain(args.get("domain", "int"));
            const Signature sig(parse_coeffs(args.get("a", "1")),
                                parse_coeffs(args.get("b", "1")));
            if (domain == Domain::kInt)
                return run_stream<plr::IntRing>(args, sig, domain);
            return run_stream<plr::FloatRing>(args, sig, domain);
        }
    } catch (const CheckpointError& e) {
        std::cerr << "checkpoint REJECTED ("
                  << plr::kernels::to_string(e.kind()) << "): " << e.what()
                  << "\n";
        return 1;
    } catch (const FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
