/**
 * @file
 * Audio-style denoising with a recursive low-pass filter — the classic
 * IIR use case the paper motivates (DC removal, noise suppression,
 * smoothing; Section 1).
 *
 * A noisy sine wave is filtered with a k-stage single-pole low-pass
 * filter designed from a cutoff frequency (Smith's recipe); the filter
 * runs in parallel through PLR on the simulated GPU, and the example
 * reports the signal-to-noise ratio before and after along with the
 * filter's signature.
 *
 *   ./audio_denoise --stages 2 --cutoff 0.02 --n 65536
 */

#include <cmath>
#include <iostream>

#include "dsp/filter_design.h"
#include "dsp/signal.h"
#include "gpusim/device.h"
#include "kernels/plr_kernel.h"
#include "kernels/serial.h"
#include "util/cli.h"
#include "util/compare.h"

namespace {

/** SNR of @p signal against the clean @p reference, in dB. */
double
snr_db(const std::vector<float>& reference, const std::vector<float>& signal)
{
    double signal_power = 0, noise_power = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        signal_power += reference[i] * reference[i];
        const double e = signal[i] - reference[i];
        noise_power += e * e;
    }
    return 10.0 * std::log10(signal_power / noise_power);
}

}  // namespace

int
main(int argc, char** argv)
{
    const plr::CliArgs args(argc, argv);
    const std::size_t n = static_cast<std::size_t>(args.get_int("n", 1 << 16));
    const std::size_t stages =
        static_cast<std::size_t>(args.get_int("stages", 2));
    const double cutoff = args.get_double("cutoff", 0.02);
    const double tone = args.get_double("tone", 0.005);

    // Design the filter from the cutoff frequency and report its
    // signature — the same DSL string PLR compiles to CUDA.
    const double pole = plr::dsp::pole_from_cutoff(cutoff);
    const auto filter = plr::dsp::lowpass(pole, stages);
    std::cout << stages << "-stage low-pass, cutoff " << cutoff
              << " of the sample rate\n"
              << "signature: " << filter.to_string() << "\n";

    // Synthesize a tone buried in noise.
    const auto clean = plr::dsp::sine(n, tone);
    const auto noisy = plr::dsp::noisy_sine(n, tone, 0.5, 7);
    std::cout << "input SNR:  " << snr_db(clean, noisy) << " dB\n";

    // Filter it with the parallel PLR kernel.
    plr::gpusim::Device device;
    plr::kernels::PlrKernel<plr::FloatRing> kernel(
        plr::make_plan_with_chunk(filter, n, 1024, 256));
    const auto filtered = kernel.run(device, noisy);

    // A k-stage low-pass delays the signal; compensate the group delay
    // (~k * x / (1 - x) samples at DC) before measuring the SNR.
    const std::size_t delay = static_cast<std::size_t>(
        std::round(static_cast<double>(stages) * pole / (1.0 - pole)));
    std::vector<float> aligned(n, 0.0f);
    for (std::size_t i = delay; i < n; ++i)
        aligned[i - delay] = filtered[i];
    std::cout << "output SNR: " << snr_db(clean, aligned)
              << " dB (group delay " << delay << " samples)\n";

    // The parallel result matches the serial filter.
    const auto serial =
        plr::kernels::serial_recurrence<plr::FloatRing>(filter, noisy);
    std::cout << "parallel vs serial filter: "
              << plr::validate_close(serial, filtered).describe() << "\n";
    return 0;
}
