/**
 * @file
 * Envelope follower over the max-plus semiring — the paper's "operators
 * other than addition" future-work item (Section 7) in action.
 *
 * The decaying running maximum
 *
 *   env[i] = max(|x[i]|, env[i-1] - decay)
 *
 * is the max-plus linear recurrence with signature max+(0 : -decay), so
 * the very same PLR machinery (n-nacci correction factors, hierarchical
 * Phase 1, decoupled look-back Phase 2) parallelizes it. The example
 * tracks the envelope of an amplitude-modulated tone and reports how
 * closely it follows the true modulation.
 *
 *   ./envelope_follower --n 65536 --decay 0.01
 */

#include <cmath>
#include <iostream>

#include "dsp/signal.h"
#include "gpusim/device.h"
#include "kernels/plr_kernel.h"
#include "kernels/serial.h"
#include "util/cli.h"

int
main(int argc, char** argv)
{
    const plr::CliArgs args(argc, argv);
    const std::size_t n = static_cast<std::size_t>(args.get_int("n", 1 << 16));
    const float decay = static_cast<float>(args.get_double("decay", 0.01));

    // Amplitude-modulated tone: carrier at 0.05, modulation at 0.0005.
    const auto carrier = plr::dsp::sine(n, 0.05);
    std::vector<float> x(n);
    std::vector<float> modulation(n);
    for (std::size_t i = 0; i < n; ++i) {
        modulation[i] = 1.0f + 0.8f * static_cast<float>(std::sin(
                                         2.0 * 3.14159265358979 * 0.0005 *
                                         static_cast<double>(i)));
        x[i] = std::fabs(modulation[i] * carrier[i]);
    }

    const auto sig = plr::Signature::max_plus({0.0}, {-decay});
    std::cout << "envelope recurrence: " << sig.to_string() << "\n";

    plr::gpusim::Device device;
    plr::kernels::PlrKernel<plr::TropicalRing> kernel(
        plr::make_plan_with_chunk(sig, n, 1024, 256));
    const auto envelope = kernel.run(device, x);

    // Parallel result matches the serial recurrence.
    const auto serial =
        plr::kernels::serial_recurrence<plr::TropicalRing>(sig, x);
    double max_err = 0;
    for (std::size_t i = 0; i < n; ++i)
        max_err = std::max(max_err,
                           std::fabs(double(envelope[i]) - serial[i]));
    std::cout << "parallel vs serial envelope: max |diff| = " << max_err
              << "\n";

    // How well does the envelope track the true modulation depth?
    double err = 0;
    std::size_t counted = 0;
    for (std::size_t i = n / 8; i < n; ++i) {  // skip the attack
        err += std::fabs(envelope[i] - modulation[i]);
        ++counted;
    }
    std::cout << "mean |envelope - modulation| = "
              << err / static_cast<double>(counted)
              << " (modulation depth 0.2..1.8)\n";
    return max_err < 1e-3 ? 0 : 1;
}
