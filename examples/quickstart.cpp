/**
 * @file
 * Quickstart: compute a linear recurrence with PLR in a few lines.
 *
 *   ./quickstart                          # second-order prefix sum
 *   ./quickstart --signature "(1: 1)"     # standard prefix sum
 *   ./quickstart --signature "(0.2: 0.8)" --n 100000
 *
 * The example parses a signature, plans a kernel, runs it on the bundled
 * GPU execution simulator, validates the result against the serial
 * reference (exactly for integers, within 1e-3 for floats), and reports
 * the modeled Titan-X throughput for the same recurrence.
 */

#include <iostream>

#include "dsp/signal.h"
#include "gpusim/device.h"
#include "kernels/plr_kernel.h"
#include "kernels/serial.h"
#include "perfmodel/algo_profiles.h"
#include "util/cli.h"
#include "util/compare.h"

int
main(int argc, char** argv)
{
    const plr::CliArgs args(argc, argv);
    const auto sig =
        plr::Signature::parse(args.get("signature", "(1: 2, -1)"));
    const std::size_t n =
        static_cast<std::size_t>(args.get_int("n", 1 << 16));

    std::cout << "recurrence " << sig.to_string() << " (order "
              << sig.order() << ", class "
              << plr::to_string(sig.classify()) << ") on " << n
              << " elements\n";

    plr::gpusim::Device device;  // the simulated GTX Titan X
    const auto plan = plr::make_plan_with_chunk(sig, n, 1024, 256);

    if (sig.is_integral()) {
        const auto input = plr::dsp::random_ints(n, 42);
        plr::kernels::PlrKernel<plr::IntRing> kernel(plan);
        plr::kernels::PlrRunStats stats;
        const auto output = kernel.run(device, input, &stats);
        const auto expected =
            plr::kernels::serial_recurrence<plr::IntRing>(sig, input);
        std::cout << "validation: "
                  << plr::validate_exact(expected, output).describe() << "\n";
        std::cout << "chunks " << stats.chunks << ", max look-back "
                  << stats.max_lookback << ", DRAM traffic "
                  << stats.counters.total_global_bytes() << " bytes\n";
    } else {
        const auto input = plr::dsp::random_floats(n, 42);
        plr::kernels::PlrKernel<plr::FloatRing> kernel(plan);
        const auto output = kernel.run(device, input);
        const auto expected =
            plr::kernels::serial_recurrence<plr::FloatRing>(sig, input);
        std::cout << "validation: "
                  << plr::validate_close(expected, output).describe() << "\n";
    }

    const plr::perfmodel::HardwareModel hw;
    std::cout << "modeled Titan X throughput at this size: "
              << plr::perfmodel::algo_throughput(plr::perfmodel::Algo::kPlr,
                                                 sig, n, hw) /
                     1e9
              << " billion words/s\n";
    return 0;
}
